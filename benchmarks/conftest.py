"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one paper figure (see DESIGN.md's
per-experiment index). Benchmarks run the experiment at a reduced but
structurally identical scale (``BENCH`` below) so a full
``pytest benchmarks/ --benchmark-only`` pass completes in minutes; the
printed tables use the same code paths as the paper-scale run
(``python -m repro.experiments.<module>``).
"""

from __future__ import annotations

import pytest

# The canonical benchmark scale lives next to the perf-regression suite
# (`python -m repro bench`) so both harnesses time identical workloads.
from repro.experiments.bench import BENCH


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH

"""Shared fixtures for the benchmark harness.

Each ``bench_*`` file regenerates one paper figure (see DESIGN.md's
per-experiment index). Benchmarks run the experiment at a reduced but
structurally identical scale (``BENCH`` below) so a full
``pytest benchmarks/ --benchmark-only`` pass completes in minutes; the
printed tables use the same code paths as the paper-scale run
(``python -m repro.experiments.<module>``).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.config import QUICK

#: Benchmark scale: QUICK with fewer realizations to keep timings tight.
BENCH = replace(QUICK, label="bench", realizations=3, rounds=50, accuracy_rounds=600)


@pytest.fixture(scope="session")
def bench_scale():
    return BENCH

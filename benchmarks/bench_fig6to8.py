"""Benchmark: regenerate Figs. 6-8 (accuracy vs wall-clock).

The bench runs ResNet18 (Fig. 7) at reduced horizon; the LeNet5/VGG16
panels (Figs. 6 and 8) use the same code path via
``python -m repro.experiments.fig6to8_accuracy`` at paper scale.
"""

import math

from repro.experiments import fig6to8_accuracy


def test_fig7_resnet18_accuracy_vs_time(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig6to8_accuracy.run,
        args=(bench_scale,),
        kwargs={"models": ["ResNet18"]},
        rounds=1,
        iterations=1,
    )
    times = result.time_to_target["ResNet18"]
    assert all(math.isfinite(t) for t in times.values())
    assert times["DOLBIE"] < times["EQU"]

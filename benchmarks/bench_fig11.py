"""Benchmark: regenerate Fig. 11 (utilization + balancer overhead)."""

from repro.experiments import fig11_utilization


def test_fig11_utilization(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig11_utilization.run, args=(bench_scale,), rounds=1, iterations=1
    )
    assert result.idle_reduction["EQU"] > 0
    print()
    fig11_utilization.main(bench_scale)

"""Benchmark: regenerate Fig. 10 (batch size per worker per round)."""

import numpy as np

from repro.experiments import fig10_batch_size


def test_fig10_batch_size(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig10_batch_size.run, args=(bench_scale,), rounds=3, iterations=1
    )
    for sizes in result.batch_sizes.values():
        assert np.allclose(sizes.sum(axis=1), bench_scale.global_batch)
    print()
    fig10_batch_size.main(bench_scale)

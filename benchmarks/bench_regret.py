"""Benchmark: regenerate the Theorem 1 regret-vs-bound sweeps."""

from repro.experiments import regret_experiment


def test_regret_vs_bound(benchmark, bench_scale):
    result = benchmark.pedantic(
        regret_experiment.run,
        args=(bench_scale,),
        kwargs={"horizons": (25, 50, 100)},
        rounds=1,
        iterations=1,
    )
    for point in result.horizon_sweep + result.worker_sweep:
        assert point.regret <= point.bound
    print()
    regret_experiment.main(bench_scale)

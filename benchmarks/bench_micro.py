"""Micro-benchmarks of the core computational kernels.

Not a paper figure — these quantify the building blocks behind the
§IV-C computation-complexity claims at realistic scales: the DOLBIE
update, the risk-averse target computation, the simplex projection OGD
must run every round, and the full min-max solve OPT runs every round.
"""

import numpy as np
import pytest

from repro.core.dolbie import Dolbie
from repro.core.interface import make_feedback
from repro.core.quantities import acceptable_workloads
from repro.costs.affine import AffineLatencyCost
from repro.minmax.solver import evaluate_allocation, solve_min_max
from repro.simplex.projection import project_simplex_sort

N = 100


@pytest.fixture(scope="module")
def costs():
    rng = np.random.default_rng(0)
    return [
        AffineLatencyCost(slope=s, intercept=c)
        for s, c in zip(rng.uniform(0.1, 10, N), rng.uniform(0, 0.2, N))
    ]


def test_dolbie_full_update(benchmark, costs):
    def one_round():
        balancer = Dolbie(N, alpha_1=0.001)
        feedback = make_feedback(1, balancer.decide(), costs)
        balancer.update(feedback)
        return balancer.allocation

    result = benchmark(one_round)
    assert abs(result.sum() - 1.0) < 1e-9


def test_acceptable_workloads_kernel(benchmark, costs):
    x = np.full(N, 1.0 / N)
    _, level, straggler = evaluate_allocation(costs, x)
    result = benchmark(acceptable_workloads, costs, x, level, straggler)
    assert (result >= x - 1e-12).all()


def test_simplex_projection(benchmark):
    rng = np.random.default_rng(1)
    v = rng.normal(size=N)
    result = benchmark(project_simplex_sort, v)
    assert abs(result.sum() - 1.0) < 1e-9


def test_minmax_solve(benchmark, costs):
    solution = benchmark(solve_min_max, costs)
    assert solution.value > 0

"""Benchmark: regenerate Fig. 3 (per-round latency, one realization)."""

from repro.experiments import fig3_per_round_latency


def test_fig3_per_round_latency(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig3_per_round_latency.run, args=(bench_scale,), rounds=3, iterations=1
    )
    # Regenerate the paper's series and headline comparison.
    assert result.reductions_at_40["EQU"] > 0
    print()
    fig3_per_round_latency.main(bench_scale)

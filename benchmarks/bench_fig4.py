"""Benchmark: regenerate Fig. 4 (per-round latency, 95% CI)."""

from repro.experiments import fig4_latency_ci


def test_fig4_latency_ci(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig4_latency_ci.run, args=(bench_scale,), rounds=1, iterations=1
    )
    assert result.mean["DOLBIE"][-1] < result.mean["EQU"][-1]
    print()
    fig4_latency_ci.main(bench_scale)

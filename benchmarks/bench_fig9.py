"""Benchmark: regenerate Fig. 9 (per-worker latency per round)."""

from repro.experiments import fig9_worker_latency


def test_fig9_worker_latency(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig9_worker_latency.run, args=(bench_scale,), rounds=3, iterations=1
    )
    assert result.convergence_round("DOLBIE") <= result.convergence_round("EQU")
    print()
    fig9_worker_latency.main(bench_scale)

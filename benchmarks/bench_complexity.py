"""Benchmark: regenerate the §IV-C communication/computation analysis."""

from repro.experiments import complexity


def test_complexity_message_counts(benchmark, bench_scale):
    result = benchmark.pedantic(
        complexity.run, args=(bench_scale,), kwargs={"rounds": 10},
        rounds=3, iterations=1,
    )
    for i, n in enumerate(result.worker_counts):
        assert result.messages_mw[i] == complexity.expected_master_worker(n)
        assert result.messages_fd[i] == complexity.expected_fully_distributed(n)
    print()
    complexity.main(bench_scale)


def test_decision_overhead_scaling(benchmark):
    result = benchmark.pedantic(
        complexity.run_compute_overhead,
        kwargs={"worker_counts": (30, 100, 300), "rounds": 10},
        rounds=1,
        iterations=1,
    )
    # OPT's full instantaneous solve is far heavier than DOLBIE's update.
    assert result.seconds_per_round["OPT"][-1] > 3 * result.seconds_per_round["DOLBIE"][-1]

"""Benchmarks: the §III-B edge scenario and the hyperparameter sweeps."""

from repro.experiments import edge_scenario, sensitivity


def test_edge_offloading(benchmark, bench_scale):
    result = benchmark.pedantic(
        edge_scenario.run,
        args=(bench_scale,),
        kwargs={"num_servers": 5, "horizon": 60, "realizations": 2},
        rounds=1,
        iterations=1,
    )
    # DOLBIE must beat the proportional baseline on non-linear costs.
    assert result.total_cost_mean["DOLBIE"] < result.total_cost_mean["ABS"]


def test_sensitivity_sweeps(benchmark, bench_scale):
    result = benchmark.pedantic(
        sensitivity.run, args=(bench_scale,), rounds=1, iterations=1
    )
    # Every swept algorithm shows measurable hyperparameter dependence.
    for name in result.totals:
        assert result.spread(name) > 1.0
    print()
    sensitivity.main(bench_scale)

"""Benchmark: regenerate the DESIGN.md design-choice ablations."""

from repro.experiments import ablations


def test_ablations(benchmark, bench_scale):
    result = benchmark.pedantic(
        ablations.run, args=(bench_scale,), rounds=3, iterations=1
    )
    assert result.total_cost["DOLBIE[single-helper]"] > result.total_cost["DOLBIE"]
    print()
    ablations.main(bench_scale)

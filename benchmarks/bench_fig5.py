"""Benchmark: regenerate Fig. 5 (cumulative latency, 95% CI)."""

from repro.experiments import fig5_cumulative_latency


def test_fig5_cumulative_latency(benchmark, bench_scale):
    result = benchmark.pedantic(
        fig5_cumulative_latency.run, args=(bench_scale,), rounds=1, iterations=1
    )
    totals = result.final_totals()
    assert totals["DOLBIE"][0] < totals["EQU"][0]
    print()
    fig5_cumulative_latency.main(bench_scale)

"""Algorithms 1 and 2 as real message-passing protocols.

Runs DOLBIE three ways on the same time-varying workload:

* the centralized reference implementation (:class:`repro.core.Dolbie`),
* Algorithm 1 (master-worker) over the discrete-event network, and
* Algorithm 2 (fully-distributed) over the network with random link
  latencies,

then verifies all three produce identical allocations and reports the
measured per-round message counts against the §IV-C complexity analysis
(3N for master-worker, N^2 - 1 fully distributed).

Run:  python examples/fully_distributed_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import Dolbie, run_online
from repro.costs import RandomAffineProcess
from repro.net import Link, UniformLatency
from repro.protocols import FullyDistributedDolbie, MasterWorkerDolbie

NUM_WORKERS = 8
HORIZON = 50
ALPHA_1 = 0.02


def main() -> None:
    process = RandomAffineProcess(
        speeds=[1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0],
        sigma=0.12,
        comm_scale=0.03,
        seed=11,
    )

    reference = Dolbie(NUM_WORKERS, alpha_1=ALPHA_1, exact_feasibility_guard=False)
    ref_run = run_online(reference, process, HORIZON)

    master_worker = MasterWorkerDolbie(NUM_WORKERS, alpha_1=ALPHA_1)
    mw_run = master_worker.run(process, HORIZON)

    rng = np.random.default_rng(0)
    lossy_link = Link(UniformLatency(0.001, 0.040, rng))
    fully_distributed = FullyDistributedDolbie(
        NUM_WORKERS, alpha_1=ALPHA_1, link=lossy_link
    )
    fd_run = fully_distributed.run(process, HORIZON)

    mw_match = np.allclose(ref_run.allocations, mw_run.allocations, atol=1e-12)
    fd_match = np.allclose(ref_run.allocations, fd_run.allocations, atol=1e-12)
    print(f"master-worker matches reference:      {mw_match}")
    print(f"fully-distributed matches reference:  {fd_match}")

    n = NUM_WORKERS
    print("\nper-round communication (measured vs §IV-C analysis):")
    print(
        f"  master-worker:     {master_worker.metrics.mean_messages_per_round():.0f} "
        f"messages (3N = {3 * n})"
    )
    print(
        f"  fully-distributed: {fully_distributed.metrics.mean_messages_per_round():.0f} "
        f"messages (N^2-1 = {n * n - 1})"
    )
    print(
        f"\nvirtual time to finish {HORIZON} rounds over the lossy links: "
        f"{fully_distributed.cluster.engine.now:.2f}s"
    )
    print(f"final allocation: {np.round(fd_run.allocations[-1], 4)}")

    # Extension: Algorithm 2 on a ring instead of all-to-all, via flooding.
    from repro.net import Topology

    ring = FullyDistributedDolbie(
        NUM_WORKERS, alpha_1=ALPHA_1, topology=Topology.ring(NUM_WORKERS)
    )
    ring_run = ring.run(process, HORIZON)
    ring_match = np.allclose(ref_run.allocations, ring_run.allocations, atol=1e-12)
    print(
        f"\nring topology (flooding) matches reference: {ring_match} — "
        f"{ring.metrics.mean_messages_per_round():.0f} messages/round vs "
        f"{fully_distributed.metrics.mean_messages_per_round():.0f} all-to-all"
    )


if __name__ == "__main__":
    main()

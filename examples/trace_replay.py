"""Replaying measured traces and comparing algorithms with the analysis kit.

Workflow a practitioner would follow with real cluster measurements:

1. obtain a per-round, per-worker table of processing speeds and
   communication times (here we export one from the simulator — with
   real data you'd write the same CSV from your monitoring system);
2. load it into a :class:`TraceTable` and replay it as a cost process;
3. run every balancer on the identical replayed world;
4. summarize with the analysis toolkit and export the comparison CSV.

Run:  python examples/trace_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis import compare_runs, comparison_table, export_comparison_csv
from repro.core.loop import run_online
from repro.experiments.config import paper_balancer
from repro.mlsim import TraceEnvironment, TraceTable, TrainingEnvironment

ROUNDS = 120
NUM_WORKERS = 12


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="dolbie-traces-"))

    # 1-2. Produce a measured-style trace file and load it back.
    source = TrainingEnvironment("ResNet18", num_workers=NUM_WORKERS, seed=21)
    trace_path = TraceTable.from_environment(source, rounds=ROUNDS).save_csv(
        workdir / "cluster_trace.csv"
    )
    print(f"trace written to {trace_path}")
    table = TraceTable.load_csv(trace_path)
    replay = TraceEnvironment(table, global_batch=256)

    # 3. Run every algorithm on the identical replayed world.
    runs = {}
    for name in ("EQU", "OGD", "LB-BSP", "ABS", "EG", "DOLBIE", "OPT"):
        balancer = paper_balancer(name, NUM_WORKERS)
        runs[name] = run_online(balancer, replay, ROUNDS)

    # 4. Summarize and export.
    summaries = compare_runs(runs)
    print()
    print(comparison_table(summaries))
    csv_path = export_comparison_csv(summaries, workdir / "comparison.csv")
    print(f"\ncomparison exported to {csv_path}")

    best_online = next(s for s in summaries if s.algorithm != "OPT")
    print(
        f"best online algorithm on this trace: {best_online.algorithm} "
        f"({best_online.oracle_ratio:.2f}x the clairvoyant optimum)"
    )


if __name__ == "__main__":
    main()

"""Dynamic-regret analysis of DOLBIE (Theorem 1 of the paper).

Runs DOLBIE on a drifting environment, computes the exact instantaneous
minimizers with the level-bisection oracle, and compares the empirical
dynamic regret against the Theorem 1 upper bound — across horizons and
drift magnitudes (the drift controls the path length P_T appearing in
the bound).

Run:  python examples/regret_analysis.py
"""

from __future__ import annotations

from repro import Dolbie, run_online
from repro.costs import DriftingAffineProcess
from repro.regret import (
    compute_comparators,
    dynamic_regret,
    lipschitz_over_rounds,
    theorem1_bound,
)

NUM_WORKERS = 10


def analyze(horizon: int, amplitude: float) -> None:
    speeds = [1.0 + 0.4 * i for i in range(NUM_WORKERS)]
    process = DriftingAffineProcess(
        speeds, amplitude=amplitude, period=40.0, seed=5
    )
    balancer = Dolbie(NUM_WORKERS)
    result = run_online(balancer, process, horizon)

    costs = process.horizon_costs(horizon)
    comparators = compute_comparators(costs)
    regret = dynamic_regret(result.global_costs, comparators.values)
    lipschitz = lipschitz_over_rounds(costs)
    bound = theorem1_bound(
        horizon, lipschitz, balancer.alpha_history, comparators.path_length, NUM_WORKERS
    )
    print(
        f"T={horizon:>4}  drift={amplitude:.2f}  P_T={comparators.path_length:7.3f}  "
        f"regret={regret:8.3f}  bound={bound:9.3f}  "
        f"regret/T={regret / horizon:7.4f}  holds={regret <= bound}"
    )


def main() -> None:
    print("horizon sweep (fixed drift):")
    for horizon in (25, 50, 100, 200, 400):
        analyze(horizon, amplitude=0.25)

    print("\ndrift sweep (fixed horizon T=200): P_T rises, so does the bound")
    for amplitude in (0.0, 0.1, 0.25, 0.5):
        analyze(200, amplitude)

    print(
        "\nThe per-round regret (regret/T) stays small and the Theorem 1 "
        "bound holds in every configuration."
    )


if __name__ == "__main__":
    main()

"""Serving workload: route an open-loop request trace, compare tail latency.

A heterogeneous 6-worker fleet (speeds spread 6x) serves an open-loop
Poisson arrival trace at 85% of fleet capacity. Four routing policies
see the *identical* requests and service draws, so every latency
difference is pure routing:

* ``wrr``    — static weighted round-robin (knows the speeds, never adapts)
* ``dolbie`` — DOLBIE retunes the routing weights each control period
* ``jsq``    — join-shortest-queue (an oracle: global instantaneous state)
* ``p2c``    — power-of-two-choices (two probes per request)

The second half switches to a bursty trace and kills the slowest worker
mid-run, showing the fault invariant: its dispatch count freezes at the
crash, stranded requests fail, and the survivors absorb the traffic.

Run:  python examples/serving_workload.py
"""

from __future__ import annotations

import numpy as np

from repro.serving import (
    ServingSimulator,
    WorkerCrash,
    make_arrivals,
    make_policy,
)

NUM_WORKERS = 6
REQUESTS = 30_000
SEED = 42

MU = np.linspace(0.5, 3.0, NUM_WORKERS)  # requests/s per worker
RATE = 0.85 * float(MU.sum())


def run_policy(name: str, arrival: str = "poisson", crashes=()) -> ServingSimulator:
    simulator = ServingSimulator(
        make_arrivals(arrival, RATE, seed=SEED),
        make_policy(name, NUM_WORKERS, MU, seed=SEED),
        MU,
        seed=SEED,
        quantile_mode="exact",
        crashes=crashes,
    )
    simulator.run(REQUESTS)
    return simulator


def main() -> None:
    print(
        f"fleet: N={NUM_WORKERS}, speeds {MU[0]:.1f}..{MU[-1]:.1f} req/s, "
        f"poisson arrivals at {RATE:.1f} req/s ({REQUESTS} requests)\n"
    )
    print(f"{'policy':>8}  {'p50':>7}  {'p99':>7}  {'p999':>8}  {'SLO att.':>8}")
    summaries = {}
    for name in ("wrr", "dolbie", "jsq", "p2c"):
        summary = run_policy(name).summary()
        summaries[name] = summary
        print(
            f"{name:>8}  {summary.p50:>7.3f}  {summary.p99:>7.3f}  "
            f"{summary.p999:>8.3f}  {100 * summary.slo_attainment:>7.2f}%"
        )
    gap = summaries["wrr"].p99 - summaries["dolbie"].p99
    print(f"\nonline adaptation buys {gap:+.3f}s of p99 over static weights")

    crash_time = 0.4 * REQUESTS / RATE  # mid-trace, while queues are busy
    simulator = run_policy(
        "dolbie", arrival="bursty", crashes=[WorkerCrash(crash_time, 0)]
    )
    summary = simulator.summary()
    frozen = simulator.death_dispatch[0]
    print(
        f"\non a bursty trace, worker 0 crashed at t={crash_time:.0f}s: "
        f"{summary.failed} stranded requests failed, "
        f"{summary.completed} completed"
    )
    print(
        f"dispatch count frozen at {frozen} "
        f"(final: {int(simulator.dispatched[0])} — no post-crash routing)"
    )
    weights = simulator.effective_weights()
    print(
        "surviving weights: ["
        + ", ".join(f"{w:.3f}" for w in weights)
        + f"] (sum {weights.sum():.3f})"
    )


if __name__ == "__main__":
    main()

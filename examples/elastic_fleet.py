"""Elastic fleets: workers leaving and joining mid-run (library extension).

The paper fixes the worker set; real clusters don't. ElasticDolbie
rebalances across membership changes while keeping the workload simplex
intact: a crashed worker's share is re-sharded proportionally over the
survivors, a newcomer is seeded with 1/(N+1) taken proportionally from
the incumbents, and the step-size schedule restarts safely on the new
fleet.

Run:  python examples/elastic_fleet.py
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import make_feedback
from repro.core.membership import ElasticDolbie
from repro.costs import RandomAffineProcess

HORIZON = 90


def main() -> None:
    # Start with 6 workers; worker 5 (the fastest) dies at round 30; a new
    # mid-speed worker joins at round 60.
    speeds_before = [1.0, 2.0, 3.0, 5.0, 8.0, 13.0]
    speeds_after_crash = speeds_before[:5]
    speeds_after_join = speeds_after_crash + [4.0]

    balancer = ElasticDolbie(6, alpha_1=0.05)
    phases = {
        range(1, 30): speeds_before,
        range(30, 60): speeds_after_crash,
        range(60, HORIZON + 1): speeds_after_join,
    }

    def costs_for(t: int):
        for rounds, speeds in phases.items():
            if t in rounds:
                return RandomAffineProcess(speeds, sigma=0.1, seed=1).costs_at(t)
        raise AssertionError(t)

    print(f"{'round':>5}  {'N':>2}  {'max latency':>11}  allocation")
    for t in range(1, HORIZON + 1):
        if t == 30:
            balancer.remove_worker(5)
            print(f"{'--':>5}  worker 5 crashed; share re-sharded over survivors")
        if t == 60:
            balancer.add_worker()
            print(f"{'--':>5}  new worker joined with share 1/{balancer.num_workers}")
        costs = costs_for(t)
        feedback = make_feedback(t, balancer.decide(), costs)
        balancer.update(feedback)
        if t % 10 == 0 or t in (29, 30, 59, 60):
            alloc = np.round(balancer.allocation, 3)
            print(
                f"{t:>5}  {balancer.num_workers:>2}  {feedback.global_cost:>11.4f}  {alloc}"
            )

    assert abs(balancer.allocation.sum() - 1.0) < 1e-9
    print("\nworkload stayed on the simplex through both membership changes.")


if __name__ == "__main__":
    main()

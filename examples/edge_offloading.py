"""Task offloading in edge computing (the paper's Example 2, §III-B).

A user device splits a divisible task between local execution and eight
heterogeneous edge servers whose uplinks and background load fluctuate.
Server execution delay is queueing-style (non-linear, exploding near
saturation) — exactly the regime where proportional baselines like ABS
mis-assign, while DOLBIE's level-set targets stay risk-averse.

Run:  python examples/edge_offloading.py
"""

from __future__ import annotations

from repro import make_balancer, run_online
from repro.edge import EdgeOffloadingScenario

NUM_SERVERS = 8
HORIZON = 200


def main() -> None:
    scenario = EdgeOffloadingScenario(num_servers=NUM_SERVERS, seed=3)
    n = NUM_SERVERS + 1  # workers = local device + servers

    print(f"{'algorithm':>8}  {'total completion (s)':>21}  {'final latency (s)':>18}")
    results = {}
    for name in ["EQU", "OGD", "ABS", "LB-BSP", "DOLBIE", "OPT"]:
        kwargs = {"alpha_1": 0.01} if name == "DOLBIE" else {}
        balancer = make_balancer(name, n, **kwargs)
        run = run_online(balancer, scenario, HORIZON)
        results[name] = run
        print(
            f"{name:>8}  {run.total_cost:>21.3f}  "
            f"{run.global_costs[-20:].mean():>18.4f}"
        )

    dolbie = results["DOLBIE"].allocations[-1]
    print("\nfinal DOLBIE split:  local device {:.3f}".format(dolbie[0]))
    for i, share in enumerate(dolbie[1:], start=1):
        print(f"                     server {i}: {share:.3f}")
    print(
        "\nNote how ABS — proportional to inverse historical cost — "
        "over-assigns to servers whose queueing delay then blows up, while "
        "DOLBIE's assistance is capped at each server's level set."
    )


if __name__ == "__main__":
    main()

"""Batch-size tuning for distributed training (the paper's §VI scenario).

Thirty heterogeneous workers (V100 / P100 / T4 / Cascade Lake /
Broadwell, sampled uniformly) train ResNet18 on a CIFAR-10-scale dataset
with a global batch of 256. Each balancer retunes the per-worker batch
sizes every round; we compare per-round latency, wall-clock time to 95%
training accuracy, and worker idle time.

Run:  python examples/batch_size_tuning.py
"""

from __future__ import annotations

from repro.experiments.config import PAPER_HYPERPARAMETERS
from repro.baselines import make_balancer
from repro.mlsim import SyncTrainer, TrainingEnvironment

MODEL = "ResNet18"
NUM_WORKERS = 30
ROUNDS = 6000  # ~31 epochs at B=256 on 50k samples; ResNet18 crosses 95%
TARGET_ACCURACY = 0.95


def main() -> None:
    env = TrainingEnvironment(MODEL, num_workers=NUM_WORKERS, global_batch=256, seed=7)
    print("fleet:", {t: env.processor_names().count(t) for t in set(env.processor_names())})
    trainer = SyncTrainer(env)

    print(
        f"\n{'algorithm':>8}  {'lat@40 (ms)':>12}  {'t->95% acc (s)':>14}  "
        f"{'idle/round (ms)':>15}  {'overhead (us)':>13}"
    )
    for name in ["EQU", "OGD", "LB-BSP", "ABS", "DOLBIE", "OPT"]:
        balancer = make_balancer(name, NUM_WORKERS, **PAPER_HYPERPARAMETERS[name])
        run = trainer.train(balancer, ROUNDS)
        t95 = run.time_to_accuracy(TARGET_ACCURACY)
        print(
            f"{name:>8}  {run.round_latency[39] * 1e3:>12.2f}  {t95:>14.2f}  "
            f"{run.waiting_time.mean() * 1e3:>15.3f}  "
            f"{run.decision_seconds.mean() * 1e6:>13.1f}"
        )

    print(
        "\nDOLBIE reaches the accuracy target fastest among the online "
        "algorithms while keeping workers busiest — with microsecond-scale "
        "decisions (no gradients, no projections)."
    )


if __name__ == "__main__":
    main()

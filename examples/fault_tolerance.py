"""Fault tolerance and adaptive restarts (library extensions).

Two failure modes a production balancer must survive, demonstrated on
the message-passing protocols and the core algorithm:

1. **Worker crash (and recovery).** A worker goes silent mid-training.
   The failure detector (master-side in Algorithm 1, peer-side in
   Algorithm 2) declares it dead after a timeout, folds its workload
   into that round's straggler, and the risk-averse updates re-balance
   the orphaned share over the following rounds. When the process comes
   back, ``rejoin_worker`` re-shards the live allocation and re-agrees
   every roster (see ``examples/chaos_testing.py`` for randomized fault
   soaks).
2. **Regime change.** A worker slows persistently (a co-located job
   arrives). Plain DOLBIE tracks it at the crawl of its decayed step
   size; RestartDolbie detects the cost blow-up and re-arms Eq. (7).

Run:  python examples/fault_tolerance.py
"""

from __future__ import annotations

import numpy as np

from repro.core import Dolbie, RestartDolbie
from repro.core.loop import run_online
from repro.costs import RandomAffineProcess, SwitchingProcess
from repro.costs.affine import AffineLatencyCost
from repro.protocols import FullyDistributedDolbie

NUM_WORKERS = 6
CRASH_ROUND = 20


def crash_demo() -> None:
    print("=== worker crash (fully-distributed, Algorithm 2) ===")
    process = RandomAffineProcess(
        speeds=[1.0, 2.0, 3.0, 5.0, 8.0, 13.0], sigma=0.1, seed=5
    )
    protocol = FullyDistributedDolbie(NUM_WORKERS, alpha_1=0.03)
    for t in range(1, 41):
        if t == CRASH_ROUND:
            protocol.crash_worker(3)
            print(f"round {t}: worker 3 crashed (held "
                  f"{protocol.allocation[3]:.3f} of the workload)")
        _, _, global_cost, straggler = protocol.run_round(t, process.costs_at(t))
        if t in (CRASH_ROUND, CRASH_ROUND + 1, 40):
            print(
                f"round {t:>2}: latency {global_cost:.4f}s, straggler w{straggler}, "
                f"allocation {np.round(protocol.allocation, 3)}"
            )
    survivors = {tuple(sorted(protocol.peers[w].roster))
                 for w in protocol.roster}
    print(f"surviving rosters (all agree): {survivors}")
    live_share = protocol.allocation[protocol.roster].sum()
    print(f"workload on the roster {protocol.roster} "
          f"still sums to {live_share:.12f}")

    protocol.rejoin_worker(3)
    _, _, global_cost, _ = protocol.run_round(41, process.costs_at(41))
    print(f"round 41: worker 3 re-joined with share "
          f"{protocol.allocation[3]:.3f}; roster back to {protocol.roster}, "
          f"latency {global_cost:.4f}s\n")


def restart_demo() -> None:
    print("=== regime change (adaptive restarts) ===")
    # Every ~80 rounds the slow machine swaps between worker 5 and
    # worker 0 (a co-located job migrating): each swap demands a large
    # reallocation that plain DOLBIE's decayed alpha can no longer make.
    calm = [AffineLatencyCost(1.0 / 8)] * 5 + [AffineLatencyCost(1.0)]
    stormy = [AffineLatencyCost(1.0)] + [AffineLatencyCost(1.0 / 8)] * 5
    process = SwitchingProcess(calm, stormy, switch_every=80)

    plain = run_online(Dolbie(NUM_WORKERS), process, 320)
    restart_balancer = RestartDolbie(NUM_WORKERS)
    restarted = run_online(restart_balancer, process, 320)

    print(f"plain DOLBIE total cost:     {plain.total_cost:.3f}")
    print(f"RestartDolbie total cost:    {restarted.total_cost:.3f} "
          f"({len(restart_balancer.restart_rounds)} restarts at rounds "
          f"{restart_balancer.restart_rounds})")
    improvement = 100 * (1 - restarted.total_cost / plain.total_cost)
    print(f"improvement under regime switching: {improvement:.1f}%")


if __name__ == "__main__":
    crash_demo()
    restart_demo()

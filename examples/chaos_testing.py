"""Chaos testing the DOLBIE protocols (library extension).

Three escalating demonstrations of :mod:`repro.chaos`:

1. **Scripted schedule.** A hand-written fault script — crash, heal,
   rejoin — applied to the master-worker protocol, showing the
   declarative :class:`FaultSchedule` API.
2. **Partition and heal.** A ring of peers splits into two islands; the
   primary component keeps balancing, the minority stalls, and on heal
   the rosters re-merge with the workload resharded.
3. **Randomized soak.** Hundreds of rounds under a seeded random fault
   mix with every system invariant checked after every round, run twice
   to demonstrate the determinism guarantee: same seed, bit-identical
   allocations.

Run:  python examples/chaos_testing.py
"""

from __future__ import annotations

import numpy as np

from repro.chaos import FaultEvent, FaultSchedule, ChaosInjector, run_soak
from repro.costs import RandomAffineProcess
from repro.net.links import ConstantLatency, Link
from repro.net.topology import Topology
from repro.protocols import FullyDistributedDolbie, MasterWorkerDolbie

NUM_WORKERS = 6
LINK = lambda: Link(ConstantLatency(0.001))  # noqa: E731 - tiny factory


def scripted_demo() -> None:
    print("=== scripted schedule (master-worker) ===")
    schedule = FaultSchedule.scripted([
        FaultEvent(5, "crash", workers=(2,)),
        FaultEvent(9, "slowdown", workers=(4,), duration=3, severity=0.02),
        FaultEvent(12, "rejoin", workers=(2,)),
    ])
    process = RandomAffineProcess(
        speeds=[1.0, 1.5, 2.0, 3.0, 4.0, 6.0], seed=3
    )
    protocol = MasterWorkerDolbie(NUM_WORKERS, link=LINK())
    injector = ChaosInjector(protocol, schedule)
    for t in range(1, 16):
        applied = injector.apply(t)
        _, _, global_cost, straggler = protocol.run_round(t, process.costs_at(t))
        if applied:
            kinds = ", ".join(e.kind for e in applied)
            print(f"round {t:>2}: [{kinds}] roster {protocol.roster}, "
                  f"latency {global_cost:.4f}s, straggler w{straggler}")
    print(f"final allocation: {np.round(protocol.allocation, 3)}\n")


def partition_demo() -> None:
    print("=== partition and heal (fully-distributed, ring) ===")
    schedule = FaultSchedule.scripted([
        FaultEvent(4, "partition", groups=((1, 2),)),
        FaultEvent(8, "heal"),
    ])
    process = RandomAffineProcess(
        speeds=[1.0, 1.5, 2.0, 3.0, 4.0, 6.0], seed=3
    )
    protocol = FullyDistributedDolbie(
        NUM_WORKERS, link=LINK(), topology=Topology.ring(NUM_WORKERS)
    )
    injector = ChaosInjector(protocol, schedule)
    for t in range(1, 11):
        injector.apply(t)
        protocol.run_round(t, process.costs_at(t))
        if t in (3, 4, 8, 10):
            print(f"round {t:>2}: roster {protocol.roster}, live share "
                  f"{protocol.allocation[protocol.roster].sum():.6f}")
    rosters = {tuple(sorted(protocol.peers[w].roster)) for w in protocol.roster}
    print(f"post-heal rosters (all agree): {rosters}\n")


def soak_demo() -> None:
    print("=== randomized soak with invariant checking ===")
    schedule = FaultSchedule.random(
        NUM_WORKERS, 200, seed=17, topology=Topology.ring(NUM_WORKERS)
    )
    process = RandomAffineProcess(
        speeds=np.linspace(1.0, 3.0, NUM_WORKERS), seed=17
    )

    def factory():
        return FullyDistributedDolbie(
            NUM_WORKERS, link=LINK(), topology=Topology.ring(NUM_WORKERS)
        )

    first = run_soak(factory, schedule, process, 200)
    second = run_soak(factory, schedule, process, 200)
    print(first.summary())
    identical = np.array_equal(first.allocations, second.allocations)
    print(f"same seed, bit-identical allocations across runs: {identical}")


if __name__ == "__main__":
    scripted_demo()
    partition_demo()
    soak_demo()

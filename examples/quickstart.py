"""Quickstart: balance an unknown, time-varying workload with DOLBIE.

Four heterogeneous workers process a shared workload. Their latency
functions fluctuate and are revealed only *after* each round's
assignment, yet DOLBIE drives the worst-case latency down toward the
clairvoyant optimum — using nothing but the observed costs, no gradients
and no projections.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Dolbie, DynamicOptimum, EqualAssignment, run_online
from repro.costs import RandomAffineProcess

NUM_WORKERS = 4
HORIZON = 80


def main() -> None:
    # Workers 1-4 differ 8x in base speed and fluctuate round to round.
    process = RandomAffineProcess(
        speeds=[1.0, 2.0, 4.0, 8.0], sigma=0.1, comm_scale=0.02, seed=42
    )

    dolbie = Dolbie(NUM_WORKERS)  # step size auto-derived from Eq. (7)
    result = run_online(dolbie, process, HORIZON)

    equal = run_online(EqualAssignment(NUM_WORKERS), process, HORIZON)
    oracle = run_online(DynamicOptimum(NUM_WORKERS), process, HORIZON)

    print(f"{'round':>5}  {'EQU':>8}  {'DOLBIE':>8}  {'OPT':>8}   allocation (DOLBIE)")
    for t in range(0, HORIZON, 8):
        alloc = ", ".join(f"{v:.3f}" for v in result.allocations[t])
        print(
            f"{t + 1:>5}  {equal.global_costs[t]:>8.4f}  "
            f"{result.global_costs[t]:>8.4f}  {oracle.global_costs[t]:>8.4f}   [{alloc}]"
        )

    print(
        f"\naccumulated cost:  EQU {equal.total_cost:.3f}  "
        f"DOLBIE {result.total_cost:.3f}  OPT {oracle.total_cost:.3f}"
    )
    print(
        f"DOLBIE recovers {100 * (equal.total_cost - result.total_cost) / (equal.total_cost - oracle.total_cost):.1f}% "
        "of the oracle's advantage over equal assignment."
    )


if __name__ == "__main__":
    main()

"""Property-based protocol equivalence (hypothesis over configurations).

For any worker count, seed, initial step size and architecture, the
message-passing protocols must produce the same trajectory as the
centralized reference, and the §IV-C message-count formulas must hold
exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dolbie import Dolbie
from repro.core.loop import run_online
from repro.costs.timevarying import RandomAffineProcess
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie


@st.composite
def configurations(draw):
    n = draw(st.integers(2, 10))
    seed = draw(st.integers(0, 2**16))
    # The verbatim protocols require alpha_1 within the paper's
    # initialization rule (hypothesis finds the freeze/infeasibility trap
    # otherwise — that behaviour is covered by dedicated unit tests).
    safe_cap = (1.0 / n) / (n - 2 + 1.0 / n)
    alpha_1 = draw(st.floats(0.01, 1.0)) * safe_cap
    horizon = draw(st.integers(3, 15))
    speeds = [1.0 + draw(st.floats(0.0, 20.0)) for _ in range(n)]
    return n, seed, alpha_1, horizon, speeds


@given(configurations(), st.booleans())
@settings(max_examples=30, deadline=None)
def test_master_worker_equivalence(config, embedded):
    n, seed, alpha_1, horizon, speeds = config
    process = RandomAffineProcess(speeds, sigma=0.2, comm_scale=0.05, seed=seed)
    reference = run_online(
        Dolbie(n, alpha_1=alpha_1, exact_feasibility_guard=False), process, horizon
    )
    protocol = MasterWorkerDolbie(n, alpha_1=alpha_1, embedded_master=embedded)
    result = protocol.run(process, horizon)
    assert np.allclose(reference.allocations, result.allocations, atol=1e-11)
    expected = 3 * n if not embedded else 3 * (n - 1)
    assert protocol.metrics.messages_total <= horizon * expected
    if not embedded:
        assert protocol.metrics.messages_total == horizon * expected


@given(configurations())
@settings(max_examples=30, deadline=None)
def test_fully_distributed_equivalence(config):
    n, seed, alpha_1, horizon, speeds = config
    process = RandomAffineProcess(speeds, sigma=0.2, comm_scale=0.05, seed=seed)
    reference = run_online(
        Dolbie(n, alpha_1=alpha_1, exact_feasibility_guard=False), process, horizon
    )
    protocol = FullyDistributedDolbie(n, alpha_1=alpha_1)
    result = protocol.run(process, horizon)
    assert np.allclose(reference.allocations, result.allocations, atol=1e-11)
    assert protocol.metrics.messages_total == horizon * (n * n - 1)

"""Property-based tests for simplex projection (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.simplex.projection import project_simplex_michelot, project_simplex_sort
from repro.simplex.sampling import is_feasible

finite_vectors = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=40),
    elements=st.floats(min_value=-100, max_value=100, allow_nan=False),
)


@given(finite_vectors)
@settings(max_examples=200, deadline=None)
def test_projection_lands_on_simplex(v):
    p = project_simplex_sort(v)
    assert is_feasible(p, atol=1e-8)


@given(finite_vectors)
@settings(max_examples=200, deadline=None)
def test_sort_and_michelot_agree(v):
    assert np.allclose(
        project_simplex_sort(v), project_simplex_michelot(v), atol=1e-9
    )


@given(finite_vectors)
@settings(max_examples=100, deadline=None)
def test_projection_is_idempotent(v):
    p = project_simplex_sort(v)
    assert np.allclose(project_simplex_sort(p), p, atol=1e-9)


@given(finite_vectors, finite_vectors)
@settings(max_examples=100, deadline=None)
def test_projection_is_nonexpansive(u, v):
    """||P(u) - P(v)|| <= ||u - v|| for projections onto convex sets."""
    if u.shape != v.shape:
        n = min(u.shape[0], v.shape[0])
        u, v = u[:n], v[:n]
    pu, pv = project_simplex_sort(u), project_simplex_sort(v)
    assert np.linalg.norm(pu - pv) <= np.linalg.norm(u - v) + 1e-9


@given(finite_vectors)
@settings(max_examples=100, deadline=None)
def test_projection_preserves_coordinate_order(v):
    """Projection subtracts a common threshold: ordering is preserved."""
    p = project_simplex_sort(v)
    order = np.argsort(v, kind="stable")
    sorted_p = p[order]
    assert (np.diff(sorted_p) >= -1e-12).all()

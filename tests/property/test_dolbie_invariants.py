"""Property-based tests for DOLBIE's core invariants (hypothesis).

These check the paper's structural guarantees on *arbitrary* increasing
cost environments, not just the affine ones of §VI:

* feasibility by design (constraints 2-3 hold every round, no projection),
* Lemma 1-ii (x' dominates x),
* sum(G) = 0 (the assistance vector conserves total workload),
* the step-size schedule is non-increasing (Eq. 7),
* the straggler never gains workload.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dolbie import Dolbie
from repro.core.interface import make_feedback
from repro.core.quantities import acceptable_workloads, assistance_vector
from repro.costs.affine import AffineLatencyCost
from repro.costs.nonlinear import ExponentialCost, LogCost, PowerLawCost
from repro.minmax.solver import evaluate_allocation
from repro.simplex.sampling import is_feasible


@st.composite
def cost_vectors(draw, min_workers=2, max_workers=8):
    """A vector of heterogeneous increasing costs of mixed families."""
    n = draw(st.integers(min_workers, max_workers))
    costs = []
    for _ in range(n):
        family = draw(st.sampled_from(["affine", "power", "exp", "log"]))
        a = draw(st.floats(0.05, 10.0))
        c = draw(st.floats(0.0, 1.0))
        if family == "affine":
            costs.append(AffineLatencyCost(a, c))
        elif family == "power":
            p = draw(st.floats(0.3, 3.0))
            costs.append(PowerLawCost(a, p, c))
        elif family == "exp":
            k = draw(st.floats(0.2, 4.0))
            costs.append(ExponentialCost(a, k, c))
        else:
            k = draw(st.floats(0.2, 4.0))
            costs.append(LogCost(a, k, c))
    return costs


@st.composite
def environments(draw, rounds=6):
    """A fixed worker count with fresh random costs each round."""
    n = draw(st.integers(2, 8))
    per_round = []
    for _ in range(rounds):
        costs = draw(cost_vectors(min_workers=n, max_workers=n))
        per_round.append(costs)
    return n, per_round


@given(environments(), st.floats(0.001, 1.0))
@settings(max_examples=60, deadline=None)
def test_feasibility_by_design_on_arbitrary_costs(env, alpha_1):
    n, per_round = env
    balancer = Dolbie(n, alpha_1=alpha_1)
    for t, costs in enumerate(per_round, start=1):
        feedback = make_feedback(t, balancer.decide(), costs)
        balancer.update(feedback)
        assert is_feasible(balancer.allocation, atol=1e-7)


@given(environments())
@settings(max_examples=60, deadline=None)
def test_alpha_schedule_non_increasing(env):
    n, per_round = env
    balancer = Dolbie(n)
    for t, costs in enumerate(per_round, start=1):
        balancer.update(make_feedback(t, balancer.decide(), costs))
    history = balancer.alpha_history
    assert all(b <= a + 1e-15 for a, b in zip(history, history[1:]))


@given(environments())
@settings(max_examples=60, deadline=None)
def test_straggler_never_gains(env):
    n, per_round = env
    balancer = Dolbie(n, alpha_1=0.5)
    for t, costs in enumerate(per_round, start=1):
        before = balancer.allocation
        feedback = make_feedback(t, before, costs)
        balancer.update(feedback)
        after = balancer.allocation
        assert after[feedback.straggler] <= before[feedback.straggler] + 1e-12


@given(cost_vectors())
@settings(max_examples=100, deadline=None)
def test_x_prime_dominates_allocation(costs):
    """Lemma 1-ii on arbitrary increasing costs."""
    n = len(costs)
    x = np.full(n, 1.0 / n)
    local, global_cost, straggler = evaluate_allocation(costs, x)
    x_prime = acceptable_workloads(costs, x, global_cost, straggler)
    assert (x_prime >= x - 1e-9).all()
    assert x_prime[straggler] == x[straggler]
    assert (x_prime <= 1.0 + 1e-12).all()


@given(cost_vectors())
@settings(max_examples=100, deadline=None)
def test_x_prime_respects_level_set(costs):
    """Taking x' exactly would not exceed the observed global cost."""
    n = len(costs)
    x = np.full(n, 1.0 / n)
    _, global_cost, straggler = evaluate_allocation(costs, x)
    x_prime = acceptable_workloads(costs, x, global_cost, straggler)
    for i, cost in enumerate(costs):
        if i == straggler:
            continue
        # Either x' is at the current allocation (cannot help) or its
        # cost stays within the level.
        assert (
            cost(min(x_prime[i], cost.x_max)) <= global_cost + 1e-6
            or x_prime[i] <= x[i] + 1e-9
        )


@given(cost_vectors())
@settings(max_examples=100, deadline=None)
def test_assistance_vector_conserves_workload(costs):
    n = len(costs)
    rng = np.random.default_rng(0)
    x = rng.dirichlet(np.ones(n))
    local, global_cost, straggler = evaluate_allocation(costs, x)
    x_prime = acceptable_workloads(costs, x, global_cost, straggler)
    g = assistance_vector(x, x_prime, straggler)
    assert abs(g.sum()) < 1e-12
    mask = np.arange(n) != straggler
    assert (g[mask] <= 1e-12).all()
    assert g[straggler] >= -1e-12

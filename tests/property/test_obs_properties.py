"""Property-based contracts of the observability layer.

Four laws the docs promise and the rest of the system leans on:

1. Histogram merge is associative (sharded runs combine in any order).
2. Counters are monotone under any sequence of valid increments.
3. A registry's label sets survive the JSONL round-trip exactly.
4. Every trace record survives the dict/JSON schema round-trip exactly.
"""

import json
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.records import (
    AssistanceRecord,
    DecisionRecord,
    FaultRecord,
    HeaderRecord,
    MembershipRecord,
    PhaseRecord,
    StragglerRecord,
    record_from_dict,
    record_to_dict,
)

finite = st.floats(allow_nan=False, allow_infinity=False, width=32)
positive = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def bucket_bounds(draw):
    bounds = draw(
        st.lists(
            st.floats(
                min_value=1e-6,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    return tuple(sorted(bounds))


@st.composite
def histograms(draw, buckets):
    hist = Histogram("h", buckets=buckets)
    for value in draw(st.lists(finite, max_size=30)):
        hist.observe(value)
    return hist


@given(data=st.data(), bounds=bucket_bounds())
@settings(max_examples=50, deadline=None)
def test_histogram_merge_associative(data, bounds):
    a = data.draw(histograms(bounds))
    b = data.draw(histograms(bounds))
    c = data.draw(histograms(bounds))
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.bucket_counts == right.bucket_counts
    assert left.count == right.count
    assert math.isclose(left.sum, right.sum, rel_tol=1e-12, abs_tol=1e-12)


@given(st.lists(positive, max_size=50))
@settings(max_examples=50, deadline=None)
def test_counter_monotone_and_exact(increments):
    registry = MetricsRegistry()
    counter = registry.counter("events")
    previous = counter.value
    for amount in increments:
        counter.inc(amount)
        assert counter.value >= previous
        previous = counter.value
    assert math.isclose(
        counter.value, math.fsum(increments), rel_tol=1e-9, abs_tol=1e-9
    )


label_values = st.one_of(
    st.integers(-1000, 1000),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        max_size=8,
    ),
    st.booleans(),
)
label_sets = st.dictionaries(
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll",)),
        min_size=1,
        max_size=6,
    ),
    label_values,
    max_size=3,
)


@given(
    st.lists(
        st.tuples(label_sets, st.floats(0.0, 100.0)),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=50, deadline=None)
def test_label_sets_round_trip_through_jsonl(entries):
    registry = MetricsRegistry()
    for labels, amount in entries:
        registry.counter("m", **labels).inc(amount)
    # Through actual JSON text, not just plain dicts — what save_metrics
    # writes is what from_records must rebuild.
    payload = json.loads(json.dumps(registry.to_records()))
    clone = MetricsRegistry.from_records(payload)
    assert clone.to_records() == registry.to_records()
    for labels, _ in entries:
        assert clone.get("m", **labels) is not None


def _records(draw):
    n = draw(st.integers(1, 6))
    vec = st.tuples(*[finite] * n)
    ivec = st.lists(st.integers(0, 50), max_size=n, unique=True).map(tuple)
    round_index = draw(st.integers(1, 10_000))
    kind = draw(st.sampled_from(
        ["header", "decision", "straggler", "assistance", "membership",
         "fault", "phase"]
    ))
    if kind == "header":
        return HeaderRecord(
            schema=1,
            algorithm=draw(st.text(max_size=10)),
            num_workers=n,
            horizon=round_index,
            context=tuple(
                sorted(draw(st.dictionaries(
                    st.text(
                        alphabet=st.characters(
                            whitelist_categories=("Ll",)
                        ),
                        min_size=1,
                        max_size=5,
                    ),
                    st.one_of(st.integers(), st.booleans(), st.text(max_size=5)),
                    max_size=3,
                )).items())
            ),
        )
    if kind == "decision":
        return DecisionRecord(
            round=round_index,
            allocation=draw(vec),
            local_costs=draw(vec),
            global_cost=draw(finite),
            straggler=draw(st.integers(0, n - 1)),
            next_allocation=draw(vec),
        )
    if kind == "straggler":
        return StragglerRecord(
            round=round_index,
            worker=draw(st.integers(0, n - 1)),
            cost=draw(finite),
            waiting_total=draw(finite),
        )
    if kind == "assistance":
        return AssistanceRecord(
            round=round_index,
            straggler=draw(st.integers(0, n - 1)),
            alpha=draw(finite),
            shed_total=draw(finite),
            x_prime=draw(vec),
            assistance=draw(vec),
        )
    if kind == "membership":
        return MembershipRecord(
            round=round_index,
            action=draw(st.sampled_from(["crash", "rejoin", "roster_change"])),
            workers=draw(ivec),
            roster=draw(ivec),
        )
    if kind == "fault":
        return FaultRecord(
            round=round_index,
            fault=draw(st.sampled_from(["partition", "delay", "frame_loss"])),
            workers=draw(ivec),
            severity=draw(finite),
            groups=tuple(
                draw(st.lists(ivec, max_size=3))
            ),
        )
    return PhaseRecord(
        round=round_index,
        phase=draw(st.sampled_from(["round", "gather", "scatter"])),
        start=draw(finite),
        end=draw(finite),
        events=draw(st.integers(0, 10**6)),
    )


trace_records = st.composite(lambda draw: _records(draw))()


@given(trace_records)
@settings(max_examples=100, deadline=None)
def test_trace_record_schema_round_trip(record):
    payload = record_to_dict(record)
    # Through JSON text: tuples become lists and must come back as tuples.
    decoded = json.loads(json.dumps(payload))
    assert record_from_dict(decoded) == record

"""Property tests: compiled tree-phase kernels are bitwise-exact.

The ``compiled`` backend ships every kernel twice — an njit-compatible
loop (compiled when numba is importable, plain python otherwise) and a
vectorized numpy fallback — and the FD tree round dispatches to
whichever is active. The contract that makes the backend safe to select
is that **both flavors equal the reference semantics bit for bit, in
either float dtype, on any roster** (including sparse "degraded" id
sets left behind by crashes). These properties pin that contract:

- the loop and numpy flavors of each range-splittable kernel agree with
  each other and with the :class:`~repro.net.aggtree.AggregationTree`
  reference reductions;
- running a kernel over split ``lo``/``hi`` ranges equals the full-range
  call (the deterministic shard-ordered merge of the thread pool);
- the decision sums replay the documented association exactly — the
  numpy fallback's column-wise ``np.where`` chain is operand-for-operand
  the sequential per-shard chain, so even float32 matches bitwise.

On a numba-less interpreter the loop flavor runs as plain python — the
properties still validate the njit logic, because ``@numba.njit`` does
not change the IEEE-754 semantics of these loops (no fastmath, no
reassociation).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import kernels
from repro.net.aggtree import AggregationTree

DTYPES = [np.float64, np.float32]


@st.composite
def kernel_cases(draw, max_workers=48):
    """A roster (possibly sparse ids), tree shape, and two value arrays."""
    n = draw(st.integers(min_value=2, max_value=max_workers))
    universe = draw(st.integers(min_value=n, max_value=2 * max_workers))
    ids = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=universe - 1),
                min_size=n,
                max_size=n,
                unique=True,
            )
        )
    )
    shard_size = draw(st.integers(min_value=2, max_value=max(2, n)))
    branching = draw(st.integers(min_value=2, max_value=6))
    finite = st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    )
    values = np.asarray(
        draw(st.lists(finite, min_size=universe, max_size=universe))
    )
    alphas = np.asarray(
        draw(st.lists(finite, min_size=universe, max_size=universe))
    )
    straggler = draw(st.sampled_from(ids))
    return ids, shard_size, branching, values, alphas, straggler


def _layout(tree: AggregationTree):
    """Participant-ordered segment layout, as the protocol builds it."""
    parts = np.asarray(tree.participants, dtype=np.int64)
    sizes = np.array([len(s) for s in tree.shards], dtype=np.int64)
    offsets = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)
    ends = (offsets + sizes).astype(np.int64)
    return parts, offsets, ends


def _split_points(m: int) -> list[tuple[int, int]]:
    """Two uneven ranges covering [0, m) — the thread-pool split shape."""
    mid = max(1, m // 3)
    return [(0, mid), (mid, m)] if m > 1 else [(0, m)]


@settings(max_examples=100, deadline=None)
@given(case=kernel_cases(), dtype=st.sampled_from(DTYPES))
def test_shard_consensus_matches_reference_and_flavors_agree(case, dtype):
    ids, shard_size, branching, values, alphas, straggler = case
    tree = AggregationTree.build(ids, shard_size, branching)
    parts, offsets, ends = _layout(tree)
    ordered_local = values.astype(dtype)[parts]
    ordered_alpha = alphas.astype(dtype)[parts]
    m = tree.num_shards

    def run(impl, ranges):
        out = (
            np.empty(m, dtype=dtype),
            np.empty(m, dtype=np.int64),
            np.empty(m, dtype=dtype),
        )
        for lo, hi in ranges:
            impl(ordered_local, ordered_alpha, parts, offsets, ends, *out, lo, hi)
        return out

    loop = run(kernels._shard_consensus_loop, [(0, m)])
    vec = run(kernels._shard_consensus_numpy, [(0, m)])
    split = run(kernels._shard_consensus_numpy, _split_points(m))
    for a, b in zip(loop, vec):
        assert np.array_equal(a, b)
    for a, b in zip(vec, split):
        assert np.array_equal(a, b)
    # Per-shard reference: sequential python over each shard.
    for s, shard in enumerate(tree.shards):
        seg = ordered_local[offsets[s] : ends[s]]
        k = int(np.argmax(seg))
        assert loop[0][s] == seg.max()
        assert loop[1][s] == shard[k]
        assert loop[2][s] == ordered_alpha[offsets[s] : ends[s]].min()


@settings(max_examples=100, deadline=None)
@given(case=kernel_cases(), dtype=st.sampled_from(DTYPES))
def test_phase_b_consensus_root_equals_flat_reductions(case, dtype):
    ids, shard_size, branching, values, alphas, _ = case
    tree = AggregationTree.build(ids, shard_size, branching)
    parts, offsets, ends = _layout(tree)
    values = values.astype(dtype)
    alphas = alphas.astype(dtype)
    acc_max, acc_arg, acc_alpha = kernels.phase_b_consensus(
        values[parts], alphas[parts], parts, offsets, ends,
        tree.up_order(), tree.parent.astype(np.int64),
    )
    assert float(acc_max[0]) == tree.reduce_max(values)
    assert int(acc_arg[0]) == tree.reduce_argmax(values)
    assert float(acc_alpha[0]) == tree.reduce_min(alphas)


@settings(max_examples=100, deadline=None)
@given(case=kernel_cases(), dtype=st.sampled_from(DTYPES))
def test_decision_sums_bitwise_equal_documented_order(case, dtype):
    ids, shard_size, branching, values, _, straggler = case
    tree = AggregationTree.build(ids, shard_size, branching)
    parts, offsets, ends = _layout(tree)
    by_worker = values.astype(dtype)
    ordered = by_worker[parts]
    exclude_pos = int(np.searchsorted(parts, straggler))
    m = tree.num_shards

    reference = tree.decision_sums(by_worker, exclude=straggler)
    full = kernels.phase_f_decision_sums(
        ordered, offsets, ends, exclude_pos,
        tree.up_order(), tree.parent.astype(np.int64),
    )
    assert full.dtype == np.dtype(dtype)
    assert np.array_equal(full, reference.astype(dtype))

    # Loop and numpy shard flavors agree, including over split ranges.
    out_loop = np.empty(m, dtype=dtype)
    out_vec = np.empty(m, dtype=dtype)
    kernels._shard_sums_loop(ordered, offsets, ends, exclude_pos, out_loop, 0, m)
    for lo, hi in _split_points(m):
        kernels._shard_sums_numpy(ordered, offsets, ends, exclude_pos, out_vec, lo, hi)
    assert np.array_equal(out_loop, out_vec)


@settings(max_examples=60, deadline=None)
@given(case=kernel_cases(), dtype=st.sampled_from(DTYPES))
def test_decision_sums_without_exclusion(case, dtype):
    ids, shard_size, branching, values, _, _ = case
    tree = AggregationTree.build(ids, shard_size, branching)
    parts, offsets, ends = _layout(tree)
    by_worker = values.astype(dtype)
    full = kernels.phase_f_decision_sums(
        by_worker[parts], offsets, ends, -1,
        tree.up_order(), tree.parent.astype(np.int64),
    )
    assert np.array_equal(full, tree.decision_sums(by_worker).astype(dtype))


@settings(max_examples=60, deadline=None)
@given(case=kernel_cases(), dtype=st.sampled_from(DTYPES))
def test_gather_and_scatter_max_are_exact(case, dtype):
    ids, *_ = case
    rng = np.random.default_rng(len(ids))
    values = rng.normal(size=max(ids) + 1).astype(dtype)
    idx = np.asarray(ids, dtype=np.int64)
    assert np.array_equal(kernels.gather(values, idx), values[idx])
    # Split-range gather fills disjoint slices of one output buffer.
    out = np.empty(idx.size, dtype=dtype)
    mid = idx.size // 2
    kernels.gather(values, idx, out=out, lo=0, hi=mid)
    kernels.gather(values, idx, out=out, lo=mid, hi=idx.size)
    assert np.array_equal(out, values[idx])

    targets = rng.integers(0, 4, size=idx.size)
    acc_kernel = np.full(4, -np.inf)
    acc_ref = np.full(4, -np.inf)
    kernels.scatter_max(acc_kernel, targets, values[idx].astype(float))
    np.maximum.at(acc_ref, targets, values[idx].astype(float))
    assert np.array_equal(acc_kernel, acc_ref)


@settings(max_examples=60, deadline=None)
@given(case=kernel_cases(), dtype=st.sampled_from(DTYPES))
def test_phase_e_pack_masks_exactly_the_straggler(case, dtype):
    ids, shard_size, branching, values, _, straggler = case
    tree = AggregationTree.build(ids, shard_size, branching)
    x = values.astype(dtype)
    member_ids = tree.member_ids.astype(np.int64)
    src, payload, drop = kernels.phase_e_pack(x, member_ids, straggler)
    if straggler in set(member_ids.tolist()):
        assert drop == int(np.searchsorted(member_ids, straggler))
        assert straggler not in set(src.tolist())
        assert src.size == member_ids.size - 1
    else:
        assert drop == -1
        assert np.array_equal(src, member_ids)
    assert np.array_equal(payload, x[src])


@given(
    total=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
    dtype=st.sampled_from(DTYPES),
)
@settings(max_examples=200, deadline=None)
def test_phase_g_close_matches_scalar_snap(total, dtype):
    t = np.dtype(dtype).type(total)
    raw, snapped = kernels.phase_g_close(t)
    expected_raw = np.dtype(dtype).type(1.0) - t
    assert raw == float(expected_raw)
    assert snapped == (float(expected_raw) if expected_raw >= 1e-12 else 0.0)


def test_phase_c_fill_and_d_sendtimes_shapes():
    cols = kernels.phase_c_fill(2.5, 7, 0.125, 3, np.dtype(np.float32))
    assert [c.shape for c in cols] == [(3,), (3,), (3,)]
    assert cols[0].dtype == np.float32 and cols[1].dtype == np.float64
    assert cols[1][0] == 7.0
    down = np.array([1.0, 5.0, 3.0])
    shard_of = np.array([0, 0, 2, 1], dtype=np.int64)
    assert np.array_equal(
        kernels.phase_d_sendtimes(down, shard_of), down[shard_of]
    )

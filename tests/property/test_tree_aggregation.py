"""Property tests: hierarchical aggregation equals flat reduction.

The protocol's consensus quantities (max cost, min alpha, lowest-index
argmax straggler) are semilattice reductions — associative, commutative,
idempotent — so regrouping them over *any* shard layout and branching
factor must equal the flat reduction **bitwise, in any dtype**. These
properties are what let the tree fast path assert (not approximate) its
agreement with the flat protocol.

The decision-phase SUM is the one non-associative reduction: the tree's
fixed hierarchical order is a different summation order than flat
accumulation, so float64/float32 results agree only to rounding. The
property pins the documented tolerance: the divergence of two summation
orders of ``n`` terms is classically bounded by ``~n * eps * sum|v|``;
we assert within ``4 n eps sum|v|`` of the sorted-order reference in the
value dtype, which holds with large slack for any association order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.aggtree import AggregationTree


@st.composite
def tree_cases(draw, max_workers=64):
    """A random roster (possibly sparse ids), shard size and branching."""
    n = draw(st.integers(min_value=2, max_value=max_workers))
    universe = draw(st.integers(min_value=n, max_value=2 * max_workers))
    ids = draw(
        st.lists(
            st.integers(min_value=0, max_value=universe - 1),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    shard_size = draw(st.integers(min_value=2, max_value=max(2, n)))
    branching = draw(st.integers(min_value=2, max_value=8))
    values = draw(
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=universe,
            max_size=universe,
        )
    )
    return sorted(ids), shard_size, branching, np.asarray(values)


@settings(max_examples=120, deadline=None)
@given(case=tree_cases(), dtype=st.sampled_from([np.float64, np.float32]))
def test_semilattice_reductions_are_bitwise_exact(case, dtype):
    ids, shard_size, branching, values = case
    values = values.astype(dtype)
    tree = AggregationTree.build(ids, shard_size=shard_size, branching=branching)
    flat = values[np.asarray(ids)]
    assert tree.reduce_max(values) == flat.max()
    assert tree.reduce_min(values) == flat.min()
    # lowest-index argmax: flat reference picks the first maximum among
    # the sorted participant ids
    expected = ids[int(np.argmax(flat))]
    assert tree.reduce_argmax(values) == expected


@settings(max_examples=120, deadline=None)
@given(case=tree_cases())
def test_tree_is_pure_function_of_roster(case):
    ids, shard_size, branching, _ = case
    a = AggregationTree.build(ids, shard_size=shard_size, branching=branching)
    b = AggregationTree.build(
        list(reversed(ids)), shard_size=shard_size, branching=branching
    )
    assert a.shards == b.shards
    assert np.array_equal(a.parent, b.parent)
    assert a.validate(ids) == []


@settings(max_examples=120, deadline=None)
@given(
    case=tree_cases(),
    dtype=st.sampled_from([np.float64, np.float32]),
    data=st.data(),
)
def test_decision_sum_within_documented_tolerance(case, dtype, data):
    ids, shard_size, branching, values = case
    values = values.astype(dtype)
    tree = AggregationTree.build(ids, shard_size=shard_size, branching=branching)
    exclude = data.draw(st.sampled_from(ids))
    total = tree.tree_sum(values, exclude=exclude)
    kept = np.asarray([w for w in ids if w != exclude], dtype=int)
    flat = values[kept]
    # Reference in float64 regardless of dtype; tolerance is the classic
    # n*eps*sum|v| bound for reassociated summation, with a 4x margin.
    reference = float(np.sort(flat.astype(np.float64)).sum())
    eps = float(np.finfo(dtype).eps)
    bound = 4.0 * max(flat.size, 1) * eps * float(np.abs(flat).sum() + 1.0)
    assert abs(total - reference) <= bound


@settings(max_examples=60, deadline=None)
@given(case=tree_cases())
def test_float64_decision_sum_matches_shard_order_reference(case):
    """The hierarchical order is *deterministic*: recomputing it by a
    literal walk of the documented order reproduces it bit for bit."""
    ids, shard_size, branching, values = case
    tree = AggregationTree.build(ids, shard_size=shard_size, branching=branching)
    sums = tree.decision_sums(values)
    # literal re-walk: shard partials ascending, then levels bottom-up
    acc = []
    for shard in tree.shards:
        total = np.float64(0.0)
        for w in shard:
            total = total + values[w]
        acc.append(total)
    for level in tree.levels[:0:-1]:
        for i in level.tolist():
            p = int(tree.parent[i])
            acc[p] = acc[p] + acc[i]
    assert float(sums[0]) == float(acc[0])

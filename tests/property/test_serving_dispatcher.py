"""Property-based tests for the serving dispatcher and routing policies.

* JSQ never routes to a strictly dominated queue (and tie-breaks low).
* P2C always picks the less-loaded of its two probes.
* The golden-ratio deterministic router realizes the weight vector with
  low discrepancy — far tighter than i.i.d. sampling would.
* The vectorized per-worker Lindley recursion agrees with a scalar
  per-request reference simulation to float tolerance.
* Bookkeeping conservation: every request is dispatched exactly once and
  ends up completed or failed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.arrivals import PoissonArrivals, make_arrivals
from repro.serving.dispatcher import ServingSimulator
from repro.serving.policies import (
    GOLDEN,
    JoinShortestQueue,
    PowerOfTwoChoices,
    make_policy,
)
from repro.utils.rng import spawn_rng


def _fleet(n):
    return np.linspace(1.0, 3.0, n)


class TestJsqInvariant:
    @given(
        backlogs=st.lists(
            st.floats(0.0, 1e6, allow_nan=False), min_size=2, max_size=32
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_never_picks_a_strictly_dominated_queue(self, backlogs):
        backlogs = np.asarray(backlogs)
        policy = JoinShortestQueue(len(backlogs))
        choice = policy.select(backlogs)
        assert backlogs[choice] == backlogs.min()
        # Tie-break: lowest index among the minima.
        assert choice == int(np.flatnonzero(backlogs == backlogs.min())[0])


class TestP2cInvariant:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 16),
        rounds=st.integers(1, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_picks_less_loaded_of_its_two_probes(self, seed, n, rounds):
        policy = PowerOfTwoChoices(n, seed=seed)
        # Shadow the policy's substream to predict its probes: same seed
        # and substream name -> same integer draws.
        shadow = spawn_rng(seed, "serving.policy.p2c")
        rng = np.random.default_rng(seed ^ 0xABCDEF)
        for _ in range(rounds):
            backlogs = rng.exponential(1.0, size=n)
            i, j = (int(v) for v in shadow.integers(0, n, size=2))
            choice = policy.select(backlogs)
            assert choice in (i, j)
            if backlogs[i] != backlogs[j]:
                expected = i if backlogs[i] < backlogs[j] else j
            else:
                expected = min(i, j)
            assert choice == expected


class TestGoldenRatioRouting:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 12),
        m=st.integers(1000, 20000),
    )
    @settings(max_examples=30, deadline=None)
    def test_discrepancy_beats_iid_sampling(self, seed, n, m):
        # The dispatcher's exact routing formula, standalone.
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.2, 1.0, size=n)
        weights /= weights.sum()
        cum = np.cumsum(weights)
        cum[-1] = 1.0
        u = (np.arange(1, m + 1) * GOLDEN) % 1.0
        assign = np.searchsorted(cum, u, side="right")
        counts = np.bincount(assign, minlength=n)
        # Three-distance/Kronecker discrepancy for an interval partition
        # is O(log m); 12 ln(m) + 12 is a generous envelope, and for
        # these m it sits well below the i.i.d. 3-sigma ~ 3 sqrt(m w).
        bound = 12.0 * np.log(m) + 12.0
        deviation = np.abs(counts - weights * m)
        assert deviation.max() <= bound

    def test_routing_depends_only_on_global_index(self):
        # Splitting a batch anywhere yields the same assignments, the
        # chunk/checkpoint-invariance of the router.
        n, m = 5, 1000
        weights = _fleet(n) / _fleet(n).sum()
        cum = np.cumsum(weights)
        cum[-1] = 1.0

        def route(start, count):
            u = (np.arange(start + 1, start + count + 1) * GOLDEN) % 1.0
            return np.searchsorted(cum, u, side="right")

        one_shot = route(0, m)
        split = np.concatenate([route(0, 300), route(300, 700)])
        np.testing.assert_array_equal(one_shot, split)


class TestLindleyRecursion:
    @given(
        seed=st.integers(0, 2**31 - 1),
        n=st.integers(2, 8),
        total=st.integers(50, 2000),
    )
    @settings(max_examples=25, deadline=None)
    def test_vectorized_weighted_path_matches_scalar_reference(
        self, seed, n, total
    ):
        mu = _fleet(n)
        rate = 0.7 * mu.sum()
        sim = ServingSimulator(
            PoissonArrivals(rate, seed=seed),
            make_policy("wrr", n, mu, seed=seed),
            mu,
            seed=seed,
            quantile_mode="exact",
        )
        weights = np.maximum(np.asarray(sim.policy.weights, dtype=float), 0.0)
        weights = weights / weights.sum()
        sim.run(total)
        got = np.sort(np.concatenate(sim.store._chunks))

        # Scalar reference: same arrivals, same routing formula, same
        # service stream, one request at a time.
        times = PoissonArrivals(rate, seed=seed).next_batch(total)
        service = spawn_rng(seed, "serving.service").exponential(
            1.0, size=total
        )
        cum = np.cumsum(weights)
        cum[-1] = 1.0
        u = (np.arange(1, total + 1) * GOLDEN) % 1.0
        assign = np.searchsorted(cum, u, side="right")
        dep = np.zeros(n)
        latencies = np.empty(total)
        for k in range(total):
            w = assign[k]
            d = max(times[k], dep[w]) + service[k] / mu[w]
            dep[w] = d
            latencies[k] = d - times[k]
        expected = np.sort(latencies)

        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)
        np.testing.assert_array_equal(
            sim.dispatched, np.bincount(assign, minlength=n)
        )


class TestConservation:
    @given(
        seed=st.integers(0, 2**31 - 1),
        policy=st.sampled_from(["wrr", "dolbie", "jsq", "p2c"]),
        process=st.sampled_from(["poisson", "bursty", "diurnal"]),
        total=st.integers(10, 1500),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_request_dispatched_once_and_accounted(
        self, seed, policy, process, total
    ):
        n = 4
        mu = _fleet(n)
        rate = 0.7 * mu.sum()
        sim = ServingSimulator(
            make_arrivals(process, rate, seed=seed),
            make_policy(policy, n, mu, seed=seed),
            mu,
            seed=seed,
            quantile_mode="exact",
        )
        summary = sim.run(total)
        assert summary.requests == total
        assert summary.completed + summary.failed == total
        assert summary.failed == 0  # no crashes scheduled
        assert int(sim.dispatched.sum()) == total
        assert summary.p50 <= summary.p99 <= summary.p999
        assert 0.0 <= summary.slo_attainment <= 1.0
        assert np.isfinite(summary.mean_latency)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_seeded_reruns_are_bit_identical(self, seed):
        n, total = 5, 2000
        mu = _fleet(n)
        rate = 0.75 * mu.sum()

        def run():
            sim = ServingSimulator(
                PoissonArrivals(rate, seed=seed),
                make_policy("dolbie", n, mu, seed=seed),
                mu,
                seed=seed,
                quantile_mode="exact",
            )
            sim.run(total)
            return sim

        a, b = run(), run()
        np.testing.assert_array_equal(
            np.concatenate(a.store._chunks), np.concatenate(b.store._chunks)
        )
        np.testing.assert_array_equal(a.dispatched, b.dispatched)
        assert a.summary() == b.summary()

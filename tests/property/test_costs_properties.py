"""Property-based tests for the cost-function substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.affine import AffineLatencyCost
from repro.costs.nonlinear import ExponentialCost, LogCost, PowerLawCost
from repro.mlsim.dataset import largest_remainder_split

import numpy as np


@st.composite
def increasing_costs(draw):
    family = draw(st.sampled_from(["affine", "power", "exp", "log"]))
    a = draw(st.floats(0.01, 50.0))
    c = draw(st.floats(0.0, 5.0))
    if family == "affine":
        return AffineLatencyCost(a, c)
    if family == "power":
        return PowerLawCost(a, draw(st.floats(0.2, 4.0)), c)
    if family == "exp":
        return ExponentialCost(a, draw(st.floats(0.1, 5.0)), c)
    return LogCost(a, draw(st.floats(0.1, 5.0)), c)


@given(increasing_costs())
@settings(max_examples=150, deadline=None)
def test_monotone_on_grid(cost):
    assert cost.is_increasing(samples=64)


@given(increasing_costs(), st.floats(0.0, 100.0))
@settings(max_examples=200, deadline=None)
def test_max_acceptable_is_within_level(cost, level):
    x = cost.max_acceptable(level)
    assert 0.0 <= x <= cost.x_max
    if x > 0.0:
        assert cost(x) <= level + 1e-6


@given(increasing_costs(), st.floats(0.0, 100.0))
@settings(max_examples=200, deadline=None)
def test_max_acceptable_is_maximal(cost, level):
    """Nothing strictly above x is still within the level (up to tol)."""
    x = cost.max_acceptable(level)
    if x < cost.x_max - 1e-6:
        assert cost(min(x + 1e-5, cost.x_max)) >= level - 1e-6


@given(increasing_costs(), st.floats(0.001, 1.0))
@settings(max_examples=150, deadline=None)
def test_inverse_roundtrip(cost, x):
    # Tolerance is relative in x: inverting f(x) = a*(x^p) + c with c >> a*x^p
    # goes through catastrophic cancellation in (level - c), so the recovered
    # point can be off by ~eps_machine * c / (a * p * x^(p-1)) in absolute terms.
    x = min(x, cost.x_max)
    level = cost(x)
    recovered = cost.max_acceptable(level)
    assert recovered >= x * (1.0 - 1e-2) - 1e-6


@given(
    st.lists(st.floats(0.0, 1.0), min_size=2, max_size=40).filter(
        lambda v: sum(v) > 1e-6
    ),
    st.integers(0, 5000),
)
@settings(max_examples=200, deadline=None)
def test_largest_remainder_always_exact(fractions, total):
    counts = largest_remainder_split(np.array(fractions), total)
    assert counts.sum() == total
    assert (counts >= 0).all()

"""Property tests for checkpoint exactness.

Two families of properties:

* **RNG/stream round-trips.** Capturing any consumer of randomness
  (plain generators, named substreams, latency models, fluctuation
  traces) at an arbitrary position and restoring it must reproduce the
  exact future draw sequence — no off-by-one, no re-seeding artifacts.
* **Snapshot byte-identity.** ``to_bytes -> from_bytes -> to_bytes`` is
  the identity on files, and the codec round-trips arbitrary nested
  payloads exactly — the properties the SHA-256 fingerprint and the
  bit-identical-resume guarantee both stand on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckpt.codec import from_jsonable, to_jsonable
from repro.ckpt.snapshot import Snapshot
from repro.ckpt.state import (
    capture_fluctuation_trace,
    capture_latency,
    capture_rng,
    restore_fluctuation_trace,
    restore_latency,
    restore_rng,
    rng_from_state,
)
from repro.mlsim.traces import FluctuationTrace
from repro.net.links import LogNormalLatency, UniformLatency
from repro.utils.rng import RngFactory, spawn_rng

seeds = st.integers(min_value=0, max_value=2**32 - 1)
burns = st.integers(min_value=0, max_value=500)


@settings(max_examples=100, deadline=None)
@given(seed=seeds, burn=burns)
def test_rng_capture_restore_roundtrip(seed, burn):
    generator = np.random.default_rng(seed)
    generator.standard_normal(burn)
    state = capture_rng(generator)
    expected = generator.standard_normal(16)
    # Restore into a differently-positioned generator of the same kind.
    other = np.random.default_rng(seed + 1)
    other.standard_normal(7)
    restore_rng(other, state)
    assert np.array_equal(other.standard_normal(16), expected)


@settings(max_examples=100, deadline=None)
@given(seed=seeds, burn=burns)
def test_rng_from_state_rebuilds_the_stream(seed, burn):
    generator = np.random.default_rng(seed)
    generator.integers(0, 100, size=burn)
    rebuilt = rng_from_state(capture_rng(generator))
    assert np.array_equal(
        rebuilt.integers(0, 100, size=16), generator.integers(0, 100, size=16)
    )


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1), burn=burns,
       name=st.sampled_from(["speeds", "rates", "latency", ""]))
def test_named_substream_roundtrip(seed, burn, name):
    stream = RngFactory(seed).make(name)
    stream.random(burn)
    state = capture_rng(stream)
    expected = stream.random(8)
    replay = spawn_rng(seed, name)
    restore_rng(replay, state)
    assert np.array_equal(replay.random(8), expected)


@settings(max_examples=50, deadline=None)
@given(seed=seeds, burn=st.integers(min_value=0, max_value=200))
def test_uniform_latency_roundtrip(seed, burn):
    model = UniformLatency(0.001, 0.01, np.random.default_rng(seed))
    model.sample_batch(burn)
    state = capture_latency(model)
    expected = model.sample_batch(8)
    fresh = UniformLatency(0.001, 0.01, np.random.default_rng(0))
    restore_latency(fresh, state)
    assert np.array_equal(fresh.sample_batch(8), expected)


@settings(max_examples=50, deadline=None)
@given(seed=seeds, burn=st.integers(min_value=0, max_value=200))
def test_lognormal_latency_roundtrip(seed, burn):
    model = LogNormalLatency(0.005, 0.5, np.random.default_rng(seed))
    model.sample_batch(burn)
    state = capture_latency(model)
    expected = model.sample_batch(8)
    fresh = LogNormalLatency(0.005, 0.5, np.random.default_rng(0))
    restore_latency(fresh, state)
    assert np.array_equal(fresh.sample_batch(8), expected)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1),
       upto=st.integers(min_value=0, max_value=120),
       more=st.integers(min_value=1, max_value=80))
def test_fluctuation_trace_roundtrip(seed, upto, more):
    trace = FluctuationTrace(seed=seed)
    trace.materialize(upto) if upto else None
    state = capture_fluctuation_trace(trace)
    expected = trace.materialize(upto + more)
    fresh = FluctuationTrace(seed=seed + 1)  # wrong seed on purpose
    restore_fluctuation_trace(fresh, state)
    assert np.array_equal(fresh.materialize(upto + more), expected)


# -- snapshot byte-identity on arbitrary payloads -------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=12),
)

_arrays = st.builds(
    lambda seed, n, dtype: np.random.default_rng(seed)
    .uniform(-1e6, 1e6, size=n)
    .astype(dtype),
    seed=st.integers(min_value=0, max_value=1000),
    n=st.integers(min_value=0, max_value=8),
    dtype=st.sampled_from(["f8", "i8", "f4"]),
)

_payloads = st.recursive(
    st.one_of(_scalars, _arrays, st.sets(st.integers(), max_size=4)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
        st.dictionaries(st.integers(), children, max_size=4),
    ),
    max_leaves=12,
)


def _equal(left, right):
    if isinstance(left, np.ndarray):
        return (
            isinstance(right, np.ndarray)
            and left.dtype == right.dtype
            and left.tobytes() == right.tobytes()
        )
    if isinstance(left, (list, tuple)):
        return len(left) == len(right) and all(
            _equal(a, b) for a, b in zip(left, right)
        )
    if isinstance(left, dict):
        return set(left) == set(right) and all(
            _equal(value, right[key]) for key, value in left.items()
        )
    return left == right


@settings(max_examples=100, deadline=None)
@given(payload=_payloads, round_index=st.integers(min_value=0, max_value=10**6))
def test_snapshot_bytes_roundtrip_is_identity(payload, round_index):
    snapshot = Snapshot(
        kind="run", round_index=round_index, config={},
        state={"payload": payload},
    )
    data = snapshot.to_bytes()
    back = Snapshot.from_bytes(data)
    assert back.to_bytes() == data
    assert _equal(back.state["payload"], payload)


@settings(max_examples=150, deadline=None)
@given(payload=_payloads)
def test_codec_roundtrip_preserves_values(payload):
    assert _equal(from_jsonable(to_jsonable(payload)), payload)

"""Property-based tests for the streaming arrival generators (hypothesis).

The two contracts the module docstring of ``repro.serving.arrivals``
promises, checked on arbitrary rates/seeds/chunk splits:

* **Chunk invariance** — any chunked split of ``n`` arrivals is
  bit-identical to the one-shot batch, including the RNG stream
  positions afterwards (``capture_state`` equality, which contains the
  bit-generator states verbatim).
* **Statistical sanity** — arrival counts over a window match the
  process intensity within CLT bounds; timestamps strictly increase.
* **Checkpoint round-trip** — restore into a *fresh* generator resumes
  the identical stream.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving.arrivals import (
    ARRIVALS,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)

PROCESSES = sorted(ARRIVALS)


def _splits(draw, st_, total):
    """A random composition of ``total`` into positive chunk sizes."""
    sizes = []
    remaining = total
    while remaining > 0:
        size = draw(st_.integers(1, remaining))
        sizes.append(size)
        remaining -= size
    return sizes


@st.composite
def chunked_runs(draw):
    process = draw(st.sampled_from(PROCESSES))
    rate = draw(st.floats(0.1, 50.0))
    seed = draw(st.integers(0, 2**31 - 1))
    total = draw(st.integers(2, 300))
    sizes = _splits(draw, st, total)
    return process, rate, seed, total, sizes


class TestChunkInvariance:
    @given(chunked_runs())
    @settings(max_examples=60, deadline=None)
    def test_any_split_is_bit_identical_to_one_shot(self, run):
        process, rate, seed, total, sizes = run
        one_shot = make_arrivals(process, rate, seed=seed)
        chunked = make_arrivals(process, rate, seed=seed)

        expected = one_shot.next_batch(total)
        got = np.concatenate([chunked.next_batch(n) for n in sizes])

        # Bitwise, not approximate: the _fold_gaps association trick.
        np.testing.assert_array_equal(got, expected)
        assert chunked.now == one_shot.now
        assert chunked.count == one_shot.count == total

    @given(chunked_runs())
    @settings(max_examples=40, deadline=None)
    def test_rng_stream_position_matches_after_any_split(self, run):
        process, rate, seed, total, sizes = run
        one_shot = make_arrivals(process, rate, seed=seed)
        chunked = make_arrivals(process, rate, seed=seed)
        one_shot.next_batch(total)
        for n in sizes:
            chunked.next_batch(n)
        # capture_state embeds every bit-generator state verbatim, so
        # state equality == stream-position equality. JSON normalizes
        # away int/np-int representation differences.
        assert json.dumps(
            chunked.capture_state(), sort_keys=True, default=str
        ) == json.dumps(one_shot.capture_state(), sort_keys=True, default=str)

    @given(chunked_runs())
    @settings(max_examples=40, deadline=None)
    def test_stream_generator_matches_next_batch(self, run):
        process, rate, seed, total, _ = run
        via_stream = make_arrivals(process, rate, seed=seed)
        via_batch = make_arrivals(process, rate, seed=seed)
        got = np.concatenate(list(via_stream.stream(total, chunk=7)))
        np.testing.assert_array_equal(got, via_batch.next_batch(total))


class TestStatistics:
    @given(
        process=st.sampled_from(PROCESSES),
        rate=st.floats(0.5, 20.0),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_timestamps_strictly_increase_from_zero(self, process, rate, seed):
        arrivals = make_arrivals(process, rate, seed=seed)
        times = arrivals.next_batch(500)
        assert times[0] > 0.0
        assert np.all(np.diff(times) > 0.0)
        assert np.all(np.isfinite(times))

    @given(seed=st.integers(0, 2**31 - 1), rate=st.floats(1.0, 30.0))
    @settings(max_examples=30, deadline=None)
    def test_poisson_count_within_clt_bounds(self, seed, rate):
        # n arrivals span a window of expected length n/rate with
        # standard deviation sqrt(n)/rate; 6 sigma over random seeds.
        n = 4000
        arrivals = PoissonArrivals(rate, seed=seed)
        span = arrivals.next_batch(n)[-1]
        assert abs(span - n / rate) < 6.0 * np.sqrt(n) / rate

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_bursty_mean_rate_exceeds_base_rate(self, seed):
        # Bursts only ever add arrivals per unit time, so the empirical
        # rate must beat the calm-regime base rate (strictly, once any
        # burst occurred — p_enter=0.3 makes that certain at n=4000).
        rate = 5.0
        arrivals = BurstyArrivals(rate, seed=seed, p_enter=0.3, p_exit=0.3)
        n = 4000
        span = arrivals.next_batch(n)[-1]
        assert n / span > rate

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_diurnal_inversion_satisfies_time_rescaling(self, seed):
        # Each emitted time t_k must solve Lambda(t_k) = Gamma_k, i.e.
        # the cumulative rate at consecutive arrivals differs by the
        # unit-rate exponential gaps — verify Lambda(t) is recovered to
        # bisection precision by checking Lambda(t_k) is increasing with
        # i.i.d.-looking unit-mean increments.
        arrivals = DiurnalArrivals(10.0, seed=seed, amplitude=0.8, period=50.0)
        times = arrivals.next_batch(2000)
        gamma = np.asarray(arrivals.cumulative_rate(times))
        increments = np.diff(gamma)
        assert np.all(increments > 0.0)
        assert abs(np.mean(increments) - 1.0) < 6.0 / np.sqrt(len(increments))


class TestCheckpoint:
    @given(chunked_runs())
    @settings(max_examples=40, deadline=None)
    def test_restore_into_fresh_generator_resumes_identically(self, run):
        process, rate, seed, total, _ = run
        original = make_arrivals(process, rate, seed=seed)
        original.next_batch(total)
        snapshot = json.loads(json.dumps(original.capture_state()))

        resumed = make_arrivals(process, rate, seed=seed + 1)  # wrong seed on purpose
        resumed.restore_state(snapshot)
        np.testing.assert_array_equal(
            resumed.next_batch(64), original.next_batch(64)
        )
        assert resumed.now == original.now
        assert resumed.count == original.count

    @pytest.mark.parametrize("process", PROCESSES)
    def test_state_rejects_wrong_process(self, process):
        from repro.exceptions import CheckpointError

        arrivals = make_arrivals(process, 1.0, seed=3)
        state = arrivals.capture_state()
        state["process"] = "something-else"
        with pytest.raises(CheckpointError):
            arrivals.restore_state(state)

"""Property-based tests for the streaming quantile sketch (hypothesis).

The sketch's headline guarantee is *self-certified*: every query comes
with a rank-error bound computed from its own summary. These tests check
that guarantee against an exact-sort oracle on adversarial streams —
heavy ties, sorted/reversed inserts, tiny and huge batches — plus the
structural summary invariants and the checkpoint round-trip.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.serving.quantiles import ExactQuantiles, QuantileSketch

QS = (0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0)


@st.composite
def streams(draw):
    """A latency-like stream delivered in arbitrary batches."""
    n = draw(st.integers(1, 5000))
    shape = draw(st.sampled_from(["iid", "sorted", "reversed", "ties"]))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    values = rng.exponential(1.0, size=n)
    if shape == "sorted":
        values = np.sort(values)
    elif shape == "reversed":
        values = np.sort(values)[::-1]
    elif shape == "ties":
        values = np.round(values, 1)  # massive duplication
    batches = []
    pos = 0
    while pos < n:
        size = draw(st.integers(1, max(1, n // 3)))
        batches.append(values[pos : pos + size])
        pos += size
    return values, batches


def _small_sketch():
    # Tiny summary/buffer so compression and merging actually trigger
    # at property-test sizes.
    return QuantileSketch(max_summary=64, buffer_size=128)


class TestCertifiedError:
    @given(streams())
    @settings(max_examples=60, deadline=None)
    def test_true_rank_within_certified_bound(self, stream):
        values, batches = stream
        sketch = _small_sketch()
        oracle = ExactQuantiles()
        for batch in batches:
            sketch.add(batch)
            oracle.add(batch)
        n = len(values)
        for q in QS:
            estimate = sketch.query(q)
            bound = sketch.certified_error(q)
            target = 1.0 + q * (n - 1)
            lo, hi = oracle.rank_interval(estimate)
            # The estimate's true rank interval must intersect
            # [target - bound, target + bound].
            assert lo - bound <= target <= hi + bound, (
                f"q={q}: estimate {estimate} has true ranks [{lo}, {hi}], "
                f"target {target}, certified bound {bound}"
            )

    @given(streams())
    @settings(max_examples=40, deadline=None)
    def test_certified_bound_stays_useful(self, stream):
        values, batches = stream
        sketch = _small_sketch()
        for batch in batches:
            sketch.add(batch)
        n = len(values)
        for q in (0.5, 0.99):
            # ~2n/max_summary is the design bound on distinct values;
            # heavy ties widen rank intervals, so allow 8x headroom —
            # the test pins the order of magnitude, not the constant.
            assert sketch.certified_error(q) <= max(16.0 * n / 64, 2.0)

    @given(streams())
    @settings(max_examples=40, deadline=None)
    def test_estimates_are_inserted_values_and_extremes_exact(self, stream):
        values, batches = stream
        sketch = _small_sketch()
        for batch in batches:
            sketch.add(batch)
        for q in QS:
            assert sketch.query(q) in values
        assert sketch.query(0.0) == values.min()
        assert sketch.query(1.0) == values.max()


class TestSummaryInvariants:
    @given(streams())
    @settings(max_examples=40, deadline=None)
    def test_rank_bounds_well_formed_and_count_conserved(self, stream):
        values, batches = stream
        sketch = _small_sketch()
        for batch in batches:
            sketch.add(batch)
        sketch._flush()
        assert sketch.count == len(values)
        vals, rmin, rmax = sketch._vals, sketch._rmin, sketch._rmax
        assert vals.size <= sketch.max_summary + 2
        assert np.all(np.diff(vals) >= 0.0)
        assert np.all(rmin <= rmax)
        assert np.all(rmin >= 1)
        assert np.all(rmax <= sketch.count)
        # The min and max of the stream are pinned exactly at the ends.
        assert vals[0] == values.min() and int(rmin[0]) == 1
        assert vals[-1] == values.max() and int(rmax[-1]) == sketch.count

    @given(
        seed=st.integers(0, 2**31 - 1),
        n_a=st.integers(1, 2000),
        n_b=st.integers(1, 2000),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_of_exact_summaries_conserves_total_rank_span(
        self, seed, n_a, n_b
    ):
        from repro.serving.quantiles import _merge

        rng = np.random.default_rng(seed)
        a = np.sort(rng.exponential(1.0, n_a))
        b = np.sort(rng.exponential(1.0, n_b))
        ra = np.arange(1, n_a + 1, dtype=np.int64)
        rb = np.arange(1, n_b + 1, dtype=np.int64)
        vals, rmin, rmax = _merge(a, ra, ra, b, rb, rb)
        assert vals.size == n_a + n_b
        assert int(rmax[-1]) == n_a + n_b
        assert int(rmin[0]) == 1
        assert np.all(rmin <= rmax)
        # Distinct values from continuous draws: merged ranks are exact.
        if np.unique(vals).size == vals.size:
            np.testing.assert_array_equal(rmin, rmax)
            np.testing.assert_array_equal(
                vals, np.sort(np.concatenate((a, b)))
            )


class TestExactReference:
    @given(streams())
    @settings(max_examples=40, deadline=None)
    def test_exact_path_matches_numpy_sort(self, stream):
        values, batches = stream
        oracle = ExactQuantiles()
        for batch in batches:
            oracle.add(batch)
        data = np.sort(values)
        for q in QS:
            r = int(round(1.0 + q * (len(values) - 1))) - 1
            assert oracle.query(q) == data[r]

    def test_empty_stores_raise(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch().query(0.5)
        with pytest.raises(ConfigurationError):
            ExactQuantiles().query(0.5)
        with pytest.raises(ConfigurationError):
            QuantileSketch().add([np.inf])


class TestCheckpoint:
    @given(streams())
    @settings(max_examples=30, deadline=None)
    def test_sketch_resume_is_bit_identical(self, stream):
        values, batches = stream
        colocated = _small_sketch()
        resumed = _small_sketch()
        split = len(batches) // 2
        for batch in batches[:split]:
            colocated.add(batch)
        snapshot = json.loads(json.dumps(colocated.capture_state()))
        resumed.restore_state(snapshot)
        for batch in batches[split:]:
            colocated.add(batch)
            resumed.add(batch)
        for q in QS:
            assert resumed.query(q) == colocated.query(q)
            assert resumed.certified_error(q) == colocated.certified_error(q)
        np.testing.assert_array_equal(resumed._vals, colocated._vals)

    def test_capture_does_not_flush_pending_buffer(self):
        sketch = QuantileSketch(max_summary=64, buffer_size=1000)
        sketch.add(np.arange(10.0))
        state = sketch.capture_state()
        assert state["vals"] == []  # nothing flushed yet
        assert len(state["buffer"]) == 10
        assert sketch._buffered == 10  # capture left the buffer alone

    def test_restore_rejects_different_sizing(self):
        sketch = _small_sketch()
        sketch.add([1.0, 2.0])
        state = sketch.capture_state()
        other = QuantileSketch(max_summary=128, buffer_size=128)
        with pytest.raises(ConfigurationError):
            other.restore_state(state)

"""Property-based bit-identity of the batched (realization-stacked) policies.

For every algorithm with a batched twin, advancing ``R`` stacked
realizations through the :class:`~repro.core.batched.BatchedPolicy` must
reproduce the scalar per-realization trajectories *exactly* (``==``, not
``allclose``): row ``r`` of each batched update performs the identical
IEEE-754 operations, in the identical order, as the scalar class on
realization ``r`` alone. This is the contract that lets
:func:`repro.experiments.harness.sweep_realizations` switch between the
stacked fast path and the per-realization loop without changing one
output byte.

The worlds cover random simplex starting points, positive-slope affine
costs drawn per (realization, round, worker), and degenerate rounds
where every worker reveals the same cost function — from an equal start
these force exact straggler ties, exercising the lowest-index argmax
tie-break and LB-BSP's fastest-equals-straggler reset in both paths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.batched import BATCHED_ALGORITHMS, make_batched
from repro.baselines.registry import make_balancer
from repro.core.batched import BatchedRoundFeedback, identify_stragglers_rows
from repro.core.interface import make_feedback
from repro.costs.affine_vector import AffineCostVector

#: Small hyperparameters so the state machines (ABS window, LB-BSP
#: patience) actually fire within the short property horizons.
ALGO_KWARGS = {
    "EQU": {},
    "STATIC": {},
    "OGD": {"learning_rate": 0.001},
    "EG": {"eta": 0.5},
    "LB-BSP": {"delta": 5.0 / 256.0, "patience": 2},
    "ABS": {"period": 2},
    "DOLBIE": {"alpha_1": 0.001},
    "OPT": {},
}


@st.composite
def worlds(draw):
    n = draw(st.integers(2, 6))
    num_r = draw(st.integers(1, 4))
    horizon = draw(st.integers(2, 8))
    seed = draw(st.integers(0, 2**16))
    # Rounds where all workers (and all realizations) share one cost
    # function — degenerate straggler ties from any symmetric state.
    ties = draw(
        st.lists(st.booleans(), min_size=horizon, max_size=horizon)
    )
    if draw(st.booleans()):
        x0 = None  # equal split: guarantees exact ties on tie rounds
    else:
        weights = np.array(
            [draw(st.floats(0.01, 10.0)) for _ in range(n)]
        )
        x0 = weights / weights.sum()
    rng = np.random.default_rng(seed)
    # Strictly positive slopes so the batched waterfilling oracle is
    # applicable (the stacked engine checks exactly this precondition).
    slopes = rng.uniform(0.05, 50.0, size=(num_r, horizon, n))
    intercepts = rng.uniform(0.0, 10.0, size=(num_r, horizon, n))
    for t, tied in enumerate(ties):
        if tied:
            slopes[:, t, :] = slopes[0, t, 0]
            intercepts[:, t, :] = intercepts[0, t, 0]
    return x0, slopes, intercepts


def _run_scalar(name, x0, slopes, intercepts):
    """Trajectory of the scalar policy on one (T, N) realization."""
    horizon, n = slopes.shape
    policy = make_balancer(
        name, n, initial_allocation=x0, **ALGO_KWARGS[name]
    )
    if policy.requires_oracle:
        policy.prime(slopes, intercepts)
    trajectory = np.empty((horizon, n))
    for t in range(1, horizon + 1):
        costs = AffineCostVector(slopes[t - 1], intercepts[t - 1])
        if policy.requires_oracle:
            x_t = policy.oracle_decide(costs)
        else:
            x_t = policy.decide()
        feedback = make_feedback(t, x_t, costs)
        policy.update(feedback)
        trajectory[t - 1] = feedback.allocation
    return trajectory


def _run_batched(name, x0, slopes, intercepts):
    """Trajectory of the batched policy on the full (R, T, N) stack."""
    num_r, horizon, n = slopes.shape
    policy = make_batched(
        name, num_r, n, initial_allocation=x0, **ALGO_KWARGS[name]
    )
    if policy.requires_oracle:
        policy.prime(slopes, intercepts)
    rows = np.arange(num_r)
    trajectory = np.empty((num_r, horizon, n))
    for t in range(1, horizon + 1):
        slopes_t = slopes[:, t - 1, :]
        intercepts_t = intercepts[:, t - 1, :]
        if policy.requires_oracle:
            x_t = policy.oracle_decide(slopes_t, intercepts_t)
        else:
            x_t = policy.decide()
        # Same evaluation AffineCostVector.values performs per row.
        local = (
            slopes_t * np.minimum(np.maximum(x_t, 0.0), 1.0) + intercepts_t
        )
        stragglers = identify_stragglers_rows(local)
        policy.update(
            BatchedRoundFeedback(
                round_index=t,
                allocations=x_t,
                slopes=slopes_t,
                intercepts=intercepts_t,
                local_costs=local,
                global_costs=local[rows, stragglers],
                stragglers=stragglers,
            )
        )
        trajectory[:, t - 1, :] = x_t
    return trajectory


@pytest.mark.parametrize("name", sorted(BATCHED_ALGORITHMS))
@given(worlds())
@settings(max_examples=25, deadline=None)
def test_batched_rows_are_bit_identical_to_scalar(name, world):
    x0, slopes, intercepts = world
    batched = _run_batched(name, x0, slopes, intercepts)
    for r in range(slopes.shape[0]):
        scalar = _run_scalar(name, x0, slopes[r], intercepts[r])
        assert np.array_equal(batched[r], scalar), (
            f"{name}: realization {r} diverged from the scalar trajectory"
        )


@given(worlds())
@settings(max_examples=25, deadline=None)
def test_batched_dolbie_alpha_schedule_matches_scalar(world):
    """The (R,) schedule state itself is bit-identical, not just x."""
    x0, slopes, intercepts = world
    num_r, horizon, n = slopes.shape
    batched = make_batched(
        "DOLBIE", num_r, n, initial_allocation=x0, **ALGO_KWARGS["DOLBIE"]
    )
    scalars = [
        make_balancer(
            "DOLBIE", n, initial_allocation=x0, **ALGO_KWARGS["DOLBIE"]
        )
        for _ in range(num_r)
    ]
    rows = np.arange(num_r)
    for t in range(1, horizon + 1):
        slopes_t = slopes[:, t - 1, :]
        intercepts_t = intercepts[:, t - 1, :]
        x_t = batched.decide()
        local = (
            slopes_t * np.minimum(np.maximum(x_t, 0.0), 1.0) + intercepts_t
        )
        stragglers = identify_stragglers_rows(local)
        batched.update(
            BatchedRoundFeedback(
                round_index=t,
                allocations=x_t,
                slopes=slopes_t,
                intercepts=intercepts_t,
                local_costs=local,
                global_costs=local[rows, stragglers],
                stragglers=stragglers,
            )
        )
        for r, scalar in enumerate(scalars):
            costs = AffineCostVector(slopes[r, t - 1], intercepts[r, t - 1])
            scalar.update(make_feedback(t, scalar.decide(), costs))
            assert batched.alpha[r] == scalar.alpha
            assert np.array_equal(batched.allocations[r], scalar.allocation)


def test_all_equal_costs_tie_every_round():
    """Fully degenerate world: one cost function for everyone, always."""
    num_r, horizon, n = 3, 6, 4
    slopes = np.full((num_r, horizon, n), 2.0)
    intercepts = np.full((num_r, horizon, n), 0.25)
    for name in sorted(BATCHED_ALGORITHMS):
        batched = _run_batched(name, None, slopes, intercepts)
        scalar = _run_scalar(name, None, slopes[0], intercepts[0])
        for r in range(num_r):
            assert np.array_equal(batched[r], scalar), name

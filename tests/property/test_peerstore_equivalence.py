"""Property-based bit-identity of the struct-of-arrays peer store.

``peer_store=True`` swaps the FD protocol's N per-peer python objects
for packed (N,) arrays behind the same peer/protocol API (see
:mod:`repro.core.peerstore`). That is an execution-layer change, never a
semantic one: for any worker count, seed, link distribution and
crash/rejoin schedule, the store-mode run must reproduce the object-mode
run *exactly* — allocation trajectories (``==``, not ``allclose``),
consensus outcomes, ledger contents, communication accounting, virtual
clock, and the position of every RNG stream the run consumed.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.timevarying import RandomAffineProcess
from repro.net.links import ConstantLatency, Link, UniformLatency
from repro.protocols.fully_distributed import FullyDistributedDolbie


@st.composite
def configurations(draw):
    n = draw(st.integers(4, 12))
    seed = draw(st.integers(0, 2**16))
    horizon = draw(st.integers(3, 10))
    uniform_link = draw(st.booleans())
    aggregation = draw(st.sampled_from(["flat", "tree"]))
    # Crash/rejoin schedule: worker -> (crash round, optional rejoin
    # round). Never crash everyone; rounds are 1-based.
    crashed = draw(
        st.lists(st.integers(0, n - 1), unique=True, max_size=max(n - 2, 1))
    )
    schedule = {}
    for worker in crashed:
        crash_t = draw(st.integers(1, horizon))
        rejoin_t = draw(
            st.one_of(st.none(), st.integers(crash_t + 1, horizon + 1))
        )
        schedule[worker] = (crash_t, rejoin_t)
    return n, seed, horizon, uniform_link, aggregation, schedule


def _make_latency(uniform: bool, seed: int):
    if uniform:
        return UniformLatency(0.0005, 0.005, np.random.default_rng(seed))
    return ConstantLatency(0.003)


def _run(config, peer_store: bool):
    n, seed, horizon, uniform_link, aggregation, schedule = config
    speeds = [1.0 + (7 * i + seed) % 13 for i in range(n)]
    process = RandomAffineProcess(speeds, sigma=0.2, comm_scale=0.05, seed=seed)
    latency = _make_latency(uniform_link, seed)
    protocol = FullyDistributedDolbie(
        n,
        link=Link(latency),
        aggregation=aggregation,
        peer_store=peer_store,
    )
    outcomes = []
    for t in range(1, horizon + 1):
        for worker, (crash_t, rejoin_t) in schedule.items():
            if t == crash_t and len(protocol.alive_workers) > 2:
                protocol.crash_worker(worker)
            if rejoin_t is not None and t == rejoin_t:
                if worker not in protocol.alive_workers:
                    protocol.rejoin_worker(worker)
        x, local, cost, straggler = protocol.run_round(t, process.costs_at(t))
        outcomes.append((np.asarray(x).copy(), np.asarray(local).copy(),
                         cost, straggler))
    return protocol, outcomes, latency


@given(configurations())
@settings(max_examples=25, deadline=None)
def test_store_mode_is_bit_identical_to_object_mode(config):
    obj_protocol, obj_outcomes, obj_latency = _run(config, peer_store=False)
    store_protocol, store_outcomes, store_latency = _run(config, peer_store=True)

    # Decision trajectories: exact, not approximate (a dead worker's
    # local cost is NaN on both sides — equal_nan covers it).
    assert len(obj_outcomes) == len(store_outcomes)
    for (xa, la, ca, sa), (xb, lb, cb, sb) in zip(obj_outcomes, store_outcomes):
        assert np.array_equal(xa, xb)
        assert np.array_equal(la, lb, equal_nan=True)
        assert ca == cb and sa == sb
    assert np.array_equal(obj_protocol.allocation, store_protocol.allocation)
    assert obj_protocol.alpha == store_protocol.alpha
    assert obj_protocol.alive_workers == store_protocol.alive_workers

    # Ledgers: the blessed ledger and every worker replica.
    assert obj_protocol.ledger == store_protocol.ledger
    for w in range(obj_protocol.num_workers):
        assert (
            obj_protocol.worker_ledger(w) == store_protocol.worker_ledger(w)
        ), f"worker {w} replica diverged"

    # Execution substrate: same virtual clock, same message accounting,
    # and — when the link draws randomness — the same RNG stream
    # position (one extra draw anywhere would show up here).
    assert obj_protocol.cluster.engine.now == store_protocol.cluster.engine.now
    assert (
        obj_protocol.metrics.messages_total
        == store_protocol.metrics.messages_total
    )
    if hasattr(obj_latency, "_rng"):
        assert (
            obj_latency._rng.bit_generator.state
            == store_latency._rng.bit_generator.state
        )

    # The store-mode run visibly ran the store (not a silent fallback).
    assert store_protocol._store is not None
    assert obj_protocol._store is None

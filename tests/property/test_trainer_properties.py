"""Property-based invariants of the training simulator (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import make_balancer
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.trainer import SyncTrainer


@st.composite
def training_setups(draw):
    n = draw(st.integers(2, 10))
    batch = draw(st.sampled_from([32, 100, 256]))
    seed = draw(st.integers(0, 2**16))
    model = draw(st.sampled_from(["LeNet5", "ResNet18", "VGG16"]))
    algorithm = draw(st.sampled_from(["EQU", "DOLBIE", "ABS", "EG"]))
    rounds = draw(st.integers(3, 20))
    integer_batches = draw(st.booleans())
    return n, batch, seed, model, algorithm, rounds, integer_batches


@given(training_setups())
@settings(max_examples=40, deadline=None)
def test_training_run_invariants(setup):
    n, batch, seed, model, algorithm, rounds, integer_batches = setup
    env = TrainingEnvironment(model, num_workers=n, global_batch=batch, seed=seed)
    trainer = SyncTrainer(env, integer_batches=integer_batches)
    run = trainer.train(make_balancer(algorithm, n), rounds)

    # Constraint (2): every sample of every round is assigned.
    assert (run.batch_sizes.sum(axis=1) == batch).all()
    assert np.allclose(run.batch_fractions.sum(axis=1), 1.0, atol=1e-7)
    # Constraint (3): non-negative workloads.
    assert (run.batch_fractions >= -1e-9).all()
    # Accounting identities.
    assert np.allclose(run.local_latency, run.compute_time + run.comm_time)
    assert np.allclose(run.round_latency, run.local_latency.max(axis=1))
    assert (run.waiting_time >= -1e-12).all()
    # Wall clock strictly increases and accuracy stays in range.
    assert (np.diff(run.wall_clock) > 0).all()
    assert (run.accuracy >= 0.0).all() and (run.accuracy <= 1.0).all()
    # The straggler column of waiting time is always zero.
    for t in range(rounds):
        assert run.waiting_time[t, run.stragglers[t]] <= 1e-12

"""Property-based tests for the instantaneous min-max solver."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.affine import AffineLatencyCost
from repro.costs.nonlinear import ExponentialCost, PowerLawCost
from repro.minmax.solver import evaluate_allocation, solve_min_max
from repro.simplex.sampling import is_feasible, uniform_simplex


@st.composite
def mixed_costs(draw):
    n = draw(st.integers(2, 10))
    costs = []
    for _ in range(n):
        family = draw(st.sampled_from(["affine", "power", "exp"]))
        a = draw(st.floats(0.05, 10.0))
        c = draw(st.floats(0.0, 0.5))
        if family == "affine":
            costs.append(AffineLatencyCost(a, c))
        elif family == "power":
            costs.append(PowerLawCost(a, draw(st.floats(0.4, 2.5)), c))
        else:
            costs.append(ExponentialCost(a, draw(st.floats(0.3, 3.0)), c))
    return costs


@given(mixed_costs())
@settings(max_examples=80, deadline=None)
def test_solution_is_feasible(costs):
    sol = solve_min_max(costs)
    assert is_feasible(sol.allocation, atol=1e-7)


@given(mixed_costs(), st.integers(0, 2**31 - 1))
@settings(max_examples=80, deadline=None)
def test_solution_dominates_random_feasible_points(costs, seed):
    sol = solve_min_max(costs)
    rng = np.random.default_rng(seed)
    for _ in range(20):
        x = uniform_simplex(len(costs), rng)
        _, value, _ = evaluate_allocation(costs, x)
        assert sol.value <= value + 1e-6


@given(mixed_costs())
@settings(max_examples=80, deadline=None)
def test_value_not_below_zero_load_floor(costs):
    sol = solve_min_max(costs)
    floor = max(c(0.0) for c in costs)
    assert sol.value >= floor - 1e-9


@given(mixed_costs())
@settings(max_examples=50, deadline=None)
def test_value_consistent_with_allocation(costs):
    sol = solve_min_max(costs)
    _, value, _ = evaluate_allocation(costs, sol.allocation)
    assert value == sol.value

"""Property-based bit-identity of the batched fast path.

For any worker count, seed, horizon and link-delay distribution, running
a protocol with the round-synchronous fast path enabled must reproduce
the event-engine run *exactly*: identical allocation trajectories
(``==``, not ``allclose``) and identical communication accounting. This
is the contract documented in ``repro.net.batch`` — the fast path is an
execution-layer optimization, never a semantic change.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.timevarying import RandomAffineProcess
from repro.net.links import ConstantLatency, Link, LogNormalLatency, UniformLatency
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie

LINK_KINDS = ("zero", "constant", "uniform", "lognormal")


def _make_link(kind: str, seed: int) -> Link | None:
    """A fresh link per protocol instance so RNG streams start equal."""
    if kind == "zero":
        return None
    if kind == "constant":
        return Link(ConstantLatency(0.003))
    if kind == "uniform":
        return Link(UniformLatency(0.0005, 0.005, np.random.default_rng(seed)))
    return Link(LogNormalLatency(0.002, 0.5, np.random.default_rng(seed)))


@st.composite
def configurations(draw):
    n = draw(st.integers(2, 10))
    seed = draw(st.integers(0, 2**16))
    horizon = draw(st.integers(2, 12))
    kind = draw(st.sampled_from(LINK_KINDS))
    speeds = [1.0 + draw(st.floats(0.0, 20.0)) for _ in range(n)]
    return n, seed, horizon, kind, speeds


def _run_pair(protocol_cls, config):
    n, seed, horizon, kind, speeds = config
    process = RandomAffineProcess(speeds, sigma=0.2, comm_scale=0.05, seed=seed)
    runs = {}
    for fast in (False, True):
        protocol = protocol_cls(
            n, link=_make_link(kind, seed), use_fast_path=fast
        )
        runs[fast] = (protocol, protocol.run(process, horizon))
    return runs


def _assert_identical(runs, horizon):
    slow_protocol, slow = runs[False]
    fast_protocol, fast = runs[True]
    # The fast path actually ran (healthy all-to-all setting) ...
    assert fast_protocol.fast_rounds == horizon
    assert fast_protocol.fallback_rounds == 0
    assert slow_protocol.fast_rounds == 0
    # ... and is bit-identical, not merely close:
    assert np.array_equal(slow.allocations, fast.allocations)
    assert np.array_equal(slow.global_costs, fast.global_costs)
    assert slow_protocol.metrics.messages_total == fast_protocol.metrics.messages_total
    assert slow_protocol.metrics.bytes_total == fast_protocol.metrics.bytes_total
    assert (
        dict(slow_protocol.metrics.per_round_messages)
        == dict(fast_protocol.metrics.per_round_messages)
    )
    assert (
        dict(slow_protocol.metrics.per_pair_messages)
        == dict(fast_protocol.metrics.per_pair_messages)
    )
    assert slow_protocol.cluster.engine.now == fast_protocol.cluster.engine.now


@given(configurations())
@settings(max_examples=40, deadline=None)
def test_fully_distributed_fast_path_bit_identical(config):
    runs = _run_pair(FullyDistributedDolbie, config)
    _assert_identical(runs, horizon=config[2])


@given(configurations())
@settings(max_examples=40, deadline=None)
def test_master_worker_fast_path_bit_identical(config):
    runs = _run_pair(MasterWorkerDolbie, config)
    _assert_identical(runs, horizon=config[2])

"""Property-based verification of Lemma 1 and Lemma 2 (hypothesis).

The paper proves these for every feasible allocation and every vector of
increasing cost functions; we check them on randomized instances drawn
from several cost families, with randomized (not just equal-split)
allocations.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs.affine import AffineLatencyCost
from repro.costs.nonlinear import ExponentialCost, LogCost, PowerLawCost
from repro.minmax.solver import solve_min_max
from repro.regret.bounds import lipschitz_over_rounds
from repro.theory.lemmas import check_lemma1, check_lemma2


@st.composite
def instances(draw):
    """(costs, allocation) with mixed cost families on 2..8 workers."""
    n = draw(st.integers(2, 8))
    costs = []
    for _ in range(n):
        family = draw(st.sampled_from(["affine", "power", "exp", "log"]))
        a = draw(st.floats(0.05, 8.0))
        c = draw(st.floats(0.0, 1.0))
        if family == "affine":
            costs.append(AffineLatencyCost(a, c))
        elif family == "power":
            costs.append(PowerLawCost(a, draw(st.floats(0.3, 3.0)), c))
        elif family == "exp":
            costs.append(ExponentialCost(a, draw(st.floats(0.2, 3.0)), c))
        else:
            costs.append(LogCost(a, draw(st.floats(0.2, 3.0)), c))
    weights = draw(
        st.lists(st.floats(0.01, 1.0), min_size=n, max_size=n)
    )
    allocation = np.array(weights) / sum(weights)
    return costs, allocation


@given(instances())
@settings(max_examples=100, deadline=None)
def test_lemma1_holds(instance):
    costs, allocation = instance
    report = check_lemma1(costs, allocation)
    assert report.i_straggler_dominates_optimal
    assert report.ii_x_prime_dominates_x
    assert report.iii_x_prime_dominates_optimal
    assert report.iv_inner_product_bound
    assert report.all_hold


@given(instances())
@settings(max_examples=100, deadline=None)
def test_lemma2_holds(instance):
    costs, allocation = instance
    lipschitz = lipschitz_over_rounds([costs])
    report = check_lemma2(costs, allocation, lipschitz)
    assert report.holds, (report.lhs, report.rhs)


@given(instances())
@settings(max_examples=50, deadline=None)
def test_lemma1_tight_at_the_optimum(instance):
    """At x = x*, property (i) holds with equality up to solver tolerance
    and the inner product is non-negative (both factors align)."""
    costs, _ = instance
    optimal = solve_min_max(costs).allocation
    report = check_lemma1(costs, optimal, optimal=optimal)
    assert report.all_hold
    assert report.inner_product_value >= -1e-7

"""Integration tests for the struct-of-arrays peer store (Layer 10).

The store's contract has three parts, each pinned here: construction is
O(N) array allocations with peers hydrated lazily as flyweight views
(a clean compiled round hydrates nobody); the configuration surface
(``peer_store=`` / ``$REPRO_PEER_STORE``) resolves and validates like
the other knobs; and checkpoints cross modes — a snapshot taken in
either peer representation restores into either, bit-for-bit.
"""

import numpy as np
import pytest

from repro.ckpt.snapshot import Snapshot
from repro.ckpt.state import capture_protocol, restore_protocol
from repro.costs.timevarying import DriftingAffineProcess
from repro.exceptions import ConfigurationError
from repro.net.links import ConstantLatency, Link
from repro.net.topology import Topology
from repro.protocols.fully_distributed import (
    PEER_STORE_ENV,
    FullyDistributedDolbie,
)


def _process(n, seed=0):
    speeds = [1.0 + 3.0 * (i / max(n - 1, 1)) for i in range(n)]
    return DriftingAffineProcess(speeds, amplitude=0.25, period=40.0, seed=seed)


def _protocol(n, **kwargs):
    kwargs.setdefault("link", Link(ConstantLatency(0.001)))
    return FullyDistributedDolbie(n, **kwargs)


class TestConstructionAndHydration:
    def test_clean_compiled_rounds_hydrate_no_peers(self):
        n = 1000
        protocol = _protocol(
            n, aggregation="tree", backend="compiled", peer_store=True
        )
        process = _process(n)
        for t in range(1, 4):
            protocol.run_round(t, process.costs_at(t))
        assert protocol.tree_rounds == 3
        # The whole point of the store: a healthy compiled round works
        # on the packed arrays and never materializes a peer object.
        assert len(protocol.cluster._nodes) == 0

    def test_hydrated_views_are_cached_flyweights(self):
        protocol = _protocol(12, peer_store=True)
        peer = protocol.peers[5]
        assert protocol.peers[5] is peer
        assert protocol.cluster.node(5) is peer
        # A view mutation is a store mutation.
        peer.alpha_bar = 0.125
        assert protocol._store.alpha_bar[5] == 0.125

    def test_store_arrays_are_packed_o_n(self):
        n = 50_000
        protocol = _protocol(
            n, aggregation="tree", backend="compiled", peer_store=True
        )
        store = protocol._store
        assert store.x.shape == (n,)
        assert np.isclose(store.x.sum(), 1.0)
        # One compiled round end-to-end at this N stays well inside
        # tier-1 time.
        process = _process(n)
        protocol.run_round(1, process.costs_at(1))
        assert protocol.tree_rounds == 1


class TestConfiguration:
    def test_env_opt_in(self, monkeypatch):
        monkeypatch.setenv(PEER_STORE_ENV, "1")
        assert _protocol(8)._store is not None
        monkeypatch.delenv(PEER_STORE_ENV)
        assert _protocol(8)._store is None

    def test_explicit_parameter_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(PEER_STORE_ENV, "1")
        assert _protocol(8, peer_store=False)._store is None

    def test_topology_is_rejected(self):
        with pytest.raises(ConfigurationError, match="peer_store"):
            _protocol(8, peer_store=True, topology=Topology.ring(8))


class TestCrossModeCheckpoints:
    @pytest.mark.parametrize("capture_store", [False, True])
    @pytest.mark.parametrize("restore_store", [False, True])
    def test_snapshot_crosses_peer_representations(
        self, capture_store, restore_store
    ):
        n, seed = 24, 11
        process = _process(n, seed=seed)

        def make(peer_store):
            return _protocol(
                n, aggregation="tree", backend="compiled",
                peer_store=peer_store,
            )

        source = make(capture_store)
        for t in range(1, 5):
            if t == 2:
                source.crash_worker(7)
            if t == 4:
                source.rejoin_worker(7)
            source.run_round(t, process.costs_at(t))
        state = capture_protocol(source)

        target = make(restore_store)
        restore_protocol(target, state)
        if capture_store == restore_store:
            # Same representation: capture∘restore is the identity down
            # to the fingerprint. (Cross-mode captures differ in their
            # representation blocks; equality there is behavioral.)
            assert (
                Snapshot("run", 4, {}, capture_protocol(target)).fingerprint
                == Snapshot("run", 4, {}, state).fingerprint
            )
        # Continuation equality always holds, cross-mode included.
        for t in range(5, 8):
            xa, _, ca, sa = source.run_round(t, process.costs_at(t))
            xb, _, cb, sb = target.run_round(t, process.costs_at(t))
            assert np.array_equal(xa, xb) and ca == cb and sa == sb
        assert source.ledger == target.ledger
        for w in range(n):
            assert source.worker_ledger(w) == target.worker_ledger(w)

"""Integration: the vectorized execution engine vs. the incremental reference.

The materialized engine's whole contract is *bit-identity*: precomputing
an environment's cost traces, vectorizing the trainer's bookkeeping, and
fanning realizations over a process pool must change wall-clock time and
nothing else. These tests pin that contract end to end:

* environment accessors and revealed costs match the incremental walk
  bit for bit across seeds, models and horizons,
* full training trajectories match per algorithm (exactly for every
  online algorithm; OPT solves via closed-form waterfilling instead of
  level bisection, so its trajectories agree to solver tolerance),
* serial and ``jobs=2`` sweeps — and the CSVs exported from them — are
  byte-identical.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.opt import DynamicOptimum
from repro.experiments.config import ALL_ALGORITHMS, QUICK, paper_balancer
from repro.experiments.export_all import export_all
from repro.experiments.harness import sweep_realizations
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.trainer import SyncTrainer

#: Small world so the process-pool tests stay fast on 1-core CI.
SMALL = replace(
    QUICK,
    num_workers=6,
    rounds=25,
    realizations=2,
    include_overhead=False,
)

EXACT_FIELDS = [
    "batch_fractions",
    "batch_sizes",
    "compute_time",
    "comm_time",
    "local_latency",
    "round_latency",
    "waiting_time",
    "stragglers",
    "wall_clock",
    "epochs",
    "accuracy",
]


def _env(seed: int, model: str = "ResNet18", workers: int = 6):
    return TrainingEnvironment(
        model, num_workers=workers, global_batch=128, seed=seed
    )


class TestAccessorBitIdentity:
    @pytest.mark.parametrize("model", ["LeNet5", "ResNet18", "VGG16"])
    @pytest.mark.parametrize("seed", [0, 3])
    def test_speed_and_comm_match(self, model, seed):
        horizon = 40
        incremental = _env(seed, model)
        materialized = _env(seed, model).materialize(horizon)
        for t in range(1, horizon + 1):
            for i in range(incremental.num_workers):
                assert incremental.speed_at(i, t) == materialized.speed_at(i, t)
                assert incremental.comm_at(i, t) == materialized.comm_at(i, t)

    def test_revealed_costs_match(self):
        horizon = 30
        incremental = _env(7)
        materialized = _env(7).materialize(horizon)
        for t in range(1, horizon + 1):
            scalar_costs = incremental.costs_at(t)
            vector = materialized.costs_at(t)
            slopes = np.array([c.slope for c in scalar_costs])
            intercepts = np.array([c.intercept for c in scalar_costs])
            assert np.array_equal(vector.slopes, slopes)
            assert np.array_equal(vector.intercepts, intercepts)

    def test_horizon_prefix_consistency(self):
        short = _env(1).materialize(20)
        long = _env(1).materialize(50)
        assert np.array_equal(short.speed_matrix, long.speed_matrix[:20])
        assert np.array_equal(short.comm_matrix, long.comm_matrix[:20])


class TestTrainingRunBitIdentity:
    @pytest.mark.parametrize("name", ALL_ALGORITHMS)
    def test_engines_agree(self, name):
        rounds = 30
        runs = []
        for materialize in (False, True):
            env = _env(5)
            if materialize:
                env = env.materialize(rounds)
            trainer = SyncTrainer(env, include_overhead_in_wallclock=False)
            runs.append(trainer.train(paper_balancer(name, 6), rounds))
        reference, vectorized = runs
        for field in EXACT_FIELDS:
            ref = getattr(reference, field)
            vec = getattr(vectorized, field)
            if name == "OPT":
                # OPT solves by level bisection on the incremental engine
                # and closed-form waterfilling on the materialized one —
                # the same optimum, to solver tolerance rather than ulp.
                # The optimum *equalizes* unsaturated workers' costs, so
                # tie-dependent integers (straggler argmax, largest-
                # remainder rounding) legitimately differ between the two
                # tolerance-close solutions; the float trajectories pin
                # the contract.
                if field in ("stragglers", "batch_sizes"):
                    continue
                assert np.allclose(ref, vec, rtol=1e-8, atol=1e-8), field
            else:
                assert np.array_equal(ref, vec), field

    def test_opt_priming_is_transparent(self):
        rounds = 40
        env = _env(9).materialize(rounds)
        primed = SyncTrainer(env, include_overhead_in_wallclock=False).train(
            DynamicOptimum(6), rounds
        )
        unprimed_balancer = DynamicOptimum(6)
        unprimed_balancer.prime = None  # trainer skips the batch solve
        unprimed = SyncTrainer(env, include_overhead_in_wallclock=False).train(
            unprimed_balancer, rounds
        )
        for field in EXACT_FIELDS:
            assert np.array_equal(
                getattr(primed, field), getattr(unprimed, field)
            ), field


class TestParallelSweepDeterminism:
    @pytest.fixture(autouse=True)
    def _pretend_two_cores(self, monkeypatch):
        # sweep_realizations clamps jobs to os.cpu_count(); on a 1-core CI
        # runner that would silently turn the jobs=2 legs into serial
        # sweeps and these tests would compare an execution mode against
        # itself. Two ProcessPoolExecutor workers run fine on one core.
        import repro.experiments.harness as harness

        monkeypatch.setattr(harness.os, "cpu_count", lambda: 2)

    def test_serial_and_parallel_sweeps_identical(self):
        serial = sweep_realizations("ResNet18", SMALL, jobs=1)
        parallel = sweep_realizations("ResNet18", SMALL, jobs=2)
        assert serial.keys() == parallel.keys()
        for name in serial:
            assert len(serial[name]) == SMALL.realizations
            for run_s, run_p in zip(serial[name], parallel[name]):
                for field in EXACT_FIELDS:
                    assert np.array_equal(
                        getattr(run_s, field), getattr(run_p, field)
                    ), (name, field)

    def test_exported_csv_bytes_identical(self, tmp_path):
        (serial_csv,) = export_all(tmp_path / "serial", SMALL, only=["fig4"], jobs=1)
        (parallel_csv,) = export_all(tmp_path / "par", SMALL, only=["fig4"], jobs=2)
        assert serial_csv.read_bytes() == parallel_csv.read_bytes()

"""Integration: extension experiments (edge, sensitivity) and the trap."""

import numpy as np
import pytest

from repro.core.dolbie import Dolbie
from repro.core.loop import run_online
from repro.costs.timevarying import StaticCostProcess
from repro.costs.affine import AffineLatencyCost
from repro.experiments import edge_scenario, sensitivity
from repro.experiments.config import QUICK


class TestEdgeScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return edge_scenario.run(QUICK, num_servers=5, horizon=80, realizations=3)

    def test_opt_is_best(self, result):
        opt = result.total_cost_mean["OPT"]
        for name, total in result.total_cost_mean.items():
            if name != "OPT":
                assert total >= opt - 1e-9

    def test_dolbie_beats_proportional_baseline_on_nonlinear_costs(self, result):
        """The §II-B claim: proportional adjustment is not robust to
        non-linear cost functions."""
        assert result.total_cost_mean["DOLBIE"] < result.total_cost_mean["ABS"]

    def test_dolbie_improves_on_equal_assignment(self, result):
        assert result.total_cost_mean["DOLBIE"] < result.total_cost_mean["EQU"]


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self):
        return sensitivity.run(QUICK)

    def test_all_sweeps_present(self, result):
        assert set(result.totals) == set(sensitivity.SWEEPS)

    def test_window_algorithms_are_knob_sensitive(self, result):
        """Paper: ABS and LB-BSP are affected by P and D."""
        assert result.spread("ABS") > 1.05
        assert result.spread("LB-BSP") > 1.05

    def test_dolbie_extremes_hurt(self, result):
        """Both a vanishing and an oversized alpha_1 lose to the middle
        of the sweep (the oversized one triggers the Eq. 7 freeze)."""
        totals = result.totals["DOLBIE"]
        best = min(totals.values())
        assert totals[0.0001] > best
        assert totals[0.1] > best


class TestAlphaFreezeTrap:
    def test_oversized_alpha_freezes_the_schedule(self):
        """Documented trap: alpha_1 far above the initialization rule
        drains the first straggler to zero; Eq. (7) then forces alpha = 0
        and DOLBIE never adapts again."""
        costs = [
            AffineLatencyCost(1.0),
            AffineLatencyCost(1.0),
            AffineLatencyCost(20.0),
        ]
        process = StaticCostProcess(costs)
        frozen = Dolbie(3, alpha_1=0.9)
        result = run_online(frozen, process, 50)
        assert frozen.alpha == 0.0
        # The straggler was fully drained in round 1 and nothing moved after.
        assert result.allocations[1, 2] == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(result.allocations[1], result.allocations[-1])

    def test_rule_derived_alpha_keeps_adapting(self):
        # Milder heterogeneity: the rule-derived alpha never fully drains
        # the straggler, so the schedule stays positive and keeps adapting.
        # (With extreme heterogeneity even the rule's equality choice can
        # drain the straggler exactly — see the freeze test above — which
        # is fine there because the frozen point is already near-optimal.)
        costs = [
            AffineLatencyCost(1.0),
            AffineLatencyCost(2.0),
            AffineLatencyCost(4.0),
        ]
        process = StaticCostProcess(costs)
        safe = Dolbie(3)  # alpha_1 from the paper's rule
        result = run_online(safe, process, 50)
        assert safe.alpha > 0.0
        assert result.global_costs[-1] < result.global_costs[0]
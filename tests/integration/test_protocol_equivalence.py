"""Integration: the message-passing protocols equal the reference DOLBIE.

This is the load-bearing validation of Algorithms 1 and 2: the distributed
implementations, exchanging only the scalars the paper allows over a
simulated network (including with random link latencies), must produce the
same allocation trajectory as the centralized reference implementation.
"""

import numpy as np
import pytest

from repro.core.dolbie import Dolbie
from repro.core.loop import run_online
from repro.costs.timevarying import PowerLawProcess, RandomAffineProcess
from repro.net.links import Link, LogNormalLatency, UniformLatency
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie

HORIZON = 60


def _reference(process, n, alpha_1):
    balancer = Dolbie(n, alpha_1=alpha_1, exact_feasibility_guard=False)
    return run_online(balancer, process, HORIZON)


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n", [2, 5, 12])
def test_master_worker_matches_reference(seed, n):
    process = RandomAffineProcess(
        speeds=[1.0 + i for i in range(n)], sigma=0.2, comm_scale=0.05, seed=seed
    )
    alpha_1 = 0.2 / n
    reference = _reference(process, n, alpha_1)
    protocol = MasterWorkerDolbie(n, alpha_1=alpha_1)
    result = protocol.run(process, HORIZON)
    assert np.allclose(reference.allocations, result.allocations, atol=1e-11)
    assert np.allclose(reference.global_costs, result.global_costs, atol=1e-11)
    assert (reference.stragglers == result.stragglers).all()


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n", [2, 5, 12])
def test_fully_distributed_matches_reference(seed, n):
    process = RandomAffineProcess(
        speeds=[1.0 + i for i in range(n)], sigma=0.2, comm_scale=0.05, seed=seed
    )
    alpha_1 = 0.2 / n
    reference = _reference(process, n, alpha_1)
    protocol = FullyDistributedDolbie(n, alpha_1=alpha_1)
    result = protocol.run(process, HORIZON)
    assert np.allclose(reference.allocations, result.allocations, atol=1e-11)


def test_equivalence_survives_random_link_latencies():
    """Message reordering from heterogeneous delays must not change the
    computed allocations (the protocol is round-synchronous by design)."""
    n = 6
    process = RandomAffineProcess(
        speeds=[1.0, 2.0, 3.0, 5.0, 8.0, 13.0], sigma=0.3, comm_scale=0.1, seed=4
    )
    reference = _reference(process, n, 0.03)
    rng = np.random.default_rng(0)
    for link in (
        Link(UniformLatency(0.0, 0.1, rng)),
        Link(LogNormalLatency(0.01, 1.0, rng)),
        Link(UniformLatency(0.001, 0.05, rng), bandwidth_bps=1e6),
    ):
        fd = FullyDistributedDolbie(n, alpha_1=0.03, link=link)
        result = fd.run(process, HORIZON)
        assert np.allclose(reference.allocations, result.allocations, atol=1e-11)


def test_equivalence_on_nonlinear_costs():
    """The protocols must agree when x' requires bisection, not just the
    closed-form affine inverse."""
    n = 4
    process = PowerLawProcess(
        scales=[1.0, 2.0, 4.0, 8.0], exponents=[0.8, 1.2, 1.7, 2.5], seed=1
    )
    reference = _reference(process, n, 0.05)
    mw = MasterWorkerDolbie(n, alpha_1=0.05)
    fd = FullyDistributedDolbie(n, alpha_1=0.05)
    assert np.allclose(
        reference.allocations, mw.run(process, HORIZON).allocations, atol=1e-9
    )
    assert np.allclose(
        reference.allocations, fd.run(process, HORIZON).allocations, atol=1e-9
    )


def test_exact_guard_reference_matches_protocols_in_paper_regime():
    """With alpha_1 from the paper's initialization rule, the guard never
    binds, so the guarded reference (library default) also matches the
    verbatim protocols exactly."""
    n = 8
    process = RandomAffineProcess(
        speeds=[1.0 + 2 * i for i in range(n)], sigma=0.2, seed=7
    )
    guarded = Dolbie(n, exact_feasibility_guard=True)
    reference = run_online(guarded, process, HORIZON)
    protocol = MasterWorkerDolbie(n)
    result = protocol.run(process, HORIZON)
    assert np.allclose(reference.allocations, result.allocations, atol=1e-11)

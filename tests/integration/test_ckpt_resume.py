"""Bit-identical checkpoint/resume across engines and architectures.

The ISSUE-level acceptance check: a fig4-scale run (N=30) checkpointed
at t=50 and resumed must produce the *same* trace (headers included),
the same result arrays, and the same CSV bytes as the uninterrupted
run — on both engines and both protocol architectures. A separate test
drives the CLI through a real SIGKILL and asserts the resumed trace
file is byte-equivalent.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.ckpt import CheckpointStore, resume_run, run_with_checkpoints
from repro.ckpt.runner import run_result_to_csv
from repro.exceptions import CheckpointError
from repro.obs.diff import diff_traces

WORKERS, ROUNDS, CHECKPOINT_AT, SEED = 30, 100, 50, 5


@pytest.mark.parametrize("architecture", ["mw", "fd"])
@pytest.mark.parametrize("engine", ["fast", "event"])
def test_resume_is_bit_identical(tmp_path, architecture, engine):
    store = CheckpointStore(tmp_path)
    full_trace, full = run_with_checkpoints(
        architecture, engine, WORKERS, ROUNDS, SEED,
        store=store, checkpoint_at=[CHECKPOINT_AT],
    )
    snapshot = store.load(CHECKPOINT_AT)
    assert snapshot.round_index == CHECKPOINT_AT
    resumed_trace, resumed = resume_run(snapshot)

    diff = diff_traces(full_trace, resumed_trace, include_header=True)
    assert diff.empty, diff.summary()
    assert np.array_equal(full.allocations, resumed.allocations)
    assert np.array_equal(full.global_costs, resumed.global_costs)
    assert np.array_equal(full.stragglers, resumed.stragglers)
    assert run_result_to_csv(full) == run_result_to_csv(resumed)


def test_trace_is_serialized_incrementally(tmp_path):
    # Each checkpoint's trace must extend the previous one's (the
    # runner only encodes records appended since the last checkpoint)
    # while the final snapshot still covers the full run.
    store = CheckpointStore(tmp_path)
    full_trace, _ = run_with_checkpoints(
        "fd", "fast", WORKERS, ROUNDS, SEED,
        store=store, checkpoint_every=4,
    )
    traces = [
        store.load(t).state["trace"] for t in range(4, ROUNDS + 1, 4)
    ]
    for earlier, later in zip(traces, traces[1:]):
        assert later[: len(earlier)] == earlier
        assert len(later) > len(earlier)
    assert all(store.load(t).state["trace_complete"]
               for t in range(4, ROUNDS + 1, 4))


def test_capture_trace_false_skips_trace_but_keeps_trajectory(tmp_path):
    store = CheckpointStore(tmp_path)
    _, full = run_with_checkpoints(
        "fd", "fast", WORKERS, ROUNDS, SEED,
        store=store, checkpoint_at=[CHECKPOINT_AT],
        capture_trace=False,
    )
    snapshot = store.load(CHECKPOINT_AT)
    assert snapshot.state["trace"] == []
    assert snapshot.state["trace_complete"] is False
    _, resumed = resume_run(snapshot)
    assert np.array_equal(full.allocations, resumed.allocations)
    assert np.array_equal(full.global_costs, resumed.global_costs)
    assert np.array_equal(full.stragglers, resumed.stragglers)


def test_resume_refuses_shorter_horizon(tmp_path):
    store = CheckpointStore(tmp_path)
    run_with_checkpoints(
        "mw", "fast", 6, 20, SEED, store=store, checkpoint_at=[10],
    )
    with pytest.raises(CheckpointError, match="already covers"):
        resume_run(store.load(10), rounds=5)


def test_checkpoints_without_store_rejected():
    with pytest.raises(CheckpointError, match="without a store"):
        run_with_checkpoints("mw", "fast", 6, 20, SEED, checkpoint_every=10)


def _run_cli(args, cwd, expect_kill=False):
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd, env=env, capture_output=True, text=True,
    )
    if expect_kill:
        assert proc.returncode == -signal.SIGKILL or proc.returncode == 137, (
            proc.returncode, proc.stderr
        )
    else:
        assert proc.returncode == 0, proc.stderr
    return proc


def test_cli_kill_resume_trace_is_byte_identical(tmp_path):
    """SIGKILL a checkpointed soak mid-run, resume it, and diff traces."""
    soak = [
        "chaos", "--protocol", "mw", "--workers", "5", "--rounds", "30",
        "--scenario", "rolling-restart",
    ]
    _run_cli(
        [*soak, "--checkpoint-every", "10", "--checkpoint-dir", "ck",
         "--kill-at-round", "20", "--trace-out", "dead.jsonl"],
        tmp_path, expect_kill=True,
    )
    assert sorted(p.name for p in (tmp_path / "ck").iterdir()) == [
        "ckpt-00000010.json", "ckpt-00000020.json",
    ]
    resumed = _run_cli(
        [*soak, "--checkpoint-dir", "ck", "--resume",
         "--trace-out", "resumed.jsonl"],
        tmp_path,
    )
    assert "resuming from round 20" in resumed.stdout
    assert "[PASS]" in resumed.stdout
    _run_cli([*soak, "--trace-out", "clean.jsonl"], tmp_path)

    from repro.io import load_trace

    diff = diff_traces(
        load_trace(tmp_path / "clean.jsonl"),
        load_trace(tmp_path / "resumed.jsonl"),
        include_header=True,
    )
    assert diff.empty, diff.summary()

"""Integration tests for hierarchical (tree) aggregation in the FD protocol.

Covers the tentpole contracts end to end: tree rounds reach the *exact*
flat consensus (straggler, global cost) while moving O(N) messages;
the trajectory gap against flat stays at the documented rounding level
and the measured regret gap is negligible; the float32 backend is
bit-stable run-to-run with the dtype asserted through the hot path;
crash -> fallback -> reshard keeps the chaos invariants clean; and the
aggregation configuration round-trips through checkpoint save/restore.
"""

import numpy as np
import pytest

from repro.chaos.invariants import RoundObservation, check_round_invariants
from repro.ckpt.state import capture_protocol, restore_protocol
from repro.costs.timevarying import DriftingAffineProcess
from repro.exceptions import CheckpointError, ConfigurationError
from repro.net.links import ConstantLatency, Link
from repro.protocols.fully_distributed import FullyDistributedDolbie


def _process(n, seed=0):
    speeds = [1.0 + 3.0 * (i / max(n - 1, 1)) for i in range(n)]
    return DriftingAffineProcess(speeds, amplitude=0.25, period=40.0, seed=seed)


def _protocol(n, **kwargs):
    return FullyDistributedDolbie(
        n, link=Link(ConstantLatency(0.001)), **kwargs
    )


class TestConsensusExactness:
    def test_tree_matches_flat_consensus_every_round(self):
        n, horizon = 23, 10
        flat = _protocol(n).run(_process(n), horizon)
        tree_protocol = _protocol(n, aggregation="tree", shard_size=4)
        tree = tree_protocol.run(_process(n), horizon)
        assert tree_protocol.tree_rounds == horizon
        # Round 1 plays the identical allocation, so the consensus there
        # is exact *bitwise*; later rounds' inputs differ by the decision
        # sum's reassociation dust, so their outcomes match to rounding.
        assert tree.global_costs[0] == flat.global_costs[0]
        assert np.array_equal(tree.stragglers, flat.stragglers)
        np.testing.assert_allclose(
            tree.global_costs, flat.global_costs, rtol=1e-12
        )
        # the decision SUM is reassociated -> rounding-level trajectory gap
        gap = np.abs(tree.allocations - flat.allocations).max()
        assert gap < 1e-12
        assert np.allclose(tree.allocations.sum(axis=1), 1.0, atol=1e-9)

    def test_message_complexity_is_linear(self):
        n, horizon = 60, 3
        tree_protocol = _protocol(n, aggregation="tree")
        tree_protocol.run(_process(n), horizon)
        flat_protocol = _protocol(n)
        flat_protocol.run(_process(n), horizon)
        per_round_tree = tree_protocol.metrics.messages_total / horizon
        per_round_flat = flat_protocol.metrics.messages_total / horizon
        assert per_round_flat >= n * (n - 1)
        assert per_round_tree < 4 * n  # ~3N frames per tree round

    def test_regret_gap_is_negligible(self):
        from repro.experiments.aggregation_experiment import run
        from repro.experiments.config import QUICK

        comparison = run(QUICK, num_workers=40, horizon=30)
        assert comparison.tree_rounds["tree"] == 30
        assert abs(comparison.regret_gap) < 1e-9
        assert abs(comparison.regret["flat"]) > 1e-3  # gap is relative to this

    def test_tree_requires_complete_topology(self):
        from repro.net.topology import Topology

        ring = Topology.ring(8)
        with pytest.raises(ConfigurationError):
            _protocol(8, aggregation="tree", topology=ring)


class TestFloat32Backend:
    def test_float32_is_bit_stable_run_to_run(self):
        n, horizon = 23, 8
        runs = []
        for _ in range(2):
            protocol = _protocol(n, aggregation="tree", backend="numpy32")
            runs.append(protocol.run(_process(n), horizon))
            assert protocol.tree_rounds == horizon
        assert np.array_equal(runs[0].allocations, runs[1].allocations)
        assert np.array_equal(runs[0].global_costs, runs[1].global_costs)

    def test_float32_dtype_is_asserted_end_to_end(self):
        # backend.ensure raises BackendError if any hot-path array leaves
        # float32; a clean run is the assertion. The boundary contract:
        # results surface as float64.
        n, horizon = 16, 5
        protocol = _protocol(n, aggregation="tree", backend="numpy32")
        result = protocol.run(_process(n), horizon)
        assert protocol.backend.dtype == np.dtype(np.float32)
        assert result.allocations.dtype == np.float64
        # simplex holds to float32 resolution
        assert np.abs(result.allocations.sum(axis=1) - 1.0).max() < 1e-5

    def test_flat_fast_path_accepts_float32_backend(self):
        n, horizon = 12, 5
        protocol = _protocol(n, backend="numpy32")
        result = protocol.run(_process(n), horizon)
        assert protocol.fast_rounds == horizon
        assert np.abs(result.allocations.sum(axis=1) - 1.0).max() < 1e-5


class TestCrashReshard:
    def test_crash_falls_back_then_resumes_tree_on_degraded_roster(self):
        n = 30
        protocol = _protocol(n, aggregation="tree", shard_size=4)
        process = _process(n)
        for t in range(1, 4):
            protocol.run_round(t, process.costs_at(t))
        assert protocol.tree_rounds == 3
        protocol.crash_worker(7)
        protocol.crash_worker(12)
        # failure detection re-agrees rosters on the event engine
        obs = RoundObservation(protocol)
        _, local, global_cost, straggler = protocol.run_round(
            4, process.costs_at(4)
        )
        assert protocol.tree_rounds == 3  # fallback round
        assert check_round_invariants(
            protocol, obs, 4, local, global_cost, straggler
        ) == []
        # next round reshards onto the 28-worker roster and runs tree
        obs = RoundObservation(protocol)
        _, local, global_cost, straggler = protocol.run_round(
            5, process.costs_at(5)
        )
        assert protocol.tree_rounds == 4
        assert sorted(protocol.roster) == [
            w for w in range(n) if w not in (7, 12)
        ]
        assert check_round_invariants(
            protocol, obs, 5, local, global_cost, straggler
        ) == []
        assert protocol.last_tree.validate(protocol.roster) == []
        # rejoin reshards again
        protocol.rejoin_worker(7)
        obs = RoundObservation(protocol)
        _, local, global_cost, straggler = protocol.run_round(
            6, process.costs_at(6)
        )
        assert check_round_invariants(
            protocol, obs, 6, local, global_cost, straggler
        ) == []
        assert protocol.allocation.sum() == pytest.approx(1.0)

    def test_invariant_checker_catches_corrupt_overlay(self):
        from repro.net.aggtree import AggregationTree

        n = 12
        protocol = _protocol(n, aggregation="tree", shard_size=3)
        process = _process(n)
        obs = RoundObservation(protocol)
        _, local, global_cost, straggler = protocol.run_round(
            1, process.costs_at(1)
        )
        assert protocol.tree_rounds == 1
        # overlay that covers the wrong roster
        protocol.last_tree = AggregationTree.build(range(n - 2), shard_size=3)
        violations = check_round_invariants(
            protocol, obs, 1, local, global_cost, straggler
        )
        assert any("aggregation tree" in v for v in violations)


class TestCheckpointRoundTrip:
    def _advance(self, protocol, process, start, stop):
        for t in range(start, stop):
            protocol.run_round(t, process.costs_at(t))

    def test_aggregation_state_round_trips(self):
        n = 15
        protocol = _protocol(n, aggregation="tree", shard_size=4, branching=2)
        process = _process(n)
        self._advance(protocol, process, 1, 5)
        state = capture_protocol(protocol)
        assert state["tree_rounds"] == 4
        assert state["aggregation"]["mode"] == "tree"
        assert state["aggregation"]["last_tree"] is not None

        replica = _protocol(n, aggregation="tree", shard_size=4, branching=2)
        restore_protocol(replica, state)
        assert replica.tree_rounds == 4
        assert replica.last_tree is not None
        assert replica.last_tree.shards == protocol.last_tree.shards
        assert replica.last_tree.validate(replica.roster) == []
        # the restored protocol continues on the tree path with the
        # exact same trajectory as the original
        self._advance(protocol, process, 5, 8)
        self._advance(replica, _process(n), 5, 8)
        assert np.array_equal(replica.allocation, protocol.allocation)
        assert replica.tree_rounds == protocol.tree_rounds

    def test_config_mismatch_is_rejected(self):
        n = 10
        protocol = _protocol(n, aggregation="tree", shard_size=3)
        process = _process(n)
        self._advance(protocol, process, 1, 3)
        state = capture_protocol(protocol)
        with pytest.raises(CheckpointError, match="aggregation config"):
            restore_protocol(_protocol(n), state)  # flat protocol
        with pytest.raises(CheckpointError, match="aggregation config"):
            restore_protocol(
                _protocol(n, aggregation="tree", shard_size=5), state
            )
        with pytest.raises(CheckpointError, match="aggregation config"):
            restore_protocol(
                _protocol(
                    n, aggregation="tree", shard_size=3, backend="numpy32"
                ),
                state,
            )

    def test_pre_aggregation_snapshot_still_restores(self):
        n = 8
        protocol = _protocol(n)
        process = _process(n)
        self._advance(protocol, process, 1, 3)
        state = capture_protocol(protocol)
        # simulate a snapshot written before the aggregation layer
        state = dict(state)
        state.pop("aggregation")
        state.pop("tree_rounds")
        replica = _protocol(n)
        restore_protocol(replica, state)
        assert replica.tree_rounds == 0
        assert replica.last_tree is None
        # rosters restore as shared frozensets
        rosters = {id(peer.roster) for peer in replica.peers}
        assert len(rosters) == 1
        assert isinstance(replica.peers[0].roster, frozenset)

"""Execute every code block of docs/tutorial.md so the tutorial cannot rot."""

import re
from pathlib import Path

import pytest

TUTORIAL = Path(__file__).resolve().parents[2] / "docs" / "tutorial.md"


def _code_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_tutorial_blocks_execute_in_order(capsys):
    blocks = _code_blocks(TUTORIAL.read_text())
    assert len(blocks) >= 4, "tutorial structure changed; update this test"
    namespace: dict = {}
    for block in blocks:
        exec(compile(block, str(TUTORIAL), "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    # The comparison table printed and contains the promised columns.
    assert "algorithm" in out and "DOLBIE" in out and "FTR" in out


def test_tutorial_promised_ordering():
    """The 'expected shape' paragraph must actually hold."""
    from repro.analysis import compare_runs
    from repro.baselines import make_balancer
    from repro.baselines.registry import register_algorithm, unregister_algorithm
    from repro.core.loop import run_online

    namespace: dict = {}
    blocks = _code_blocks(TUTORIAL.read_text())
    # Define the custom cost/process/algorithm (blocks 1-3), skipping the
    # final print and cleanup blocks.
    for block in blocks[:3]:
        exec(compile(block, str(TUTORIAL), "exec"), namespace)  # noqa: S102
    try:
        process = namespace["CacheChurnProcess"](num_workers=6)
        runs = {
            name: run_online(make_balancer(name, 6), process, 120)
            for name in ("EQU", "FTR", "DOLBIE", "OPT")
        }
        summaries = compare_runs(runs)
        order = [s.algorithm for s in summaries]
        assert order[0] == "OPT"
        assert order.index("DOLBIE") < order.index("EQU")
        assert order.index("FTR") < order.index("EQU")
    finally:
        unregister_algorithm("FTR")

"""Integration: the serving comparison experiment end-to-end at QUICK scale."""

import csv

import numpy as np
import pytest

from repro.experiments.config import QUICK
from repro.experiments.serving_experiment import (
    QUICK_POLICIES,
    fleet_service_rates,
    render_figure,
    run,
    write_csv,
)


@pytest.fixture(scope="module")
def comparison():
    return run(QUICK)


class TestComparison:
    def test_covers_every_quick_policy(self, comparison):
        assert set(comparison.summaries) == set(QUICK_POLICIES)
        assert comparison.num_workers == 8
        for summary in comparison.summaries.values():
            assert summary.requests == comparison.requests
            assert summary.completed == comparison.requests
            assert summary.failed == 0
            assert 0.0 < summary.p50 <= summary.p99 <= summary.p999
            assert np.isfinite(summary.p999)

    def test_dolbie_beats_wrr_on_p99(self, comparison):
        # The headline: same speed-proportional starting weights, so the
        # gap is exactly what online min-max adaptation buys.
        assert comparison.p99_gap > 0.0

    def test_fd_control_plane_matches_centralized(self, comparison):
        # Same update rule, so the distributed control plane reproduces
        # the centralized DOLBIE run bit-for-bit (all fields except the
        # policy name itself).
        from dataclasses import asdict

        fd = asdict(comparison.summaries["dolbie-fd"])
        central = asdict(comparison.summaries["dolbie"])
        fd.pop("policy"), central.pop("policy")
        assert fd == central

    def test_jsq_oracle_beats_every_weight_policy(self, comparison):
        # Instantaneous global state is strictly more information than
        # any weight vector; if this inverts, the dispatcher is broken.
        jsq = comparison.summaries["jsq"].p99
        for name in ("wrr", "dolbie"):
            assert jsq < comparison.summaries[name].p99

    def test_every_policy_saw_the_identical_trace(self, comparison):
        durations = {
            s.duration for s in comparison.summaries.values()
        }
        assert len(durations) == 1  # same arrival stream for everyone

    def test_fleet_is_heterogeneous(self):
        mu = fleet_service_rates(8)
        assert mu.shape == (8,)
        assert mu[-1] / mu[0] == pytest.approx(6.0)


class TestWriters:
    def test_csv_has_one_row_per_period(self, comparison, tmp_path):
        path = write_csv(comparison, tmp_path / "serving_p99.csv")
        with path.open() as handle:
            rows = list(csv.reader(handle))
        header, data = rows[0], rows[1:]
        assert header[0] == "period"
        assert set(header[1:]) == set(QUICK_POLICIES)
        periods = min(len(s) for s in comparison.period_p99.values())
        assert len(data) == periods
        # repr round-trip: the CSV is bit-exact.
        name = header[1]
        assert float(data[0][1]) == float(comparison.period_p99[name][0])

    def test_figure_renders_svg(self, comparison, tmp_path):
        path = render_figure(comparison, tmp_path / "serving_p99.svg")
        content = path.read_text()
        assert content.startswith("<svg") or "<svg" in content
        for name in QUICK_POLICIES:
            assert name in content

"""The rolling-restart chaos scenario, soaked at acceptance scale.

A 200+-round soak where at least 3 distinct workers take ``restart``
faults must complete with zero invariant violations — including the
ledger prefix-consistency invariant that distinguishes a restart
(checkpointed ledger survives) from a cold crash (ledger lost) — and
be bit-identical across seeded reruns. Checkpointing the soak midway
and resuming must reproduce the same report.
"""

import numpy as np
import pytest

from repro.chaos.faults import FaultSchedule
from repro.chaos.soak import run_soak
from repro.ckpt import CheckpointStore
from repro.costs.timevarying import RandomAffineProcess
from repro.exceptions import CheckpointError
from repro.net.links import ConstantLatency, Link
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie

WORKERS, ROUNDS = 8, 220


def _factory(architecture):
    cls = {
        "mw": MasterWorkerDolbie, "fd": FullyDistributedDolbie,
    }[architecture]
    return lambda: cls(WORKERS, link=Link(ConstantLatency(0.001)))


@pytest.fixture(scope="module")
def schedule():
    return FaultSchedule.rolling_restart(
        WORKERS, ROUNDS, start=10, interval=5, downtime=2, cycles=3,
    )


@pytest.fixture(scope="module")
def process():
    return RandomAffineProcess(
        speeds=np.linspace(1.0, 2.0, WORKERS), seed=11
    )


def test_schedule_restarts_enough_workers(schedule):
    restarted = {e.workers[0] for e in schedule.events}
    assert len(restarted) >= 3
    assert len(schedule.events) >= WORKERS  # multiple cycles landed


@pytest.mark.parametrize("architecture", ["mw", "fd"])
def test_soak_completes_with_zero_violations(schedule, process, architecture):
    report = run_soak(_factory(architecture), schedule, process, ROUNDS)
    assert report.ok, report.summary()
    assert report.rounds_completed == ROUNDS
    assert report.event_counts["restart"] == len(schedule.events)
    assert report.final_roster == tuple(range(WORKERS))


@pytest.mark.parametrize("architecture", ["mw", "fd"])
def test_seeded_reruns_are_bit_identical(schedule, process, architecture):
    first = run_soak(_factory(architecture), schedule, process, ROUNDS)
    second = run_soak(_factory(architecture), schedule, process, ROUNDS)
    assert np.array_equal(first.allocations, second.allocations)
    assert np.array_equal(first.global_costs, second.global_costs)
    assert first.virtual_time == second.virtual_time
    assert first.messages_total == second.messages_total


@pytest.mark.parametrize("architecture", ["mw", "fd"])
def test_checkpointed_soak_resumes_bit_identically(
    tmp_path, schedule, process, architecture
):
    factory = _factory(architecture)
    baseline = run_soak(factory, schedule, process, ROUNDS)
    store = CheckpointStore(tmp_path / architecture)
    interrupted = run_soak(
        factory, schedule, process, ROUNDS,
        checkpoint_every=50, checkpoint_store=store,
    )
    assert store.rounds() == [50, 100, 150, 200]
    # Resume from the middle of the restart sweep: pending restarts and
    # preserved ledger prefixes are in flight at round 100.
    resumed = run_soak(
        factory, schedule, process, ROUNDS, resume_from=store.load(100),
    )
    assert resumed.ok, resumed.summary()
    assert resumed.resumed_from == 100
    for report in (interrupted, resumed):
        assert np.array_equal(baseline.allocations, report.allocations)
        assert np.array_equal(baseline.global_costs, report.global_costs)
        assert baseline.event_counts == report.event_counts
        assert baseline.virtual_time == report.virtual_time
        assert baseline.messages_total == report.messages_total


def test_resume_rejects_a_different_schedule(tmp_path, schedule, process):
    factory = _factory("mw")
    store = CheckpointStore(tmp_path)
    run_soak(
        factory, schedule, process, ROUNDS,
        checkpoint_every=100, checkpoint_store=store,
    )
    other = FaultSchedule.rolling_restart(
        WORKERS, ROUNDS, start=11, interval=5, downtime=2,
    )
    with pytest.raises(CheckpointError, match="different fault schedule"):
        run_soak(
            factory, other, process, ROUNDS, resume_from=store.load(100),
        )

"""Integration tests for the compiled FD tree round.

The ``compiled`` backend replaces the python tree round's per-phase
numpy with fused kernels, frame plans, and slim round bookkeeping — and
the contract that makes it a backend (not a fork) is observational
equivalence: **bit-identical** traces, ledgers, metrics, and virtual
clock against the python tree path on float64, at any shard thread
count. These tests pin that contract end to end, plus the chaos and
checkpoint stories: compiled tree rounds under a fault schedule keep
every invariant (including invariant 7, overlay consistency), and the
aggregation config round-trips through snapshots with backend mismatch
rejected loudly.
"""

import numpy as np
import pytest

from repro.chaos.faults import FaultSchedule
from repro.chaos.soak import run_soak
from repro.ckpt.state import capture_protocol, restore_protocol
from repro.costs.timevarying import DriftingAffineProcess
from repro.exceptions import CheckpointError, ConfigurationError
from repro.net.links import ConstantLatency, Link, UniformLatency
from repro.obs import Tracer, diff_traces
from repro.protocols.fully_distributed import (
    SHARD_PROCS_ENV,
    SHARD_THREADS_ENV,
    FullyDistributedDolbie,
)


def _process(n, seed=0):
    speeds = [1.0 + 3.0 * (i / max(n - 1, 1)) for i in range(n)]
    return DriftingAffineProcess(speeds, amplitude=0.25, period=40.0, seed=seed)


def _protocol(n, **kwargs):
    link = kwargs.pop(
        "link", Link(UniformLatency(0.0005, 0.005, np.random.default_rng(n)))
    )
    return FullyDistributedDolbie(
        n, link=link, aggregation="tree", **kwargs
    )


def _assert_observationally_equal(a, b, result_a, result_b):
    assert np.array_equal(result_a.allocations, result_b.allocations)
    assert np.array_equal(result_a.global_costs, result_b.global_costs)
    assert np.array_equal(result_a.stragglers, result_b.stragglers)
    assert np.array_equal(
        result_a.local_costs, result_b.local_costs, equal_nan=True
    )
    assert a.ledger == b.ledger
    for i in range(a.num_workers):
        assert a.worker_ledger(i) == b.worker_ledger(i)
    assert a.metrics.messages_total == b.metrics.messages_total
    assert a.metrics.bytes_total == b.metrics.bytes_total
    assert a.metrics.per_pair_messages == b.metrics.per_pair_messages
    assert a.cluster.engine.now == b.cluster.engine.now
    assert a.cluster.engine.processed_events == b.cluster.engine.processed_events
    assert [p.x for p in a.peers] == [p.x for p in b.peers]
    assert [p.alpha_bar for p in a.peers] == [p.alpha_bar for p in b.peers]


class TestCompiledBitIdentity:
    def test_trace_diff_empty_and_ledgers_equal_at_n1000(self):
        n, horizon = 1000, 4
        runs = {}
        for backend in ("numpy64", "compiled"):
            tracer = Tracer()
            protocol = _protocol(n, backend=backend, tracer=tracer)
            runs[backend] = (
                protocol, protocol.run(_process(n), horizon), tracer
            )
            assert protocol.tree_rounds == horizon
        python_p, python_r, python_t = runs["numpy64"]
        compiled_p, compiled_r, compiled_t = runs["compiled"]
        diff = diff_traces(python_t.trace, compiled_t.trace)
        assert diff.empty, diff.summary()
        _assert_observationally_equal(
            python_p, compiled_p, python_r, compiled_r
        )

    def test_membership_churn_reconverges_to_identical_state(self):
        # Crash + rejoin forces the compiled round off its clean route
        # (membership dirty) and back on; the python path must be
        # matched bit for bit through the whole episode.
        n, seed = 60, 3
        runs = {}
        for backend in ("numpy64", "compiled"):
            protocol = _protocol(n, backend=backend, shard_size=8)
            process = _process(n, seed=seed)
            outcomes = []
            for t in range(1, 16):
                if t == 4:
                    protocol.crash_worker(17)
                    protocol.crash_worker(0)  # a shard head
                if t == 9:
                    protocol.rejoin_worker(17)
                x, _, cost, straggler = protocol.run_round(
                    t, process.costs_at(t)
                )
                outcomes.append((tuple(x), cost, straggler))
            runs[backend] = (protocol, outcomes)
        assert runs["numpy64"][1] == runs["compiled"][1]
        assert runs["numpy64"][0].ledger == runs["compiled"][0].ledger
        assert runs["compiled"][0].tree_rounds > 0


class TestParallelShards:
    @pytest.mark.parametrize("threads", [2, 3, 7])
    def test_any_thread_count_is_bit_identical_to_serial(self, threads):
        n, horizon = 200, 6
        serial = _protocol(n, backend="compiled", shard_threads=1)
        threaded = _protocol(n, backend="compiled", shard_threads=threads)
        result_serial = serial.run(_process(n), horizon)
        result_threaded = threaded.run(_process(n), horizon)
        _assert_observationally_equal(
            serial, threaded, result_serial, result_threaded
        )

    def test_env_default_and_validation(self, monkeypatch):
        monkeypatch.setenv(SHARD_THREADS_ENV, "4")
        assert _protocol(10, backend="compiled").shard_threads == 4
        monkeypatch.delenv(SHARD_THREADS_ENV)
        assert _protocol(10, backend="compiled").shard_threads == 1
        with pytest.raises(ConfigurationError, match="shard_threads"):
            _protocol(10, backend="compiled", shard_threads=0)


class TestParallelProcs:
    """The process layer (Layer 10): same disjoint-range rule as the
    thread pool, so any process count must be bit-identical to serial —
    including the acceptance pin at N=1000 with an empty trace diff."""

    @pytest.mark.parametrize("procs", [2, 3])
    def test_any_process_count_is_bit_identical_to_serial(self, procs):
        n, horizon = 120, 4
        serial = _protocol(n, backend="compiled", shard_procs=1)
        parallel = _protocol(n, backend="compiled", shard_procs=procs)
        result_serial = serial.run(_process(n), horizon)
        result_parallel = parallel.run(_process(n), horizon)
        _assert_observationally_equal(
            serial, parallel, result_serial, result_parallel
        )

    def test_procs2_trace_diff_empty_and_ledgers_equal_at_n1000(self):
        n, horizon = 1000, 3
        runs = {}
        for procs in (1, 2):
            tracer = Tracer()
            protocol = _protocol(
                n, backend="compiled", shard_procs=procs, tracer=tracer
            )
            runs[procs] = (
                protocol, protocol.run(_process(n), horizon), tracer
            )
            assert protocol.tree_rounds == horizon
        diff = diff_traces(runs[1][2].trace, runs[2][2].trace)
        assert diff.empty, diff.summary()
        assert runs[1][0].ledger == runs[2][0].ledger
        _assert_observationally_equal(
            runs[1][0], runs[2][0], runs[1][1], runs[2][1]
        )

    def test_membership_churn_respawns_the_shared_segment(self):
        # Crash/rejoin invalidates the compiled round: the old shm
        # segment must be released and a fresh one attached, with the
        # whole episode still bit-identical to serial.
        n, seed = 60, 3
        runs = {}
        for procs in (1, 2):
            protocol = _protocol(
                n, backend="compiled", shard_size=8, shard_procs=procs
            )
            process = _process(n, seed=seed)
            outcomes = []
            for t in range(1, 13):
                if t == 4:
                    protocol.crash_worker(17)
                if t == 8:
                    protocol.rejoin_worker(17)
                x, _, cost, straggler = protocol.run_round(
                    t, process.costs_at(t)
                )
                outcomes.append((tuple(x), cost, straggler))
            runs[procs] = (protocol, outcomes)
        assert runs[1][1] == runs[2][1]
        assert runs[1][0].ledger == runs[2][0].ledger

    def test_env_default_and_validation(self, monkeypatch):
        monkeypatch.setenv(SHARD_PROCS_ENV, "2")
        assert _protocol(10, backend="compiled").shard_procs == 2
        monkeypatch.delenv(SHARD_PROCS_ENV)
        assert _protocol(10, backend="compiled").shard_procs == 1
        with pytest.raises(ConfigurationError, match="shard_procs"):
            _protocol(10, backend="compiled", shard_procs=0)

    def test_pool_failure_falls_back_to_serial_with_warning(self, monkeypatch):
        from repro.backend import shardpool
        from repro.protocols import fully_distributed as fd

        def broken_pool(procs):
            raise OSError("no process pool here")

        monkeypatch.setattr(shardpool, "get_pool", broken_pool)
        monkeypatch.setattr(fd, "_warned_shard_procs_fallback", False)
        serial = _protocol(40, backend="compiled", shard_procs=1)
        degraded = _protocol(40, backend="compiled", shard_procs=2)
        result_serial = serial.run(_process(40), 3)
        # The compiled round (and with it the pool attempt) is built
        # lazily on the first eligible round.
        with pytest.warns(RuntimeWarning, match="shard_procs"):
            result_degraded = degraded.run(_process(40), 3)
        _assert_observationally_equal(
            serial, degraded, result_serial, result_degraded
        )


class TestChaosSoak:
    N = 12
    ROUNDS = 160

    def _factory(self, backend):
        def factory():
            return FullyDistributedDolbie(
                self.N,
                link=Link(ConstantLatency(0.001)),
                aggregation="tree",
                shard_size=4,
                backend=backend,
            )

        return factory

    def test_compiled_tree_soak_keeps_all_invariants(self):
        # run_soak checks every invariant after every round — including
        # invariant 7 (overlay consistency) on the rounds that took the
        # tree path under the compiled backend.
        schedule = FaultSchedule.random(self.N, self.ROUNDS, seed=42)
        process = _process(self.N, seed=11)
        compiled = run_soak(
            self._factory("compiled"), schedule, process, self.ROUNDS
        )
        assert compiled.ok, compiled.summary()
        assert compiled.rounds_completed == self.ROUNDS
        assert compiled.violations == ()
        # and the soak trajectory equals the python backend's, so chaos
        # handling (fallback rounds, resharding) diverged nowhere
        python = run_soak(
            self._factory("numpy64"), schedule, process, self.ROUNDS
        )
        assert np.array_equal(compiled.allocations, python.allocations)
        assert np.array_equal(compiled.global_costs, python.global_costs)


class TestCheckpointRoundTrip:
    def _advance(self, protocol, process, start, stop):
        for t in range(start, stop):
            protocol.run_round(t, process.costs_at(t))

    def test_compiled_parallel_config_round_trips(self):
        n = 24
        protocol = _protocol(
            n, backend="compiled", shard_size=5, shard_threads=3
        )
        process = _process(n)
        self._advance(protocol, process, 1, 6)
        state = capture_protocol(protocol)
        assert state["aggregation"]["backend"] == "compiled"
        assert state["aggregation"]["shard_threads"] == 3

        # shard_threads is informational, not identity: any thread count
        # restores (the compiled round is bit-identical at all counts)
        replica = _protocol(
            n, backend="compiled", shard_size=5, shard_threads=1
        )
        restore_protocol(replica, state)
        self._advance(protocol, process, 6, 10)
        self._advance(replica, _process(n), 6, 10)
        assert np.array_equal(replica.allocation, protocol.allocation)
        assert replica.ledger == protocol.ledger

    def test_backend_mismatch_is_rejected(self):
        n = 12
        protocol = _protocol(n, backend="compiled", shard_size=4)
        self._advance(protocol, _process(n), 1, 3)
        state = capture_protocol(protocol)
        with pytest.raises(CheckpointError, match="aggregation config"):
            restore_protocol(_protocol(n, shard_size=4), state)

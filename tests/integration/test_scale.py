"""Integration: moderate-scale sanity (beyond the paper's N = 30)."""

import numpy as np

from repro.core.dolbie import Dolbie
from repro.core.loop import run_online
from repro.costs.timevarying import RandomAffineProcess
from repro.minmax.solver import solve_min_max
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie
from repro.simplex.sampling import is_feasible


def _speeds(n):
    return [1.0 + (i % 23) for i in range(n)]


class TestScale:
    def test_dolbie_at_n300(self):
        n = 300
        process = RandomAffineProcess(_speeds(n), sigma=0.1, seed=0)
        balancer = Dolbie(n)
        result = run_online(balancer, process, 50)
        assert is_feasible(result.allocations[-1], atol=1e-7)
        assert result.global_costs[-1] < result.global_costs[0]

    def test_master_worker_round_at_n200(self):
        n = 200
        process = RandomAffineProcess(_speeds(n), sigma=0.1, seed=1)
        protocol = MasterWorkerDolbie(n)
        protocol.run_round(1, process.costs_at(1))
        assert protocol.metrics.messages_total == 3 * n

    def test_fully_distributed_round_at_n100(self):
        n = 100
        process = RandomAffineProcess(_speeds(n), sigma=0.1, seed=2)
        protocol = FullyDistributedDolbie(n)
        protocol.run_round(1, process.costs_at(1))
        assert protocol.metrics.messages_total == n * n - 1

    def test_minmax_solver_at_n1000(self):
        from repro.costs.affine import AffineLatencyCost

        rng = np.random.default_rng(3)
        costs = [
            AffineLatencyCost(slope=s, intercept=c)
            for s, c in zip(rng.uniform(0.1, 10, 1000), rng.uniform(0, 0.1, 1000))
        ]
        solution = solve_min_max(costs)
        assert is_feasible(solution.allocation, atol=1e-6)

"""Golden-trace regression tests.

The committed files under ``tests/golden/`` are the conformance oracle
for the full stack: protocol round loops, the DOLBIE update, the network
substrate, and the trace serialization itself. Each protocol scenario is
replayed on BOTH execution paths — the batched fast path and the
discrete-event engine — and each replay must diff empty against the same
committed file, which simultaneously pins the trajectory and proves the
two engines agree record-for-record.

On an intentional behavior change, regenerate with::

    PYTHONPATH=src python tests/golden/regenerate.py --bless
"""

from pathlib import Path

import pytest

from repro.io import load_trace
from repro.obs import diff_traces
from repro.obs.scenarios import build_trace

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"

BLESS_HINT = (
    "golden trace differs; if the change is intentional, regenerate with "
    "`PYTHONPATH=src python tests/golden/regenerate.py --bless`"
)


def _golden(name: str):
    path = GOLDEN_DIR / f"{name}.jsonl"
    assert path.exists(), f"missing golden trace {path}"
    return load_trace(path)


@pytest.mark.parametrize("scenario", ["mw", "fd"])
@pytest.mark.parametrize("engine", ["fast", "event"])
def test_protocol_matches_golden_on_both_engines(scenario, engine):
    trace = build_trace(scenario, engine=engine)
    diff = diff_traces(_golden(scenario), trace)
    assert diff.empty, f"[{scenario}/{engine}] {BLESS_HINT}\n{diff.summary()}"


@pytest.mark.parametrize("scenario", ["loop", "trainer"])
def test_core_scenarios_match_golden(scenario):
    trace = build_trace(scenario)
    diff = diff_traces(_golden(scenario), trace, include_header=True)
    assert diff.empty, f"[{scenario}] {BLESS_HINT}\n{diff.summary()}"


def test_golden_traces_have_expected_shape():
    for scenario in ("mw", "fd", "loop"):
        trace = _golden(scenario)
        counts = trace.kind_counts()
        assert counts["header"] == 1
        assert counts["decision"] == 30
        assert counts["straggler"] == 30
        assert trace.rounds() == (1, 30)
    # Protocol traces additionally carry one phase record per round.
    assert _golden("mw").kind_counts()["phase"] == 30
    assert _golden("fd").kind_counts()["phase"] == 30
    # The centralized loop instruments DOLBIE itself, so its golden
    # also pins the risk-averse update internals (Eqs. 4-7).
    assert _golden("loop").kind_counts()["assistance"] == 30


def test_mw_and_fd_play_equivalent_decision_streams():
    """Algorithms 1 and 2 compute the same DOLBIE trajectory up to
    floating-point summation order (the master reduces centrally, the
    peers reduce locally): stragglers must match exactly, allocations to
    machine precision."""
    import numpy as np

    mw = _golden("mw").by_kind("decision")
    fd = _golden("fd").by_kind("decision")
    assert [r.straggler for r in mw] == [r.straggler for r in fd]
    assert [r.round for r in mw] == [r.round for r in fd]
    np.testing.assert_allclose(
        [r.next_allocation for r in mw],
        [r.next_allocation for r in fd],
        rtol=0,
        atol=1e-12,
    )
    np.testing.assert_allclose(
        [r.global_cost for r in mw],
        [r.global_cost for r in fd],
        rtol=1e-12,
    )


def test_serving_scenario_matches_golden():
    trace = build_trace("serving")
    diff = diff_traces(_golden("serving"), trace, include_header=True)
    assert diff.empty, f"[serving] {BLESS_HINT}\n{diff.summary()}"


def test_serving_golden_has_expected_shape():
    trace = _golden("serving")
    counts = trace.kind_counts()
    assert counts["header"] == 1
    assert counts["serving_summary"] == 1
    # One record per control period, plus the final partial period.
    assert counts["serving_period"] >= 30
    summary = trace.by_kind("serving_summary")[0]
    assert summary.completed == summary.requests
    assert summary.failed == 0
    assert 0.0 < summary.p50 <= summary.p99 <= summary.p999


def test_serving_scenario_is_bit_identical_across_runs():
    # Two in-process builds — fresh RNG substreams each — must agree on
    # every record field, the cross-run determinism contract CI also
    # checks through the CLI.
    diff = diff_traces(
        build_trace("serving"), build_trace("serving"), include_header=True
    )
    assert diff.empty, diff.summary()

"""Integration: the realization-stacked sweep engine vs. the serial loop.

:func:`repro.experiments.stacked.sweep_stacked` advances all realizations
of a sweep in lockstep as one batched policy per algorithm. Its contract
is bit-identity with the per-realization serial sweep: every simulated
series matches ``==``-exactly, and CSVs exported through either path are
byte-identical. These tests pin that contract end to end, including the
engagement/fallback conditions and the warm-materialization-cache rerun.

``decision_seconds`` (and with ``include_overhead`` the wall clock) is
measured stopwatch time — never reproducible — so the scales here use
``include_overhead=False`` and the exact-field list excludes it, exactly
as ``test_materialization`` does for the vectorized trainer.
"""

from dataclasses import replace

import numpy as np
import pytest

import repro.experiments.stacked as stacked_module
from repro.experiments.config import QUICK
from repro.experiments.export_all import export_all
from repro.experiments.harness import sweep_realizations
from repro.experiments.stacked import stacked_supported, sweep_stacked

SMALL = replace(
    QUICK,
    num_workers=6,
    rounds=25,
    realizations=3,
    include_overhead=False,
)

EXACT_FIELDS = [
    "batch_fractions",
    "batch_sizes",
    "compute_time",
    "comm_time",
    "local_latency",
    "round_latency",
    "waiting_time",
    "stragglers",
    "wall_clock",
    "epochs",
    "accuracy",
]


def _assert_sweeps_identical(first, second, realizations):
    assert first.keys() == second.keys()
    for name in first:
        assert len(first[name]) == realizations
        for run_a, run_b in zip(first[name], second[name]):
            for field in EXACT_FIELDS:
                assert np.array_equal(
                    getattr(run_a, field), getattr(run_b, field)
                ), (name, field)


class TestStackedBitIdentity:
    def test_stacked_and_serial_sweeps_identical(self):
        stacked = sweep_realizations("ResNet18", SMALL)
        serial = sweep_realizations(
            "ResNet18", replace(SMALL, stacked=False)
        )
        _assert_sweeps_identical(stacked, serial, SMALL.realizations)

    def test_warm_cache_rerun_is_identical(self):
        first = sweep_realizations("ResNet18", SMALL)  # populates cache
        second = sweep_realizations("ResNet18", SMALL)  # pure hits
        _assert_sweeps_identical(first, second, SMALL.realizations)

    def test_cache_disabled_sweep_is_identical(self):
        cached = sweep_realizations("ResNet18", SMALL)
        uncached = sweep_realizations(
            "ResNet18", replace(SMALL, cache=False)
        )
        _assert_sweeps_identical(cached, uncached, SMALL.realizations)

    @pytest.mark.parametrize("figure", ["fig4", "fig5"])
    def test_exported_csv_bytes_identical(self, figure, tmp_path):
        (stacked_csv,) = export_all(
            tmp_path / "stacked", SMALL, only=[figure]
        )
        (serial_csv,) = export_all(
            tmp_path / "serial",
            replace(SMALL, stacked=False),
            only=[figure],
        )
        assert stacked_csv.read_bytes() == serial_csv.read_bytes()


class TestEngagementAndFallback:
    def test_default_serial_sweep_takes_the_stacked_path(self, monkeypatch):
        calls = []
        original = stacked_module.sweep_stacked

        def spy(*args, **kwargs):
            result = original(*args, **kwargs)
            calls.append(result is not None)
            return result

        monkeypatch.setattr(stacked_module, "sweep_stacked", spy)
        sweep_realizations("ResNet18", SMALL)
        assert calls == [True]

    def test_stacked_false_forces_the_serial_loop(self, monkeypatch):
        def explode(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("stacked engine engaged despite stacked=False")

        monkeypatch.setattr(stacked_module, "sweep_stacked", explode)
        sweeps = sweep_realizations(
            "ResNet18", replace(SMALL, stacked=False)
        )
        assert len(sweeps["DOLBIE"]) == SMALL.realizations

    def test_incremental_environments_are_unsupported(self):
        incremental = replace(SMALL, materialize=False)
        assert not stacked_supported(incremental, ["DOLBIE"])
        assert sweep_stacked("ResNet18", incremental) is None

    def test_unknown_algorithm_is_unsupported(self):
        assert not stacked_supported(SMALL, ["DOLBIE", "MYSTERY"])

    def test_subset_of_algorithms_still_matches(self):
        algorithms = ["EQU", "DOLBIE", "OPT"]
        stacked = sweep_realizations("ResNet18", SMALL, algorithms=algorithms)
        serial = sweep_realizations(
            "ResNet18", replace(SMALL, stacked=False), algorithms=algorithms
        )
        assert sorted(stacked) == sorted(algorithms)
        _assert_sweeps_identical(stacked, serial, SMALL.realizations)

"""Integration: the paper's qualitative results hold on the simulator.

These assertions encode the *shape* of §VI that the reproduction must
preserve — who wins, roughly by how much, and the qualitative behaviours
the paper describes for each algorithm — at a laptop-scale configuration.
"""

import numpy as np
import pytest

from repro.experiments.config import PAPER, paper_balancer
from repro.experiments.harness import train_all
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.trainer import SyncTrainer

ROUNDS = 100
SEED = 0


@pytest.fixture(scope="module")
def resnet_runs():
    """All six algorithms on one ResNet18 realization at paper scale."""
    return train_all("ResNet18", PAPER, rounds=ROUNDS, seed=SEED)


class TestPerRoundLatencyShape(object):
    def test_opt_lower_bounds_everyone(self, resnet_runs):
        opt = resnet_runs["OPT"].round_latency
        for name, run in resnet_runs.items():
            if name != "OPT":
                assert (run.round_latency >= opt - 1e-9).all()

    def test_dolbie_beats_all_online_baselines_at_round_40(self, resnet_runs):
        window = slice(35, 45)
        dolbie = resnet_runs["DOLBIE"].round_latency[window].mean()
        for name in ("EQU", "OGD", "LB-BSP", "ABS"):
            assert dolbie < resnet_runs[name].round_latency[window].mean()

    def test_dolbie_large_reduction_vs_equ(self, resnet_runs):
        """Paper: 89.6% at round 40; require at least 60% on our substrate."""
        window = slice(35, 45)
        dolbie = resnet_runs["DOLBIE"].round_latency[window].mean()
        equ = resnet_runs["EQU"].round_latency[window].mean()
        assert dolbie < 0.4 * equ

    def test_equ_is_worst_overall(self, resnet_runs):
        equ = resnet_runs["EQU"].total_time
        for name, run in resnet_runs.items():
            if name != "EQU":
                assert run.total_time < equ

    def test_dolbie_converges_toward_opt(self, resnet_runs):
        """Late-round DOLBIE latency within a small factor of OPT."""
        dolbie = resnet_runs["DOLBIE"].round_latency[60:].mean()
        opt = resnet_runs["OPT"].round_latency[60:].mean()
        assert dolbie < 3.0 * opt

    def test_abs_fluctuates_more_than_dolbie(self, resnet_runs):
        """Paper: 'ABS shows a radical fluctuation'."""
        abs_late = resnet_runs["ABS"].round_latency[40:]
        dolbie_late = resnet_runs["DOLBIE"].round_latency[40:]
        assert abs_late.std() > dolbie_late.std()

    def test_lbbsp_moves_in_staircase_steps(self, resnet_runs):
        """LB-BSP changes workloads only in Delta-sized steps (clamped at
        the straggler's remaining workload), and only at transfer rounds."""
        sizes = resnet_runs["LB-BSP"].batch_fractions
        deltas = np.abs(np.diff(sizes, axis=0))
        changed = deltas[deltas > 1e-12]
        assert changed.size > 0
        assert (changed <= 5.0 / 256.0 + 1e-9).all()
        # Most steps are the full Delta.
        assert (np.abs(changed - 5.0 / 256.0) < 1e-9).mean() > 0.5


class TestIdleTimeShape(object):
    def test_dolbie_has_least_idle_time_among_online(self, resnet_runs):
        """Paper Fig. 11: DOLBIE cuts idle time vs every online baseline."""
        dolbie = resnet_runs["DOLBIE"].waiting_time.mean()
        for name in ("EQU", "OGD", "LB-BSP", "ABS"):
            assert dolbie < resnet_runs[name].waiting_time.mean()

    def test_opt_nearly_eliminates_waiting(self, resnet_runs):
        opt = resnet_runs["OPT"]
        assert opt.waiting_time.mean() < 0.3 * resnet_runs["EQU"].waiting_time.mean()


class TestBatchSizeShape(object):
    def test_dolbie_gives_gpus_more_work_than_cpus(self, resnet_runs):
        env = TrainingEnvironment("ResNet18", num_workers=PAPER.num_workers,
                                  global_batch=PAPER.global_batch, seed=SEED)
        types = np.array(env.processor_names())
        final = resnet_runs["DOLBIE"].batch_fractions[-1]
        gpu = final[np.isin(types, ["Tesla V100", "Tesla P100", "Tesla T4"])].mean()
        cpu = final[types == "E5-2683 v4"].mean()
        assert gpu > 3 * cpu

    def test_straggler_workload_shrinks_under_dolbie(self, resnet_runs):
        run = resnet_runs["DOLBIE"]
        first_straggler = run.stragglers[0]
        assert (
            run.batch_fractions[-1, first_straggler]
            < run.batch_fractions[0, first_straggler]
        )


class TestModelSizeTrend(object):
    @pytest.mark.parametrize("pair", [("LeNet5", "VGG16")])
    def test_advantage_grows_with_model_size(self, pair):
        """Paper: DOLBIE's advantage grows from LeNet5 to VGG16."""
        small_model, large_model = pair
        advantages = {}
        for model in pair:
            env = TrainingEnvironment(model, num_workers=PAPER.num_workers,
                                      global_batch=PAPER.global_batch, seed=SEED)
            trainer = SyncTrainer(env)
            equ = trainer.train(paper_balancer("EQU", PAPER.num_workers), ROUNDS)
            dolbie = trainer.train(paper_balancer("DOLBIE", PAPER.num_workers), ROUNDS)
            advantages[model] = equ.total_time / dolbie.total_time
        assert advantages[large_model] > advantages[small_model]

"""Integration: the CSV exporter and the export CLI command."""

import csv

import pytest

from repro.cli import main
from repro.experiments.config import QUICK
from repro.experiments.export_all import _EXPORTERS, export_all


class TestExportAll:
    def test_selected_exports_written(self, tmp_path):
        paths = export_all(tmp_path, QUICK, only=["fig3", "complexity"])
        assert len(paths) == 2
        for path in paths:
            assert path.exists()
            with path.open() as handle:
                rows = list(csv.reader(handle))
            assert len(rows) > 1  # header + data

    def test_fig3_long_format(self, tmp_path):
        (path,) = export_all(tmp_path, QUICK, only=["fig3"])
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        algorithms = {row["algorithm"] for row in rows}
        assert "DOLBIE" in algorithms and "OPT" in algorithms
        per_algo = sum(1 for row in rows if row["algorithm"] == "DOLBIE")
        assert per_algo == QUICK.rounds

    def test_unknown_export_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            export_all(tmp_path, QUICK, only=["fig99"])

    def test_exporter_registry_nonempty(self):
        assert {"fig3", "fig4", "fig5", "fig11", "complexity", "regret",
                "sensitivity", "fig6to8"} == set(_EXPORTERS)


class TestExportCli:
    def test_export_command(self, tmp_path, capsys):
        code = main(
            ["export", "--out", str(tmp_path), "--scale", "quick",
             "--only", "complexity"]
        )
        assert code == 0
        assert (tmp_path / "complexity_messages.csv").exists()
        assert "wrote" in capsys.readouterr().out


class TestEveryExporter:
    @pytest.mark.parametrize("name", sorted(_EXPORTERS))
    def test_exporter_writes_nonempty_csv(self, name, tmp_path):
        from dataclasses import replace

        tiny = replace(
            QUICK,
            realizations=2,
            rounds=30,
            accuracy_rounds=300,
            accuracy_target=0.15,
            complexity_worker_counts=(3, 5),
        )
        (path,) = export_all(tmp_path, tiny, only=[name])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) > 1
        assert all(len(row) == len(rows[0]) for row in rows)

"""Integration: serving checkpoint/resume is bit-identical.

Pause a serving run at a chunk boundary, snapshot it through a JSON
round-trip (the same serialization the durable checkpoint layer uses),
restore into a *fresh* simulator, and finish. The resumed run must be
indistinguishable — per-request latencies, quantile store contents,
dispatch counts, RNG positions — from the run that never stopped.
"""

import json

import numpy as np
import pytest

from repro.ckpt import capture_serving, restore_serving
from repro.serving import (
    PoissonArrivals,
    ServingSimulator,
    WorkerCrash,
    make_arrivals,
    make_policy,
)

N = 5
MU = np.linspace(0.5, 3.0, N)
RATE = 0.85 * float(MU.sum())
SEED = 11
CHUNK = 500
TOTAL = 4000
PAUSE = 2000  # requests before the snapshot — a chunk boundary


def _simulator(policy_name, *, quantile_mode="exact", crashes=()):
    return ServingSimulator(
        make_arrivals("poisson", RATE, seed=SEED),
        make_policy(policy_name, N, MU, seed=SEED),
        MU,
        seed=SEED,
        chunk_size=CHUNK,
        quantile_mode=quantile_mode,
        crashes=crashes,
    )


def _drive(sim, total):
    for batch in sim.arrivals.stream(total, CHUNK):
        sim.process(batch)


def _latencies(sim):
    """Every recorded latency value the store holds, order-preserving.

    Exact mode keeps the raw stream; sketch mode is compared through its
    full captured state (summary arrays + unflushed buffer), which is
    just as bitwise-strict.
    """
    if hasattr(sim.store, "_chunks"):  # ExactQuantiles
        chunks = sim.store._chunks
        return np.concatenate(chunks) if chunks else np.empty(0)
    state = sim.store.capture_state()
    return np.concatenate(
        [
            np.asarray(state["vals"]),
            np.asarray(state["rmin"], dtype=float),
            np.asarray(state["rmax"], dtype=float),
            np.asarray(state["buffer"]),
        ]
    )


@pytest.mark.parametrize(
    "policy,quantile_mode",
    [
        ("dolbie", "exact"),
        ("dolbie", "sketch"),
        ("dolbie-fd", "exact"),
        ("wrr", "sketch"),
        ("jsq", "exact"),
        ("p2c", "exact"),
    ],
)
def test_resume_at_request_k_is_bit_identical(policy, quantile_mode):
    uninterrupted = _simulator(policy, quantile_mode=quantile_mode)
    _drive(uninterrupted, TOTAL)
    expected = uninterrupted.finalize()

    paused = _simulator(policy, quantile_mode=quantile_mode)
    _drive(paused, PAUSE)
    snapshot = json.loads(json.dumps(capture_serving(paused)))

    resumed = _simulator(policy, quantile_mode=quantile_mode)
    restore_serving(resumed, snapshot)
    assert resumed.request_index == PAUSE
    _drive(resumed, TOTAL - PAUSE)
    got = resumed.finalize()

    assert got == expected
    np.testing.assert_array_equal(
        _latencies(resumed), _latencies(uninterrupted)
    )
    np.testing.assert_array_equal(
        resumed.dispatched, uninterrupted.dispatched
    )
    assert resumed.arrivals.now == uninterrupted.arrivals.now
    np.testing.assert_array_equal(resumed._dep, uninterrupted._dep)


def test_resume_across_a_crash_preserves_fault_bookkeeping():
    crashes = (WorkerCrash(120.0, 0),)
    uninterrupted = _simulator("wrr", crashes=crashes)
    _drive(uninterrupted, TOTAL)
    expected = uninterrupted.finalize()

    paused = _simulator("wrr", crashes=crashes)
    _drive(paused, PAUSE)  # the crash fires inside this leg
    assert paused.death_dispatch  # crash already happened at the pause
    snapshot = json.loads(json.dumps(capture_serving(paused)))

    resumed = _simulator("wrr", crashes=crashes)
    restore_serving(resumed, snapshot)
    assert not resumed.alive[0]
    _drive(resumed, TOTAL - PAUSE)
    got = resumed.finalize()

    assert got == expected
    assert resumed.death_dispatch == uninterrupted.death_dispatch
    np.testing.assert_array_equal(
        np.sort(_latencies(resumed)), np.sort(_latencies(uninterrupted))
    )


def test_snapshot_is_json_serializable_mid_buffer():
    # Pause with a partially filled sketch buffer: the snapshot captures
    # it verbatim (no early flush) and still round-trips through JSON.
    sim = _simulator("dolbie", quantile_mode="sketch")
    _drive(sim, PAUSE)
    state = capture_serving(sim)
    encoded = json.dumps(state)
    assert json.loads(encoded) == json.loads(json.dumps(json.loads(encoded)))

"""Integration tests for fast-path engagement and automatic fallback.

The batched round-synchronous fast path must run on every healthy
all-to-all round and hand control back to the event-engine reference
under *every* condition that changes observable behaviour: chaos hooks
(partition, extra delay, frame-loss override), dead workers, lossy or
per-pair links, restricted topologies, and the embedded master. Rounds
executed either way must splice into one bit-identical trajectory.
"""

import numpy as np
import pytest

from repro.costs.timevarying import RandomAffineProcess
from repro.net.links import ConstantLatency, Link, UniformLatency
from repro.net.topology import Topology
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie

N = 6
HORIZON = 8


def _process(n=N, seed=42):
    return RandomAffineProcess(
        [1.0 + (i % 4) for i in range(n)], sigma=0.2, comm_scale=0.05, seed=seed
    )


def _link(seed=0):
    return Link(UniformLatency(0.0005, 0.005, np.random.default_rng(seed)))


class TestFastPathEngages:
    @pytest.mark.parametrize("protocol_cls", [FullyDistributedDolbie, MasterWorkerDolbie])
    def test_all_rounds_fast_when_healthy(self, protocol_cls):
        protocol = protocol_cls(N, link=_link())
        protocol.run(_process(), HORIZON)
        assert protocol.fast_rounds == HORIZON
        assert protocol.fallback_rounds == 0

    @pytest.mark.parametrize("protocol_cls", [FullyDistributedDolbie, MasterWorkerDolbie])
    def test_opt_out_flag(self, protocol_cls):
        protocol = protocol_cls(N, link=_link(), use_fast_path=False)
        protocol.run(_process(), HORIZON)
        assert protocol.fast_rounds == 0
        assert protocol.fallback_rounds == HORIZON


def _run_rounds(protocol, process, first, last):
    for t in range(first, last + 1):
        protocol.run_round(t, process.costs_at(t))


class TestFallbackEngagesUnderEveryHook:
    """Each chaos hook / configuration must force the reference path."""

    @pytest.mark.parametrize("protocol_cls", [FullyDistributedDolbie, MasterWorkerDolbie])
    def test_partition_hook(self, protocol_cls):
        protocol = protocol_cls(N, link=_link())
        process = _process()
        # A single all-inclusive group partitions nothing topologically,
        # but the hook is armed — the reference path must handle it.
        protocol.cluster.set_partition([protocol.cluster.node_ids])
        _run_rounds(protocol, process, 1, 3)
        assert protocol.fast_rounds == 0 and protocol.fallback_rounds == 3
        protocol.cluster.clear_partition()
        _run_rounds(protocol, process, 4, 6)
        assert protocol.fast_rounds == 3

    @pytest.mark.parametrize("protocol_cls", [FullyDistributedDolbie, MasterWorkerDolbie])
    def test_extra_delay_hook(self, protocol_cls):
        protocol = protocol_cls(N, link=_link())
        process = _process()
        protocol.cluster.set_extra_delay(2, 0.25)
        _run_rounds(protocol, process, 1, 3)
        assert protocol.fast_rounds == 0 and protocol.fallback_rounds == 3
        protocol.cluster.set_extra_delay(2, 0.0)
        _run_rounds(protocol, process, 4, 6)
        assert protocol.fast_rounds == 3

    @pytest.mark.parametrize("protocol_cls", [FullyDistributedDolbie, MasterWorkerDolbie])
    def test_frame_loss_hook_even_at_probability_zero(self, protocol_cls):
        protocol = protocol_cls(N, link=_link())
        process = _process()
        # p=0 drops nothing, yet the hook consumes one rng draw per frame
        # — skipping those draws would silently shift later streams.
        protocol.cluster.set_frame_loss(0.0, np.random.default_rng(1))
        _run_rounds(protocol, process, 1, 3)
        assert protocol.fast_rounds == 0 and protocol.fallback_rounds == 3
        protocol.cluster.clear_frame_loss()
        _run_rounds(protocol, process, 4, 6)
        assert protocol.fast_rounds == 3

    @pytest.mark.parametrize("protocol_cls", [FullyDistributedDolbie, MasterWorkerDolbie])
    def test_dead_worker(self, protocol_cls):
        protocol = protocol_cls(N, link=_link())
        process = _process()
        _run_rounds(protocol, process, 1, 2)
        protocol.crash_worker(3)
        _run_rounds(protocol, process, 3, 5)
        assert protocol.fast_rounds == 2
        assert protocol.fallback_rounds == 3

    @pytest.mark.parametrize("protocol_cls", [FullyDistributedDolbie, MasterWorkerDolbie])
    def test_lossy_default_link(self, protocol_cls):
        link = Link(
            ConstantLatency(0.001), loss_probability=0.05,
            loss_rng=np.random.default_rng(2),
        )
        protocol = protocol_cls(N, link=link)
        _run_rounds(protocol, _process(), 1, 3)
        assert protocol.fast_rounds == 0 and protocol.fallback_rounds == 3

    @pytest.mark.parametrize("protocol_cls", [FullyDistributedDolbie, MasterWorkerDolbie])
    def test_per_pair_link_override(self, protocol_cls):
        protocol = protocol_cls(N, link=_link())
        protocol.cluster.set_link(0, 1, Link(ConstantLatency(0.2)))
        _run_rounds(protocol, _process(), 1, 3)
        assert protocol.fast_rounds == 0 and protocol.fallback_rounds == 3

    def test_ring_topology_fd(self):
        protocol = FullyDistributedDolbie(
            N, link=_link(), topology=Topology.ring(N)
        )
        _run_rounds(protocol, _process(), 1, 3)
        assert protocol.fast_rounds == 0 and protocol.fallback_rounds == 3

    def test_embedded_master_mw(self):
        protocol = MasterWorkerDolbie(N, link=_link(), embedded_master=True)
        _run_rounds(protocol, _process(), 1, 3)
        assert protocol.fast_rounds == 0 and protocol.fallback_rounds == 3


class TestMidRunSwitchBitIdentity:
    """Toggling chaos hooks mid-run switches execution modes without
    perturbing the trajectory: the mixed run equals the pure event run."""

    @pytest.mark.parametrize("protocol_cls", [FullyDistributedDolbie, MasterWorkerDolbie])
    def test_mixed_modes_match_reference(self, protocol_cls):
        horizon = 12
        chaos_rounds = {4, 5, 9}  # extra delay armed for these rounds

        def drive(fast):
            protocol = protocol_cls(N, link=_link(), use_fast_path=fast)
            process = _process()
            trajectory = []
            for t in range(1, horizon + 1):
                if t in chaos_rounds:
                    protocol.cluster.set_extra_delay(1, 0.1)
                else:
                    protocol.cluster.set_extra_delay(1, 0.0)
                x, l, l_t, s_t = protocol.run_round(t, process.costs_at(t))
                trajectory.append((np.array(x), float(l_t), int(s_t)))
            return protocol, trajectory

        ref_protocol, reference = drive(fast=False)
        fast_protocol, mixed = drive(fast=True)
        assert fast_protocol.fast_rounds == horizon - len(chaos_rounds)
        assert fast_protocol.fallback_rounds == len(chaos_rounds)
        for (x_a, l_a, s_a), (x_b, l_b, s_b) in zip(reference, mixed):
            assert np.array_equal(x_a, x_b)
            assert l_a == l_b
            assert s_a == s_b
        assert (
            ref_protocol.metrics.messages_total
            == fast_protocol.metrics.messages_total
        )
        assert ref_protocol.metrics.bytes_total == fast_protocol.metrics.bytes_total
        assert ref_protocol.cluster.engine.now == fast_protocol.cluster.engine.now

"""Integration: one million requests stream through the serving path.

The whole point of the streaming design — chunked arrival generation and
a bounded-memory quantile sketch — is that request count never shows up
as memory. This drives the full 1M-request paper-scale configuration in
a *subprocess* (the RSS high-water mark is process-wide, so the ceiling
is only meaningful from a fresh process) and asserts it completes under
1 GB with finite tail quantiles.
"""

import json
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

DRIVER = """
import json
import resource
import sys

import numpy as np

from repro.serving import PoissonArrivals, ServingSimulator, make_policy
from repro.experiments.serving_experiment import fleet_service_rates

N, TOTAL = 32, 1_000_000
mu = fleet_service_rates(N)
rate = 0.85 * float(mu.sum())
sim = ServingSimulator(
    PoissonArrivals(rate, seed=0),
    make_policy("dolbie", N, mu, seed=0),
    mu,
    seed=0,
    quantile_mode="sketch",
)
summary = sim.run(TOTAL)
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
json.dump(
    {
        "requests": summary.requests,
        "completed": summary.completed,
        "failed": summary.failed,
        "p50": summary.p50,
        "p99": summary.p99,
        "p999": summary.p999,
        "slo_attainment": summary.slo_attainment,
        "peak_rss_bytes": peak,
        "dispatched_total": int(sim.dispatched.sum()),
    },
    sys.stdout,
)
"""


def test_one_million_requests_stream_under_a_1gb_ceiling():
    proc = subprocess.run(
        [sys.executable, "-c", DRIVER],
        capture_output=True,
        text=True,
        timeout=300,
        env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stderr
    stats = json.loads(proc.stdout)
    assert stats["requests"] == 1_000_000
    assert stats["completed"] == 1_000_000
    assert stats["failed"] == 0
    assert stats["dispatched_total"] == 1_000_000
    assert 0.0 < stats["p50"] <= stats["p99"] <= stats["p999"]
    assert stats["p999"] < float("inf")
    assert 0.0 < stats["slo_attainment"] <= 1.0
    # The streaming acceptance criterion: far below materializing 1M
    # request records, and below the 1 GB ceiling with a wide margin.
    assert stats["peak_rss_bytes"] < 1_000_000_000, (
        f"peak RSS {stats['peak_rss_bytes'] / 1e6:.0f} MB exceeds ceiling"
    )

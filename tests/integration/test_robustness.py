"""Integration: protocols under lossy links, determinism, delayed feedback."""

import numpy as np
import pytest

from repro.core.delayed import DelayedFeedback
from repro.core.dolbie import Dolbie
from repro.core.loop import run_online
from repro.costs.timevarying import RandomAffineProcess
from repro.experiments import fig3_per_round_latency
from repro.experiments.config import QUICK
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.trainer import SyncTrainer
from repro.net.links import ConstantLatency, Link
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie


class TestLossyLinkEquivalence:
    """The transport layer must make packet loss invisible to the
    algorithm: only virtual time and message counts may change."""

    @pytest.mark.parametrize("loss", [0.05, 0.3])
    def test_master_worker_identical_under_loss(self, loss):
        process = RandomAffineProcess([1, 2, 4, 8, 16], sigma=0.2, seed=6)
        reference = run_online(
            Dolbie(5, alpha_1=0.04, exact_feasibility_guard=False), process, 40
        )
        rng = np.random.default_rng(0)
        link = Link(ConstantLatency(0.001), loss_probability=loss, loss_rng=rng)
        protocol = MasterWorkerDolbie(5, alpha_1=0.04, link=link)
        result = protocol.run(process, 40)
        assert np.allclose(reference.allocations, result.allocations, atol=1e-11)
        assert protocol.metrics.messages_total > 40 * 15  # retransmissions

    def test_fully_distributed_identical_under_loss(self):
        process = RandomAffineProcess([1, 3, 9], sigma=0.2, seed=8)
        reference = run_online(
            Dolbie(3, alpha_1=0.05, exact_feasibility_guard=False), process, 30
        )
        rng = np.random.default_rng(2)
        link = Link(ConstantLatency(0.002), loss_probability=0.2, loss_rng=rng)
        protocol = FullyDistributedDolbie(3, alpha_1=0.05, link=link)
        result = protocol.run(process, 30)
        assert np.allclose(reference.allocations, result.allocations, atol=1e-11)

    def test_loss_costs_virtual_time(self):
        process = RandomAffineProcess([1, 2, 4], sigma=0.1, seed=9)
        rng = np.random.default_rng(3)
        lossless = MasterWorkerDolbie(3, link=Link(ConstantLatency(0.001)))
        lossy = MasterWorkerDolbie(
            3,
            link=Link(ConstantLatency(0.001), loss_probability=0.3, loss_rng=rng),
        )
        lossless.run(process, 20)
        lossy.run(process, 20)
        assert lossy.cluster.engine.now > lossless.cluster.engine.now


class TestDeterminism:
    def test_experiment_is_bit_reproducible(self):
        a = fig3_per_round_latency.run(QUICK)
        b = fig3_per_round_latency.run(QUICK)
        for name in a.latency:
            assert np.array_equal(a.latency[name], b.latency[name])

    def test_trainer_is_bit_reproducible(self):
        def one():
            env = TrainingEnvironment("VGG16", num_workers=8, seed=11)
            return SyncTrainer(env).train(Dolbie(8, alpha_1=0.001), 40)

        a, b = one(), one()
        assert np.array_equal(a.round_latency, b.round_latency)
        assert np.array_equal(a.batch_fractions, b.batch_fractions)
        assert np.array_equal(a.accuracy, b.accuracy)


class TestDelayedFeedbackOnTrainingEnvironment:
    def test_price_of_delay_is_monotone_ish(self):
        """More feedback delay should not make training faster."""
        env = TrainingEnvironment("ResNet18", num_workers=10, seed=5)
        totals = []
        for delay in (0, 2, 8):
            balancer = DelayedFeedback(Dolbie(10, alpha_1=0.005), delay=delay)
            result = run_online(balancer, env, 80)
            totals.append(result.total_cost)
        assert totals[0] <= totals[1] * 1.05  # small noise allowance
        assert totals[0] < totals[2]

"""Integration: the example scripts run end-to-end and print results."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "accumulated cost" in out
    assert "DOLBIE" in out


def test_fully_distributed_demo():
    out = _run("fully_distributed_demo.py")
    assert "master-worker matches reference:      True" in out
    assert "fully-distributed matches reference:  True" in out


def test_regret_analysis():
    out = _run("regret_analysis.py")
    assert "holds=True" in out
    assert "holds=False" not in out


def test_edge_offloading():
    out = _run("edge_offloading.py")
    assert "DOLBIE" in out and "OPT" in out


@pytest.mark.slow
def test_batch_size_tuning():
    out = _run("batch_size_tuning.py", timeout=600)
    assert "DOLBIE" in out
    assert "inf" not in out.split("DOLBIE")[1].splitlines()[0]


def test_elastic_fleet():
    out = _run("elastic_fleet.py")
    assert "simplex" in out
    assert "worker 5 crashed" in out


def test_trace_replay():
    out = _run("trace_replay.py")
    assert "comparison exported" in out
    assert "best online algorithm" in out


def test_fault_tolerance():
    out = _run("fault_tolerance.py")
    assert "worker 3 crashed" in out
    assert "worker 3 re-joined" in out
    assert "restarts" in out
    assert "improvement under regime switching" in out


def test_chaos_testing():
    out = _run("chaos_testing.py")
    assert "post-heal rosters (all agree)" in out
    assert "[PASS]" in out
    assert "invariant violations: 0" in out
    assert "bit-identical allocations across runs: True" in out


def test_serving_workload():
    out = _run("serving_workload.py")
    assert "dolbie" in out and "jsq" in out
    assert "online adaptation buys +" in out  # DOLBIE beats WRR on p99
    assert "no post-crash routing" in out
    assert "sum 1.000" in out  # survivor weights renormalized

"""Acceptance: seeded chaos soaks on both protocol architectures.

The ISSUE's bar: a seeded soak of >= 200 rounds with >= 10 mixed fault
events — including at least one crash -> rejoin and one partition ->
heal on a sparse topology — completes with zero invariant violations on
BOTH architectures, and the same seed reproduces bit-identical
allocations across two runs.
"""

import numpy as np
import pytest

from repro.chaos import FaultSchedule, run_soak
from repro.costs.timevarying import RandomAffineProcess
from repro.net.links import ConstantLatency, Link
from repro.net.topology import Topology
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie

N = 8
ROUNDS = 220
SEED = 42

LINK = lambda: Link(ConstantLatency(0.001))  # noqa: E731


@pytest.fixture(scope="module")
def schedule():
    return FaultSchedule.random(N, ROUNDS, seed=SEED, topology=Topology.ring(N))


@pytest.fixture(scope="module")
def process():
    return RandomAffineProcess(speeds=np.linspace(1.0, 2.0, N), seed=11)


def _mw():
    return MasterWorkerDolbie(N, link=LINK())


def _fd():
    return FullyDistributedDolbie(N, link=LINK(), topology=Topology.ring(N))


def test_schedule_is_mixed_enough(schedule):
    counts = schedule.counts()
    assert len(schedule) >= 10
    assert counts["crash"] >= 1 and counts["rejoin"] >= 1
    assert counts["partition"] >= 1 and counts["heal"] >= 1
    assert counts["slowdown"] >= 1 and counts["degrade"] >= 1
    # crash -> rejoin and partition -> heal actually pair up in time
    first_crash = min(e.round_index for e in schedule if e.kind == "crash")
    assert any(
        e.kind == "rejoin" and e.round_index > first_crash for e in schedule
    )
    first_cut = min(e.round_index for e in schedule if e.kind == "partition")
    assert any(
        e.kind == "heal" and e.round_index > first_cut for e in schedule
    )


@pytest.mark.parametrize("factory", [_mw, _fd], ids=["master-worker", "fully-distributed"])
def test_soak_completes_with_zero_violations(schedule, process, factory):
    report = run_soak(factory, schedule, process, ROUNDS)
    assert report.rounds_completed == ROUNDS
    assert report.violations == ()
    assert report.ok
    assert report.events_applied >= 10
    assert report.final_roster == tuple(range(N))
    assert report.messages_blackholed > 0  # the partitions really bit


@pytest.mark.parametrize("factory", [_mw, _fd], ids=["master-worker", "fully-distributed"])
def test_same_seed_is_bit_identical(schedule, process, factory):
    first = run_soak(factory, schedule, process, ROUNDS)
    second = run_soak(factory, schedule, process, ROUNDS)
    assert np.array_equal(first.allocations, second.allocations)
    assert np.array_equal(first.global_costs, second.global_costs)
    assert first.virtual_time == second.virtual_time
    assert first.messages_total == second.messages_total


def test_different_seed_diverges(process):
    base = FaultSchedule.random(N, ROUNDS, seed=SEED, topology=Topology.ring(N))
    other = FaultSchedule.random(N, ROUNDS, seed=SEED + 1, topology=Topology.ring(N))
    a = run_soak(_fd, base, process, ROUNDS)
    b = run_soak(_fd, other, process, ROUNDS)
    assert not np.array_equal(a.allocations, b.allocations)


def test_soak_without_faults_matches_plain_run(process):
    empty = FaultSchedule.scripted([])
    report = run_soak(_fd, empty, process, 50)
    protocol = _fd()
    result = protocol.run(process, 50)
    # run_soak records post-round allocations; RunResult records played
    # ones, so compare the final states and the per-round global costs.
    assert np.array_equal(report.global_costs, result.global_costs)
    assert np.allclose(report.allocations[-1], protocol.allocation)
    assert report.ok

"""No observer effect: attaching the observability layer never changes
a run.

Tracing and profiling are pure readers. For both protocol architectures,
on both execution engines, and under a chaotic fault schedule, a run
with a tracer + profiler attached must be bit-identical to the same
seeded run without them — same allocations, same virtual time, same
message accounting, and (the sharpest check) the same RNG stream
position afterwards: instrumentation that drew even one random number,
or reordered one draw, would shift the generator state.
"""

import numpy as np
import pytest

from repro.chaos import FaultSchedule, run_soak
from repro.costs.timevarying import RandomAffineProcess
from repro.net.links import Link, UniformLatency
from repro.net.topology import Topology
from repro.obs import Profiler, Tracer
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie

N = 6
ROUNDS = 40

ARCHS = {"mw": MasterWorkerDolbie, "fd": FullyDistributedDolbie}


def _run(arch: str, fast: bool, instrument: bool):
    rng = np.random.default_rng(5)
    tracer = Tracer() if instrument else None
    profiler = Profiler() if instrument else None
    protocol = ARCHS[arch](
        N,
        link=Link(UniformLatency(0.0005, 0.005, rng)),
        use_fast_path=fast,
        tracer=tracer,
        profiler=profiler,
    )
    process = RandomAffineProcess(
        np.linspace(1.0, 2.5, N), sigma=0.2, comm_scale=0.01, seed=3
    )
    result = protocol.run(process, ROUNDS)
    return protocol, result, rng.bit_generator.state, tracer, profiler


@pytest.mark.parametrize("arch", ["mw", "fd"])
@pytest.mark.parametrize("fast", [True, False], ids=["fast", "event"])
def test_tracing_has_no_observer_effect(arch, fast):
    plain_protocol, plain, plain_rng, _, _ = _run(arch, fast, False)
    traced_protocol, traced, traced_rng, tracer, profiler = _run(
        arch, fast, True
    )
    assert np.array_equal(plain.allocations, traced.allocations)
    assert np.array_equal(plain.global_costs, traced.global_costs)
    assert np.array_equal(plain.local_costs, traced.local_costs)
    # Identical RNG stream position: instrumentation drew nothing.
    assert plain_rng == traced_rng
    assert (
        plain_protocol.cluster.engine.now == traced_protocol.cluster.engine.now
    )
    assert (
        plain_protocol.metrics.messages_total
        == traced_protocol.metrics.messages_total
    )
    # And the instrumentation actually observed the run.
    assert len(tracer.trace.by_kind("decision")) == ROUNDS
    assert profiler.total_wall() > 0.0


@pytest.mark.parametrize("arch", ["mw", "fd"])
def test_tracing_has_no_observer_effect_under_chaos(arch):
    topology = Topology.ring(N) if arch == "fd" else None
    schedule = FaultSchedule.random(N, ROUNDS, seed=9, topology=topology)
    process = RandomAffineProcess(np.linspace(1.0, 2.0, N), seed=11)
    tracer = Tracer()

    def factory(instrument):
        def build():
            kwargs = {"link": Link(UniformLatency(0.0005, 0.005,
                                                  np.random.default_rng(5)))}
            if arch == "fd":
                kwargs["topology"] = Topology.ring(N)
            if instrument:
                kwargs["tracer"] = tracer
            return ARCHS[arch](N, **kwargs)

        return build

    plain = run_soak(factory(False), schedule, process, ROUNDS)
    traced = run_soak(factory(True), schedule, process, ROUNDS)
    assert np.array_equal(plain.allocations, traced.allocations)
    assert np.array_equal(plain.global_costs, traced.global_costs)
    assert plain.virtual_time == traced.virtual_time
    assert plain.messages_total == traced.messages_total
    assert plain.messages_blackholed == traced.messages_blackholed
    assert plain.events_applied == traced.events_applied
    assert plain.violations == traced.violations == ()
    # The chaos actually fired and the tracer saw it: fault records from
    # the cluster plus membership records from crash/rejoin handling.
    counts = tracer.trace.kind_counts()
    assert counts.get("fault", 0) > 0
    assert counts.get("membership", 0) > 0
    assert counts["decision"] == ROUNDS

"""Integration: the trainer drives the real protocols end-to-end."""

import numpy as np
import pytest

from repro.core.dolbie import Dolbie
from repro.core.loop import run_online
from repro.costs.timevarying import RandomAffineProcess
from repro.exceptions import ProtocolError
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.trainer import SyncTrainer
from repro.net.topology import Topology
from repro.protocols import FullyDistributedDolbie, MasterWorkerDolbie, ProtocolBalancer


class TestProtocolBalancer:
    def test_trainer_over_master_worker_equals_reference(self):
        env = TrainingEnvironment("ResNet18", num_workers=8, seed=3)
        trainer = SyncTrainer(env)
        reference = trainer.train(
            Dolbie(8, alpha_1=0.005, exact_feasibility_guard=False), 40
        )
        adapted = trainer.train(
            ProtocolBalancer(MasterWorkerDolbie(8, alpha_1=0.005)), 40
        )
        assert np.allclose(
            reference.batch_fractions, adapted.batch_fractions, atol=1e-11
        )
        assert np.allclose(reference.round_latency, adapted.round_latency)

    def test_run_online_over_fully_distributed_with_topology(self):
        process = RandomAffineProcess([1, 2, 4, 8, 16], sigma=0.15, seed=6)
        reference = run_online(
            Dolbie(5, alpha_1=0.03, exact_feasibility_guard=False), process, 30
        )
        protocol = FullyDistributedDolbie(
            5, alpha_1=0.03, topology=Topology.ring(5)
        )
        adapted = run_online(ProtocolBalancer(protocol), process, 30)
        assert np.allclose(reference.allocations, adapted.allocations, atol=1e-11)

    def test_adapter_name_reflects_protocol(self):
        adapter = ProtocolBalancer(MasterWorkerDolbie(3))
        assert adapter.name == "DOLBIE/master-worker"

    def test_adapter_detects_out_of_band_advancement(self):
        process = RandomAffineProcess([1, 2, 4], sigma=0.1, seed=0)
        protocol = MasterWorkerDolbie(3, alpha_1=0.05)
        adapter = ProtocolBalancer(protocol)
        from repro.core.interface import make_feedback

        # Advance the protocol behind the adapter's back.
        protocol.run_round(1, process.costs_at(1))
        feedback = make_feedback(2, np.full(3, 1.0 / 3.0), process.costs_at(2))
        with pytest.raises(ProtocolError):
            adapter.update(feedback)


class TestTrainingRunAsRunResult:
    def test_fields_map_through(self):
        env = TrainingEnvironment("ResNet18", num_workers=4, seed=1)
        run = SyncTrainer(env).train(Dolbie(4, alpha_1=0.01), 15)
        view = run.as_run_result()
        assert view.horizon == run.rounds
        assert np.array_equal(view.global_costs, run.round_latency)
        assert np.array_equal(view.allocations, run.batch_fractions)

    def test_analysis_toolkit_accepts_the_view(self):
        from repro.analysis import compare_runs

        env = TrainingEnvironment("ResNet18", num_workers=4, seed=1)
        trainer = SyncTrainer(env)
        runs = {
            "DOLBIE": trainer.train(Dolbie(4, alpha_1=0.01), 15).as_run_result(),
        }
        summaries = compare_runs(runs)
        assert summaries[0].algorithm == "DOLBIE"

    def test_npz_roundtrip_of_the_view(self, tmp_path):
        from repro.io import load_run, save_run

        env = TrainingEnvironment("ResNet18", num_workers=4, seed=1)
        run = SyncTrainer(env).train(Dolbie(4, alpha_1=0.01), 10)
        path = save_run(run.as_run_result(), tmp_path / "view")
        loaded = load_run(path)
        assert np.array_equal(loaded.global_costs, run.round_latency)

"""Integration: every experiment module runs end-to-end at QUICK scale."""

import math

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    complexity,
    fig3_per_round_latency,
    fig4_latency_ci,
    fig5_cumulative_latency,
    fig6to8_accuracy,
    fig9_worker_latency,
    fig10_batch_size,
    fig11_utilization,
    regret_experiment,
)
from repro.experiments.config import ALL_ALGORITHMS, QUICK


class TestFig3(object):
    def test_runs_and_reports_all_algorithms(self):
        result = fig3_per_round_latency.run(QUICK)
        assert set(result.latency) == set(ALL_ALGORITHMS)
        for series in result.latency.values():
            assert series.shape == (QUICK.rounds,)
            assert (series > 0).all()

    def test_headline_reductions_positive_vs_equ(self):
        result = fig3_per_round_latency.run(QUICK)
        assert result.reductions_at_40["EQU"] > 0


class TestFig4And5(object):
    def test_fig4_means_and_cis(self):
        result = fig4_latency_ci.run(QUICK)
        assert result.realizations == QUICK.realizations
        for name in ALL_ALGORITHMS:
            assert result.mean[name].shape == (QUICK.rounds,)
            assert (result.ci95[name] >= 0).all()

    def test_fig5_cumulative_is_monotone(self):
        result = fig5_cumulative_latency.run(QUICK)
        for name in ALL_ALGORITHMS:
            assert (np.diff(result.mean[name]) > 0).all()
        totals = result.final_totals()
        assert totals["DOLBIE"][0] < totals["EQU"][0]


class TestFig6to8(object):
    def test_time_to_target_finite_and_ordered(self):
        result = fig6to8_accuracy.run(QUICK, models=["ResNet18"])
        times = result.time_to_target["ResNet18"]
        assert all(math.isfinite(t) for t in times.values())
        assert times["DOLBIE"] < times["EQU"]
        assert times["OPT"] <= min(times.values()) + 1e-9

    def test_speedups_quoted_against_all_baselines(self):
        result = fig6to8_accuracy.run(QUICK, models=["ResNet18"])
        assert set(result.speedups["ResNet18"]) == {"EQU", "OGD", "LB-BSP", "ABS"}


class TestFig9And10(object):
    def test_fig9_structures(self):
        result = fig9_worker_latency.run(QUICK)
        assert len(result.worker_types) == QUICK.num_workers
        for name in ALL_ALGORITHMS:
            assert result.local_latency[name].shape == (QUICK.rounds, QUICK.num_workers)
            assert (result.spread[name] >= 0).all()

    def test_fig9_dolbie_converges_before_equ(self):
        result = fig9_worker_latency.run(QUICK)
        assert result.convergence_round("DOLBIE") <= result.convergence_round("EQU")

    def test_fig10_batch_sizes_sum_to_global_batch(self):
        result = fig10_batch_size.run(QUICK)
        for sizes in result.batch_sizes.values():
            assert np.allclose(sizes.sum(axis=1), QUICK.global_batch)


class TestFig11(object):
    def test_breakdown_components(self):
        result = fig11_utilization.run(QUICK)
        for name in ALL_ALGORITHMS:
            breakdown = result.breakdown[name]
            assert set(breakdown) == {"computation", "communication", "waiting"}
            assert all(v >= 0 for v in breakdown.values())

    def test_dolbie_reduces_idle_time(self):
        result = fig11_utilization.run(QUICK)
        assert result.idle_reduction["EQU"] > 0

    def test_overhead_statistics_present(self):
        result = fig11_utilization.run(QUICK)
        for name in ALL_ALGORITHMS:
            assert result.overhead[name].mean > 0


class TestComplexity(object):
    def test_measured_matches_analytic(self):
        result = complexity.run(QUICK, rounds=5)
        for i, n in enumerate(result.worker_counts):
            assert result.messages_mw[i] == complexity.expected_master_worker(n)
            assert result.messages_fd[i] == complexity.expected_fully_distributed(n)

    def test_fd_bytes_grow_quadratically(self):
        result = complexity.run(QUICK, rounds=3)
        n0, n1 = result.worker_counts[0], result.worker_counts[-1]
        growth = result.bytes_fd[-1] / result.bytes_fd[0]
        assert growth > (n1 / n0) ** 1.5  # clearly superlinear


class TestRegret(object):
    def test_bound_holds_everywhere(self):
        result = regret_experiment.run(QUICK, horizons=(20, 50))
        for point in result.horizon_sweep + result.worker_sweep:
            assert point.regret <= point.bound

    def test_path_length_reported(self):
        result = regret_experiment.run(QUICK, horizons=(20,))
        assert result.horizon_sweep[0].path_length >= 0


class TestAblations(object):
    def test_single_helper_is_clearly_worse(self):
        result = ablations.run(QUICK)
        assert (
            result.total_cost["DOLBIE[single-helper]"]
            > result.total_cost["DOLBIE"]
        )

    def test_all_variants_reported(self):
        result = ablations.run(QUICK)
        assert len(result.total_cost) == 6


class TestComparativeRegret(object):
    def test_dolbie_compares_favorably_with_ogd(self):
        """§V: the paper positions DOLBIE against online gradient descent."""
        comparison = regret_experiment.comparative_regret(
            num_workers=8, horizon=120, seed=0
        )
        assert comparison.regret["DOLBIE"] < comparison.regret["OGD"]
        assert comparison.regret["DOLBIE"] < comparison.regret["EQU"]

    def test_all_requested_algorithms_reported(self):
        comparison = regret_experiment.comparative_regret(
            num_workers=6, horizon=60, algorithms=("DOLBIE", "EQU")
        )
        assert set(comparison.regret) == {"DOLBIE", "EQU"}


class TestExperimentMains(object):
    """Every experiment's printing entry point runs at QUICK scale."""

    @pytest.mark.parametrize(
        "module",
        [fig4_latency_ci, fig5_cumulative_latency, fig9_worker_latency,
         fig10_batch_size, fig11_utilization],
        ids=lambda m: m.__name__.rsplit(".", 1)[-1],
    )
    def test_main_prints_tables(self, module, capsys):
        module.main(QUICK)
        out = capsys.readouterr().out
        assert "DOLBIE" in out and "==" in out


class TestHeadlineSweep(object):
    def test_reductions_positive_across_seeds(self):
        sweep = fig3_per_round_latency.headline_sweep(QUICK, num_seeds=3)
        assert set(sweep) == {"EQU", "OGD", "LB-BSP", "ABS"}
        # At quick scale, at least the EQU and OGD margins must be
        # robustly positive across seeds.
        for base in ("EQU", "OGD"):
            mean, _std = sweep[base]
            assert mean > 0

"""Integration: network partitions, dead relays, and recovery paths."""

import numpy as np
import pytest

from repro.costs.timevarying import RandomAffineProcess
from repro.exceptions import ConfigurationError, ProtocolError
from repro.net.links import ConstantLatency, Link
from repro.net.topology import Topology
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie

LINK = lambda: Link(ConstantLatency(0.001))  # noqa: E731


def _process(n, seed=0):
    return RandomAffineProcess(speeds=np.linspace(1.0, 2.5, n), seed=seed)


def _drive(protocol, process, rounds, start=1):
    out = None
    for t in range(start, start + rounds):
        out = protocol.run_round(t, process.costs_at(t))
    return out


class TestClusterPartition:
    def test_cross_group_frames_are_blackholed_not_retried(self):
        protocol = MasterWorkerDolbie(4, link=LINK())
        cluster = protocol.cluster
        cluster.set_partition([(2, 3)])
        assert not cluster.can_communicate(0, 2)
        assert cluster.can_communicate(0, 1)
        assert cluster.can_communicate(2, 3)
        before = cluster.metrics.messages_blackholed
        protocol.workers[2].send(protocol.master_id, "cost", {"l": 1.0}, 1)
        # Silently dropped: no TransportError, the counter moved instead.
        assert cluster.metrics.messages_blackholed == before + 1

    def test_overlapping_groups_rejected(self):
        cluster = MasterWorkerDolbie(4, link=LINK()).cluster
        with pytest.raises(Exception, match="two partition groups"):
            cluster.set_partition([(0, 1), (1, 2)])


class TestMasterWorkerPartition:
    def test_cut_workers_are_declared_dead_then_rejoin_on_heal(self):
        protocol = MasterWorkerDolbie(5, link=LINK(), cost_timeout=0.05)
        process = _process(5)
        _drive(protocol, process, 3)
        protocol.cluster.set_partition([(3, 4)])
        _drive(protocol, process, 2, start=4)
        assert protocol.roster == [0, 1, 2]
        assert protocol.alive_workers == [0, 1, 2, 3, 4]  # zombies live on
        assert protocol.allocation[[3, 4]].sum() == 0.0
        assert protocol.allocation.sum() == pytest.approx(1.0)
        protocol.cluster.clear_partition()
        for w in (3, 4):
            protocol.rejoin_worker(w)
        _, _, global_cost, _ = _drive(protocol, process, 3, start=6)
        assert protocol.roster == [0, 1, 2, 3, 4]
        assert protocol.allocation.sum() == pytest.approx(1.0)
        assert np.isfinite(global_cost)


class TestFullyDistributedPartition:
    def test_primary_component_continues_minority_stalls(self):
        n = 6
        protocol = FullyDistributedDolbie(
            n, link=LINK(), topology=Topology.ring(n)
        )
        process = _process(n)
        _drive(protocol, process, 3)
        protocol.cluster.set_partition([(1, 2)])
        _drive(protocol, process, 2, start=4)
        assert protocol.roster == [0, 3, 4, 5]
        assert protocol.allocation[[1, 2]].sum() == 0.0
        live = protocol.allocation[protocol.roster]
        assert live.sum() == pytest.approx(1.0)
        # stalled peers did not observe the rounds they missed
        assert protocol.peers[1].current_round < 5

    def test_heal_remerges_rosters_and_reshards(self):
        n = 6
        protocol = FullyDistributedDolbie(
            n, link=LINK(), topology=Topology.ring(n)
        )
        process = _process(n)
        _drive(protocol, process, 2)
        protocol.cluster.set_partition([(1, 2)])
        _drive(protocol, process, 2, start=3)
        protocol.cluster.clear_partition()
        _drive(protocol, process, 2, start=5)
        assert protocol.roster == list(range(n))
        rosters = {tuple(sorted(protocol.peers[w].roster)) for w in range(n)}
        assert rosters == {tuple(range(n))}
        assert protocol.allocation.sum() == pytest.approx(1.0)
        assert (protocol.allocation > 0).all()

    def test_crash_during_flood_on_ring_degrades_to_survivors(self):
        n = 5
        protocol = FullyDistributedDolbie(
            n, link=LINK(), topology=Topology.ring(n)
        )
        process = _process(n)
        _drive(protocol, process, 2)
        protocol.crash_worker(2)  # a relay on the ring
        _drive(protocol, process, 2, start=3)
        # Ring minus node 2 is still connected (a line): all survive.
        assert protocol.roster == [0, 1, 3, 4]
        assert protocol.allocation[protocol.roster].sum() == pytest.approx(1.0)

    def test_crash_of_star_center_raises_instead_of_hanging(self):
        n = 5
        protocol = FullyDistributedDolbie(
            n, link=LINK(), topology=Topology.star(n)
        )
        process = _process(n)
        _drive(protocol, process, 2)
        protocol.crash_worker(0)  # the hub: leaves n-1 isolated leaves
        with pytest.raises(ProtocolError, match="primary component"):
            protocol.run_round(3, process.costs_at(3))

    def test_line_partition_isolating_one_end(self):
        n = 5
        protocol = FullyDistributedDolbie(
            n, link=LINK(), topology=Topology.line(n)
        )
        process = _process(n)
        _drive(protocol, process, 2)
        protocol.cluster.set_partition([(4,)])
        _drive(protocol, process, 2, start=3)
        assert protocol.roster == [0, 1, 2, 3]
        protocol.cluster.clear_partition()
        _drive(protocol, process, 1, start=5)
        assert protocol.roster == [0, 1, 2, 3, 4]


class TestRejoinEdgeCases:
    def test_rejoin_active_worker_rejected(self):
        protocol = MasterWorkerDolbie(4, link=LINK())
        with pytest.raises(ConfigurationError, match="already active"):
            protocol.rejoin_worker(1)
        fd = FullyDistributedDolbie(4, link=LINK())
        with pytest.raises(ConfigurationError, match="already active"):
            fd.rejoin_worker(1)

    def test_rejoin_with_explicit_share(self):
        protocol = MasterWorkerDolbie(4, link=LINK())
        process = _process(4)
        _drive(protocol, process, 2)
        protocol.crash_worker(3)
        _drive(protocol, process, 2, start=3)
        protocol.rejoin_worker(3, share=0.4)
        assert protocol.allocation[3] == pytest.approx(0.4)
        assert protocol.allocation.sum() == pytest.approx(1.0)
        _drive(protocol, process, 1, start=5)
        assert protocol.roster == [0, 1, 2, 3]

    def test_crash_then_rejoin_before_any_round_keeps_share(self):
        protocol = FullyDistributedDolbie(4, link=LINK())
        process = _process(4)
        _drive(protocol, process, 2)
        held = protocol.allocation[2]
        protocol.crash_worker(2)
        protocol.rejoin_worker(2)  # same boundary: never dropped
        assert protocol.allocation[2] == pytest.approx(held)
        _drive(protocol, process, 1, start=3)
        assert protocol.roster == [0, 1, 2, 3]

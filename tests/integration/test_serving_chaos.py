"""Integration: worker crashes mid-trace interact with serving correctly.

The serving fault invariant under test: after a worker's death is
detected, **no request is ever routed to it again** — its dispatch count
is frozen at the crash (``death_dispatch``) — the routing weights
renormalize over the survivors, requests still queued on the dead worker
count as ``failed``, and the membership change lands in the trace. All
scenarios are seeded, so the exact stranded-request count is pinned.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.obs.records import MembershipRecord, ServingSummaryRecord
from repro.obs.tracer import Tracer
from repro.serving import (
    PoissonArrivals,
    ServingSimulator,
    WorkerCrash,
    make_policy,
)

N = 6
MU = np.linspace(0.5, 3.0, N)
RATE = 0.9 * float(MU.sum())
SEED = 7
TOTAL = 5000
CRASH_TIME = 150.0


def _run(policy_name, crashes, tracer=None, total=TOTAL):
    sim = ServingSimulator(
        PoissonArrivals(RATE, seed=SEED),
        make_policy(policy_name, N, MU, seed=SEED),
        MU,
        seed=SEED,
        quantile_mode="exact",
        tracer=tracer,
        crashes=crashes,
    )
    return sim, sim.run(total)


class TestCrashInvariants:
    @pytest.mark.parametrize("policy", ["wrr", "dolbie", "jsq", "p2c"])
    def test_no_request_routed_after_death(self, policy):
        sim, summary = _run(policy, [WorkerCrash(CRASH_TIME, 0)])
        # The frozen-at-crash count equals the final count: zero
        # post-death dispatches.
        assert sim.death_dispatch == {0: int(sim.dispatched[0])}
        assert not sim.alive[0]
        assert sim.alive[1:].all()
        assert summary.completed + summary.failed == TOTAL

    def test_stranded_requests_count_as_failed(self):
        sim, summary = _run("wrr", [WorkerCrash(CRASH_TIME, 0)])
        # Seeded and deterministic: worker 0 had exactly 8 undeparted
        # requests at t=150. They fail; everything else completes.
        assert summary.failed == 8
        assert summary.completed == TOTAL - 8
        assert summary.requests == TOTAL

    def test_weights_renormalize_over_survivors(self):
        sim, _ = _run("dolbie", [WorkerCrash(CRASH_TIME, 0)])
        weights = sim.effective_weights()
        assert weights[0] == 0.0
        assert weights[1:].sum() == pytest.approx(1.0)
        assert np.all(weights[1:] > 0.0)

    def test_membership_record_lands_in_trace(self):
        tracer = Tracer()
        tracer.header("serving", N, TOTAL, seed=SEED, policy="wrr")
        _, summary = _run("wrr", [WorkerCrash(CRASH_TIME, 0)], tracer=tracer)
        memberships = [
            r for r in tracer.trace.records if isinstance(r, MembershipRecord)
        ]
        assert len(memberships) == 1
        assert memberships[0].action == "crash"
        assert memberships[0].workers == (0,)
        assert memberships[0].roster == tuple(range(1, N))
        summaries = [
            r
            for r in tracer.trace.records
            if isinstance(r, ServingSummaryRecord)
        ]
        assert len(summaries) == 1
        assert summaries[0].failed == summary.failed

    def test_multiple_crashes_each_freeze_their_worker(self):
        sim, summary = _run(
            "wrr", [WorkerCrash(120.0, 1), WorkerCrash(260.0, 0)]
        )
        assert set(sim.death_dispatch) == {0, 1}
        for worker, frozen in sim.death_dispatch.items():
            assert frozen == int(sim.dispatched[worker])
        assert not sim.alive[0] and not sim.alive[1]
        assert summary.completed + summary.failed == TOTAL

    def test_seeded_crash_run_is_reproducible(self):
        a_sim, a = _run("dolbie", [WorkerCrash(CRASH_TIME, 0)])
        b_sim, b = _run("dolbie", [WorkerCrash(CRASH_TIME, 0)])
        assert a == b
        np.testing.assert_array_equal(a_sim.dispatched, b_sim.dispatched)
        np.testing.assert_array_equal(
            np.concatenate(a_sim.store._chunks),
            np.concatenate(b_sim.store._chunks),
        )


class TestScheduleValidation:
    def test_rejects_killing_every_worker(self):
        with pytest.raises(ConfigurationError):
            ServingSimulator(
                PoissonArrivals(RATE, seed=SEED),
                make_policy("wrr", N, MU, seed=SEED),
                MU,
                crashes=[WorkerCrash(10.0 * (w + 1), w) for w in range(N)],
            )

    def test_rejects_double_crash_and_bad_worker(self):
        with pytest.raises(ConfigurationError):
            ServingSimulator(
                PoissonArrivals(RATE, seed=SEED),
                make_policy("wrr", N, MU, seed=SEED),
                MU,
                crashes=[WorkerCrash(10.0, 2), WorkerCrash(20.0, 2)],
            )
        with pytest.raises(ConfigurationError):
            ServingSimulator(
                PoissonArrivals(RATE, seed=SEED),
                make_policy("wrr", N, MU, seed=SEED),
                MU,
                crashes=[WorkerCrash(10.0, N)],
            )

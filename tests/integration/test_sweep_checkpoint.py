"""Durable realization sweeps: interrupt, resume, and verify identity.

``sweep_realizations(..., checkpoint_dir=...)`` persists every finished
realization; a rerun (after a crash, or with more realizations) loads
the completed set instead of recomputing, and the merged result is
byte-identical to an uncheckpointed sweep. The manifest pins the sweep
configuration by fingerprint so a checkpoint directory cannot silently
serve results for a different experiment.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.exceptions import CheckpointError
from repro.experiments.config import QUICK
from repro.experiments.harness import sweep_realizations

SMALL = replace(
    QUICK,
    num_workers=5,
    rounds=15,
    realizations=3,
    include_overhead=False,
)

EXACT_FIELDS = ["round_latency", "stragglers", "batch_fractions", "accuracy"]


def _assert_identical(first, second):
    assert first.keys() == second.keys()
    for name in first:
        for run_a, run_b in zip(first[name], second[name]):
            for field in EXACT_FIELDS:
                assert np.array_equal(
                    getattr(run_a, field), getattr(run_b, field)
                ), (name, field)


def test_checkpointed_sweep_matches_plain_sweep(tmp_path):
    plain = sweep_realizations("ResNet18", SMALL)
    durable = sweep_realizations(
        "ResNet18", SMALL, checkpoint_dir=str(tmp_path)
    )
    _assert_identical(plain, durable)


def test_interrupted_sweep_resumes_from_completed(tmp_path):
    import json
    import shutil

    sweep_realizations("ResNet18", SMALL, checkpoint_dir=str(tmp_path))
    # Simulate a sweep killed mid-run: two realizations lose their
    # durable files, the manifest survives. The rerun must restore the
    # intact realization and recompute only the missing ones.
    realization_dirs = sorted(tmp_path.glob("real-*"))
    assert len(realization_dirs) == SMALL.realizations
    for doomed in realization_dirs[1:]:
        shutil.rmtree(doomed)
    resumed = sweep_realizations(
        "ResNet18", SMALL, checkpoint_dir=str(tmp_path)
    )
    plain = sweep_realizations("ResNet18", SMALL)
    _assert_identical(plain, resumed)
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert len(manifest["completed"]) == SMALL.realizations


def test_mismatched_config_is_rejected(tmp_path):
    sweep_realizations("ResNet18", SMALL, checkpoint_dir=str(tmp_path))
    different = replace(SMALL, rounds=SMALL.rounds + 1)
    with pytest.raises(CheckpointError, match="different configuration"):
        sweep_realizations(
            "ResNet18", different, checkpoint_dir=str(tmp_path)
        )


def test_corrupt_realization_is_recomputed(tmp_path):
    sweep_realizations("ResNet18", SMALL, checkpoint_dir=str(tmp_path))
    # Truncate one saved algorithm file: the loader must treat the whole
    # realization as a miss and recompute it, not crash.
    victims = sorted(tmp_path.glob("real-*/DOLBIE.npz"))
    assert victims
    victims[0].write_bytes(b"not an npz")
    resumed = sweep_realizations(
        "ResNet18", SMALL, checkpoint_dir=str(tmp_path)
    )
    plain = sweep_realizations("ResNet18", SMALL)
    _assert_identical(plain, resumed)

"""Unit tests for communication topologies and the flooding protocol."""

import numpy as np
import pytest

from repro.core.dolbie import Dolbie
from repro.core.loop import run_online
from repro.costs.timevarying import RandomAffineProcess
from repro.exceptions import ConfigurationError
from repro.net.links import Link, UniformLatency
from repro.net.topology import Topology
from repro.protocols.fully_distributed import FullyDistributedDolbie


class TestTopologyConstruction:
    def test_complete(self):
        topo = Topology.complete(5)
        assert topo.num_edges == 10
        assert topo.is_complete()
        assert topo.diameter() == 1

    def test_ring(self):
        topo = Topology.ring(6)
        assert topo.num_edges == 6
        assert topo.diameter() == 3
        assert topo.neighbors(0) == [1, 5]

    def test_star(self):
        topo = Topology.star(5, center=2)
        assert topo.num_edges == 4
        assert topo.neighbors(2) == [0, 1, 3, 4]
        assert topo.diameter() == 2

    def test_line(self):
        topo = Topology.line(4)
        assert topo.diameter() == 3
        assert topo.neighbors(0) == [1]

    def test_random_connected_is_connected(self):
        for seed in range(5):
            topo = Topology.random_connected(10, 0.15, seed=seed)
            assert topo.num_nodes == 10
            topo.diameter()  # raises if disconnected

    def test_from_edges(self):
        topo = Topology.from_edges(3, [(0, 1), (1, 2)])
        assert topo.neighbors(1) == [0, 2]

    def test_rejects_disconnected(self):
        with pytest.raises(ConfigurationError):
            Topology.from_edges(4, [(0, 1), (2, 3)])

    def test_rejects_wrong_node_labels(self):
        import networkx as nx

        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(ConfigurationError):
            Topology(graph)

    def test_rejects_tiny(self):
        with pytest.raises(ConfigurationError):
            Topology.complete(1)

    def test_bad_edge_probability(self):
        with pytest.raises(ConfigurationError):
            Topology.random_connected(5, 1.5)


class TestFloodingProtocol:
    def _reference(self, n, process, horizon, alpha_1):
        balancer = Dolbie(n, alpha_1=alpha_1, exact_feasibility_guard=False)
        return run_online(balancer, process, horizon)

    @pytest.mark.parametrize(
        "make_topology",
        [Topology.ring, Topology.star, Topology.line,
         lambda n: Topology.random_connected(n, 0.3, seed=1)],
    )
    def test_identical_to_complete_graph(self, make_topology):
        n, horizon, alpha_1 = 6, 25, 0.02
        process = RandomAffineProcess(
            [1.0, 2.0, 4.0, 8.0, 16.0, 32.0], sigma=0.2, seed=3
        )
        reference = self._reference(n, process, horizon, alpha_1)
        protocol = FullyDistributedDolbie(
            n, alpha_1=alpha_1, topology=make_topology(n)
        )
        result = protocol.run(process, horizon)
        assert np.allclose(reference.allocations, result.allocations, atol=1e-11)

    def test_identical_under_link_latency(self):
        n, horizon, alpha_1 = 5, 20, 0.03
        process = RandomAffineProcess([1, 2, 4, 8, 16], sigma=0.2, seed=7)
        reference = self._reference(n, process, horizon, alpha_1)
        rng = np.random.default_rng(4)
        protocol = FullyDistributedDolbie(
            n,
            alpha_1=alpha_1,
            topology=Topology.line(n),
            link=Link(UniformLatency(0.001, 0.05, rng)),
        )
        result = protocol.run(process, horizon)
        assert np.allclose(reference.allocations, result.allocations, atol=1e-11)

    def test_flooding_costs_more_messages_than_complete(self):
        n = 6
        process = RandomAffineProcess([1.0 + i for i in range(n)], seed=0)
        complete = FullyDistributedDolbie(n, alpha_1=0.02)
        complete.run(process, 5)
        ring = FullyDistributedDolbie(n, alpha_1=0.02, topology=Topology.ring(n))
        ring.run(process, 5)
        assert ring.metrics.messages_total > complete.metrics.messages_total

    def test_flooding_costs_virtual_time_with_latency(self):
        n = 6
        process = RandomAffineProcess([1.0 + i for i in range(n)], seed=0)
        link_rng = np.random.default_rng(0)

        def fixed_link():
            return Link(UniformLatency(0.01, 0.01, link_rng))

        direct = FullyDistributedDolbie(n, alpha_1=0.02, link=fixed_link())
        direct.run(process, 5)
        line = FullyDistributedDolbie(
            n, alpha_1=0.02, topology=Topology.line(n), link=fixed_link()
        )
        line.run(process, 5)
        # Multi-hop dissemination takes ~diameter times longer.
        assert line.cluster.engine.now > 2 * direct.cluster.engine.now

    def test_topology_size_must_match(self):
        with pytest.raises(ConfigurationError):
            FullyDistributedDolbie(4, topology=Topology.ring(5))

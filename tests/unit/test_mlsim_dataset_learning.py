"""Unit tests for the dataset bookkeeping and learning-curve models."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mlsim.dataset import SyntheticDataset, largest_remainder_split
from repro.mlsim.learning import LearningCurve
from repro.mlsim.models import LENET5, RESNET18, VGG16


class TestLargestRemainderSplit:
    def test_exact_sum(self):
        fractions = np.array([0.3, 0.3, 0.4])
        counts = largest_remainder_split(fractions, 10)
        assert counts.sum() == 10

    def test_proportionality_within_one(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            n = int(rng.integers(2, 40))
            fractions = rng.dirichlet(np.ones(n))
            total = int(rng.integers(1, 2000))
            counts = largest_remainder_split(fractions, total)
            assert counts.sum() == total
            assert (counts >= 0).all()
            ideal = fractions / fractions.sum() * total
            assert np.max(np.abs(counts - ideal)) < 1.0 + 1e-9

    def test_unnormalized_fractions_ok(self):
        counts = largest_remainder_split(np.array([2.0, 2.0]), 5)
        assert counts.sum() == 5

    def test_zero_fraction_gets_zero_or_remainder(self):
        counts = largest_remainder_split(np.array([1.0, 0.0]), 7)
        assert counts[1] == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            largest_remainder_split(np.array([-0.5, 1.5]), 10)
        with pytest.raises(ConfigurationError):
            largest_remainder_split(np.array([0.0, 0.0]), 10)
        with pytest.raises(ConfigurationError):
            largest_remainder_split(np.array([1.0]), -1)


class TestSyntheticDataset:
    def test_cifar10_defaults(self):
        ds = SyntheticDataset()
        assert ds.num_samples == 50_000
        assert ds.num_classes == 10

    def test_epoch_accounting(self):
        ds = SyntheticDataset()
        assert ds.epochs_after(25_000) == 0.5
        assert ds.rounds_per_epoch(256) == pytest.approx(50_000 / 256)

    def test_partition_sums_to_batch(self):
        ds = SyntheticDataset()
        counts = ds.partition(np.array([0.5, 0.3, 0.2]), 256)
        assert counts.sum() == 256

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticDataset(num_samples=0)
        with pytest.raises(ConfigurationError):
            SyntheticDataset().epochs_after(-1.0)
        with pytest.raises(ConfigurationError):
            SyntheticDataset().rounds_per_epoch(0)


class TestLearningCurve:
    def test_starts_at_random_guessing(self):
        curve = LearningCurve(RESNET18, noise_std=0.0)
        assert curve.mean_accuracy(0.0) == pytest.approx(RESNET18.accuracy_init)

    def test_monotone_mean_curve(self):
        curve = LearningCurve(VGG16, noise_std=0.0)
        epochs = np.linspace(0, 100, 300)
        acc = curve.mean_accuracy(epochs)
        assert (np.diff(acc) >= 0).all()

    def test_approaches_plateau(self):
        curve = LearningCurve(LENET5, noise_std=0.0)
        assert curve.mean_accuracy(1000.0) == pytest.approx(
            LENET5.accuracy_plateau, abs=1e-6
        )

    def test_epochs_to_accuracy_inverse(self):
        curve = LearningCurve(RESNET18, noise_std=0.0)
        epochs = curve.epochs_to_accuracy(0.95)
        assert curve.mean_accuracy(epochs) == pytest.approx(0.95, abs=1e-9)

    def test_all_models_reach_95_percent(self):
        """Figs. 6-8 quote 95% training accuracy for all three models."""
        for model in (LENET5, RESNET18, VGG16):
            epochs = LearningCurve(model).epochs_to_accuracy(0.95)
            assert 0 < epochs < 100  # within the paper's 100-epoch budget

    def test_noise_is_bounded_and_seeded(self):
        a = LearningCurve(RESNET18, noise_std=0.01, seed=3)
        b = LearningCurve(RESNET18, noise_std=0.01, seed=3)
        values_a = [a.accuracy(e) for e in range(50)]
        values_b = [b.accuracy(e) for e in range(50)]
        assert values_a == values_b
        assert all(RESNET18.accuracy_init <= v <= 1.0 for v in values_a)

    def test_unreachable_target_rejected(self):
        curve = LearningCurve(RESNET18)
        with pytest.raises(ConfigurationError):
            curve.epochs_to_accuracy(1.0)
        with pytest.raises(ConfigurationError):
            curve.epochs_to_accuracy(0.01)

    def test_negative_epochs_rejected(self):
        with pytest.raises(ConfigurationError):
            LearningCurve(RESNET18).mean_accuracy(-1.0)


class TestLargestRemainderSplitRows:
    def test_rows_match_1d_splits_bitwise(self):
        from repro.mlsim.dataset import largest_remainder_split_rows

        rng = np.random.default_rng(5)
        fractions = rng.dirichlet(np.ones(9), size=25)
        counts = largest_remainder_split_rows(fractions, 257)
        assert counts.sum(axis=1).tolist() == [257] * 25
        for t in range(25):
            assert np.array_equal(
                counts[t], largest_remainder_split(fractions[t], 257)
            )

    def test_validation(self):
        from repro.mlsim.dataset import largest_remainder_split_rows

        with pytest.raises(ConfigurationError):
            largest_remainder_split_rows(np.ones(4), 10)  # not 2-D
        with pytest.raises(ConfigurationError):
            largest_remainder_split_rows(np.array([[0.5, -0.5]]), 10)
        with pytest.raises(ConfigurationError):
            largest_remainder_split_rows(np.array([[0.0, 0.0]]), 10)
        with pytest.raises(ConfigurationError):
            largest_remainder_split_rows(np.array([[0.5, 0.5]]), -1)


class TestAccuracySeries:
    def test_matches_sequential_accuracy_calls_bitwise(self):
        epochs = np.linspace(0.1, 20.0, 60)
        sequential = LearningCurve(RESNET18, noise_std=0.01, seed=4)
        batched = LearningCurve(RESNET18, noise_std=0.01, seed=4)
        expected = np.array([sequential.accuracy(e) for e in epochs])
        assert np.array_equal(batched.accuracy_series(epochs), expected)

    def test_series_is_clipped(self):
        curve = LearningCurve(LENET5, noise_std=0.5, seed=0)
        series = curve.accuracy_series(np.linspace(0.0, 200.0, 500))
        assert (series >= LENET5.accuracy_init).all()
        assert (series <= 1.0).all()

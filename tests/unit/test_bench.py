"""Unit tests for the perf-regression benchmark machinery."""

import json

import pytest

from repro.experiments.bench import (
    BENCH,
    BenchmarkResult,
    SCHEMA,
    append_history,
    compare_to_baseline,
    load_results,
    write_results,
)


def _result(name="fig4", speedup=5.0):
    return BenchmarkResult(
        name=name,
        incremental_s=1.0,
        materialized_s=1.0 / speedup,
        speedup=speedup,
        rounds=1000,
    )


def _baseline(**speedups):
    return {
        "schema": SCHEMA,
        "benchmarks": {
            name: {"speedup": value} for name, value in speedups.items()
        },
    }


class TestCompareToBaseline:
    def test_passes_within_tolerance(self):
        failures, notices = compare_to_baseline(
            [_result(speedup=4.0)], _baseline(fig4=5.0), tolerance=0.3
        )
        assert failures == []
        assert notices == []

    def test_fails_below_tolerance(self):
        failures, notices = compare_to_baseline(
            [_result(speedup=3.0)], _baseline(fig4=5.0), tolerance=0.3
        )
        assert len(failures) == 1
        assert "fig4" in failures[0]
        assert notices == []

    def test_improvements_always_pass(self):
        failures, notices = compare_to_baseline(
            [_result(speedup=50.0)], _baseline(fig4=5.0), tolerance=0.0
        )
        assert failures == []
        assert notices == []

    def test_missing_benchmark_is_notice_not_failure(self):
        # A brand-new benchmark with no committed baseline entry must not
        # fail the run (the baseline cannot predate the benchmark); it is
        # reported as a notice pointing at --update-baseline.
        failures, notices = compare_to_baseline(
            [_result(name="brand_new")], _baseline(fig4=5.0)
        )
        assert failures == []
        assert len(notices) == 1
        assert "brand_new" in notices[0]
        assert "no baseline" in notices[0]
        assert "--update-baseline" in notices[0]

    def test_entry_without_speedup_key_is_notice(self):
        # Regression: a baseline entry missing the "speedup" key used to
        # raise KeyError; now it is a notice like a missing entry.
        baseline = {
            "schema": SCHEMA,
            "benchmarks": {"fig4": {"incremental_s": 1.0}},
        }
        failures, notices = compare_to_baseline([_result()], baseline)
        assert failures == []
        assert len(notices) == 1
        assert "fig4" in notices[0]
        assert "no baseline" in notices[0]

    def test_tolerance_validated(self):
        with pytest.raises(ValueError):
            compare_to_baseline([_result()], _baseline(fig4=5.0), tolerance=1.0)
        with pytest.raises(ValueError):
            compare_to_baseline([_result()], _baseline(fig4=5.0), tolerance=-0.1)


class TestResultsFile:
    def test_round_trip(self, tmp_path):
        path = write_results(
            [_result(), _result(name="fig5", speedup=6.0)],
            tmp_path / "BENCH_results.json",
            BENCH,
            jobs=2,
        )
        data = load_results(path)
        assert data["schema"] == SCHEMA
        assert data["jobs"] == 2
        assert data["scale"]["rounds"] == BENCH.rounds
        assert set(data["benchmarks"]) == {"fig4", "fig5"}
        assert data["benchmarks"]["fig5"]["speedup"] == pytest.approx(6.0)

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "benchmarks": {}}))
        with pytest.raises(ValueError):
            load_results(path)

    def test_rounds_per_s(self):
        result = _result(speedup=4.0)
        assert result.rounds_per_s == pytest.approx(4000.0)


class TestHistory:
    def test_each_run_appends_one_json_line(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history([_result(speedup=4.0)], path, jobs=1)
        append_history([_result(speedup=5.0)], path, jobs=2)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["benchmarks"]["fig4"]["speedup"] == pytest.approx(4.0)
        assert second["benchmarks"]["fig4"]["speedup"] == pytest.approx(5.0)
        assert second["jobs"] == 2
        for entry in (first, second):
            assert "timestamp" in entry
            assert "git_sha" in entry  # present even when git is unavailable

    def test_unwritable_history_is_silent(self, tmp_path):
        target = tmp_path / "not-a-dir" / "BENCH_history.jsonl"
        append_history([_result()], target)  # must not raise


class TestPeakRss:
    def test_helper_reports_positive_bytes_on_posix(self):
        from repro.experiments.bench import _peak_rss_bytes

        peak = _peak_rss_bytes()
        # this test process has certainly used more than 10 MB
        assert peak > 10 * 1024 * 1024

    def test_results_and_history_carry_peak_rss(self, tmp_path):
        result = BenchmarkResult(
            name="fig4",
            incremental_s=1.0,
            materialized_s=0.5,
            speedup=2.0,
            rounds=10,
            peak_rss_bytes=123_456_789,
        )
        data = load_results(
            write_results([result], tmp_path / "r.json", BENCH, jobs=1)
        )
        assert data["benchmarks"]["fig4"]["peak_rss_bytes"] == 123_456_789
        history = tmp_path / "h.jsonl"
        append_history([result], history, jobs=1)
        line = json.loads(history.read_text())
        assert line["benchmarks"]["fig4"]["peak_rss_bytes"] == 123_456_789

    def test_default_is_zero_for_hand_built_results(self):
        assert _result().peak_rss_bytes == 0

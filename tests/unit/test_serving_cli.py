"""Unit tests for the ``repro serve`` CLI command."""

import pytest

from repro.cli import build_parser, main
from repro.io import load_trace


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.policy == ["dolbie"]
        assert args.workers == 8
        assert args.requests == 50000
        assert args.arrival == "poisson"
        assert args.quantiles == "sketch"

    def test_rejects_unknown_arrival_process(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--arrival", "weekly"])

    def test_rejects_unknown_quantile_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--quantiles", "tdigest"])


class TestServeCommand:
    def _serve(self, *extra):
        return main(
            ["serve", "--workers", "4", "--requests", "2000", *extra]
        )

    def test_runs_single_policy(self, capsys):
        assert self._serve("--policy", "wrr") == 0
        out = capsys.readouterr().out
        assert "wrr" in out
        assert "p99" in out

    def test_all_expands_to_every_policy(self, capsys):
        assert self._serve("--policy", "all", "--requests", "500") == 0
        out = capsys.readouterr().out
        for name in ("wrr", "dolbie", "dolbie-fd", "jsq", "p2c"):
            assert name in out

    def test_unknown_policy_exits_2(self, capsys):
        assert self._serve("--policy", "least-connections") == 2
        assert "unknown policies" in capsys.readouterr().err

    def test_bursty_and_exact_quantiles(self, capsys):
        assert (
            self._serve(
                "--policy", "jsq", "--arrival", "bursty",
                "--quantiles", "exact",
            )
            == 0
        )
        assert "bursty" in capsys.readouterr().out

    def test_trace_out_single_policy(self, tmp_path, capsys):
        out = tmp_path / "serve.jsonl"
        assert (
            self._serve("--policy", "dolbie", "--trace-out", str(out)) == 0
        )
        trace = load_trace(out)
        counts = trace.kind_counts()
        assert counts["header"] == 1
        assert counts["serving_summary"] == 1
        assert counts.get("serving_period", 0) >= 1

    def test_trace_out_multi_policy_gets_stem_suffix(self, tmp_path, capsys):
        out = tmp_path / "serve.jsonl"
        assert (
            main(
                [
                    "serve", "--workers", "4", "--requests", "800",
                    "--policy", "wrr", "jsq", "--trace-out", str(out),
                ]
            )
            == 0
        )
        assert (tmp_path / "serve-wrr.jsonl").exists()
        assert (tmp_path / "serve-jsq.jsonl").exists()
        assert not out.exists()

"""Unit tests for the risk-averse quantities x' and G (§IV-A)."""

import numpy as np
import pytest

from repro.core.quantities import acceptable_workloads, assistance_vector
from repro.costs.affine import AffineLatencyCost
from repro.costs.base import CallableCost
from repro.exceptions import ConfigurationError
from repro.minmax.solver import evaluate_allocation


def _setup(slopes, intercepts, x):
    costs = [AffineLatencyCost(s, c) for s, c in zip(slopes, intercepts)]
    x = np.asarray(x, dtype=float)
    local, global_cost, straggler = evaluate_allocation(costs, x)
    return costs, x, global_cost, straggler


class TestAcceptableWorkloads:
    def test_straggler_keeps_its_workload(self):
        costs, x, l, s = _setup([1.0, 5.0], [0.0, 0.0], [0.5, 0.5])
        x_prime = acceptable_workloads(costs, x, l, s)
        assert s == 1
        assert x_prime[s] == x[s]

    def test_non_straggler_value_matches_formula(self):
        # l = 2.5 (worker 1 at 0.5 * 5); worker 0: x~ = 2.5 / 1 = 2.5 -> 1.
        costs, x, l, s = _setup([1.0, 5.0], [0.0, 0.0], [0.5, 0.5])
        x_prime = acceptable_workloads(costs, x, l, s)
        assert x_prime[0] == 1.0

    def test_unclamped_value(self):
        # l = 0.5 * 2 = 1.0 for straggler; worker 0 slope 4: x~ = 0.25.
        costs, x, l, s = _setup([4.0, 2.0], [0.0, 0.0], [0.1, 0.5])
        x_prime = acceptable_workloads(costs, x, l, s)
        assert x_prime[0] == pytest.approx(0.25)

    def test_dominates_current_allocation(self):
        """Lemma 1-ii: x' >= x coordinate-wise."""
        rng = np.random.default_rng(4)
        for _ in range(20):
            n = int(rng.integers(2, 10))
            slopes = rng.uniform(0.1, 10, n)
            intercepts = rng.uniform(0, 0.5, n)
            x = rng.dirichlet(np.ones(n))
            costs, x, l, s = _setup(slopes, intercepts, x)
            x_prime = acceptable_workloads(costs, x, l, s)
            assert (x_prime >= x - 1e-12).all()

    def test_fast_path_matches_generic_bisection(self):
        slopes, intercepts = [1.5, 3.0, 0.7], [0.05, 0.0, 0.2]
        x = [0.3, 0.3, 0.4]
        costs, xv, l, s = _setup(slopes, intercepts, x)
        fast = acceptable_workloads(costs, xv, l, s)
        generic_costs = [
            CallableCost(lambda v, a=a, b=b: a * v + b)
            for a, b in zip(slopes, intercepts)
        ]
        generic = acceptable_workloads(generic_costs, xv, l, s)
        assert np.allclose(fast, generic, atol=1e-8)

    def test_shape_mismatch(self):
        costs, x, l, s = _setup([1.0, 2.0], [0.0, 0.0], [0.5, 0.5])
        with pytest.raises(ConfigurationError):
            acceptable_workloads(costs, np.array([0.5, 0.3, 0.2]), l, s)

    def test_bad_straggler_index(self):
        costs, x, l, _ = _setup([1.0, 2.0], [0.0, 0.0], [0.5, 0.5])
        with pytest.raises(ConfigurationError):
            acceptable_workloads(costs, x, l, straggler=5)


class TestAssistanceVector:
    def test_sums_to_zero(self):
        x = np.array([0.2, 0.3, 0.5])
        x_prime = np.array([0.6, 0.7, 0.5])
        g = assistance_vector(x, x_prime, straggler=2)
        assert g.sum() == pytest.approx(0.0, abs=1e-15)

    def test_signs(self):
        """Non-stragglers have G <= 0 (they absorb), straggler G >= 0."""
        x = np.array([0.2, 0.3, 0.5])
        x_prime = np.array([0.6, 0.7, 0.5])
        g = assistance_vector(x, x_prime, straggler=2)
        assert g[0] == pytest.approx(-0.4)
        assert g[1] == pytest.approx(-0.4)
        assert g[2] == pytest.approx(0.8)

    def test_no_gap_no_motion(self):
        x = np.array([0.5, 0.5])
        g = assistance_vector(x, x.copy(), straggler=0)
        assert np.allclose(g, 0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            assistance_vector(np.array([0.5, 0.5]), np.array([0.5]), 0)

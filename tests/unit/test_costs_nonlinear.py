"""Unit tests for the non-linear cost families."""

import math

import pytest

from repro.costs.nonlinear import (
    ExponentialCost,
    LogCost,
    PiecewiseLinearCost,
    PowerLawCost,
    QueueingDelayCost,
    SaturatingQueueingCost,
)
from repro.exceptions import CostFunctionError


class TestPowerLaw:
    def test_value_and_inverse_roundtrip(self):
        f = PowerLawCost(a=2.0, p=1.7, c=0.3)
        for x in (0.1, 0.4, 0.9):
            level = f(x)
            assert f.max_acceptable(level) == pytest.approx(x, abs=1e-9)

    def test_convex_and_concave_exponents(self):
        convex = PowerLawCost(a=1.0, p=2.0)
        concave = PowerLawCost(a=1.0, p=0.5)
        assert convex.is_increasing() and concave.is_increasing()

    def test_zero_scale_constant(self):
        f = PowerLawCost(a=0.0, p=1.0, c=0.7)
        assert f.max_acceptable(0.8) == 1.0

    def test_level_below_offset(self):
        f = PowerLawCost(a=1.0, p=2.0, c=0.5)
        assert f.max_acceptable(0.4) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(CostFunctionError):
            PowerLawCost(a=-1.0, p=1.0)
        with pytest.raises(CostFunctionError):
            PowerLawCost(a=1.0, p=0.0)


class TestExponential:
    def test_zero_at_origin_plus_offset(self):
        f = ExponentialCost(a=1.0, k=2.0, c=0.25)
        assert f(0.0) == pytest.approx(0.25)

    def test_inverse_roundtrip(self):
        f = ExponentialCost(a=0.5, k=3.0, c=0.1)
        for x in (0.05, 0.5, 0.95):
            assert f.max_acceptable(f(x)) == pytest.approx(x, abs=1e-9)

    def test_invalid_rate(self):
        with pytest.raises(CostFunctionError):
            ExponentialCost(a=1.0, k=0.0)


class TestLog:
    def test_concave_increasing(self):
        f = LogCost(a=1.0, k=5.0)
        assert f.is_increasing()
        # concavity: midpoint value above chord
        assert f(0.5) > 0.5 * (f(0.0) + f(1.0))

    def test_inverse_roundtrip(self):
        f = LogCost(a=2.0, k=4.0, c=0.2)
        for x in (0.1, 0.6, 1.0):
            assert f.max_acceptable(f(x)) == pytest.approx(x, abs=1e-9)


class TestPiecewiseLinear:
    def test_interpolates_knots(self):
        f = PiecewiseLinearCost([0.0, 0.5, 1.0], [0.0, 0.2, 1.0])
        assert f(0.0) == 0.0
        assert f(0.25) == pytest.approx(0.1)
        assert f(0.75) == pytest.approx(0.6)
        assert f(1.0) == 1.0

    def test_throughput_cliff_shape(self):
        cliff = PiecewiseLinearCost([0.0, 0.6, 1.0], [0.0, 0.3, 3.0])
        # slope jumps from 0.5 to 6.75 past the knee
        assert cliff(0.61) - cliff(0.6) > 5 * (cliff(0.6) - cliff(0.59))

    def test_bisection_inverse_consistent(self):
        f = PiecewiseLinearCost([0.0, 0.3, 1.0], [0.1, 0.4, 0.9])
        level = 0.4
        x = f.max_acceptable(level)
        assert f(x) <= level + 1e-9
        assert f(min(x + 1e-6, 1.0)) >= level - 1e-9

    def test_rejects_decreasing_knots(self):
        with pytest.raises(CostFunctionError):
            PiecewiseLinearCost([0.0, 1.0], [1.0, 0.5])

    def test_rejects_missing_origin(self):
        with pytest.raises(CostFunctionError):
            PiecewiseLinearCost([0.1, 1.0], [0.0, 1.0])

    def test_rejects_single_knot(self):
        with pytest.raises(CostFunctionError):
            PiecewiseLinearCost([0.0], [0.0])


class TestQueueingDelay:
    def test_blows_up_near_saturation(self):
        f = QueueingDelayCost(mu=2.0, lam=2.0)  # saturates at x=1
        assert f(0.9) > 3 * f(0.3)

    def test_inverse_roundtrip(self):
        f = QueueingDelayCost(mu=3.0, lam=2.0, c=0.1)
        for x in (0.1, 0.5, 0.9):
            assert f.max_acceptable(f(x)) == pytest.approx(x, abs=1e-9)

    def test_domain_capped_below_saturation(self):
        f = QueueingDelayCost(mu=1.0, lam=2.0)
        assert f.x_max < 0.5  # saturation at mu/lam = 0.5
        assert math.isfinite(f(f.x_max))

    def test_invalid_rates(self):
        with pytest.raises(CostFunctionError):
            QueueingDelayCost(mu=0.0, lam=1.0)
        with pytest.raises(CostFunctionError):
            QueueingDelayCost(mu=1.0, lam=-1.0)


class TestSaturatingQueueing:
    def test_matches_mm1_below_the_knee(self):
        f = SaturatingQueueingCost(mu=3.0, lam=4.0, c=0.1)  # knee at 0.7125
        g = QueueingDelayCost(mu=3.0, lam=4.0, c=0.1)
        for x in (0.0, 0.2, 0.5, 0.9 * f.x_knee):
            assert f(x) == pytest.approx(g(x), rel=1e-12)

    def test_continuous_and_c1_at_the_knee(self):
        f = SaturatingQueueingCost(mu=2.0, lam=3.0)
        eps = 1e-7
        below = f(f.x_knee - eps)
        above = f(f.x_knee + eps)
        at = f(f.x_knee)
        assert below < at < above
        # One-sided slopes agree to first order: C^1 at the knee.
        slope_below = (at - below) / eps
        slope_above = (above - at) / eps
        assert slope_below == pytest.approx(slope_above, rel=1e-5)
        assert slope_above == pytest.approx(f.slope, rel=1e-5)

    def test_defined_and_finite_on_the_whole_simplex(self):
        # lam >> mu: classic M/M/1 would hit a pole inside [0, 1]; the
        # saturating curve stays finite, increasing, and very steep.
        f = SaturatingQueueingCost(mu=0.5, lam=10.0)
        values = [f(x) for x in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(math.isfinite(v) for v in values)
        assert values == sorted(values)
        assert f(1.0) > 100 * f(0.0)  # overload is catastrophically priced

    def test_level_inverse_roundtrip_both_branches(self):
        f = SaturatingQueueingCost(mu=1.0, lam=4.0, c=0.2)
        for x in (0.05, 0.5 * f.x_knee, f.x_knee, 1.5 * f.x_knee, 1.0):
            assert f.level_inverse(f(x)) == pytest.approx(x, abs=1e-9)

    def test_level_inverse_clamps_below_offset(self):
        f = SaturatingQueueingCost(mu=2.0, lam=1.0, c=0.5)
        assert f.level_inverse(0.1) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(CostFunctionError):
            SaturatingQueueingCost(mu=0.0, lam=1.0)
        with pytest.raises(CostFunctionError):
            SaturatingQueueingCost(mu=1.0, lam=-1.0)
        with pytest.raises(CostFunctionError):
            SaturatingQueueingCost(mu=1.0, lam=1.0, knee=1.0)
        with pytest.raises(CostFunctionError):
            SaturatingQueueingCost(mu=1.0, lam=1.0, c=-0.1)

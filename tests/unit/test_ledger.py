"""Unit tests for round ledgers and prefix consistency."""

import pytest

from repro.core.ledger import (
    LedgerEntry,
    RoundLedger,
    prefix_consistency_violations,
)


def _entry(t, straggler=0, cost=1.0, roster=(0, 1, 2)):
    return LedgerEntry(
        round_index=t, straggler=straggler, global_cost=cost,
        roster=tuple(roster),
    )


class TestLedgerEntry:
    def test_dict_roundtrip(self):
        entry = _entry(7, straggler=2, cost=3.25, roster=(0, 2))
        assert LedgerEntry.from_dict(entry.to_dict()) == entry

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _entry(1).round_index = 2


class TestRoundLedger:
    def test_append_only_strictly_increasing(self):
        ledger = RoundLedger()
        ledger.append(_entry(1))
        ledger.append(_entry(3))  # gaps are fine (the worker was down)
        with pytest.raises(ValueError):
            ledger.append(_entry(3))
        with pytest.raises(ValueError):
            ledger.append(_entry(2))

    def test_entry_for(self):
        ledger = RoundLedger([_entry(1), _entry(3)])
        assert ledger.entry_for(3) == _entry(3)
        assert ledger.entry_for(2) is None
        assert ledger.entry_for(99) is None

    def test_last_round_and_len(self):
        assert RoundLedger().last_round is None
        ledger = RoundLedger([_entry(1), _entry(2)])
        assert ledger.last_round == 2
        assert len(ledger) == 2

    def test_records_roundtrip(self):
        ledger = RoundLedger([_entry(1), _entry(4, straggler=1)])
        assert RoundLedger.from_records(ledger.to_records()) == ledger


class TestPrefixConsistency:
    def test_identical_replica_is_consistent(self):
        authority = RoundLedger([_entry(t) for t in range(1, 6)])
        replica = RoundLedger(authority.entries)
        assert prefix_consistency_violations(replica, authority) == []

    def test_gaps_are_fine(self):
        authority = RoundLedger([_entry(t) for t in range(1, 6)])
        replica = RoundLedger([_entry(1), _entry(2), _entry(5)])
        assert prefix_consistency_violations(replica, authority) == []

    def test_unknown_round_is_flagged(self):
        authority = RoundLedger([_entry(1)])
        replica = RoundLedger([_entry(1), _entry(2)])
        problems = prefix_consistency_violations(replica, authority)
        assert any("unknown to the authority" in p for p in problems)

    def test_disagreement_is_flagged(self):
        authority = RoundLedger([_entry(1, cost=1.0)])
        replica = RoundLedger([_entry(1, cost=2.0)])
        problems = prefix_consistency_violations(replica, authority)
        assert any("disagrees with authority at round 1" in p for p in problems)

    def test_preserved_prefix_enforced(self):
        authority = RoundLedger([_entry(t) for t in range(1, 6)])
        prefix = authority.entries[:2]
        kept = RoundLedger([_entry(1), _entry(2), _entry(5)])
        assert (
            prefix_consistency_violations(
                kept, authority, preserved_prefix=prefix
            )
            == []
        )
        # A restart that silently dropped its pre-crash history is a
        # violation even though the surviving entries agree.
        dropped = RoundLedger([_entry(5)])
        problems = prefix_consistency_violations(
            dropped, authority, preserved_prefix=prefix
        )
        assert any("lost its pre-crash ledger prefix" in p for p in problems)


class TestReplicate:
    def test_replicate_appends_without_validation(self):
        authority = RoundLedger()
        replica = RoundLedger()
        for t in (1, 2, 5):
            entry = LedgerEntry(t, straggler=0, global_cost=1.0, roster=(0, 1))
            authority.append(entry)  # validates
            replica.replicate(entry)  # unchecked fan-out of the same entry
        assert replica == authority
        assert prefix_consistency_violations(replica, authority) == []

    def test_replicated_subsequence_stays_consistent(self):
        # A replica that missed rounds (worker was down) receives a
        # subsequence of the authoritative stream — still valid.
        authority = RoundLedger()
        replica = RoundLedger()
        for t in range(1, 6):
            entry = LedgerEntry(t, straggler=t % 2, global_cost=float(t), roster=(0, 1))
            authority.append(entry)
            if t not in (2, 3):
                replica.replicate(entry)
        assert prefix_consistency_violations(replica, authority) == []
        assert len(replica) == 3

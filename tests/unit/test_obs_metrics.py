"""Unit tests for the metrics registry and its subsystem adopters."""

import pytest

from repro.exceptions import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_raises(self):
        c = Counter("x")
        with pytest.raises(ConfigurationError):
            c.inc(-1.0)


class TestGauge:
    def test_set_and_add_move_both_ways(self):
        g = Gauge("x")
        g.set(5.0)
        g.add(-2.0)
        assert g.value == 3.0


class TestHistogram:
    def test_observe_buckets_and_overflow(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            h.observe(value)
        assert h.bucket_counts == [1, 1, 2]
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.mean == pytest.approx(555.5 / 4)

    def test_boundary_lands_in_lower_bucket(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]

    def test_merge_requires_same_buckets(self):
        a = Histogram("x", buckets=(1.0,))
        b = Histogram("x", buckets=(2.0,))
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_adds_everything(self):
        a = Histogram("x", buckets=(1.0, 10.0))
        b = Histogram("x", buckets=(1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        merged = a.merge(b)
        assert merged.bucket_counts == [1, 1, 0]
        assert merged.count == 2
        assert merged.sum == pytest.approx(5.5)
        # Inputs are untouched (merge returns a new histogram).
        assert a.count == 1 and b.count == 1

    def test_non_increasing_buckets_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("x", buckets=(1.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("x", buckets=())


class TestMetricsRegistry:
    def test_get_or_create_returns_same_handle(self):
        reg = MetricsRegistry()
        assert reg.counter("hits", worker=3) is reg.counter("hits", worker=3)
        assert reg.counter("hits", worker=3) is not reg.counter("hits", worker=4)

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("msgs", src=0, dst=1)
        b = reg.counter("msgs", dst=1, src=0)
        assert a is b

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_histogram_bucket_conflict_raises(self):
        reg = MetricsRegistry()
        reg.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            reg.histogram("lat", buckets=(1.0, 3.0))
        assert reg.histogram("lat", buckets=(1.0, 2.0)).buckets == (1.0, 2.0)

    def test_value_and_get_defaults(self):
        reg = MetricsRegistry()
        assert reg.get("absent") is None
        assert reg.value("absent") == 0.0
        assert reg.value("absent", default=7.0) == 7.0
        reg.counter("present").inc(3)
        assert reg.value("present") == 3.0

    def test_series_extracts_label_family(self):
        reg = MetricsRegistry()
        reg.counter("straggler", worker=0).inc(4)
        reg.counter("straggler", worker=2).inc(1)
        reg.counter("other", worker=9).inc(5)
        assert reg.series("straggler", "worker") == {0: 4.0, 2: 1.0}

    def test_collect_prefix_filter_and_order(self):
        reg = MetricsRegistry()
        reg.counter("b.two")
        reg.counter("a.one")
        reg.gauge("b.three")
        names = [m.name for m in reg.collect("b.")]
        assert names == ["b.three", "b.two"]

    def test_reset_empties(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert len(reg) == 0
        assert reg.value("x") == 0.0

    def test_records_round_trip_exact(self):
        reg = MetricsRegistry()
        reg.counter("c", worker=1).inc(5)
        reg.gauge("g").set(-2.5)
        h = reg.histogram("h", buckets=(0.1, 1.0), phase="round")
        h.observe(0.05)
        h.observe(5.0)
        clone = MetricsRegistry.from_records(reg.to_records())
        assert clone.to_records() == reg.to_records()
        assert clone.value("c", worker=1) == 5.0
        restored = clone.get("h", phase="round")
        assert restored.bucket_counts == [1, 0, 1]
        assert restored.buckets == (0.1, 1.0)

    def test_from_records_unknown_type_raises(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry.from_records(
                [{"name": "x", "labels": {}, "type": "summary", "value": 1.0}]
            )

    def test_default_buckets_strictly_increasing(self):
        assert all(
            a < b for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )


class TestNetworkMetricsOnRegistry:
    """The net-layer facade keeps its old read API on the new registry."""

    def test_record_updates_registry_series(self):
        from repro.net.message import Message
        from repro.net.metrics import NetworkMetrics

        metrics = NetworkMetrics()
        message = Message(
            src=0, dst=1, tag="cost", payload={"a": 1.0},
            size_bytes=8, send_time=0.0, round_index=3,
        )
        metrics.record(message)
        metrics.record(message)
        assert metrics.messages_total == 2
        assert metrics.per_round_messages == {3: 2}
        assert metrics.per_pair_messages[(0, 1)] == 2
        assert metrics.registry.value("net.messages_total") == 2.0
        assert metrics.registry.series("net.round_messages", "round") == {
            3: 2.0
        }

    def test_blackhole_counter(self):
        from repro.net.metrics import NetworkMetrics

        metrics = NetworkMetrics()
        metrics.record_blackholed()
        metrics.record_blackholed(2)
        assert metrics.messages_blackholed == 3

    def test_reset_restores_fresh_state(self):
        from repro.net.message import Message
        from repro.net.metrics import NetworkMetrics

        metrics = NetworkMetrics()
        metrics.record(
            Message(src=0, dst=1, tag="cost", payload={"a": 1.0},
                    size_bytes=8, send_time=0.0, round_index=1)
        )
        metrics.reset()
        assert metrics.messages_total == 0
        assert metrics.per_round_messages == {}
        assert metrics.per_pair_messages == {}
        # Handles still work after reset.
        metrics.record(
            Message(src=1, dst=0, tag="cost", payload={"a": 1.0},
                    size_bytes=8, send_time=0.0, round_index=2)
        )
        assert metrics.messages_total == 1

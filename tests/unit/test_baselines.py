"""Unit tests for the baseline algorithms (EQU, OGD, ABS, LB-BSP, OPT)."""

import numpy as np
import pytest

from repro.baselines.abs_tuner import AdaptiveBatchSize
from repro.baselines.equal import EqualAssignment
from repro.baselines.lbbsp import LoadBalancedBSP
from repro.baselines.ogd import OnlineGradientDescent, numeric_slope
from repro.baselines.opt import DynamicOptimum
from repro.baselines.registry import ALGORITHMS, PAPER_ALGORITHM_ORDER, make_balancer
from repro.core.interface import make_feedback
from repro.core.loop import run_online
from repro.costs.affine import AffineLatencyCost
from repro.costs.base import CallableCost
from repro.costs.timevarying import RandomAffineProcess, StaticCostProcess
from repro.exceptions import ConfigurationError
from repro.simplex.sampling import is_feasible


def _feed(balancer, costs):
    fb = make_feedback(balancer.round, balancer.decide(), costs)
    balancer.update(fb)
    return fb


class TestEqual:
    def test_never_moves(self):
        b = EqualAssignment(4)
        _feed(b, [AffineLatencyCost(s) for s in (1, 2, 3, 4)])
        assert np.allclose(b.allocation, 0.25)


class TestNumericSlope:
    def test_affine_uses_exact_slope(self):
        assert numeric_slope(AffineLatencyCost(3.5, 0.1), 0.5) == 3.5

    def test_finite_difference_on_generic_cost(self):
        f = CallableCost(lambda x: x**2)
        assert numeric_slope(f, 0.5) == pytest.approx(1.0, abs=1e-4)

    def test_boundary_handling(self):
        f = CallableCost(lambda x: x**2)
        assert numeric_slope(f, 1.0) == pytest.approx(2.0, abs=1e-4)
        assert numeric_slope(f, 0.0) == pytest.approx(0.0, abs=1e-4)


class TestOGD:
    def test_only_straggler_coordinate_before_projection(self):
        b = OnlineGradientDescent(3, learning_rate=0.01)
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(1.0), AffineLatencyCost(9.0)]
        _feed(b, costs)
        x = b.allocation
        # Straggler (2) lost mass; the projection spreads it uniformly.
        assert x[2] < 1.0 / 3.0
        assert x[0] == pytest.approx(x[1])
        assert is_feasible(x)

    def test_projection_counter(self):
        b = OnlineGradientDescent(2)
        _feed(b, [AffineLatencyCost(1.0), AffineLatencyCost(2.0)])
        assert b.projection_count == 1

    def test_rejects_bad_learning_rate(self):
        with pytest.raises(ConfigurationError):
            OnlineGradientDescent(2, learning_rate=0.0)

    def test_converges_to_limit_cycle_near_optimum(self):
        # A constant step size limit-cycles around the optimum 0.75; the
        # cycle must stay within one step of it.
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(3.0)]
        b = OnlineGradientDescent(2, learning_rate=0.05)
        result = run_online(b, StaticCostProcess(costs), 300)
        assert result.global_costs[-10:].mean() == pytest.approx(0.75, rel=0.1)
        assert result.global_costs[-10:].max() <= 0.75 + 3 * 0.05


class TestABS:
    def test_updates_only_every_period(self):
        b = AdaptiveBatchSize(2, period=3)
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(4.0)]
        for k in range(2):
            _feed(b, costs)
            assert np.allclose(b.allocation, 0.5)  # window not full yet
        _feed(b, costs)
        assert not np.allclose(b.allocation, 0.5)

    def test_inverse_cost_proportionality(self):
        b = AdaptiveBatchSize(2, period=1)
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(4.0)]
        _feed(b, costs)  # l = (0.5, 2.0) -> x proportional to (2, 0.5)
        assert np.allclose(b.allocation, [0.8, 0.2])

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            AdaptiveBatchSize(2, period=0)

    def test_zero_cost_handled(self):
        b = AdaptiveBatchSize(2, period=1)
        costs = [AffineLatencyCost(0.0, 0.0), AffineLatencyCost(1.0)]
        _feed(b, costs)
        assert is_feasible(b.allocation)


class TestLBBSP:
    def test_no_transfer_before_patience(self):
        b = LoadBalancedBSP(3, delta=0.05, patience=3)
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(2.0), AffineLatencyCost(4.0)]
        for _ in range(2):
            _feed(b, costs)
        assert np.allclose(b.allocation, 1.0 / 3.0)

    def test_transfer_after_persistent_straggler(self):
        b = LoadBalancedBSP(3, delta=0.05, patience=3)
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(2.0), AffineLatencyCost(4.0)]
        for _ in range(3):
            _feed(b, costs)
        x = b.allocation
        assert x[2] == pytest.approx(1.0 / 3.0 - 0.05)
        assert x[0] == pytest.approx(1.0 / 3.0 + 0.05)
        assert b.transfer_rounds == [3]

    def test_straggler_change_resets_streak(self):
        b = LoadBalancedBSP(3, delta=0.05, patience=2)
        slow_a = [AffineLatencyCost(1.0), AffineLatencyCost(2.0), AffineLatencyCost(4.0)]
        slow_b = [AffineLatencyCost(4.0), AffineLatencyCost(2.0), AffineLatencyCost(1.0)]
        _feed(b, slow_a)
        _feed(b, slow_b)  # straggler switches: streak restarts
        _feed(b, slow_a)
        assert np.allclose(b.allocation, 1.0 / 3.0)

    def test_transfer_clamped_at_zero(self):
        b = LoadBalancedBSP(
            2,
            initial_allocation=np.array([0.99, 0.01]),
            delta=0.5,
            patience=1,
        )
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(500.0)]
        _feed(b, costs)
        x = b.allocation
        assert x[1] == 0.0
        assert x[0] == pytest.approx(1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LoadBalancedBSP(2, delta=0.0)
        with pytest.raises(ConfigurationError):
            LoadBalancedBSP(2, patience=0)


class TestOPT:
    def test_oracle_flag(self):
        assert DynamicOptimum(2).requires_oracle

    def test_oracle_decision_is_optimal(self):
        b = DynamicOptimum(2)
        x = b.oracle_decide([AffineLatencyCost(1.0), AffineLatencyCost(3.0)])
        assert np.allclose(x, [0.75, 0.25], atol=1e-6)
        assert b.optimal_values[-1] == pytest.approx(0.75, abs=1e-6)

    def test_tracks_changing_costs(self):
        process = RandomAffineProcess([1.0, 2.0], sigma=0.5, seed=0)
        result = run_online(DynamicOptimum(2), process, 20)
        comparator_free = run_online(EqualAssignment(2), process, 20)
        assert result.total_cost <= comparator_free.total_cost + 1e-9


class TestRegistry:
    def test_all_names_constructible(self):
        for name in ALGORITHMS:
            balancer = make_balancer(name, 4)
            assert balancer.num_workers == 4
            assert balancer.name == name

    def test_paper_order_covered_by_registry(self):
        assert set(PAPER_ALGORITHM_ORDER) <= set(ALGORITHMS)
        # The EG extension exists but is not part of the paper's figures.
        assert "EG" in ALGORITHMS and "EG" not in PAPER_ALGORITHM_ORDER

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_balancer("SGD", 4)

    def test_kwargs_forwarded(self):
        b = make_balancer("DOLBIE", 4, alpha_1=0.123)
        assert b.alpha == pytest.approx(0.123)
        b = make_balancer("OGD", 4, learning_rate=0.5)
        assert b.learning_rate == 0.5


class TestRegisterAlgorithm:
    def _make_custom(self):
        from repro.baselines.equal import EqualAssignment

        class Custom(EqualAssignment):
            name = "CUSTOM"

        return Custom

    def test_register_and_construct(self):
        from repro.baselines.registry import register_algorithm, unregister_algorithm

        register_algorithm("CUSTOM", self._make_custom())
        try:
            balancer = make_balancer("CUSTOM", 4)
            assert balancer.name == "CUSTOM"
        finally:
            unregister_algorithm("CUSTOM")
        with pytest.raises(ConfigurationError):
            make_balancer("CUSTOM", 4)

    def test_duplicate_registration_requires_replace(self):
        from repro.baselines.registry import register_algorithm

        with pytest.raises(ConfigurationError):
            register_algorithm("DOLBIE", self._make_custom())

    def test_paper_algorithms_protected(self):
        from repro.baselines.registry import unregister_algorithm

        with pytest.raises(ConfigurationError):
            unregister_algorithm("DOLBIE")

    def test_bad_name_rejected(self):
        from repro.baselines.registry import register_algorithm

        with pytest.raises(ConfigurationError):
            register_algorithm("", self._make_custom())

"""Unit tests for repro.costs.affine (the §III-A latency model)."""

import pytest

from repro.costs.affine import AffineLatencyCost
from repro.exceptions import CostFunctionError


class TestConstruction:
    def test_value(self):
        f = AffineLatencyCost(slope=2.0, intercept=0.5)
        assert f(0.0) == 0.5
        assert f(0.25) == 1.0

    def test_rejects_negative_slope(self):
        with pytest.raises(CostFunctionError):
            AffineLatencyCost(slope=-1.0)

    def test_rejects_negative_intercept(self):
        with pytest.raises(CostFunctionError):
            AffineLatencyCost(slope=1.0, intercept=-0.1)

    def test_rejects_nan(self):
        with pytest.raises(CostFunctionError):
            AffineLatencyCost(slope=float("nan"))


class TestFromSystem:
    def test_paper_quantities(self):
        # f(x) = x * B / gamma + comm: B=256, gamma=512 -> slope 0.5
        f = AffineLatencyCost.from_system(batch_size=256, speed=512, comm_time=0.1)
        assert f.slope == pytest.approx(0.5)
        assert f(1.0) == pytest.approx(0.6)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(CostFunctionError):
            AffineLatencyCost.from_system(256, 0.0)

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(CostFunctionError):
            AffineLatencyCost.from_system(0, 10.0)


class TestLevelInverse:
    def test_closed_form(self):
        f = AffineLatencyCost(slope=2.0, intercept=0.5)
        # max{x : 2x + 0.5 <= 1.5} = 0.5
        assert f.max_acceptable(1.5) == pytest.approx(0.5)

    def test_level_below_intercept(self):
        f = AffineLatencyCost(slope=1.0, intercept=0.5)
        assert f.max_acceptable(0.4) == 0.0

    def test_zero_slope_behaves_like_constant(self):
        f = AffineLatencyCost(slope=0.0, intercept=0.5)
        assert f.max_acceptable(0.6) == 1.0
        assert f.max_acceptable(0.4) == 0.0

    def test_matches_bisection(self):
        f = AffineLatencyCost(slope=3.3, intercept=0.07)
        g_inverse = f.level_inverse
        f.level_inverse = lambda level: None  # force bisection
        for level in (0.1, 0.5, 1.0, 3.0):
            expected = min(max(g_inverse(level), 0.0), 1.0)
            assert f.max_acceptable(level) == pytest.approx(expected, abs=1e-8)


class TestLipschitz:
    def test_exact_constant(self):
        f = AffineLatencyCost(slope=7.25, intercept=1.0)
        assert f.lipschitz == 7.25
        assert f.lipschitz_estimate() == pytest.approx(7.25)

    def test_repr(self):
        assert "AffineLatencyCost" in repr(AffineLatencyCost(1.0, 0.0))

"""Unit tests for the time-varying cost processes."""

import pytest

from repro.costs.affine import AffineLatencyCost
from repro.costs.timevarying import (
    DriftingAffineProcess,
    PowerLawProcess,
    RandomAffineProcess,
    StaticCostProcess,
    SwitchingProcess,
)
from repro.exceptions import ConfigurationError


class TestDeterminism:
    """costs_at(t) must be replayable: the OPT oracle and the online
    algorithms have to see the same world."""

    @pytest.mark.parametrize(
        "process",
        [
            RandomAffineProcess([1.0, 2.0, 3.0], sigma=0.2, comm_scale=0.1, seed=5),
            DriftingAffineProcess([1.0, 2.0, 3.0], amplitude=0.3, seed=5),
            PowerLawProcess([1.0, 2.0, 1.5], [1.0, 2.0, 0.5], seed=5),
        ],
    )
    def test_costs_at_replayable(self, process):
        for t in (1, 7, 30):
            first = process.costs_at(t)
            second = process.costs_at(t)
            for f, g in zip(first, second):
                for x in (0.0, 0.3, 1.0):
                    assert f(x) == g(x)

    def test_different_rounds_differ(self):
        process = RandomAffineProcess([1.0, 2.0], sigma=0.3, seed=1)
        a = process.costs_at(1)[0](0.5)
        b = process.costs_at(2)[0](0.5)
        assert a != b


class TestStaticProcess:
    def test_same_every_round(self):
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(2.0)]
        process = StaticCostProcess(costs)
        assert process.costs_at(1) == process.costs_at(99)

    def test_needs_two_workers(self):
        with pytest.raises(ConfigurationError):
            StaticCostProcess([AffineLatencyCost(1.0)])


class TestRandomAffine:
    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ConfigurationError):
            RandomAffineProcess([1.0, 0.0])

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            RandomAffineProcess([1.0, 2.0], sigma=-0.1)

    def test_comm_scale_bounds_intercept(self):
        process = RandomAffineProcess([1.0, 2.0], comm_scale=0.5, seed=0)
        for t in range(1, 20):
            for f in process.costs_at(t):
                assert 0.0 <= f.intercept <= 0.5

    def test_faster_worker_has_smaller_slope_on_average(self):
        process = RandomAffineProcess([1.0, 10.0], sigma=0.1, seed=2)
        slow = sum(process.costs_at(t)[0].slope for t in range(1, 50))
        fast = sum(process.costs_at(t)[1].slope for t in range(1, 50))
        assert fast < slow


class TestDriftingAffine:
    def test_amplitude_bounds(self):
        with pytest.raises(ConfigurationError):
            DriftingAffineProcess([1.0, 2.0], amplitude=1.0)
        with pytest.raises(ConfigurationError):
            DriftingAffineProcess([1.0, 2.0], period=0.0)

    def test_periodicity(self):
        process = DriftingAffineProcess([1.0, 2.0], amplitude=0.5, period=10.0, seed=0)
        a = process.costs_at(3)[0](1.0)
        b = process.costs_at(13)[0](1.0)
        assert a == pytest.approx(b, rel=1e-9)

    def test_zero_amplitude_is_static(self):
        process = DriftingAffineProcess([1.0, 2.0], amplitude=0.0, seed=0)
        assert process.costs_at(1)[0](0.7) == process.costs_at(50)[0](0.7)


class TestSwitching:
    def _regimes(self):
        a = [AffineLatencyCost(1.0), AffineLatencyCost(2.0)]
        b = [AffineLatencyCost(5.0), AffineLatencyCost(0.5)]
        return a, b

    def test_alternates(self):
        a, b = self._regimes()
        process = SwitchingProcess(a, b, switch_every=3)
        assert process.costs_at(1) == a
        assert process.costs_at(3) == a
        assert process.costs_at(4) == b
        assert process.costs_at(7) == a

    def test_rejects_mismatched_regimes(self):
        a, b = self._regimes()
        with pytest.raises(ConfigurationError):
            SwitchingProcess(a, b[:1])

    def test_rejects_bad_period(self):
        a, b = self._regimes()
        with pytest.raises(ConfigurationError):
            SwitchingProcess(a, b, switch_every=0)


class TestHorizonCosts:
    def test_materializes_all_rounds(self):
        process = RandomAffineProcess([1.0, 2.0], seed=0)
        horizon = process.horizon_costs(12)
        assert len(horizon) == 12
        assert all(len(round_costs) == 2 for round_costs in horizon)

"""Unit tests for the Algorithm 1 / Algorithm 2 protocol implementations."""

import numpy as np
import pytest

from repro.costs.affine import AffineLatencyCost
from repro.costs.timevarying import StaticCostProcess
from repro.exceptions import ConfigurationError
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie
from repro.simplex.sampling import is_feasible


def _costs():
    return [AffineLatencyCost(1.0), AffineLatencyCost(2.0), AffineLatencyCost(6.0)]


class TestMasterWorkerSingleRound:
    def test_hand_computed_round(self):
        protocol = MasterWorkerDolbie(3, alpha_1=0.1)
        x_played, local, global_cost, straggler = protocol.run_round(1, _costs())
        assert np.allclose(x_played, 1.0 / 3.0)
        assert np.allclose(local, [1.0 / 3.0, 2.0 / 3.0, 2.0])
        assert global_cost == pytest.approx(2.0)
        assert straggler == 2
        # x'_0 = x'_1 = 1 (clamped); non-stragglers move 0.1 of the gap.
        x = protocol.allocation
        assert x[0] == pytest.approx(1.0 / 3.0 + 0.1 * (2.0 / 3.0))
        assert x[2] == pytest.approx(1.0 - 2.0 * x[0])

    def test_alpha_updated_by_master(self):
        protocol = MasterWorkerDolbie(3, alpha_1=0.1)
        protocol.run_round(1, _costs())
        x_s = protocol.allocation[2]
        assert protocol.alpha == pytest.approx(min(0.1, x_s / (1.0 + x_s)))

    def test_message_count_is_3n(self):
        protocol = MasterWorkerDolbie(5)
        protocol.run_round(1, [AffineLatencyCost(float(i + 1)) for i in range(5)])
        assert protocol.metrics.messages_total == 15

    def test_cost_count_validated(self):
        protocol = MasterWorkerDolbie(3)
        with pytest.raises(ConfigurationError):
            protocol.run_round(1, _costs()[:2])

    def test_needs_two_workers(self):
        with pytest.raises(ConfigurationError):
            MasterWorkerDolbie(1)

    def test_feasible_over_many_rounds(self):
        protocol = MasterWorkerDolbie(3, alpha_1=0.1)
        result = protocol.run(StaticCostProcess(_costs()), 50)
        for t in range(50):
            assert is_feasible(result.allocations[t], atol=1e-9)


class TestFullyDistributedSingleRound:
    def test_matches_master_worker(self):
        mw = MasterWorkerDolbie(3, alpha_1=0.1)
        fd = FullyDistributedDolbie(3, alpha_1=0.1)
        for t in range(1, 6):
            mw.run_round(t, _costs())
            fd.run_round(t, _costs())
            assert np.allclose(mw.allocation, fd.allocation, atol=1e-12)

    def test_message_count_is_n_squared_minus_one(self):
        protocol = FullyDistributedDolbie(5)
        protocol.run_round(1, [AffineLatencyCost(float(i + 1)) for i in range(5)])
        assert protocol.metrics.messages_total == 24

    def test_consensus_step_size_is_min(self):
        protocol = FullyDistributedDolbie(3, alpha_1=0.2)
        protocol.run_round(1, _costs())
        # Only the straggler lowered its local alpha-bar; consensus = min.
        alphas = [p.alpha_bar for p in protocol.peers]
        assert protocol.alpha == min(alphas)
        assert alphas[0] == alphas[1] == 0.2  # non-stragglers unchanged

    def test_all_peers_agree_on_straggler(self):
        protocol = FullyDistributedDolbie(4)
        costs = [AffineLatencyCost(s) for s in (1.0, 5.0, 2.0, 3.0)]
        _, _, _, straggler = protocol.run_round(1, costs)
        assert straggler == 1
        assert all(p.straggler_id == 1 for p in protocol.peers)

    def test_non_stragglers_do_not_learn_others_decisions(self):
        """§IV-B2 privacy: only the straggler receives decision messages."""
        protocol = FullyDistributedDolbie(4)
        costs = [AffineLatencyCost(s) for s in (1.0, 5.0, 2.0, 3.0)]
        protocol.run_round(1, costs)
        for peer in protocol.peers:
            if peer.node_id != 1:
                assert peer._peer_decisions == {}

    def test_straggler_workload_non_negative(self):
        protocol = FullyDistributedDolbie(3, alpha_1=0.1)
        result = protocol.run(StaticCostProcess(_costs()), 50)
        assert (result.allocations >= -1e-12).all()


class TestEmbeddedMaster:
    """§IV-B1: 'an elected worker acts also as the master'."""

    def test_matches_external_controller_numerically(self):
        external = MasterWorkerDolbie(3, alpha_1=0.1)
        embedded = MasterWorkerDolbie(3, alpha_1=0.1, embedded_master=True)
        for t in range(1, 8):
            external.run_round(t, _costs())
            embedded.run_round(t, _costs())
            assert np.allclose(external.allocation, embedded.allocation, atol=1e-12)

    def test_wire_message_count_drops_to_3n_minus_3(self):
        n = 6
        embedded = MasterWorkerDolbie(n, embedded_master=True)
        embedded.run_round(1, [AffineLatencyCost(float(i + 1)) for i in range(n)])
        # Worker 0's cost report, coord, and decision stay in-process.
        assert embedded.metrics.messages_total == 3 * (n - 1)

    def test_straggler_on_master_node_saves_the_assignment_message(self):
        n = 3
        embedded = MasterWorkerDolbie(n, embedded_master=True)
        # Worker 0 is the straggler: its assign message is also local.
        costs = [AffineLatencyCost(9.0), AffineLatencyCost(1.0), AffineLatencyCost(1.0)]
        embedded.run_round(1, costs)
        # cost: 2 remote; coord: 2 remote; decisions: 2 remote; assign: 0.
        assert embedded.metrics.messages_total == 6


class TestCrashTolerance:
    """Extension: the master's failure detector (see _Master docstring)."""

    def _run_until(self, protocol, process, start, stop):
        for t in range(start, stop):
            protocol.run_round(t, process.costs_at(t))

    def test_crashed_worker_declared_dead_and_share_folded(self):
        from repro.costs.timevarying import RandomAffineProcess

        process = RandomAffineProcess([1, 2, 4, 8, 16], sigma=0.1, seed=0)
        protocol = MasterWorkerDolbie(5, alpha_1=0.02)
        self._run_until(protocol, process, 1, 6)
        protocol.crash_worker(2)
        protocol.run_round(6, process.costs_at(6))
        assert protocol.master.declared_dead == {2: 6}
        assert protocol.allocation[2] == 0.0
        assert protocol.allocation.sum() == pytest.approx(1.0, abs=1e-9)

    def test_rebalancing_continues_after_crash(self):
        from repro.costs.timevarying import RandomAffineProcess

        process = RandomAffineProcess([1, 2, 4, 8, 16], sigma=0.1, seed=0)
        protocol = MasterWorkerDolbie(5, alpha_1=0.02)
        self._run_until(protocol, process, 1, 6)
        protocol.crash_worker(2)
        protocol.run_round(6, process.costs_at(6))
        absorber = protocol.master.straggler  # took the orphaned share
        absorbed_share = protocol.allocation[absorber]
        self._run_until(protocol, process, 7, 30)
        # The absorber (the slow straggler) sheds the orphaned share again.
        assert protocol.allocation[absorber] < absorbed_share
        assert protocol.allocation.sum() == pytest.approx(1.0, abs=1e-9)
        assert protocol.allocation[2] == 0.0

    def test_dead_worker_reports_nan_cost(self):
        from repro.costs.timevarying import RandomAffineProcess

        process = RandomAffineProcess([1, 2, 4], sigma=0.1, seed=1)
        protocol = MasterWorkerDolbie(3, alpha_1=0.05)
        protocol.crash_worker(1)
        _, local, _, _ = protocol.run_round(1, process.costs_at(1))
        assert np.isnan(local[1])
        assert not np.isnan(local[0])

    def test_too_many_failures_raises(self):
        from repro.costs.timevarying import RandomAffineProcess
        from repro.exceptions import ProtocolError

        process = RandomAffineProcess([1, 2, 4], sigma=0.1, seed=1)
        protocol = MasterWorkerDolbie(3, alpha_1=0.05)
        protocol.crash_worker(0)
        protocol.crash_worker(1)
        with pytest.raises(ProtocolError):
            protocol.run_round(1, process.costs_at(1))

    def test_crash_validation(self):
        from repro.exceptions import ConfigurationError

        protocol = MasterWorkerDolbie(3)
        with pytest.raises(ConfigurationError):
            protocol.crash_worker(7)


class TestFullyDistributedCrashTolerance:
    """Extension: peer-side failure detectors (no single point of failure)."""

    def test_survivors_drop_the_dead_peer_consistently(self):
        from repro.costs.timevarying import RandomAffineProcess

        process = RandomAffineProcess([1, 2, 4, 8, 16], sigma=0.1, seed=0)
        protocol = FullyDistributedDolbie(5, alpha_1=0.02)
        for t in range(1, 6):
            protocol.run_round(t, process.costs_at(t))
        protocol.crash_worker(2)
        protocol.run_round(6, process.costs_at(6))
        rosters = {
            tuple(sorted(p.roster))
            for p in protocol.peers
            if protocol._alive[p.node_id]
        }
        assert rosters == {(0, 1, 3, 4)}
        assert protocol.allocation[2] == 0.0
        assert protocol.allocation.sum() == pytest.approx(1.0, abs=1e-9)

    def test_matches_master_worker_crash_handling(self):
        """Both architectures must fold the orphaned share identically."""
        from repro.costs.timevarying import RandomAffineProcess

        process = RandomAffineProcess([1, 2, 4, 8, 16], sigma=0.1, seed=0)
        mw = MasterWorkerDolbie(5, alpha_1=0.02)
        fd = FullyDistributedDolbie(5, alpha_1=0.02)
        for t in range(1, 6):
            mw.run_round(t, process.costs_at(t))
            fd.run_round(t, process.costs_at(t))
        mw.crash_worker(2)
        fd.crash_worker(2)
        for t in range(6, 12):
            mw.run_round(t, process.costs_at(t))
            fd.run_round(t, process.costs_at(t))
        assert np.allclose(mw.allocation, fd.allocation, atol=1e-11)

    def test_crash_on_ring_degrades_to_connected_survivors(self):
        """A dead relay on a sparse topology no longer deadlocks: the
        survivors (still connected once the ring loses one node) drop it
        and keep the simplex closed."""
        from repro.costs.timevarying import RandomAffineProcess
        from repro.net.topology import Topology

        process = RandomAffineProcess([1, 2, 4, 8], sigma=0.1, seed=3)
        protocol = FullyDistributedDolbie(
            4, alpha_1=0.02, topology=Topology.ring(4)
        )
        for t in range(1, 4):
            protocol.run_round(t, process.costs_at(t))
        protocol.crash_worker(1)
        protocol.run_round(4, process.costs_at(4))
        assert protocol.roster == [0, 2, 3]
        assert protocol.allocation[1] == 0.0
        assert protocol.allocation.sum() == pytest.approx(1.0, abs=1e-9)

    def test_crash_of_star_center_raises_clear_error(self):
        """Killing the hub disconnects every spoke: no quorum remains,
        which must be a loud ProtocolError rather than a hang."""
        from repro.costs.timevarying import RandomAffineProcess
        from repro.exceptions import ProtocolError
        from repro.net.topology import Topology

        process = RandomAffineProcess([1, 2, 4, 8], sigma=0.1, seed=3)
        protocol = FullyDistributedDolbie(
            4, alpha_1=0.02, topology=Topology.star(4)
        )
        protocol.run_round(1, process.costs_at(1))
        protocol.crash_worker(0)
        with pytest.raises(ProtocolError, match="primary component"):
            protocol.run_round(2, process.costs_at(2))

    def test_too_many_failures_raises(self):
        from repro.costs.timevarying import RandomAffineProcess
        from repro.exceptions import ProtocolError

        process = RandomAffineProcess([1, 2, 4], sigma=0.1, seed=1)
        protocol = FullyDistributedDolbie(3, alpha_1=0.05)
        protocol.crash_worker(0)
        protocol.crash_worker(1)
        with pytest.raises(ProtocolError):
            protocol.run_round(1, process.costs_at(1))

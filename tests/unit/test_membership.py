"""Unit tests for dynamic membership (ElasticDolbie)."""

import numpy as np
import pytest

from repro.core.interface import make_feedback
from repro.core.membership import (
    ElasticDolbie,
    add_worker_allocation,
    remove_worker_allocation,
)
from repro.costs.affine import AffineLatencyCost
from repro.costs.timevarying import RandomAffineProcess
from repro.exceptions import ConfigurationError, FeasibilityError
from repro.simplex.sampling import is_feasible


class TestRemoveWorkerAllocation:
    def test_proportional_redistribution(self):
        x = np.array([0.2, 0.3, 0.5])
        out = remove_worker_allocation(x, 2)
        assert np.allclose(out, [0.4, 0.6])

    def test_result_feasible(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            n = int(rng.integers(3, 12))
            x = rng.dirichlet(np.ones(n))
            out = remove_worker_allocation(x, int(rng.integers(0, n)))
            assert is_feasible(out)
            assert out.size == n - 1

    def test_departing_monopolist(self):
        x = np.array([0.0, 1.0, 0.0])
        out = remove_worker_allocation(x, 1)
        assert np.allclose(out, [0.5, 0.5])

    def test_cannot_go_below_two(self):
        with pytest.raises(ConfigurationError):
            remove_worker_allocation(np.array([0.5, 0.5]), 0)

    def test_bad_index(self):
        with pytest.raises(ConfigurationError):
            remove_worker_allocation(np.array([0.3, 0.3, 0.4]), 5)

    def test_infeasible_input(self):
        with pytest.raises(FeasibilityError):
            remove_worker_allocation(np.array([0.9, 0.9, 0.9]), 0)


class TestAddWorkerAllocation:
    def test_default_share(self):
        out = add_worker_allocation(np.array([0.5, 0.5]))
        assert np.allclose(out, [1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0])

    def test_custom_share(self):
        out = add_worker_allocation(np.array([0.5, 0.5]), share=0.2)
        assert np.allclose(out, [0.4, 0.4, 0.2])

    def test_result_feasible(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            x = rng.dirichlet(np.ones(int(rng.integers(2, 10))))
            out = add_worker_allocation(x, share=float(rng.uniform(0, 0.9)))
            assert is_feasible(out)

    def test_bad_share(self):
        with pytest.raises(ConfigurationError):
            add_worker_allocation(np.array([0.5, 0.5]), share=1.0)


class TestElasticDolbie:
    def _advance(self, balancer, speeds, rounds, start=1):
        process = RandomAffineProcess(speeds, sigma=0.1, seed=0)
        for t in range(start, start + rounds):
            feedback = make_feedback(t, balancer.decide(), process.costs_at(t))
            balancer.update(feedback)

    def test_remove_then_continue(self):
        balancer = ElasticDolbie(4, alpha_1=0.05)
        self._advance(balancer, [1.0, 2.0, 4.0, 8.0], 10)
        balancer.remove_worker(3)
        assert balancer.num_workers == 3
        assert is_feasible(balancer.allocation)
        self._advance(balancer, [1.0, 2.0, 4.0], 10, start=11)
        assert is_feasible(balancer.allocation)

    def test_add_then_continue(self):
        balancer = ElasticDolbie(3, alpha_1=0.05)
        self._advance(balancer, [1.0, 2.0, 4.0], 10)
        balancer.add_worker()
        assert balancer.num_workers == 4
        assert balancer.allocation[-1] == pytest.approx(0.25)
        self._advance(balancer, [1.0, 2.0, 4.0, 8.0], 10, start=11)
        assert is_feasible(balancer.allocation)

    def test_alpha_never_increases_across_change(self):
        balancer = ElasticDolbie(4, alpha_1=0.05)
        self._advance(balancer, [1.0, 2.0, 4.0, 8.0], 15)
        before = balancer.alpha
        balancer.remove_worker(0)
        assert balancer.alpha <= before + 1e-15

    def test_histories_cleared_on_change(self):
        balancer = ElasticDolbie(3, alpha_1=0.05, record_history=True)
        self._advance(balancer, [1.0, 2.0, 4.0], 5)
        assert balancer.x_prime_history
        balancer.add_worker()
        assert balancer.x_prime_history == []

    def test_update_rule_intact_after_resize(self):
        """After a membership change the update must still satisfy the
        hand-computed Eq. (5)-(6) on the new fleet."""
        balancer = ElasticDolbie(3, alpha_1=0.1)
        balancer.remove_worker(2)
        x0 = balancer.allocation
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(4.0)]
        feedback = make_feedback(1, x0, costs)
        balancer.update(feedback)
        alpha = min(0.1, x0.min() / (0 + x0.min()))  # N=2 cap = 1 -> 0.1
        level = feedback.global_cost
        x_prime0 = min(level / 1.0, 1.0)
        expected0 = x0[0] + alpha * (x_prime0 - x0[0])
        assert balancer.allocation[0] == pytest.approx(expected0)

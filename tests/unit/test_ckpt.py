"""Unit tests for the checkpoint codec, snapshot envelope, and store."""

import json

import numpy as np
import pytest

from repro.ckpt.codec import (
    canonical_dumps,
    fingerprint,
    from_jsonable,
    to_jsonable,
)
from repro.ckpt.snapshot import SNAPSHOT_VERSION, Snapshot
from repro.ckpt.state import _pack_replica, _unpack_replica
from repro.ckpt.store import CheckpointStore
from repro.core.ledger import LedgerEntry
from repro.exceptions import CheckpointError


class TestCodec:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert from_jsonable(to_jsonable(value)) == value

    def test_numpy_scalars_become_python(self):
        assert to_jsonable(np.int64(4)) == 4
        assert to_jsonable(np.float64(0.1)) == 0.1

    @pytest.mark.parametrize("dtype", ["f8", "i8", "u4", "f4", "bool"])
    def test_ndarray_roundtrip_is_exact(self, dtype):
        rng = np.random.default_rng(3)
        arr = (rng.uniform(-1e9, 1e9, size=(3, 5)) * 1.0).astype(dtype)
        back = from_jsonable(to_jsonable(arr))
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        assert np.array_equal(back, arr)

    def test_ndarray_bits_survive(self):
        # Values plain decimal text would mangle.
        arr = np.array([0.1, 1e-308, np.pi, -0.0, np.inf])
        back = from_jsonable(to_jsonable(arr))
        assert arr.tobytes() == back.tobytes()

    def test_set_roundtrip_and_canonical_order(self):
        value = {3, 1, 2}
        assert from_jsonable(to_jsonable(value)) == value
        assert to_jsonable({1, 2, 3}) == to_jsonable({3, 2, 1})

    def test_int_keyed_dict_roundtrip(self):
        value = {2: "b", 10: "a", 1: [1, 2]}
        assert from_jsonable(to_jsonable(value)) == value
        assert canonical_dumps(to_jsonable(value)) == canonical_dumps(
            to_jsonable({10: "a", 1: [1, 2], 2: "b"})
        )

    def test_tuple_keyed_dict_roundtrip(self):
        value = {(0, 1): 0.5, (2, 3): 0.25}
        assert from_jsonable(to_jsonable(value)) == value

    def test_nested_structures(self):
        value = {"a": [{1: {2.5}}, np.arange(3)], "b": ({"x": None},)}
        back = from_jsonable(to_jsonable(value))
        assert back["a"][0] == {1: {2.5}}
        assert np.array_equal(back["a"][1], np.arange(3))
        assert back["b"] == [{"x": None}]  # tuples come back as lists

    def test_unencodable_type_rejected(self):
        with pytest.raises(CheckpointError):
            to_jsonable(object())

    def test_fingerprint_is_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})


def _snapshot(round_index=5, **state):
    return Snapshot(
        kind="run",
        round_index=round_index,
        config={"seed": 3},
        state=state or {"x": np.linspace(0.0, 1.0, 7), "roster": {0, 1}},
    )


class TestSnapshot:
    def test_bytes_roundtrip(self):
        snap = _snapshot()
        back = Snapshot.from_bytes(snap.to_bytes())
        assert back.kind == "run"
        assert back.round_index == 5
        assert back.config == {"seed": 3}
        assert np.array_equal(back.state["x"], snap.state["x"])
        assert back.state["roster"] == {0, 1}

    def test_serialize_restore_serialize_is_identity(self):
        data = _snapshot().to_bytes()
        assert Snapshot.from_bytes(data).to_bytes() == data

    def test_single_line_with_leading_fingerprint(self):
        data = _snapshot().to_bytes()
        assert data.endswith(b"\n") and data.count(b"\n") == 1
        assert data.startswith(b'{"fingerprint":"')
        envelope = json.loads(data)
        assert envelope["fingerprint"] == _snapshot().fingerprint

    def test_tampered_payload_detected(self):
        data = _snapshot().to_bytes()
        tampered = data.replace(b'"seed":3', b'"seed":4')
        assert tampered != data
        with pytest.raises(ValueError, match="fingerprint"):
            Snapshot.from_bytes(tampered)

    def test_version_mismatch_rejected(self):
        # +1 is the blob container (BLOB_SNAPSHOT_VERSION); +2 is the
        # first genuinely unknown schema version.
        alien = Snapshot(
            kind="run", round_index=1, config={}, state={},
            version=SNAPSHOT_VERSION + 2,
        )
        with pytest.raises(ValueError, match="version"):
            Snapshot.from_bytes(alien.to_bytes())

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            Snapshot.from_bytes(b"[1, 2]\n")


class TestCheckpointStore:
    def test_save_load_latest_rounds(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.latest() is None
        for t in (10, 20, 30):
            store.save(_snapshot(round_index=t))
        assert store.rounds() == [10, 20, 30]
        assert store.latest().round_index == 30
        assert store.load(20).round_index == 20
        assert store.load(99) is None

    def test_corrupt_latest_is_skipped_and_healed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(_snapshot(round_index=10))
        store.save(_snapshot(round_index=20))
        store.path_for(20).write_bytes(b'{"broken": true}\n')
        latest = store.latest()
        assert latest.round_index == 10
        assert not store.path_for(20).exists()  # healed

    def test_prune_keeps_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for t in (10, 20, 30, 40):
            store.save(_snapshot(round_index=t))
        store.prune(keep_last=2)
        assert store.rounds() == [30, 40]

    def test_inspect_summary(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(_snapshot(round_index=10))
        summary = store.inspect(10)
        assert summary["round_index"] == 10
        assert summary["kind"] == "run"
        assert summary["version"] == SNAPSHOT_VERSION
        assert "x" in summary["state_keys"]

    def test_foreign_files_ignored(self, tmp_path):
        (tmp_path / "README.txt").write_text("not a checkpoint")
        store = CheckpointStore(tmp_path)
        store.save(_snapshot(round_index=10))
        assert store.rounds() == [10]


def _entries(*rounds):
    return tuple(
        LedgerEntry(
            round_index=t, straggler=0, global_cost=float(t), roster=(0, 1)
        )
        for t in rounds
    )


class TestReplicaPacking:
    def test_full_replica_is_one_span(self):
        auth = _entries(1, 2, 3, 4)
        by_round = {e.round_index: i for i, e in enumerate(auth)}
        packed = _pack_replica(auth, auth, by_round)
        assert packed == [{"span": [0, 4]}]
        records = [e.to_dict() for e in auth]
        assert _unpack_replica(packed, records) == records

    def test_gap_becomes_two_spans(self):
        auth = _entries(1, 2, 3, 4, 5)
        by_round = {e.round_index: i for i, e in enumerate(auth)}
        replica = (auth[0], auth[1], auth[4])  # down for rounds 3-4
        packed = _pack_replica(replica, auth, by_round)
        assert packed == [{"span": [0, 2]}, {"span": [4, 5]}]
        records = [e.to_dict() for e in auth]
        assert _unpack_replica(packed, records) == [
            e.to_dict() for e in replica
        ]

    def test_divergent_entry_kept_inline(self):
        auth = _entries(1, 2, 3)
        by_round = {e.round_index: i for i, e in enumerate(auth)}
        rogue = LedgerEntry(
            round_index=2, straggler=1, global_cost=99.0, roster=(0, 1)
        )
        replica = (auth[0], rogue, auth[2])
        packed = _pack_replica(replica, auth, by_round)
        assert packed == [
            {"span": [0, 1]},
            {"entry": rogue.to_dict()},
            {"span": [2, 3]},
        ]
        records = [e.to_dict() for e in auth]
        assert _unpack_replica(packed, records) == [
            e.to_dict() for e in replica
        ]

"""Unit tests for the online round loop and RunResult."""

import numpy as np
import pytest

from repro.baselines.equal import EqualAssignment
from repro.baselines.opt import DynamicOptimum
from repro.core.loop import run_online, run_online_costs
from repro.costs.affine import AffineLatencyCost
from repro.costs.timevarying import RandomAffineProcess, StaticCostProcess
from repro.exceptions import ConfigurationError


class TestRunOnline:
    def test_shapes(self):
        process = RandomAffineProcess([1.0, 2.0, 4.0], seed=0)
        result = run_online(EqualAssignment(3), process, 17)
        assert result.allocations.shape == (17, 3)
        assert result.local_costs.shape == (17, 3)
        assert result.global_costs.shape == (17,)
        assert result.stragglers.shape == (17,)
        assert result.decision_seconds.shape == (17,)
        assert result.horizon == 17
        assert result.algorithm == "EQU"

    def test_global_cost_is_max_of_locals(self):
        process = RandomAffineProcess([1.0, 5.0], seed=1)
        result = run_online(EqualAssignment(2), process, 10)
        assert np.allclose(result.global_costs, result.local_costs.max(axis=1))

    def test_straggler_is_argmax(self):
        process = RandomAffineProcess([1.0, 5.0], seed=1)
        result = run_online(EqualAssignment(2), process, 10)
        assert (result.stragglers == result.local_costs.argmax(axis=1)).all()

    def test_oracle_algorithms_get_costs_in_advance(self):
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(3.0)]
        process = StaticCostProcess(costs)
        result = run_online(DynamicOptimum(2), process, 5)
        # OPT nails the optimum from round 1.
        assert result.global_costs[0] == pytest.approx(0.75, abs=1e-6)

    def test_zero_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            run_online_costs(EqualAssignment(2), [])

    def test_cost_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            run_online_costs(EqualAssignment(2), [[AffineLatencyCost(1.0)]])


class TestRunResult:
    def _result(self):
        process = RandomAffineProcess([1.0, 4.0], sigma=0.1, seed=2)
        return run_online(EqualAssignment(2), process, 20)

    def test_cumulative_cost(self):
        result = self._result()
        assert np.allclose(result.cumulative_cost, np.cumsum(result.global_costs))
        assert result.total_cost == pytest.approx(result.global_costs.sum())

    def test_waiting_time_non_negative(self):
        result = self._result()
        waiting = result.waiting_time()
        assert (waiting >= -1e-12).all()
        # The straggler itself never waits.
        for t in range(result.horizon):
            assert waiting[t, result.stragglers[t]] == pytest.approx(0.0)

    def test_mean_waiting_time(self):
        result = self._result()
        assert result.mean_waiting_time() == pytest.approx(
            result.waiting_time().mean()
        )

    def test_decision_overhead_positive(self):
        result = self._result()
        assert (result.decision_seconds > 0).all()

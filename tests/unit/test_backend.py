"""Unit tests for the array-backend abstraction (``repro.backend``).

The backend layer's contract: ``numpy64`` (the default) is a pure
pass-through that reproduces the historical float64 arithmetic bit for
bit; ``numpy32`` pins every hot-path array to float32 and ``ensure``
catches any array that silently escaped the dtype.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKENDS,
    DEFAULT_BACKEND_NAME,
    ENV_VAR,
    ArrayBackend,
    as_float,
    get_backend,
)
from repro.exceptions import BackendError


class TestRegistry:
    def test_default_is_numpy64(self):
        backend = get_backend(None)
        assert backend.name == "numpy64"
        assert backend.dtype == np.dtype(np.float64)
        assert backend.is_default

    def test_lookup_by_name(self):
        assert get_backend("numpy32").dtype == np.dtype(np.float32)
        assert not get_backend("numpy32").is_default

    def test_instances_are_interned(self):
        assert get_backend("numpy64") is BACKENDS["numpy64"]
        assert get_backend(BACKENDS["numpy32"]) is BACKENDS["numpy32"]

    def test_unknown_name_raises(self):
        with pytest.raises(BackendError):
            get_backend("float16")

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "numpy32")
        assert get_backend(None).name == "numpy32"
        monkeypatch.delenv(ENV_VAR)
        assert get_backend(None).name == DEFAULT_BACKEND_NAME

    def test_env_var_unknown_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "bogus")
        with pytest.raises(BackendError):
            get_backend(None)


class TestArrayConstruction:
    def test_asarray_is_noop_on_matching_dtype(self):
        # The flat fast path's bit-identity contract rests on this: the
        # default backend must never copy or convert a float64 array.
        backend = get_backend("numpy64")
        x = np.array([0.25, 0.75])
        assert backend.asarray(x) is x

    def test_asarray_converts_to_backend_dtype(self):
        backend = get_backend("numpy32")
        out = backend.asarray([0.25, 0.75])
        assert out.dtype == np.float32

    def test_zeros_full_empty_dtypes(self):
        for name, backend in BACKENDS.items():
            assert backend.zeros(3).dtype == backend.dtype, name
            assert backend.full(3, 1.5).dtype == backend.dtype, name
            assert backend.empty(3).dtype == backend.dtype, name

    def test_eps_matches_dtype(self):
        assert get_backend("numpy64").eps == np.finfo(np.float64).eps
        assert get_backend("numpy32").eps == np.finfo(np.float32).eps


class TestEnsure:
    def test_ensure_passes_matching_array(self):
        backend = get_backend("numpy32")
        x = np.zeros(4, dtype=np.float32)
        assert backend.ensure(x, "state") is x

    def test_ensure_raises_on_escaped_dtype(self):
        backend = get_backend("numpy32")
        with pytest.raises(BackendError, match="state"):
            backend.ensure(np.zeros(4), "state")


class TestAsFloat:
    def test_preserves_float32_and_float64(self):
        for dtype in (np.float32, np.float64):
            x = np.zeros(3, dtype=dtype)
            assert as_float(x).dtype == dtype
            assert as_float(x) is x  # no copy on the hot path

    def test_coerces_everything_else_to_float64(self):
        assert as_float([1, 2]).dtype == np.float64
        assert as_float(np.zeros(3, dtype=int)).dtype == np.float64
        assert as_float(np.zeros(3, dtype=np.float16)).dtype == np.float64


class TestNep50Foundation:
    """The float32 threading relies on NumPy 2 weak-scalar promotion:
    Python-float scalars must not upcast float32 arrays."""

    def test_python_scalars_keep_float32(self):
        x = np.ones(3, dtype=np.float32)
        assert (x * 0.5).dtype == np.float32
        assert np.maximum(x, 0.0).dtype == np.float32
        assert np.where(x > 0.5, x, 0.0).dtype == np.float32


class TestCompiledBackend:
    def test_registry_entry(self):
        import numpy as np

        from repro.backend import BACKENDS, get_backend

        compiled = get_backend("compiled")
        assert compiled is BACKENDS["compiled"]
        assert compiled.compiled is True
        assert compiled.dtype == np.dtype(np.float64)
        # the plain backends report compiled=False
        assert get_backend("numpy64").compiled is False
        assert get_backend("numpy32").compiled is False

    def test_explicit_compiled_is_always_honored(self):
        from repro.backend import get_backend

        assert get_backend("compiled").name == "compiled"

    def test_env_compiled_without_numba_warns_once_and_falls_back(
        self, monkeypatch, caplog
    ):
        import logging

        import repro.backend as backend_mod
        from repro.backend.kernels import HAVE_NUMBA

        if HAVE_NUMBA:
            pytest.skip("numba present: env compiled resolves for real")
        monkeypatch.setenv("REPRO_BACKEND", "compiled")
        monkeypatch.setattr(backend_mod, "_warned_compiled_fallback", False)
        with caplog.at_level(logging.WARNING, logger="repro.backend"):
            first = backend_mod.get_backend()
            second = backend_mod.get_backend()
        assert first.name == "numpy64" and second.name == "numpy64"
        warnings = [
            r for r in caplog.records if "falling back" in r.getMessage()
        ]
        assert len(warnings) == 1  # one-shot latch

    def test_unknown_name_lists_available_backends(self):
        from repro.backend import get_backend
        from repro.exceptions import BackendError

        with pytest.raises(BackendError, match="compiled.*numpy32.*numpy64"):
            get_backend("cuda")

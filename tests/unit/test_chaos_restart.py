"""Unit tests for the ``restart`` fault, rolling-restart schedules, the
ledger prefix-consistency invariant, and the chaos CLI exit codes."""

import numpy as np
import pytest

from repro.chaos.faults import FaultEvent, FaultSchedule
from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import RoundObservation, check_round_invariants
from repro.cli import main
from repro.core.ledger import RoundLedger
from repro.costs.timevarying import RandomAffineProcess
from repro.exceptions import ConfigurationError
from repro.net.links import ConstantLatency, Link
from repro.protocols.master_worker import MasterWorkerDolbie


def _protocol(n=5):
    return MasterWorkerDolbie(n, link=Link(ConstantLatency(0.001)))


def _process(n=5, seed=3):
    return RandomAffineProcess(speeds=np.linspace(1.0, 2.0, n), seed=seed)


class TestRestartEvent:
    def test_needs_target_workers(self):
        with pytest.raises(ConfigurationError, match="target workers"):
            FaultEvent(5, "restart")

    def test_needs_positive_duration(self):
        with pytest.raises(ConfigurationError, match="duration"):
            FaultEvent(5, "restart", workers=(1,), duration=0)

    def test_dict_roundtrip_keeps_duration(self):
        event = FaultEvent(5, "restart", workers=(1, 2), duration=3)
        record = event.to_dict()
        assert record["duration"] == 3
        assert FaultEvent.from_dict(record) == event


class TestRollingRestartSchedule:
    def test_staggered_one_worker_at_a_time(self):
        schedule = FaultSchedule.rolling_restart(5, 40)
        assert all(e.kind == "restart" for e in schedule.events)
        assert all(len(e.workers) == 1 for e in schedule.events)
        # Every worker restarts exactly once, in ascending stagger.
        assert [e.workers[0] for e in schedule.events] == [0, 1, 2, 3, 4]
        rounds = [e.round_index for e in schedule.events]
        assert rounds == sorted(rounds)
        # Each worker is back before the next one goes down.
        for left, right in zip(schedule.events, schedule.events[1:]):
            assert left.round_index + left.duration <= right.round_index

    def test_cycles_repeat_the_sweep(self):
        schedule = FaultSchedule.rolling_restart(3, 100, cycles=2)
        assert [e.workers[0] for e in schedule.events] == [0, 1, 2, 0, 1, 2]

    def test_horizon_clips_unfinishable_restarts(self):
        schedule = FaultSchedule.rolling_restart(5, 12)
        for event in schedule.events:
            assert event.round_index + event.duration <= 12

    def test_custom_targets(self):
        schedule = FaultSchedule.rolling_restart(6, 40, workers=(4, 1))
        assert [e.workers[0] for e in schedule.events] == [4, 1]

    def test_validation(self):
        with pytest.raises(ConfigurationError, match=">= 3 workers"):
            FaultSchedule.rolling_restart(2, 40)
        with pytest.raises(ConfigurationError, match="must exceed downtime"):
            FaultSchedule.rolling_restart(5, 40, interval=2, downtime=2)
        with pytest.raises(ConfigurationError, match="out of range"):
            FaultSchedule.rolling_restart(5, 40, workers=(7,))
        with pytest.raises(ConfigurationError, match=">= 1"):
            FaultSchedule.rolling_restart(5, 40, start=0)


class TestInjectorRestart:
    def test_restart_preserves_ledger_prefix(self):
        protocol = _protocol()
        schedule = FaultSchedule.scripted(
            [FaultEvent(4, "restart", workers=(2,), duration=2)]
        )
        injector = ChaosInjector(protocol, schedule)
        process = _process()
        for t in range(1, 9):
            injector.apply(t)
            protocol.run_round(t, process.costs_at(t))
        # The pre-crash prefix (rounds 1-3) is pinned for the invariant.
        assert 2 in injector.restart_prefixes
        prefix = injector.restart_prefixes[2]
        assert [e.round_index for e in prefix] == [1, 2, 3]
        # The replica starts with the preserved prefix, has a gap for
        # the downtime, and extends with post-rejoin rounds.
        replica = protocol.worker_ledger(2)
        held = [e.round_index for e in replica]
        assert held[:3] == [1, 2, 3]
        assert 4 not in held and 5 not in held
        assert held[3:] == [6, 7, 8]

    def test_worker_is_down_during_restart(self):
        protocol = _protocol()
        schedule = FaultSchedule.scripted(
            [FaultEvent(4, "restart", workers=(2,), duration=2)]
        )
        injector = ChaosInjector(protocol, schedule)
        process = _process()
        down, up = [], []
        for t in range(1, 9):
            injector.apply(t)
            protocol.run_round(t, process.costs_at(t))
            (down if 2 not in protocol.roster else up).append(t)
        assert down == [4, 5]
        assert injector.event_counts["restart"] == 1

    def test_plain_crash_drops_the_prefix(self):
        protocol = _protocol()
        schedule = FaultSchedule.scripted([
            FaultEvent(3, "restart", workers=(2,), duration=2),
            FaultEvent(7, "crash", workers=(2,)),
            FaultEvent(8, "rejoin", workers=(2,)),
        ])
        injector = ChaosInjector(protocol, schedule)
        process = _process()
        for t in range(1, 10):
            injector.apply(t)
            protocol.run_round(t, process.costs_at(t))
        # The crash wiped process memory: no preserved prefix remains,
        # and the replica only covers post-rejoin rounds.
        assert 2 not in injector.restart_prefixes
        assert [e.round_index for e in protocol.worker_ledger(2)] == [8, 9]


class TestLedgerInvariant:
    def _run_round(self, protocol, process, t):
        observation = RoundObservation(protocol)
        _, local, global_cost, straggler = protocol.run_round(
            t, process.costs_at(t)
        )
        return observation, local, global_cost, straggler

    def test_healthy_round_passes(self):
        protocol, process = _protocol(), _process()
        obs, local, cost, straggler = self._run_round(protocol, process, 1)
        assert check_round_invariants(protocol, obs, 1, local, cost, straggler) == []

    def test_missing_authoritative_entry_is_caught(self):
        protocol, process = _protocol(), _process()
        obs, local, cost, straggler = self._run_round(protocol, process, 1)
        protocol.ledger = RoundLedger()
        violations = check_round_invariants(
            protocol, obs, 1, local, cost, straggler
        )
        assert any("no entry for this round" in v for v in violations)

    def test_tampered_replica_is_caught(self):
        protocol, process = _protocol(), _process()
        obs, local, cost, straggler = self._run_round(protocol, process, 1)
        entry = protocol.worker_ledger(3).entries[0]
        protocol.restore_worker_ledger(
            3, [type(entry)(
                round_index=1, straggler=entry.straggler,
                global_cost=entry.global_cost + 1.0, roster=entry.roster,
            )]
        )
        violations = check_round_invariants(
            protocol, obs, 1, local, cost, straggler
        )
        assert any("ledger replica" in v for v in violations)

    def test_restart_prefix_loss_is_caught(self):
        protocol, process = _protocol(), _process()
        for t in (1, 2):
            obs, local, cost, straggler = self._run_round(protocol, process, t)
        prefix = protocol.ledger.entries[:1]
        # Pretend worker 3 restarted but came back with round 1 dropped.
        protocol.restore_worker_ledger(3, protocol.ledger.entries[1:])
        violations = check_round_invariants(
            protocol, obs, 2, local, cost, straggler,
            restart_prefixes={3: prefix},
        )
        assert any("pre-crash ledger prefix" in v for v in violations)


class TestChaosCliExitCodes:
    def test_passing_soak_exits_zero(self, capsys):
        code = main([
            "chaos", "--protocol", "mw", "--workers", "4",
            "--rounds", "12", "--seed", "3",
        ])
        assert code == 0
        assert "[PASS]" in capsys.readouterr().out

    def test_violating_soak_exits_nonzero(self, tmp_path, capsys):
        # Crashing the whole fleet breaks the quorum: the soak records
        # the protocol error as a violation and the CLI must report
        # failure through its exit code.
        spec = tmp_path / "killall.json"
        spec.write_text(
            '{"events": [{"round": 3, "kind": "crash",'
            ' "workers": [0, 1, 2, 3]}]}'
        )
        code = main([
            "chaos", "--protocol", "mw", "--workers", "4",
            "--rounds", "8", "--spec", str(spec),
        ])
        assert code == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_durable_options_require_single_protocol(self, tmp_path, capsys):
        code = main([
            "chaos", "--protocol", "both", "--workers", "4", "--rounds", "8",
            "--checkpoint-every", "4", "--checkpoint-dir", str(tmp_path),
        ])
        assert code == 2

    def test_resume_without_checkpoint_fails_cleanly(self, tmp_path, capsys):
        code = main([
            "chaos", "--protocol", "mw", "--workers", "4", "--rounds", "8",
            "--checkpoint-dir", str(tmp_path), "--resume",
        ])
        assert code == 2
        assert "no intact checkpoint" in capsys.readouterr().err

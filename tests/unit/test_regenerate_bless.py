"""Unit tests for the golden-regeneration ``--bless`` dirty guard.

``tests/golden/regenerate.py --bless`` must refuse to overwrite a golden
that already carries uncommitted changes (blessing on top of a dirty
file merges two edits into one unreviewable blob), degrade to allow-all
outside a git checkout, and honor ``--force``. The script is exercised
as a module loaded straight from its file — it is a script, not a
package member — with its module-level constants monkeypatched so no
test ever touches the real committed goldens.
"""

import importlib.util
import subprocess
import types
from pathlib import Path

import pytest

REGENERATE = (
    Path(__file__).resolve().parents[1] / "golden" / "regenerate.py"
)


@pytest.fixture()
def regen():
    spec = importlib.util.spec_from_file_location(
        "_regenerate_under_test", REGENERATE
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _git(*args, cwd):
    subprocess.run(
        ["git", *args],
        cwd=cwd,
        check=True,
        capture_output=True,
        env={
            "PATH": "/usr/bin:/bin:/usr/local/bin",
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(cwd),
        },
    )


@pytest.fixture()
def git_repo(tmp_path):
    """A throwaway git repo with one committed golden file."""
    try:
        _git("init", "-q", cwd=tmp_path)
    except (OSError, subprocess.CalledProcessError):
        pytest.skip("git unavailable")
    golden = tmp_path / "serving.jsonl"
    golden.write_text('{"kind": "header"}\n')
    _git("add", "serving.jsonl", cwd=tmp_path)
    _git("commit", "-q", "-m", "golden", cwd=tmp_path)
    return tmp_path


def _point_at(regen, monkeypatch, directory, filenames):
    monkeypatch.setattr(regen, "GOLDEN_DIR", Path(directory))
    monkeypatch.setattr(
        regen, "GOLDEN_FILES", {Path(f).stem: f for f in filenames}
    )


class TestDirtyGoldens:
    def test_clean_checkout_reports_nothing(
        self, regen, git_repo, monkeypatch
    ):
        _point_at(regen, monkeypatch, git_repo, ["serving.jsonl"])
        assert regen.dirty_goldens(["serving.jsonl"]) == []

    def test_modified_golden_is_dirty(self, regen, git_repo, monkeypatch):
        (git_repo / "serving.jsonl").write_text("tampered\n")
        _point_at(regen, monkeypatch, git_repo, ["serving.jsonl"])
        assert regen.dirty_goldens(["serving.jsonl"]) == ["serving.jsonl"]

    def test_other_dirty_files_do_not_count(
        self, regen, git_repo, monkeypatch
    ):
        (git_repo / "unrelated.txt").write_text("scratch\n")
        _point_at(regen, monkeypatch, git_repo, ["serving.jsonl"])
        assert regen.dirty_goldens(["serving.jsonl"]) == []

    def test_outside_git_degrades_to_allow_all(
        self, regen, tmp_path, monkeypatch
    ):
        # No .git anywhere up the tree: git status fails, the guard
        # returns [] rather than blocking the bless.
        golden = tmp_path / "serving.jsonl"
        golden.write_text("anything\n")
        _point_at(regen, monkeypatch, tmp_path, ["serving.jsonl"])
        monkeypatch.setenv("GIT_DIR", str(tmp_path / "no-such-gitdir"))
        assert regen.dirty_goldens(["serving.jsonl"]) == []

    def test_git_binary_missing_degrades_to_allow_all(
        self, regen, tmp_path, monkeypatch
    ):
        _point_at(regen, monkeypatch, tmp_path, ["serving.jsonl"])

        def raise_oserror(*args, **kwargs):
            raise OSError("no git binary")

        monkeypatch.setattr(regen.subprocess, "run", raise_oserror)
        assert regen.dirty_goldens(["serving.jsonl"]) == []


class TestBlessGuard:
    def test_bless_refuses_dirty_golden(
        self, regen, git_repo, monkeypatch, capsys
    ):
        original = '{"kind": "header"}\n'
        golden = git_repo / "serving.jsonl"
        golden.write_text("tampered\n")
        _point_at(regen, monkeypatch, git_repo, ["serving.jsonl"])
        rc = regen.main(["--bless"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "refusing to bless" in err
        assert "serving.jsonl" in err
        assert "--force" in err
        # The dirty file was left exactly as it was — nothing overwritten.
        assert golden.read_text() == "tampered\n"
        assert golden.read_text() != original

    def test_force_blesses_anyway(self, regen, git_repo, monkeypatch):
        golden = git_repo / "serving.jsonl"
        golden.write_text("tampered\n")
        _point_at(regen, monkeypatch, git_repo, ["serving.jsonl"])
        blessed = []

        def fake_save(trace, path):
            Path(path).write_text("blessed\n")
            blessed.append(Path(path).name)

        # The guard runs BEFORE the repro imports; patch the real modules
        # the script imports at call time.
        import repro.io as repro_io
        import repro.obs.scenarios as scenarios

        monkeypatch.setattr(repro_io, "save_trace", fake_save)
        monkeypatch.setattr(
            scenarios,
            "build_trace",
            lambda name, **kw: types.SimpleNamespace(records=[]),
        )
        rc = regen.main(["--bless", "--force"])
        assert rc == 0
        assert blessed == ["serving.jsonl"]
        assert golden.read_text() == "blessed\n"

    def test_clean_checkout_blesses_without_force(
        self, regen, git_repo, monkeypatch
    ):
        _point_at(regen, monkeypatch, git_repo, ["serving.jsonl"])

        import repro.io as repro_io
        import repro.obs.scenarios as scenarios

        monkeypatch.setattr(
            repro_io,
            "save_trace",
            lambda trace, path: Path(path).write_text("blessed\n"),
        )
        monkeypatch.setattr(
            scenarios,
            "build_trace",
            lambda name, **kw: types.SimpleNamespace(records=[]),
        )
        rc = regen.main(["--bless"])
        assert rc == 0
        assert (git_repo / "serving.jsonl").read_text() == "blessed\n"

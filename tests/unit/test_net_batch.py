"""Unit tests for the batched fast-path substrate (``repro.net.batch``).

The fast path's contract is *bit*-identity with the event engine, which
rests on three properties checked here: batched latency draws are
element- and stream-identical to sequential scalar draws, bulk metrics
accounting matches N scalar records, and eligibility goes False under
every hook that would change observable behaviour.
"""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.net.batch import BatchedCluster
from repro.net.cluster import Cluster
from repro.net.events import EventEngine
from repro.net.links import ConstantLatency, Link, LogNormalLatency, UniformLatency
from repro.net.message import FrameBatch, Message, scalar_payload_size
from repro.net.metrics import NetworkMetrics
from repro.net.node import Node


class TestSampleBatchStreamIdentity:
    """sample_batch(n) == [sample()]*n element-wise AND leaves the RNG at
    the same stream position, for every latency model."""

    def test_constant(self):
        model = ConstantLatency(0.25)
        assert np.array_equal(model.sample_batch(5), np.full(5, 0.25))

    def test_uniform(self):
        a = UniformLatency(0.001, 0.01, np.random.default_rng(7))
        b = UniformLatency(0.001, 0.01, np.random.default_rng(7))
        batch = a.sample_batch(64)
        scalars = np.array([b.sample() for _ in range(64)])
        assert np.array_equal(batch, scalars)
        # stream position: the *next* draw must also agree
        assert a.sample() == b.sample()

    def test_lognormal(self):
        a = LogNormalLatency(0.005, 0.5, np.random.default_rng(11))
        b = LogNormalLatency(0.005, 0.5, np.random.default_rng(11))
        batch = a.sample_batch(64)
        scalars = np.array([b.sample() for _ in range(64)])
        assert np.array_equal(batch, scalars)
        assert a.sample() == b.sample()

    def test_mixed_batch_and_scalar_interleaving(self):
        # Alternating batched and scalar draws must replay one long
        # scalar stream — this is what lets fast and fallback rounds mix
        # within a single run.
        a = UniformLatency(0.0, 1.0, np.random.default_rng(3))
        b = UniformLatency(0.0, 1.0, np.random.default_rng(3))
        got = list(a.sample_batch(3)) + [a.sample()] + list(a.sample_batch(2))
        want = [b.sample() for _ in range(6)]
        assert got == want

    def test_delay_batch_includes_transmission(self):
        link = Link(ConstantLatency(0.01), bandwidth_bps=8_000.0)
        delays = link.delay_batch(4, size_bytes=1_000)
        # 8 * 1000 bits / 8000 bps = 1 s of serialization per frame
        assert np.array_equal(delays, np.full(4, 0.01 + 1.0))

    def test_delay_batch_matches_scalar_delay(self):
        a = Link(LogNormalLatency(0.002, 0.3, np.random.default_rng(5)))
        b = Link(LogNormalLatency(0.002, 0.3, np.random.default_rng(5)))
        batch = a.delay_batch(16, size_bytes=24)
        scalars = np.array([b.delay(24) for _ in range(16)])
        assert np.array_equal(batch, scalars)


class TestRecordBatch:
    def test_matches_n_scalar_records(self):
        a, b = NetworkMetrics(), NetworkMetrics()
        pairs = [(0, 1), (1, 0), (0, 1), (2, 1)]
        payload = {"l": 1.0, "alpha_bar": 0.5}
        size = scalar_payload_size(payload)
        for src, dst in pairs:
            a.record(
                Message(src=src, dst=dst, tag="cost", payload=payload,
                        size_bytes=size, send_time=0.0, round_index=3)
            )
        b.record_batch(
            round_index=3, messages=len(pairs),
            bytes_total=size * len(pairs), pairs=pairs,
        )
        assert a.messages_total == b.messages_total
        assert a.bytes_total == b.bytes_total
        assert a.per_round_messages == b.per_round_messages
        assert a.per_round_bytes == b.per_round_bytes
        assert a.per_pair_messages == b.per_pair_messages


class TestRecordBatchArrays:
    def test_matches_pairwise_record_batch(self):
        rng = np.random.default_rng(9)
        src = rng.integers(0, 40, size=500)
        dst = rng.integers(0, 40, size=500)
        a, b = NetworkMetrics(), NetworkMetrics()
        a.record_batch(
            round_index=2, messages=500, bytes_total=12_000,
            pairs=zip(src.tolist(), dst.tolist()),
        )
        b.record_batch_arrays(
            round_index=2, messages=500, bytes_total=12_000,
            src=src, dst=dst,
        )
        assert a.messages_total == b.messages_total
        assert a.bytes_total == b.bytes_total
        assert a.per_round_messages == b.per_round_messages
        assert a.per_pair_messages == b.per_pair_messages

    def test_counter_creation_order_matches_first_occurrence(self):
        # The registry snapshot order is observable; the vectorized path
        # must create per-pair counters in the order pairs first appear,
        # exactly like the scalar loop does.
        src = np.array([3, 0, 3, 1, 0])
        dst = np.array([1, 2, 1, 0, 2])
        a, b = NetworkMetrics(), NetworkMetrics()
        a.record_batch(
            round_index=1, messages=5, bytes_total=50,
            pairs=zip(src.tolist(), dst.tolist()),
        )
        b.record_batch_arrays(
            round_index=1, messages=5, bytes_total=50, src=src, dst=dst
        )
        assert list(a.per_pair_messages) == list(b.per_pair_messages)

    def test_empty_batch_is_noop_for_pairs(self):
        metrics = NetworkMetrics()
        metrics.record_batch_arrays(
            round_index=1, messages=0, bytes_total=0,
            src=np.array([], dtype=int), dst=np.array([], dtype=int),
        )
        assert metrics.per_pair_messages == {}


class TestGroupByDestination:
    def test_matches_python_grouping(self):
        from repro.net.batch import group_by_destination

        rng = np.random.default_rng(4)
        dst = rng.integers(0, 12, size=200)
        values = rng.uniform(size=200)
        unique, groups = group_by_destination(dst, values)
        reference: dict[int, list[float]] = {}
        for d, v in zip(dst.tolist(), values.tolist()):
            reference.setdefault(d, []).append(v)
        assert unique.tolist() == sorted(reference)
        for d, group in zip(unique.tolist(), groups):
            # stable: each destination's values keep frame order
            assert group.tolist() == reference[d]

    def test_empty_input(self):
        from repro.net.batch import group_by_destination

        unique, groups = group_by_destination(
            np.array([], dtype=int), np.array([])
        )
        assert unique.size == 0
        assert groups == []


class TestEventEngineExtensions:
    def test_pending_tracks_queue_depth(self):
        engine = EventEngine()
        assert engine.pending == 0
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending == 2
        engine.run()
        assert engine.pending == 0

    def test_advance_to_moves_clock_forward_only(self):
        engine = EventEngine()
        engine.advance_to(5.0)
        assert engine.now == 5.0
        with pytest.raises(SimulationError):
            engine.advance_to(4.0)

    def test_credit_events(self):
        engine = EventEngine()
        before = engine.processed_events
        engine.credit_events(7)
        assert engine.processed_events == before + 7
        with pytest.raises(SimulationError):
            engine.credit_events(-1)

    def test_budget_error_reports_queue_state(self):
        engine = EventEngine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(1.0, reschedule)
        with pytest.raises(SimulationError) as excinfo:
            engine.run(max_events=10)
        text = str(excinfo.value)
        assert "event budget of 10 exhausted" in text
        assert "queue depth" in text
        assert "virtual time" in text
        assert "next event at t=" in text


def _cluster(n=3, **kwargs):
    nodes = [Node(i) for i in range(n)]
    return Cluster(nodes, **kwargs)


class TestBatchEligibility:
    def test_eligible_by_default(self):
        cluster = _cluster(default_link=Link(ConstantLatency(0.001)))
        assert cluster.batch_eligible()
        assert isinstance(cluster.batched(), BatchedCluster)

    def test_partition_disables(self):
        cluster = _cluster()
        cluster.set_partition([[0, 1, 2]])  # trivial partition still counts
        assert cluster.chaos_active
        assert not cluster.batch_eligible()
        cluster.clear_partition()
        assert cluster.batch_eligible()

    def test_extra_delay_disables(self):
        cluster = _cluster()
        cluster.set_extra_delay(1, 0.5)
        assert not cluster.batch_eligible()
        cluster.set_extra_delay(1, 0.0)
        assert cluster.batch_eligible()

    def test_frame_loss_override_disables_even_at_zero(self):
        cluster = _cluster()
        cluster.set_frame_loss(0.0, np.random.default_rng(0))
        # probability 0 drops nothing, but the hook still draws from the
        # rng per frame — skipping those draws would shift the stream.
        assert not cluster.batch_eligible()
        cluster.clear_frame_loss()
        assert cluster.batch_eligible()

    def test_per_pair_link_disables(self):
        cluster = _cluster()
        cluster.set_link(0, 1, Link(ConstantLatency(0.2)))
        assert not cluster.batch_eligible()

    def test_colocation_disables(self):
        cluster = _cluster()
        cluster.colocate(0, 1)
        assert not cluster.batch_eligible()

    def test_lossy_default_link_disables(self):
        link = Link(ConstantLatency(0.001), loss_probability=0.1,
                    loss_rng=np.random.default_rng(1))
        cluster = _cluster(default_link=link)
        assert not cluster.batch_eligible()

    def test_pending_events_disable(self):
        cluster = _cluster()
        cluster.engine.schedule(1.0, lambda: None)
        assert not cluster.batch_eligible()
        cluster.engine.run()
        assert cluster.batch_eligible()


class TestBatchedDelivery:
    def test_deliver_refuses_when_ineligible(self):
        cluster = _cluster()
        batched = cluster.batched()
        cluster.set_extra_delay(0, 1.0)
        batch = FrameBatch(
            tag="cost", src=np.array([0]), dst=np.array([1]),
            payload={"l": np.array([1.0])},
        )
        with pytest.raises(SimulationError):
            batched.deliver(batch, send_times=np.array([0.0]))

    def test_deliver_accounts_metrics_and_receipts(self):
        cluster = _cluster(default_link=Link(ConstantLatency(0.01)))
        batched = cluster.batched()
        batch = FrameBatch(
            tag="cost",
            src=np.array([0, 1, 2]),
            dst=np.array([1, 2, 0]),
            payload={"l": np.array([1.0, 2.0, 3.0])},
            round_index=4,
        )
        arrivals = batched.deliver(batch, send_times=np.zeros(3))
        assert np.array_equal(arrivals, np.full(3, 0.01))
        assert cluster.metrics.messages_total == 3
        assert cluster.metrics.bytes_total == batch.total_bytes
        assert cluster.metrics.per_round_messages[4] == 3
        assert cluster.metrics.per_pair_messages[(0, 1)] == 1
        for node_id in range(3):
            assert cluster.node(node_id).received_count == 1

    def test_finish_round_advances_clock_and_credits(self):
        cluster = _cluster()
        batched = cluster.batched()
        events_before = cluster.engine.processed_events
        batched.finish_round(now=2.5, events=9)
        assert cluster.engine.now == 2.5
        assert cluster.engine.processed_events == events_before + 9


class TestFrameBatch:
    def test_sizes_and_pairs(self):
        batch = FrameBatch(
            tag="coord",
            src=np.array([3, 3]),
            dst=np.array([0, 1]),
            payload={"l": np.zeros(2), "alpha": np.zeros(2), "flag": np.zeros(2)},
        )
        assert batch.count == 2
        assert batch.size_bytes == 24  # 3 scalar fields x 8 bytes
        assert batch.total_bytes == 48
        assert batch.pairs() == [(3, 0), (3, 1)]

"""Unit tests for the batched fast-path substrate (``repro.net.batch``).

The fast path's contract is *bit*-identity with the event engine, which
rests on three properties checked here: batched latency draws are
element- and stream-identical to sequential scalar draws, bulk metrics
accounting matches N scalar records, and eligibility goes False under
every hook that would change observable behaviour.
"""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.net.batch import BatchedCluster
from repro.net.cluster import Cluster
from repro.net.events import EventEngine
from repro.net.links import ConstantLatency, Link, LogNormalLatency, UniformLatency
from repro.net.message import FrameBatch, Message, scalar_payload_size
from repro.net.metrics import NetworkMetrics
from repro.net.node import Node


class TestSampleBatchStreamIdentity:
    """sample_batch(n) == [sample()]*n element-wise AND leaves the RNG at
    the same stream position, for every latency model."""

    def test_constant(self):
        model = ConstantLatency(0.25)
        assert np.array_equal(model.sample_batch(5), np.full(5, 0.25))

    def test_uniform(self):
        a = UniformLatency(0.001, 0.01, np.random.default_rng(7))
        b = UniformLatency(0.001, 0.01, np.random.default_rng(7))
        batch = a.sample_batch(64)
        scalars = np.array([b.sample() for _ in range(64)])
        assert np.array_equal(batch, scalars)
        # stream position: the *next* draw must also agree
        assert a.sample() == b.sample()

    def test_lognormal(self):
        a = LogNormalLatency(0.005, 0.5, np.random.default_rng(11))
        b = LogNormalLatency(0.005, 0.5, np.random.default_rng(11))
        batch = a.sample_batch(64)
        scalars = np.array([b.sample() for _ in range(64)])
        assert np.array_equal(batch, scalars)
        assert a.sample() == b.sample()

    def test_mixed_batch_and_scalar_interleaving(self):
        # Alternating batched and scalar draws must replay one long
        # scalar stream — this is what lets fast and fallback rounds mix
        # within a single run.
        a = UniformLatency(0.0, 1.0, np.random.default_rng(3))
        b = UniformLatency(0.0, 1.0, np.random.default_rng(3))
        got = list(a.sample_batch(3)) + [a.sample()] + list(a.sample_batch(2))
        want = [b.sample() for _ in range(6)]
        assert got == want

    def test_delay_batch_includes_transmission(self):
        link = Link(ConstantLatency(0.01), bandwidth_bps=8_000.0)
        delays = link.delay_batch(4, size_bytes=1_000)
        # 8 * 1000 bits / 8000 bps = 1 s of serialization per frame
        assert np.array_equal(delays, np.full(4, 0.01 + 1.0))

    def test_delay_batch_matches_scalar_delay(self):
        a = Link(LogNormalLatency(0.002, 0.3, np.random.default_rng(5)))
        b = Link(LogNormalLatency(0.002, 0.3, np.random.default_rng(5)))
        batch = a.delay_batch(16, size_bytes=24)
        scalars = np.array([b.delay(24) for _ in range(16)])
        assert np.array_equal(batch, scalars)


class TestRecordBatch:
    def test_matches_n_scalar_records(self):
        a, b = NetworkMetrics(), NetworkMetrics()
        pairs = [(0, 1), (1, 0), (0, 1), (2, 1)]
        payload = {"l": 1.0, "alpha_bar": 0.5}
        size = scalar_payload_size(payload)
        for src, dst in pairs:
            a.record(
                Message(src=src, dst=dst, tag="cost", payload=payload,
                        size_bytes=size, send_time=0.0, round_index=3)
            )
        b.record_batch(
            round_index=3, messages=len(pairs),
            bytes_total=size * len(pairs), pairs=pairs,
        )
        assert a.messages_total == b.messages_total
        assert a.bytes_total == b.bytes_total
        assert a.per_round_messages == b.per_round_messages
        assert a.per_round_bytes == b.per_round_bytes
        assert a.per_pair_messages == b.per_pair_messages


class TestRecordBatchArrays:
    def test_matches_pairwise_record_batch(self):
        rng = np.random.default_rng(9)
        src = rng.integers(0, 40, size=500)
        dst = rng.integers(0, 40, size=500)
        a, b = NetworkMetrics(), NetworkMetrics()
        a.record_batch(
            round_index=2, messages=500, bytes_total=12_000,
            pairs=zip(src.tolist(), dst.tolist()),
        )
        b.record_batch_arrays(
            round_index=2, messages=500, bytes_total=12_000,
            src=src, dst=dst,
        )
        assert a.messages_total == b.messages_total
        assert a.bytes_total == b.bytes_total
        assert a.per_round_messages == b.per_round_messages
        assert a.per_pair_messages == b.per_pair_messages

    def test_counter_creation_order_matches_first_occurrence(self):
        # The registry snapshot order is observable; the vectorized path
        # must create per-pair counters in the order pairs first appear,
        # exactly like the scalar loop does.
        src = np.array([3, 0, 3, 1, 0])
        dst = np.array([1, 2, 1, 0, 2])
        a, b = NetworkMetrics(), NetworkMetrics()
        a.record_batch(
            round_index=1, messages=5, bytes_total=50,
            pairs=zip(src.tolist(), dst.tolist()),
        )
        b.record_batch_arrays(
            round_index=1, messages=5, bytes_total=50, src=src, dst=dst
        )
        assert list(a.per_pair_messages) == list(b.per_pair_messages)

    def test_empty_batch_is_noop_for_pairs(self):
        metrics = NetworkMetrics()
        metrics.record_batch_arrays(
            round_index=1, messages=0, bytes_total=0,
            src=np.array([], dtype=int), dst=np.array([], dtype=int),
        )
        assert metrics.per_pair_messages == {}


class TestGroupByDestination:
    def test_matches_python_grouping(self):
        from repro.net.batch import group_by_destination

        rng = np.random.default_rng(4)
        dst = rng.integers(0, 12, size=200)
        values = rng.uniform(size=200)
        unique, groups = group_by_destination(dst, values)
        reference: dict[int, list[float]] = {}
        for d, v in zip(dst.tolist(), values.tolist()):
            reference.setdefault(d, []).append(v)
        assert unique.tolist() == sorted(reference)
        for d, group in zip(unique.tolist(), groups):
            # stable: each destination's values keep frame order
            assert group.tolist() == reference[d]

    def test_empty_input(self):
        from repro.net.batch import group_by_destination

        unique, groups = group_by_destination(
            np.array([], dtype=int), np.array([])
        )
        assert unique.size == 0
        assert groups == []


class TestEventEngineExtensions:
    def test_pending_tracks_queue_depth(self):
        engine = EventEngine()
        assert engine.pending == 0
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        assert engine.pending == 2
        engine.run()
        assert engine.pending == 0

    def test_advance_to_moves_clock_forward_only(self):
        engine = EventEngine()
        engine.advance_to(5.0)
        assert engine.now == 5.0
        with pytest.raises(SimulationError):
            engine.advance_to(4.0)

    def test_credit_events(self):
        engine = EventEngine()
        before = engine.processed_events
        engine.credit_events(7)
        assert engine.processed_events == before + 7
        with pytest.raises(SimulationError):
            engine.credit_events(-1)

    def test_budget_error_reports_queue_state(self):
        engine = EventEngine()

        def reschedule():
            engine.schedule(1.0, reschedule)

        engine.schedule(1.0, reschedule)
        with pytest.raises(SimulationError) as excinfo:
            engine.run(max_events=10)
        text = str(excinfo.value)
        assert "event budget of 10 exhausted" in text
        assert "queue depth" in text
        assert "virtual time" in text
        assert "next event at t=" in text


def _cluster(n=3, **kwargs):
    nodes = [Node(i) for i in range(n)]
    return Cluster(nodes, **kwargs)


class TestBatchEligibility:
    def test_eligible_by_default(self):
        cluster = _cluster(default_link=Link(ConstantLatency(0.001)))
        assert cluster.batch_eligible()
        assert isinstance(cluster.batched(), BatchedCluster)

    def test_partition_disables(self):
        cluster = _cluster()
        cluster.set_partition([[0, 1, 2]])  # trivial partition still counts
        assert cluster.chaos_active
        assert not cluster.batch_eligible()
        cluster.clear_partition()
        assert cluster.batch_eligible()

    def test_extra_delay_disables(self):
        cluster = _cluster()
        cluster.set_extra_delay(1, 0.5)
        assert not cluster.batch_eligible()
        cluster.set_extra_delay(1, 0.0)
        assert cluster.batch_eligible()

    def test_frame_loss_override_disables_even_at_zero(self):
        cluster = _cluster()
        cluster.set_frame_loss(0.0, np.random.default_rng(0))
        # probability 0 drops nothing, but the hook still draws from the
        # rng per frame — skipping those draws would shift the stream.
        assert not cluster.batch_eligible()
        cluster.clear_frame_loss()
        assert cluster.batch_eligible()

    def test_per_pair_link_disables(self):
        cluster = _cluster()
        cluster.set_link(0, 1, Link(ConstantLatency(0.2)))
        assert not cluster.batch_eligible()

    def test_colocation_disables(self):
        cluster = _cluster()
        cluster.colocate(0, 1)
        assert not cluster.batch_eligible()

    def test_lossy_default_link_disables(self):
        link = Link(ConstantLatency(0.001), loss_probability=0.1,
                    loss_rng=np.random.default_rng(1))
        cluster = _cluster(default_link=link)
        assert not cluster.batch_eligible()

    def test_pending_events_disable(self):
        cluster = _cluster()
        cluster.engine.schedule(1.0, lambda: None)
        assert not cluster.batch_eligible()
        cluster.engine.run()
        assert cluster.batch_eligible()


class TestBatchedDelivery:
    def test_deliver_refuses_when_ineligible(self):
        cluster = _cluster()
        batched = cluster.batched()
        cluster.set_extra_delay(0, 1.0)
        batch = FrameBatch(
            tag="cost", src=np.array([0]), dst=np.array([1]),
            payload={"l": np.array([1.0])},
        )
        with pytest.raises(SimulationError):
            batched.deliver(batch, send_times=np.array([0.0]))

    def test_deliver_accounts_metrics_and_receipts(self):
        cluster = _cluster(default_link=Link(ConstantLatency(0.01)))
        batched = cluster.batched()
        batch = FrameBatch(
            tag="cost",
            src=np.array([0, 1, 2]),
            dst=np.array([1, 2, 0]),
            payload={"l": np.array([1.0, 2.0, 3.0])},
            round_index=4,
        )
        arrivals = batched.deliver(batch, send_times=np.zeros(3))
        assert np.array_equal(arrivals, np.full(3, 0.01))
        assert cluster.metrics.messages_total == 3
        assert cluster.metrics.bytes_total == batch.total_bytes
        assert cluster.metrics.per_round_messages[4] == 3
        assert cluster.metrics.per_pair_messages[(0, 1)] == 1
        for node_id in range(3):
            assert cluster.node(node_id).received_count == 1

    def test_finish_round_advances_clock_and_credits(self):
        cluster = _cluster()
        batched = cluster.batched()
        events_before = cluster.engine.processed_events
        batched.finish_round(now=2.5, events=9)
        assert cluster.engine.now == 2.5
        assert cluster.engine.processed_events == events_before + 9


class TestFrameBatch:
    def test_sizes_and_pairs(self):
        batch = FrameBatch(
            tag="coord",
            src=np.array([3, 3]),
            dst=np.array([0, 1]),
            payload={"l": np.zeros(2), "alpha": np.zeros(2), "flag": np.zeros(2)},
        )
        assert batch.count == 2
        assert batch.size_bytes == 24  # 3 scalar fields x 8 bytes
        assert batch.total_bytes == 48
        assert batch.pairs() == [(3, 0), (3, 1)]


def _phase_cluster(n=6, seed=7):
    nodes = [Node(i) for i in range(n)]
    rng = np.random.default_rng(seed)
    return Cluster(nodes, default_link=Link(UniformLatency(0.001, 0.01, rng)))


def _phase_batch(round_index=3):
    # 7 frames, repeated pairs, out-of-order destinations — enough
    # structure to distinguish per-frame from per-pair accounting.
    return FrameBatch(
        tag="cost",
        src=np.array([1, 2, 3, 1, 4, 2, 5]),
        dst=np.array([0, 0, 1, 0, 1, 0, 2]),
        payload={
            "l": np.arange(7, dtype=float),
            "alpha": np.arange(7, dtype=float) / 8,
        },
        round_index=round_index,
    )


class TestFrameBatchChunks:
    def test_chunk_boundary_frames_reassemble_exactly(self):
        batch = _phase_batch()
        chunks = list(batch.chunks(3))
        assert [(lo, sub.count) for lo, sub in chunks] == [(0, 3), (3, 3), (6, 1)]
        assert np.array_equal(
            np.concatenate([sub.src for _, sub in chunks]), batch.src
        )
        assert np.array_equal(
            np.concatenate([sub.payload["l"] for _, sub in chunks]),
            batch.payload["l"],
        )
        for _, sub in chunks:
            assert sub.tag == batch.tag and sub.round_index == batch.round_index
            assert sub.size_bytes == batch.size_bytes
            # zero-copy: chunk columns are views of the parent arrays
            assert sub.src.base is batch.src

    def test_single_frame_chunks(self):
        batch = _phase_batch()
        chunks = list(batch.chunks(1))
        assert len(chunks) == batch.count
        assert all(sub.count == 1 for _, sub in chunks)
        assert [lo for lo, _ in chunks] == list(range(batch.count))

    def test_chunk_size_larger_than_batch_yields_batch_itself(self):
        batch = _phase_batch()
        chunks = list(batch.chunks(batch.count * 10))
        assert len(chunks) == 1
        lo, sub = chunks[0]
        assert lo == 0 and sub is batch

    def test_invalid_chunk_size_raises(self):
        with pytest.raises(ValueError):
            list(_phase_batch().chunks(0))

    def test_default_chunk_frames_env(self, monkeypatch):
        from repro.net.batch import CHUNK_ENV, DEFAULT_CHUNK_FRAMES, default_chunk_frames

        monkeypatch.delenv(CHUNK_ENV, raising=False)
        assert default_chunk_frames() == DEFAULT_CHUNK_FRAMES
        monkeypatch.setenv(CHUNK_ENV, "100")
        assert default_chunk_frames() == 100
        monkeypatch.setenv(CHUNK_ENV, "0")
        assert default_chunk_frames() is None


class TestChunkedDelivery:
    """deliver(chunk_frames=K) is bit-identical to one-shot delivery."""

    def _deliver(self, chunk_frames, send_times):
        cluster = _phase_cluster()
        batched = cluster.batched()
        batch = _phase_batch()
        arrivals = batched.deliver(batch, send_times, chunk_frames=chunk_frames)
        next_draw = cluster._default_link.delay_batch(1, 8)[0]
        return cluster, arrivals, next_draw

    @pytest.mark.parametrize("send_times", [0.25, np.linspace(0.0, 0.6, 7)])
    @pytest.mark.parametrize("chunk_frames", [1, 2, 3, 100])
    def test_bit_identical_to_one_shot(self, chunk_frames, send_times):
        ref_cluster, ref_arrivals, ref_draw = self._deliver(None, send_times)
        cluster, arrivals, draw = self._deliver(chunk_frames, send_times)
        assert np.array_equal(arrivals, ref_arrivals)
        # RNG stream position: the next draw agrees
        assert draw == ref_draw
        assert cluster.metrics.messages_total == ref_cluster.metrics.messages_total
        assert cluster.metrics.bytes_total == ref_cluster.metrics.bytes_total
        assert (
            cluster.metrics.per_round_messages
            == ref_cluster.metrics.per_round_messages
        )
        # Per-pair values AND counter creation order
        assert list(cluster.metrics.per_pair_messages.items()) == list(
            ref_cluster.metrics.per_pair_messages.items()
        )
        for i in range(6):
            assert (
                cluster.node(i).received_count
                == ref_cluster.node(i).received_count
            )


class TestDeliveryPlan:
    """Plan delivery matches eager FrameBatch delivery bit for bit."""

    def _eager(self, batch, send_times):
        cluster = _phase_cluster()
        batched = cluster.batched()
        arrivals = batched.deliver(batch, send_times)
        return cluster, arrivals

    def _planned(self, batch, send_times, drop=None):
        cluster = _phase_cluster()
        batched = cluster.batched()
        plan = batched.plan(batch.src, batch.dst, len(batch.payload))
        arrivals = plan.deliver(batch.round_index, send_times, drop=drop)
        return cluster, arrivals, plan

    def _assert_parity(self, eager_cluster, plan_cluster):
        assert (
            plan_cluster.metrics.messages_total
            == eager_cluster.metrics.messages_total
        )
        assert plan_cluster.metrics.bytes_total == eager_cluster.metrics.bytes_total
        assert (
            plan_cluster.metrics.per_round_messages
            == eager_cluster.metrics.per_round_messages
        )
        assert list(plan_cluster.metrics.per_pair_messages.items()) == list(
            eager_cluster.metrics.per_pair_messages.items()
        )
        for i in range(6):
            assert (
                plan_cluster.node(i).received_count
                == eager_cluster.node(i).received_count
            )

    def test_accounting_parity_with_eager_delivery(self):
        batch = _phase_batch()
        send_times = np.linspace(0.0, 0.6, batch.count)
        eager_cluster, eager_arrivals = self._eager(batch, send_times)
        plan_cluster, plan_arrivals, _ = self._planned(batch, send_times)
        assert np.array_equal(plan_arrivals, eager_arrivals)
        self._assert_parity(eager_cluster, plan_cluster)
        # Same RNG stream consumption: next draw agrees
        assert (
            plan_cluster._default_link.delay_batch(1, 8)[0]
            == eager_cluster._default_link.delay_batch(1, 8)[0]
        )

    def test_repeat_rounds_accumulate_like_eager(self):
        batch = _phase_batch()
        eager_cluster, _ = self._eager(batch, 0.0)
        eager_cluster.batched().deliver(
            FrameBatch(batch.tag, batch.src, batch.dst, batch.payload, 4), 1.0
        )
        plan_cluster, _, plan = self._planned(batch, 0.0)
        plan.deliver(4, 1.0)
        self._assert_parity(eager_cluster, plan_cluster)

    def test_drop_matches_eager_masked_delivery(self):
        # Member->head layout: every frame is a distinct (src, dst) pair,
        # the precondition for drop=.
        src = np.array([1, 2, 3, 4, 5])
        dst = np.array([0, 0, 0, 3, 3])
        payload = {"x": np.arange(5, dtype=float)}
        send = np.linspace(0.0, 1.0, 5)
        drop = 2
        masked = FrameBatch(
            "decision", np.delete(src, drop), np.delete(dst, drop),
            {"x": np.delete(payload["x"], drop)}, 6,
        )
        eager_cluster, eager_arrivals = self._eager(masked, np.delete(send, drop))
        plan_cluster = _phase_cluster()
        plan = plan_cluster.batched().plan(src, dst, 1)
        plan_arrivals = plan.deliver(6, np.delete(send, drop), drop=drop)
        assert np.array_equal(plan_arrivals, eager_arrivals)
        self._assert_parity(eager_cluster, plan_cluster)

    def test_metrics_reset_revalidates_pair_handles(self):
        batch = _phase_batch()
        plan_cluster, _, plan = self._planned(batch, 0.0)
        plan_cluster.metrics.reset()
        plan.deliver(5, 0.0)
        eager_cluster, _ = self._eager(batch, 0.0)
        assert list(plan_cluster.metrics.per_pair_messages.items()) == list(
            eager_cluster.metrics.per_pair_messages.items()
        )

    def test_pair_accounting_disabled_skips_pair_dict(self):
        cluster = _phase_cluster()
        cluster.metrics.pair_accounting = False
        plan = cluster.batched().plan(np.array([1]), np.array([0]), 1)
        plan.deliver(1, 0.0)
        assert cluster.metrics.per_pair_messages == {}
        assert cluster.metrics.messages_total == 1

    def test_shape_mismatch_raises(self):
        cluster = _phase_cluster()
        with pytest.raises(ValueError):
            cluster.batched().plan(np.array([1, 2]), np.array([0]), 1)

    def test_ineligible_cluster_refuses(self):
        cluster = _phase_cluster()
        plan = cluster.batched().plan(np.array([1]), np.array([0]), 1)
        cluster.set_extra_delay(0, 1.0)
        with pytest.raises(SimulationError):
            plan.deliver(1, 0.0)

"""Unit tests for the discrete-event network substrate."""

import numpy as np
import pytest

from repro.exceptions import ProtocolError, SimulationError
from repro.net.cluster import Cluster
from repro.net.events import EventEngine
from repro.net.links import ConstantLatency, Link, LogNormalLatency, UniformLatency
from repro.net.message import Message, scalar_payload_size
from repro.net.node import Node


class TestEventEngine:
    def test_fifo_at_same_time(self):
        engine = EventEngine()
        order = []
        engine.schedule(0.0, lambda: order.append("a"))
        engine.schedule(0.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b"]

    def test_time_ordering(self):
        engine = EventEngine()
        order = []
        engine.schedule(2.0, lambda: order.append("late"))
        engine.schedule(1.0, lambda: order.append("early"))
        engine.run()
        assert order == ["early", "late"]
        assert engine.now == 2.0

    def test_nested_scheduling(self):
        engine = EventEngine()
        seen = []
        engine.schedule(1.0, lambda: engine.schedule(1.0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [2.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventEngine().schedule(-1.0, lambda: None)

    def test_event_budget(self):
        engine = EventEngine()

        def loop():
            engine.schedule(1.0, loop)

        engine.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            engine.run(max_events=10)

    def test_reset(self):
        engine = EventEngine()
        engine.schedule(5.0, lambda: None)
        engine.reset()
        assert engine.run() == 0
        assert engine.now == 0.0


class TestLinks:
    def test_constant(self):
        assert ConstantLatency(0.5).sample() == 0.5

    def test_uniform_in_range(self):
        model = UniformLatency(0.1, 0.2, np.random.default_rng(0))
        for _ in range(100):
            assert 0.1 <= model.sample() <= 0.2

    def test_lognormal_positive(self):
        model = LogNormalLatency(0.01, 0.5, np.random.default_rng(0))
        assert all(model.sample() > 0 for _ in range(100))

    def test_bandwidth_adds_transmit_time(self):
        link = Link(ConstantLatency(0.1), bandwidth_bps=8000.0)
        assert link.delay(1000) == pytest.approx(0.1 + 1.0)

    def test_default_zero_delay(self):
        assert Link().delay(10**6) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(SimulationError):
            ConstantLatency(-1.0)
        with pytest.raises(SimulationError):
            Link(bandwidth_bps=0.0)


class TestMessage:
    def test_payload_size_per_scalar(self):
        assert scalar_payload_size({"a": 1.0, "b": 2}) == 16

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(0, 1, "t", {}, size_bytes=-1, send_time=0.0)


class TestClusterRouting:
    def _cluster(self, link=None):
        a, b = Node(0), Node(1)
        cluster = Cluster([a, b], default_link=link)
        return cluster, a, b

    def test_message_delivered_to_handler(self):
        cluster, a, b = self._cluster()
        seen = []
        b.on("ping", lambda m: seen.append(m.payload["v"]))
        a.send(1, "ping", {"v": 42.0})
        cluster.run()
        assert seen == [42.0]
        assert b.received_count == 1

    def test_unhandled_tag_raises(self):
        cluster, a, b = self._cluster()
        a.send(1, "mystery", {})
        with pytest.raises(ProtocolError):
            cluster.run()

    def test_self_message_rejected(self):
        cluster, a, _ = self._cluster()
        with pytest.raises(ProtocolError):
            a.send(0, "ping", {})

    def test_broadcast_reaches_everyone_else(self):
        nodes = [Node(i) for i in range(4)]
        cluster = Cluster(nodes)
        seen = []
        for node in nodes:
            node.on("hello", lambda m, nid=node.node_id: seen.append(nid))
        nodes[0].broadcast("hello", {})
        cluster.run()
        assert sorted(seen) == [1, 2, 3]

    def test_metrics_count_messages_and_bytes(self):
        cluster, a, b = self._cluster()
        b.on("ping", lambda m: None)
        a.send(1, "ping", {"v": 1.0}, round_index=7)
        a.send(1, "ping2", {"v": 1.0, "w": 2.0}, round_index=7)
        b.on("ping2", lambda m: None)
        cluster.run()
        assert cluster.metrics.messages_total == 2
        assert cluster.metrics.bytes_total == 24
        assert cluster.metrics.messages_in_round(7) == 2
        assert cluster.metrics.per_pair_messages[(0, 1)] == 2

    def test_link_latency_orders_delivery(self):
        nodes = [Node(0), Node(1), Node(2)]
        cluster = Cluster(nodes)
        cluster.set_link(0, 1, Link(ConstantLatency(1.0)))
        cluster.set_link(0, 2, Link(ConstantLatency(0.1)))
        arrivals = []
        nodes[1].on("m", lambda m: arrivals.append(1))
        nodes[2].on("m", lambda m: arrivals.append(2))
        nodes[0].send(1, "m", {})
        nodes[0].send(2, "m", {})
        cluster.run()
        assert arrivals == [2, 1]

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(SimulationError):
            Cluster([Node(0), Node(0)])

    def test_duplicate_handler_rejected(self):
        node = Node(0)
        node.on("x", lambda m: None)
        with pytest.raises(ProtocolError):
            node.on("x", lambda m: None)

    def test_unknown_destination(self):
        cluster, a, _ = self._cluster()
        with pytest.raises(ProtocolError):
            a.send(9, "ping", {})

    def test_unattached_node_cannot_send(self):
        with pytest.raises(ProtocolError):
            Node(7).send(0, "x", {})


class TestColocation:
    def test_colocated_messages_bypass_metrics(self):
        a, b = Node(0), Node(1)
        cluster = Cluster([a, b])
        cluster.colocate(0, 1)
        b.on("x", lambda m: None)
        a.send(1, "x", {"v": 1.0})
        cluster.run()
        assert cluster.metrics.messages_total == 0
        assert b.received_count == 1

    def test_colocation_is_symmetric(self):
        a, b = Node(0), Node(1)
        cluster = Cluster([a, b])
        cluster.colocate(1, 0)
        assert cluster.is_colocated(0, 1)

    def test_colocated_delivery_ignores_lossy_default_link(self):
        class AlwaysDrop:
            def random(self):
                return 0.0

        link = Link(loss_probability=0.5, loss_rng=AlwaysDrop())
        a, b = Node(0), Node(1)
        cluster = Cluster([a, b], default_link=link, max_retransmits=1)
        cluster.colocate(0, 1)
        seen = []
        b.on("x", lambda m: seen.append(1))
        a.send(1, "x", {})
        cluster.run()
        assert seen == [1]

    def test_self_colocation_rejected(self):
        cluster = Cluster([Node(0), Node(1)])
        with pytest.raises(ProtocolError):
            cluster.colocate(0, 0)

"""Unit tests for lossy links and the transport-layer retransmission."""

import numpy as np
import pytest

from repro.exceptions import SimulationError, TransportError
from repro.net.cluster import Cluster
from repro.net.links import ConstantLatency, Link
from repro.net.node import Node


def _pair(link, **cluster_kwargs):
    a, b = Node(0), Node(1)
    cluster = Cluster([a, b], default_link=link, **cluster_kwargs)
    return cluster, a, b


class TestLossyLink:
    def test_loss_requires_rng(self):
        with pytest.raises(SimulationError):
            Link(loss_probability=0.5)

    def test_loss_probability_validated(self):
        with pytest.raises(SimulationError):
            Link(loss_probability=1.0, loss_rng=np.random.default_rng(0))

    def test_lossless_never_drops(self):
        link = Link()
        assert not any(link.drops_frame() for _ in range(100))

    def test_drop_rate_matches_probability(self):
        link = Link(loss_probability=0.3, loss_rng=np.random.default_rng(0))
        drops = sum(link.drops_frame() for _ in range(5000))
        assert 0.25 < drops / 5000 < 0.35


class TestRetransmission:
    def test_every_message_still_delivered_over_lossy_link(self):
        # The transport is reliable but not order-preserving (a dropped
        # frame pays the retransmit timeout while later sends race ahead),
        # like UDP-with-retries; round-synchronous protocols don't care.
        rng = np.random.default_rng(1)
        link = Link(ConstantLatency(0.01), loss_probability=0.4, loss_rng=rng)
        cluster, a, b = _pair(link)
        seen = []
        b.on("x", lambda m: seen.append(m.payload["v"]))
        for k in range(20):
            a.send(1, "x", {"v": float(k)})
        cluster.run()
        assert sorted(seen) == [float(k) for k in range(20)]

    def test_retransmissions_counted_in_metrics(self):
        rng = np.random.default_rng(2)
        link = Link(loss_probability=0.5, loss_rng=rng)
        cluster, a, b = _pair(link)
        b.on("x", lambda m: None)
        for _ in range(50):
            a.send(1, "x", {"v": 1.0})
        cluster.run()
        assert cluster.metrics.messages_total > 50

    def test_retransmission_adds_delay(self):
        class AlwaysDropTwice:
            def __init__(self):
                self.calls = 0

            def random(self):
                self.calls += 1
                return 0.0 if self.calls <= 2 else 1.0

        link = Link(ConstantLatency(0.0), loss_probability=0.5,
                    loss_rng=AlwaysDropTwice())
        cluster, a, b = _pair(link, retransmit_timeout=0.1)
        times = []
        b.on("x", lambda m: times.append(cluster.engine.now))
        a.send(1, "x", {})
        cluster.run()
        assert times == [pytest.approx(0.2)]

    def test_permanent_loss_raises_transport_error_with_context(self):
        class AlwaysDrop:
            def random(self):
                return 0.0

        link = Link(loss_probability=0.5, loss_rng=AlwaysDrop())
        cluster, a, b = _pair(link, max_retransmits=3)
        b.on("x", lambda m: None)
        with pytest.raises(TransportError) as excinfo:
            a.send(1, "x", {})
        err = excinfo.value
        assert (err.src, err.dst, err.tag, err.attempts) == (0, 1, "x", 3)
        assert isinstance(err, SimulationError)  # old handlers still catch

    def test_invalid_transport_parameters(self):
        with pytest.raises(SimulationError):
            _pair(Link(), retransmit_timeout=0.0)

"""Unit tests for the shared atomic-write / self-healing idioms."""

import os

import pytest

from repro.utils.atomic import CORRUPT_ERRORS, atomic_write, self_healing_load


class TestAtomicWrite:
    def test_content_lands_and_returns_true(self, tmp_path):
        path = tmp_path / "entry.json"
        assert atomic_write(path, lambda h: h.write(b"payload")) is True
        assert path.read_bytes() == b"payload"

    def test_creates_missing_parent_directories(self, tmp_path):
        path = tmp_path / "a" / "b" / "entry.bin"
        assert atomic_write(path, lambda h: h.write(b"x")) is True
        assert path.read_bytes() == b"x"

    def test_replaces_existing_entry(self, tmp_path):
        path = tmp_path / "entry"
        atomic_write(path, lambda h: h.write(b"old"))
        atomic_write(path, lambda h: h.write(b"new"))
        assert path.read_bytes() == b"new"

    def test_no_temp_file_left_after_writer_failure(self, tmp_path):
        path = tmp_path / "entry"

        def writer(handle):
            handle.write(b"partial")
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError):
            atomic_write(path, writer)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_strict_mode_propagates_os_errors(self, tmp_path):
        target = tmp_path / "dir-as-file"
        target.mkdir()
        # os.replace of a file over a non-empty directory fails.
        (target / "occupied").write_bytes(b"")
        with pytest.raises(OSError):
            atomic_write(target, lambda h: h.write(b"x"))

    def test_swallow_mode_absorbs_os_errors(self, tmp_path):
        target = tmp_path / "dir-as-file"
        target.mkdir()
        (target / "occupied").write_bytes(b"")
        assert (
            atomic_write(target, lambda h: h.write(b"x"), swallow_errors=True)
            is False
        )

    def test_fsync_disabled_still_writes(self, tmp_path):
        path = tmp_path / "entry"
        assert atomic_write(path, lambda h: h.write(b"y"), fsync=False)
        assert path.read_bytes() == b"y"


class TestSelfHealingLoad:
    def test_returns_loader_value(self, tmp_path):
        path = tmp_path / "entry"
        path.write_bytes(b"42")
        assert self_healing_load(path, lambda p: int(p.read_bytes())) == 42

    def test_absent_entry_is_a_miss(self, tmp_path):
        loader = lambda p: p.read_bytes()
        assert self_healing_load(tmp_path / "nope", loader) is None

    def test_corrupt_entry_is_unlinked(self, tmp_path):
        path = tmp_path / "entry"
        path.write_bytes(b"garbage")

        def loader(p):
            raise ValueError("not a snapshot")

        assert self_healing_load(path, loader) is None
        assert not path.exists()

    def test_custom_corrupt_errors(self, tmp_path):
        path = tmp_path / "entry"
        path.write_bytes(b"garbage")

        class Stale(Exception):
            pass

        def loader(p):
            raise Stale()

        with pytest.raises(Stale):
            self_healing_load(path, loader)
        assert path.exists()
        assert (
            self_healing_load(
                path, loader, corrupt_errors=CORRUPT_ERRORS + (Stale,)
            )
            is None
        )
        assert not path.exists()

    def test_non_corrupt_exceptions_propagate(self, tmp_path):
        path = tmp_path / "entry"
        path.write_bytes(b"fine")

        def loader(p):
            raise ZeroDivisionError()

        with pytest.raises(ZeroDivisionError):
            self_healing_load(path, loader)
        assert path.exists()

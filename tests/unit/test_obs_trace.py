"""Unit tests for trace records, the tracer, the diff engine, the
profiler, the JSONL round-trip, and the ``repro trace``/``repro
profile`` CLI surface."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    FieldDiff,
    Profiler,
    Trace,
    Tracer,
    diff_traces,
    record_from_dict,
    record_to_dict,
)
from repro.obs.records import (
    RECORD_KINDS,
    TRACE_SCHEMA,
    AssistanceRecord,
    DecisionRecord,
    FaultRecord,
    HeaderRecord,
    MembershipRecord,
    PhaseRecord,
    ServingPeriodRecord,
    ServingSummaryRecord,
    StragglerRecord,
)


def _decision(round_index=1, cost=2.0):
    return DecisionRecord(
        round=round_index,
        allocation=(0.5, 0.5),
        local_costs=(1.0, cost),
        global_cost=cost,
        straggler=1,
        next_allocation=(0.6, 0.4),
    )


class TestRecords:
    def test_every_kind_round_trips_through_dict(self):
        samples = [
            HeaderRecord(
                schema=TRACE_SCHEMA,
                algorithm="DOLBIE",
                num_workers=3,
                horizon=10,
                context=(("fast_path", True), ("seed", 7)),
            ),
            _decision(),
            StragglerRecord(round=2, worker=0, cost=1.5, waiting_total=0.7),
            AssistanceRecord(
                round=3,
                straggler=1,
                alpha=0.01,
                shed_total=0.2,
                x_prime=(0.4, 0.6),
                assistance=(0.1, -0.1),
            ),
            MembershipRecord(
                round=4, action="crash", workers=(2,), roster=(0, 1)
            ),
            FaultRecord(
                round=5,
                fault="partition",
                severity=0.0,
                groups=((0,), (1, 2)),
            ),
            PhaseRecord(round=6, phase="round", start=0.1, end=0.4, events=12),
            ServingPeriodRecord(
                round=7,
                policy="dolbie",
                arrivals=200,
                completed=198,
                weights=(0.3, 0.3, 0.4),
                dispatched=(60, 60, 80),
                p50=0.8,
                p99=2.5,
                mean_latency=0.9,
            ),
            ServingSummaryRecord(
                round=8,
                policy="dolbie",
                requests=1000,
                completed=990,
                failed=10,
                p50=0.8,
                p99=2.5,
                p999=4.0,
                mean_latency=0.9,
                slo=3.0,
                slo_attainment=0.98,
                quantile_mode="sketch",
            ),
        ]
        assert {type(s).kind for s in samples} == set(RECORD_KINDS)
        for record in samples:
            payload = record_to_dict(record)
            assert payload["kind"] == type(record).kind
            assert record_from_dict(payload) == record

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            record_from_dict({"kind": "nope"})
        with pytest.raises(ConfigurationError):
            record_to_dict(object())

    def test_unknown_field_rejected(self):
        payload = record_to_dict(
            StragglerRecord(round=1, worker=0, cost=1.0, waiting_total=0.0)
        )
        payload["extra"] = 1
        with pytest.raises(ConfigurationError):
            record_from_dict(payload)


class TestTracer:
    def test_emit_and_header(self):
        tracer = Tracer()
        tracer.header("DOLBIE", 2, 5, seed=7)
        tracer.emit(_decision())
        trace = tracer.trace
        assert len(tracer) == 2
        assert trace.header.algorithm == "DOLBIE"
        assert trace.header.context == (("seed", 7),)
        assert trace.kind_counts() == {"header": 1, "decision": 1}

    def test_emit_rejects_non_records(self):
        tracer = Tracer()
        with pytest.raises(ConfigurationError):
            tracer.emit({"kind": "decision"})

    def test_trace_helpers(self):
        trace = Trace([_decision(1), _decision(4)])
        assert trace.header is None
        assert trace.rounds() == (1, 4)
        assert len(trace.by_kind("decision")) == 2
        assert trace.by_kind("fault") == []
        with pytest.raises(ConfigurationError):
            trace.by_kind("bogus")
        assert "2 records over rounds 1..4" in trace.summary()

    def test_empty_trace_summary(self):
        assert "0 records" in Trace().summary()


class TestDiff:
    def test_identical_traces_diff_empty(self):
        a = Trace([_decision(1), _decision(2)])
        b = Trace([_decision(1), _decision(2)])
        diff = diff_traces(a, b)
        assert diff.empty
        assert not diff
        assert "identical" in diff.summary()

    def test_field_level_mismatch_reported(self):
        diff = diff_traces(
            Trace([_decision(1, cost=2.0)]), Trace([_decision(1, cost=3.0)])
        )
        assert not diff.empty
        fields = {d.field for d in diff.field_diffs}
        assert fields == {"global_cost", "local_costs"}
        assert all(isinstance(d, FieldDiff) for d in diff.field_diffs)
        assert "round 1" in diff.summary()

    def test_length_mismatch_is_a_diff(self):
        diff = diff_traces(Trace([_decision(1)]), Trace([]))
        assert not diff.empty
        assert diff.length_left == 1 and diff.length_right == 0
        assert "record counts differ" in diff.summary()

    def test_headers_excluded_by_default(self):
        left = Tracer()
        left.header("DOLBIE", 2, 5, engine="event")
        right = Tracer()
        right.header("DOLBIE", 2, 5, engine="fast")
        assert diff_traces(left.trace, right.trace).empty
        assert not diff_traces(
            left.trace, right.trace, include_header=True
        ).empty

    def test_nan_equals_nan(self):
        nan = float("nan")
        a = Trace([_decision(1, cost=nan)])
        b = Trace([_decision(1, cost=nan)])
        assert diff_traces(a, b).empty

    def test_negative_zero_is_a_diff(self):
        a = Trace(
            [StragglerRecord(round=1, worker=0, cost=1.0, waiting_total=0.0)]
        )
        b = Trace(
            [StragglerRecord(round=1, worker=0, cost=1.0, waiting_total=-0.0)]
        )
        diff = diff_traces(a, b)
        assert not diff.empty
        assert diff.field_diffs[0].field == "waiting_total"

    def test_max_diffs_bounds_collection_not_verdict(self):
        a = Trace([_decision(t) for t in range(1, 9)])
        b = Trace([_decision(t, cost=9.0) for t in range(1, 9)])
        diff = diff_traces(a, b, max_diffs=3)
        assert len(diff.field_diffs) == 3
        assert not diff.empty


class TestJsonlRoundTrip:
    def test_save_load_byte_identical(self, tmp_path):
        from repro.io import load_trace, save_trace

        tracer = Tracer()
        tracer.header("DOLBIE", 2, 3, seed=1)
        tracer.emit(_decision(1, cost=float("nan")))
        tracer.emit(
            FaultRecord(round=2, fault="partition", groups=((0,), (1,)))
        )
        path = save_trace(tracer.trace, tmp_path / "t.jsonl")
        first = path.read_bytes()
        restored = load_trace(path)
        assert save_trace(restored, tmp_path / "u.jsonl").read_bytes() == first
        assert diff_traces(
            tracer.trace, restored, include_header=True
        ).empty
        # NaN survives the round trip as NaN, not as a string or None.
        assert math.isnan(restored.by_kind("decision")[0].global_cost)


class TestProfiler:
    def test_span_and_record_aggregate(self):
        profiler = Profiler()
        with profiler.span("work"):
            sum(range(1000))
        profiler.record("work", 0.5)
        profiler.record("other", 0.25, cpu=0.2)
        work = profiler.spans["work"]
        assert work.count == 2
        assert work.wall_total >= 0.5
        assert work.wall_mean == pytest.approx(work.wall_total / 2)
        assert work.wall_max >= work.wall_min
        assert profiler.spans["other"].cpu_total == pytest.approx(0.2)
        assert profiler.total_wall() == pytest.approx(
            work.wall_total + profiler.spans["other"].wall_total
        )

    def test_summary_table_and_reset(self):
        profiler = Profiler()
        profiler.record("alpha", 1.0)
        table = profiler.summary_table()
        assert "alpha" in table
        profiler.reset()
        assert profiler.spans == {}


class TestCli:
    def test_trace_record_show_diff(self, tmp_path, capsys):
        from repro.cli import main

        left = tmp_path / "left.jsonl"
        right = tmp_path / "right.jsonl"
        common = ["--workers", "3", "--rounds", "4", "--seed", "1"]
        assert main(["trace", "record", "loop", "--out", str(left)] + common) == 0
        assert main(["trace", "record", "loop", "--out", str(right)] + common) == 0
        assert main(["trace", "show", str(left)]) == 0
        out_file = tmp_path / "diff.txt"
        assert (
            main(
                ["trace", "diff", str(left), str(right), "--out", str(out_file)]
            )
            == 0
        )
        assert "identical" in out_file.read_text()
        captured = capsys.readouterr().out
        assert "records over rounds" in captured

    def test_trace_diff_nonzero_on_mismatch(self, tmp_path, capsys):
        from repro.cli import main

        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        assert main(
            ["trace", "record", "loop", "--out", str(a), "--workers", "3",
             "--rounds", "4", "--seed", "1"]
        ) == 0
        assert main(
            ["trace", "record", "loop", "--out", str(b), "--workers", "3",
             "--rounds", "4", "--seed", "2"]
        ) == 0
        assert main(["trace", "diff", str(a), str(b)]) == 1
        assert "traces differ" in capsys.readouterr().out

    def test_profile_prints_span_table(self, capsys):
        from repro.cli import main

        assert main(["profile", "loop", "--workers", "3", "--rounds", "4"]) == 0
        out = capsys.readouterr().out
        assert "loop.update" in out and "calls" in out

"""Unit tests of the on-disk materialization cache (:mod:`repro.mlsim.cache`).

Covers the operational contract: stable content-addressed keys, version
bumps invalidating every old entry, corrupted entries healing themselves,
LRU pruning to the size cap, and the ``REPRO_CACHE=0`` bypass. Every test
points ``REPRO_CACHE_DIR`` at its own temp directory so nothing leaks
between tests or into a developer's real cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mlsim import cache
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.materialized import MaterializedEnvironment


def _env(seed: int = 7, num_workers: int = 4) -> TrainingEnvironment:
    return TrainingEnvironment(
        "ResNet18", num_workers=num_workers, global_batch=64, seed=seed
    )


@pytest.fixture(autouse=True)
def _private_cache_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    return tmp_path


class TestCacheKey:
    def test_identical_configs_hash_identically(self):
        assert cache.cache_key(_env(), 10) == cache.cache_key(_env(), 10)

    def test_key_is_hex_sha256(self):
        key = cache.cache_key(_env(), 10)
        assert len(key) == 64
        int(key, 16)  # raises if not hex

    @pytest.mark.parametrize(
        "other",
        [
            lambda: cache.cache_key(_env(seed=8), 10),
            lambda: cache.cache_key(_env(num_workers=5), 10),
            lambda: cache.cache_key(_env(), 11),
        ],
    )
    def test_any_config_change_changes_the_key(self, other):
        assert cache.cache_key(_env(), 10) != other()

    def test_version_bump_invalidates_every_key(self, monkeypatch):
        before = cache.cache_key(_env(), 10)
        monkeypatch.setattr(cache, "CACHE_VERSION", cache.CACHE_VERSION + 1)
        assert cache.cache_key(_env(), 10) != before

    def test_fingerprint_is_json_canonical(self):
        import json

        fingerprint = cache.environment_fingerprint(_env(), 10)
        round_tripped = json.loads(json.dumps(fingerprint))
        assert round_tripped == fingerprint


class TestStoreLoad:
    def test_round_trip_is_bit_identical(self):
        speed = np.random.default_rng(0).uniform(1.0, 9.0, size=(12, 4))
        comm = np.random.default_rng(1).uniform(0.0, 1.0, size=(12, 4))
        cache.store_matrices("k" * 64, speed, comm)
        loaded = cache.load_matrices("k" * 64)
        assert loaded is not None
        assert np.array_equal(loaded[0], speed)
        assert np.array_equal(loaded[1], comm)

    def test_missing_entry_returns_none(self):
        assert cache.load_matrices("f" * 64) is None

    def test_corrupted_entry_is_unlinked_and_reloaded_as_miss(self, tmp_path):
        cache.store_matrices("c" * 64, np.ones((3, 2)), np.ones((3, 2)))
        entry = tmp_path / f"mat-{'c' * 64}.npz"
        assert entry.exists()
        entry.write_bytes(b"not an npz archive")
        assert cache.load_matrices("c" * 64) is None
        assert not entry.exists()  # self-healed: the bad entry is gone

    def test_shape_mismatched_entry_is_dropped(self, tmp_path):
        entry = tmp_path / f"mat-{'s' * 64}.npz"
        with entry.open("wb") as handle:
            np.savez(handle, speed=np.ones((3, 2)), comm=np.ones((4, 2)))
        assert cache.load_matrices("s" * 64) is None
        assert not entry.exists()

    def test_store_into_unwritable_dir_is_silent(self, monkeypatch, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where the cache dir should be")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "nested"))
        # Must not raise: the cache is an accelerator, not a dependency.
        cache.store_matrices("a" * 64, np.ones((2, 2)), np.ones((2, 2)))


class TestPrune:
    def _store(self, key_char: str, mtime: float, tmp_path) -> None:
        cache.store_matrices(key_char * 64, np.ones((8, 8)), np.ones((8, 8)))
        import os

        os.utime(tmp_path / f"mat-{key_char * 64}.npz", (mtime, mtime))

    def test_oldest_entries_removed_first(self, tmp_path):
        self._store("a", 1_000.0, tmp_path)
        self._store("b", 2_000.0, tmp_path)
        self._store("c", 3_000.0, tmp_path)
        size = (tmp_path / f"mat-{'a' * 64}.npz").stat().st_size
        removed = cache.prune(max_bytes=2 * size)
        assert removed == 1
        assert not (tmp_path / f"mat-{'a' * 64}.npz").exists()
        assert (tmp_path / f"mat-{'b' * 64}.npz").exists()
        assert (tmp_path / f"mat-{'c' * 64}.npz").exists()

    def test_within_budget_removes_nothing(self, tmp_path):
        self._store("a", 1_000.0, tmp_path)
        assert cache.prune(max_bytes=1 << 30) == 0
        assert (tmp_path / f"mat-{'a' * 64}.npz").exists()

    def test_hits_refresh_lru_position(self, tmp_path):
        self._store("a", 1_000.0, tmp_path)
        self._store("b", 2_000.0, tmp_path)
        assert cache.load_matrices("a" * 64) is not None  # touch
        size = (tmp_path / f"mat-{'b' * 64}.npz").stat().st_size
        cache.prune(max_bytes=size)
        # "a" was touched by the hit, so "b" is now the LRU victim.
        assert (tmp_path / f"mat-{'a' * 64}.npz").exists()
        assert not (tmp_path / f"mat-{'b' * 64}.npz").exists()

    def test_clear_removes_everything(self, tmp_path):
        self._store("a", 1_000.0, tmp_path)
        self._store("b", 2_000.0, tmp_path)
        assert cache.clear() == 2
        assert not list(tmp_path.glob("mat-*.npz"))


class TestMaterializeCached:
    def test_miss_then_hit_are_bit_identical_to_fresh(self, tmp_path):
        horizon = 15
        fresh = _env().materialize(horizon)
        missed = cache.materialize_cached(_env(), horizon)
        assert list(tmp_path.glob("mat-*.npz"))  # the miss stored an entry
        hit = cache.materialize_cached(_env(), horizon)
        for rebuilt in (missed, hit):
            assert isinstance(rebuilt, MaterializedEnvironment)
            assert np.array_equal(rebuilt.speed_matrix, fresh.speed_matrix)
            assert np.array_equal(rebuilt.comm_matrix, fresh.comm_matrix)
            assert np.array_equal(rebuilt.slope_matrix, fresh.slope_matrix)

    def test_corrupted_entry_recomputes_transparently(self, tmp_path):
        horizon = 10
        cache.materialize_cached(_env(), horizon)
        (entry,) = tmp_path.glob("mat-*.npz")
        entry.write_bytes(b"garbage")
        rebuilt = cache.materialize_cached(_env(), horizon)
        fresh = _env().materialize(horizon)
        assert np.array_equal(rebuilt.speed_matrix, fresh.speed_matrix)
        # The recompute re-stored a good entry under the same key.
        assert cache.load_matrices(cache.cache_key(_env(), horizon)) is not None

    def test_repro_cache_0_bypasses_the_disk(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not cache.cache_enabled()
        rebuilt = cache.materialize_cached(_env(), 10)
        assert not list(tmp_path.glob("mat-*.npz"))
        fresh = _env().materialize(10)
        assert np.array_equal(rebuilt.speed_matrix, fresh.speed_matrix)

    def test_horizon_mismatch_never_serves_a_short_entry(self, tmp_path):
        cache.materialize_cached(_env(), 5)
        longer = cache.materialize_cached(_env(), 9)
        assert longer.speed_matrix.shape[0] == 9


class TestDtypeKeys:
    def test_dtype_is_part_of_the_fingerprint(self):
        env = _env()
        fp64 = cache.environment_fingerprint(env, 10, "numpy64")
        fp32 = cache.environment_fingerprint(env, 10, "numpy32")
        assert fp64["dtype"] == "float64" and fp32["dtype"] == "float32"
        assert cache.cache_key(env, 10, "numpy64") != cache.cache_key(
            env, 10, "numpy32"
        )

    def test_compiled_shares_entries_with_numpy64(self):
        # the key hashes the dtype, not the backend name: compiled is
        # float64, so it reuses numpy64's stored matrices
        env = _env()
        assert cache.cache_key(env, 10, "compiled") == cache.cache_key(
            env, 10, "numpy64"
        )
        assert cache.cache_key(env, 10) == cache.cache_key(env, 10, "numpy64")

    def test_float32_round_trip_preserves_dtype(self):
        env = _env()
        first = cache.materialize_cached(env, 5, backend="numpy32")
        assert first.speed_matrix.dtype == np.float32
        hit = cache.materialize_cached(_env(), 5, backend="numpy32")
        assert hit.speed_matrix.dtype == np.float32
        assert np.array_equal(hit.speed_matrix, first.speed_matrix)
        assert np.array_equal(hit.slope_matrix, first.slope_matrix)

    def test_dtypes_do_not_collide_on_disk(self):
        env = _env()
        m32 = cache.materialize_cached(env, 5, backend="numpy32")
        m64 = cache.materialize_cached(_env(), 5, backend="numpy64")
        assert m32.speed_matrix.dtype == np.float32
        assert m64.speed_matrix.dtype == np.float64
        # the float64 entry equals a fresh float64 materialization bitwise
        fresh = _env().materialize(5)
        assert np.array_equal(m64.speed_matrix, fresh.speed_matrix)

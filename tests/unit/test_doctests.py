"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro
import repro.costs.base
import repro.utils.rng

MODULES = [repro, repro.costs.base, repro.utils.rng]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    if result.attempted == 0:
        pytest.skip(f"{module.__name__} has no doctests")
    assert result.failed == 0

"""Unit tests for the instantaneous min-max solver (the OPT oracle)."""

import numpy as np
import pytest

from repro.costs.affine import AffineLatencyCost
from repro.costs.base import CallableCost, ConstantCost
from repro.costs.nonlinear import PowerLawCost
from repro.exceptions import SolverError
from repro.minmax.solver import evaluate_allocation, solve_min_max
from repro.simplex.sampling import is_feasible, uniform_simplex


class TestEvaluateAllocation:
    def test_basic(self):
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(3.0)]
        local, global_cost, straggler = evaluate_allocation(
            costs, np.array([0.5, 0.5])
        )
        assert np.allclose(local, [0.5, 1.5])
        assert global_cost == 1.5
        assert straggler == 1

    def test_tie_breaks_to_lowest_index(self):
        costs = [ConstantCost(1.0), ConstantCost(1.0), ConstantCost(1.0)]
        _, _, straggler = evaluate_allocation(costs, np.array([0.2, 0.3, 0.5]))
        assert straggler == 0

    def test_length_mismatch(self):
        with pytest.raises(SolverError):
            evaluate_allocation([ConstantCost(1.0)], np.array([0.5, 0.5]))


class TestSolveAffine:
    def test_two_workers_analytic(self):
        # f1 = x, f2 = 3x: optimum equalizes: x1 = 3/4, x2 = 1/4, value 3/4.
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(3.0)]
        sol = solve_min_max(costs)
        assert sol.value == pytest.approx(0.75, abs=1e-6)
        assert np.allclose(sol.allocation, [0.75, 0.25], atol=1e-6)

    def test_with_intercepts(self):
        # f1 = x + 0.5, f2 = x: equalize x1 + 0.5 = x2 with x1 + x2 = 1
        # -> x1 = 0.25, x2 = 0.75, value = 0.75
        costs = [AffineLatencyCost(1.0, 0.5), AffineLatencyCost(1.0, 0.0)]
        sol = solve_min_max(costs)
        assert sol.value == pytest.approx(0.75, abs=1e-6)

    def test_zero_load_floor_binds(self):
        # Worker 2 pays 2.0 even with zero load; worker 1 can absorb all
        # workload below that level, so the optimum is the floor.
        costs = [AffineLatencyCost(1.0), ConstantCost(2.0)]
        sol = solve_min_max(costs)
        assert sol.value == pytest.approx(2.0, abs=1e-6)

    def test_heterogeneous_thirty_workers(self):
        rng = np.random.default_rng(0)
        costs = [
            AffineLatencyCost(slope=s, intercept=c)
            for s, c in zip(rng.uniform(0.5, 20, 30), rng.uniform(0, 0.1, 30))
        ]
        sol = solve_min_max(costs)
        assert is_feasible(sol.allocation)
        # All realized costs are within tolerance of the level.
        local, value, _ = evaluate_allocation(costs, sol.allocation)
        assert value <= sol.level + 1e-6


class TestSolveNonlinear:
    def test_power_law(self):
        costs = [PowerLawCost(1.0, 2.0), PowerLawCost(4.0, 2.0)]
        # equalize x1^2 = 4 x2^2 -> x1 = 2 x2 -> x2 = 1/3.
        sol = solve_min_max(costs)
        assert np.allclose(sol.allocation, [2.0 / 3.0, 1.0 / 3.0], atol=1e-5)

    def test_bisection_only_costs(self):
        costs = [
            CallableCost(lambda x: x**1.5),
            CallableCost(lambda x: 2.0 * x + 0.01),
        ]
        sol = solve_min_max(costs)
        assert is_feasible(sol.allocation)
        _, value, _ = evaluate_allocation(costs, sol.allocation)
        assert value == pytest.approx(sol.level, abs=1e-5)


class TestSolveOptimality:
    """The solver's value must lower-bound every feasible allocation."""

    @pytest.mark.parametrize("seed", range(5))
    def test_beats_random_feasible_points(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        costs = [
            AffineLatencyCost(slope=s, intercept=c)
            for s, c in zip(rng.uniform(0.1, 10, n), rng.uniform(0, 0.5, n))
        ]
        sol = solve_min_max(costs)
        for _ in range(100):
            x = uniform_simplex(n, rng)
            _, value, _ = evaluate_allocation(costs, x)
            assert sol.value <= value + 1e-7


class TestEdgeCases:
    def test_single_worker(self):
        sol = solve_min_max([AffineLatencyCost(2.0, 0.1)])
        assert sol.allocation[0] == 1.0
        assert sol.value == pytest.approx(2.1)

    def test_no_costs(self):
        with pytest.raises(SolverError):
            solve_min_max([])

    def test_identical_workers_get_equal_split(self):
        costs = [AffineLatencyCost(2.0) for _ in range(4)]
        sol = solve_min_max(costs)
        assert np.allclose(sol.allocation, 0.25, atol=1e-6)


class TestScipyCrossCheck:
    """The self-written level-bisection solver must agree with an
    independent SLSQP epigraph formulation on smooth instances."""

    @pytest.mark.parametrize("seed", range(6))
    def test_affine_instances_agree(self, seed):
        from repro.minmax.scipy_solver import solve_min_max_scipy

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 8))
        costs = [
            AffineLatencyCost(slope=s, intercept=c)
            for s, c in zip(rng.uniform(0.2, 5, n), rng.uniform(0, 0.3, n))
        ]
        ours = solve_min_max(costs)
        theirs = solve_min_max_scipy(costs)
        assert ours.value == pytest.approx(theirs.value, rel=1e-4, abs=1e-6)

    def test_power_law_instance_agrees(self):
        from repro.minmax.scipy_solver import solve_min_max_scipy

        costs = [PowerLawCost(1.0, 2.0, 0.1), PowerLawCost(3.0, 1.5, 0.0)]
        ours = solve_min_max(costs)
        theirs = solve_min_max_scipy(costs)
        assert ours.value == pytest.approx(theirs.value, rel=1e-4)

    def test_single_worker(self):
        from repro.minmax.scipy_solver import solve_min_max_scipy

        sol = solve_min_max_scipy([AffineLatencyCost(2.0, 0.1)])
        assert sol.value == pytest.approx(2.1)

    def test_empty_rejected(self):
        from repro.minmax.scipy_solver import solve_min_max_scipy
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            solve_min_max_scipy([])


class TestSolveRows:
    """Batched waterfilling must be bit-identical to per-round solves."""

    @staticmethod
    def _random_instance(rng, rows, n):
        slopes = rng.uniform(0.2, 5.0, size=(rows, n))
        intercepts = rng.uniform(0.0, 0.3, size=(rows, n))
        return slopes, intercepts

    def test_bit_identical_to_scalar_solver(self):
        from repro.costs.affine_vector import AffineCostVector
        from repro.minmax.solver import solve_min_max_rows

        rng = np.random.default_rng(11)
        slopes, intercepts = self._random_instance(rng, 40, 7)
        allocations, values, levels = solve_min_max_rows(slopes, intercepts)
        for t in range(40):
            sol = solve_min_max(AffineCostVector(slopes[t], intercepts[t]))
            assert np.array_equal(sol.allocation, allocations[t])
            assert sol.value == values[t]
            assert sol.level == levels[t]

    def test_floor_rows_handled(self):
        from repro.costs.affine_vector import AffineCostVector
        from repro.minmax.solver import solve_min_max_rows

        # Row 0: worker 0's zero-load cost dominates, so the optimum sits
        # at the floor with all load on worker 1; row 1 is a generic
        # equalizing instance. Both shapes must survive the same batch.
        slopes = np.array([[1.0, 1.0], [1.0, 3.0]])
        intercepts = np.array([[10.0, 0.0], [0.0, 0.0]])
        allocations, values, levels = solve_min_max_rows(slopes, intercepts)
        assert np.allclose(allocations[0], [0.0, 1.0])
        assert values[0] == pytest.approx(10.0)
        for t in range(2):
            sol = solve_min_max(AffineCostVector(slopes[t], intercepts[t]))
            assert np.array_equal(sol.allocation, allocations[t])

    def test_shape_and_slope_validation(self):
        from repro.minmax.solver import solve_min_max_rows

        with pytest.raises(SolverError):
            solve_min_max_rows(np.ones(3), np.ones(3))  # not 2-D
        with pytest.raises(SolverError):
            solve_min_max_rows(np.ones((2, 3)), np.ones((2, 4)))
        with pytest.raises(SolverError):
            solve_min_max_rows(np.ones((2, 1)), np.zeros((2, 1)))  # < 2 workers
        with pytest.raises(SolverError):
            solve_min_max_rows(np.array([[1.0, 0.0]]), np.zeros((1, 2)))

"""Unit tests for model profiles and the processor catalog."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.mlsim.models import LENET5, MODEL_CATALOG, RESNET18, VGG16, ModelProfile, get_model
from repro.mlsim.processors import (
    BROADWELL,
    CASCADE_LAKE,
    PROCESSOR_CATALOG,
    T4,
    V100,
    ProcessorSpec,
    get_processor,
    sample_fleet,
)


class TestModelProfiles:
    def test_catalog_has_paper_models(self):
        assert set(MODEL_CATALOG) == {"LeNet5", "ResNet18", "VGG16"}

    def test_size_ordering(self):
        assert LENET5.num_parameters < RESNET18.num_parameters < VGG16.num_parameters
        assert LENET5.flops_per_sample < RESNET18.flops_per_sample < VGG16.flops_per_sample

    def test_param_bytes_fp32(self):
        assert RESNET18.param_bytes == 4.0 * RESNET18.num_parameters

    def test_train_flops_heuristic(self):
        assert VGG16.train_flops_per_sample == pytest.approx(3 * VGG16.flops_per_sample)

    def test_lookup_case_insensitive(self):
        assert get_model("resnet18") is RESNET18
        assert get_model("VGG16") is VGG16

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            get_model("AlexNet")

    def test_invalid_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            ModelProfile("x", flops_per_sample=0, num_parameters=10,
                         accuracy_plateau=0.9, accuracy_rate=0.1)
        with pytest.raises(ConfigurationError):
            ModelProfile("x", flops_per_sample=1e6, num_parameters=10,
                         accuracy_plateau=0.05, accuracy_rate=0.1)


class TestProcessorCatalog:
    def test_five_paper_processors(self):
        assert len(PROCESSOR_CATALOG) == 5
        assert "Tesla V100" in PROCESSOR_CATALOG
        assert "E5-2683 v4" in PROCESSOR_CATALOG

    def test_throughput_positive_for_all_pairs(self):
        for spec in PROCESSOR_CATALOG.values():
            for model in MODEL_CATALOG.values():
                assert spec.throughput(model) > 0

    def test_gpu_advantage_grows_with_model_size(self):
        """The heterogeneity property behind the paper's Fig. 6-8 trend."""
        ratios = [
            V100.throughput(m) / BROADWELL.throughput(m)
            for m in (LENET5, RESNET18, VGG16)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_broadwell_is_slow_tier_on_big_models(self):
        for model in (RESNET18, VGG16):
            slowest = min(
                PROCESSOR_CATALOG.values(), key=lambda s: s.throughput(model)
            )
            assert slowest.name == "E5-2683 v4"

    def test_v100_fastest_on_every_model(self):
        for model in MODEL_CATALOG.values():
            fastest = max(
                PROCESSOR_CATALOG.values(), key=lambda s: s.throughput(model)
            )
            assert fastest.name == "Tesla V100"

    def test_max_throughput_ceiling_binds_on_tiny_model(self):
        assert CASCADE_LAKE.throughput(LENET5) == CASCADE_LAKE.max_throughput

    def test_lookup(self):
        assert get_processor("Tesla T4") is T4
        with pytest.raises(ConfigurationError):
            get_processor("TPUv4")

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            ProcessorSpec("x", sustained_flops=0, small_model_efficiency=0.5, nic_bps=1e9)
        with pytest.raises(ConfigurationError):
            ProcessorSpec("x", sustained_flops=1e12, small_model_efficiency=1.5, nic_bps=1e9)


class TestSampleFleet:
    def test_size_and_membership(self):
        fleet = sample_fleet(30, np.random.default_rng(0))
        assert len(fleet) == 30
        assert all(spec.name in PROCESSOR_CATALOG for spec in fleet)

    def test_uniform_ish_distribution(self):
        fleet = sample_fleet(5000, np.random.default_rng(1))
        counts = {name: 0 for name in PROCESSOR_CATALOG}
        for spec in fleet:
            counts[spec.name] += 1
        for count in counts.values():
            assert 800 < count < 1200  # 1000 +- 20%

    def test_reproducible(self):
        a = sample_fleet(10, np.random.default_rng(3))
        b = sample_fleet(10, np.random.default_rng(3))
        assert [s.name for s in a] == [s.name for s in b]

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            sample_fleet(0, np.random.default_rng(0))

"""Unit tests for fluctuation traces, comm env, and the training env."""

import numpy as np
import pytest

from repro.costs.affine import AffineLatencyCost
from repro.exceptions import ConfigurationError
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.netenv import CommEnvironment
from repro.mlsim.processors import BROADWELL, V100
from repro.mlsim.models import RESNET18
from repro.mlsim.traces import FluctuationTrace


class TestFluctuationTrace:
    def test_replayable(self):
        trace = FluctuationTrace(seed=4)
        values = [trace.at(t) for t in range(1, 50)]
        again = [trace.at(t) for t in range(1, 50)]
        assert values == again

    def test_out_of_order_access(self):
        trace = FluctuationTrace(seed=4)
        late = trace.at(30)
        early = trace.at(5)
        assert trace.at(30) == late and trace.at(5) == early

    def test_positive_and_floored(self):
        trace = FluctuationTrace(sigma=1.0, spike_probability=0.5,
                                 spike_slowdown=(0.3, 0.4), floor=0.05, seed=0)
        values = [trace.at(t) for t in range(1, 500)]
        assert min(values) >= 0.05

    def test_zero_volatility_no_spikes_is_flat(self):
        trace = FluctuationTrace(sigma=0.0, spike_probability=0.0, seed=0)
        assert {round(trace.at(t), 12) for t in range(1, 20)} == {1.0}

    def test_mean_reversion(self):
        trace = FluctuationTrace(rho=0.9, sigma=0.1, spike_probability=0.0, seed=1)
        values = np.array([trace.at(t) for t in range(1, 3000)])
        assert abs(np.log(values).mean()) < 0.1

    def test_spikes_slow_things_down(self):
        calm = FluctuationTrace(sigma=0.0, spike_probability=0.0, seed=2)
        spiky = FluctuationTrace(sigma=0.0, spike_probability=0.3,
                                 spike_slowdown=(0.2, 0.4), seed=2)
        calm_mean = np.mean([calm.at(t) for t in range(1, 300)])
        spiky_mean = np.mean([spiky.at(t) for t in range(1, 300)])
        assert spiky_mean < calm_mean

    def test_rounds_one_based(self):
        with pytest.raises(ConfigurationError):
            FluctuationTrace().at(0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FluctuationTrace(rho=1.0)
        with pytest.raises(ConfigurationError):
            FluctuationTrace(spike_slowdown=(0.0, 0.5))
        with pytest.raises(ConfigurationError):
            FluctuationTrace(floor=1.5)


class TestCommEnvironment:
    def test_comm_time_formula(self):
        env = CommEnvironment([V100], RESNET18, payload_scale=0.01,
                              base_latency=0.002, rate_volatility=0.0, seed=0)
        expected = 8 * RESNET18.param_bytes * 0.01 / V100.nic_bps + 0.002
        assert env.comm_time(0, 1) == pytest.approx(expected, rel=1e-6)

    def test_slow_nic_pays_more(self):
        env = CommEnvironment([V100, BROADWELL], RESNET18, rate_volatility=0.0, seed=0)
        assert env.comm_time(1, 1) > env.comm_time(0, 1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CommEnvironment([], RESNET18)
        with pytest.raises(ConfigurationError):
            CommEnvironment([V100], RESNET18, payload_scale=0.0)


class TestTrainingEnvironment:
    def test_costs_are_affine_latency(self):
        env = TrainingEnvironment("ResNet18", num_workers=6, seed=0)
        costs = env.costs_at(1)
        assert len(costs) == 6
        assert all(isinstance(c, AffineLatencyCost) for c in costs)

    def test_cost_matches_speed_and_comm(self):
        env = TrainingEnvironment("ResNet18", num_workers=4, global_batch=128, seed=1)
        cost = env.costs_at(3)[2]
        assert cost.slope == pytest.approx(128.0 / env.speed_at(2, 3))
        assert cost.intercept == pytest.approx(env.comm_at(2, 3))

    def test_deterministic_per_seed(self):
        a = TrainingEnvironment("VGG16", num_workers=5, seed=9)
        b = TrainingEnvironment("VGG16", num_workers=5, seed=9)
        assert a.processor_names() == b.processor_names()
        assert a.costs_at(7)[0](0.5) == b.costs_at(7)[0](0.5)

    def test_different_seeds_differ(self):
        a = TrainingEnvironment("VGG16", num_workers=30, seed=1)
        b = TrainingEnvironment("VGG16", num_workers=30, seed=2)
        assert (
            a.processor_names() != b.processor_names()
            or a.costs_at(1)[0](0.5) != b.costs_at(1)[0](0.5)
        )

    def test_explicit_fleet(self):
        env = TrainingEnvironment("LeNet5", num_workers=2, fleet=[V100, BROADWELL], seed=0)
        assert env.processor_names() == ["Tesla V100", "E5-2683 v4"]

    def test_fleet_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            TrainingEnvironment("LeNet5", num_workers=3, fleet=[V100], seed=0)

    def test_model_by_string_or_profile(self):
        by_name = TrainingEnvironment("ResNet18", num_workers=3, seed=0)
        by_profile = TrainingEnvironment(RESNET18, num_workers=3, seed=0)
        assert by_name.model is by_profile.model

    def test_bad_batch(self):
        with pytest.raises(ConfigurationError):
            TrainingEnvironment("ResNet18", num_workers=3, global_batch=0, seed=0)

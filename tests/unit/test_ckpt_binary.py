"""Unit tests for the binary checkpoint payload encoding.

Large ndarrays escape base64-JSON's ~1.33x inflation by living as raw
little-endian bytes in the snapshot's binary tail, referenced from the
JSON head by ``__ndarray_blob__`` tags (see :mod:`repro.ckpt.codec`).
Pinned here: the codec round-trips exactly across dtypes, blob offsets
are canonical, the threshold knob works, the version-2 container
verifies its whole file, version-1 files (old snapshots) still load,
and snapshot identity is independent of the container.
"""

import json

import numpy as np
import pytest

from repro.ckpt.codec import (
    BLOB_THRESHOLD_ENV,
    blob_threshold,
    from_jsonable,
    to_jsonable,
)
from repro.ckpt.snapshot import BLOB_SNAPSHOT_VERSION, SNAPSHOT_VERSION, Snapshot
from repro.ckpt.store import CheckpointStore
from repro.exceptions import CheckpointError

BIG = np.arange(4096, dtype=np.float64)  # 32 KiB, comfortably over 4096 B
SMALL = np.arange(4, dtype=np.int64)     # 32 B, always inline


class TestCodecBlobs:
    @pytest.mark.parametrize(
        "dtype", [np.float64, np.float32, np.int64, np.int32, np.bool_]
    )
    def test_roundtrip_is_exact_per_dtype(self, dtype):
        arr = (np.arange(5000) % 7).astype(dtype)
        blobs = []
        encoded = to_jsonable({"a": arr}, blobs)
        assert "__ndarray_blob__" in encoded["a"]
        decoded = from_jsonable(encoded, b"".join(blobs))
        assert decoded["a"].dtype == arr.dtype
        assert np.array_equal(decoded["a"], arr)

    def test_small_arrays_stay_inline(self):
        blobs = []
        encoded = to_jsonable({"s": SMALL}, blobs)
        assert "__ndarray__" in encoded["s"]
        assert blobs == []

    def test_no_accumulator_means_no_blobs(self):
        encoded = to_jsonable({"a": BIG})
        assert "__ndarray__" in encoded["a"]

    def test_offsets_are_canonical_across_encodes(self):
        payload = {"z": BIG, "a": BIG * 2, "m": {"k": BIG + 1, 3: BIG - 1}}
        blobs1, blobs2 = [], []
        enc1 = to_jsonable(payload, blobs1)
        enc2 = to_jsonable(payload, blobs2)
        assert enc1 == enc2
        assert b"".join(blobs1) == b"".join(blobs2)

    def test_threshold_env_override(self, monkeypatch):
        monkeypatch.setenv(BLOB_THRESHOLD_ENV, "16")
        assert blob_threshold() == 16
        blobs = []
        encoded = to_jsonable({"s": SMALL}, blobs)
        assert "__ndarray_blob__" in encoded["s"]
        monkeypatch.setenv(BLOB_THRESHOLD_ENV, "0")
        blobs = []
        encoded = to_jsonable({"a": BIG}, blobs)
        assert "__ndarray__" in encoded["a"] and blobs == []

    def test_truncated_blob_is_rejected(self):
        blobs = []
        encoded = to_jsonable({"a": BIG}, blobs)
        short = b"".join(blobs)[:-8]
        with pytest.raises(CheckpointError, match="truncated"):
            from_jsonable(encoded, short)


class TestSnapshotContainer:
    def _blobby(self):
        return Snapshot(
            kind="run", round_index=3, config={"n": 9}, state={"x": BIG}
        )

    def _plain(self):
        return Snapshot(
            kind="run", round_index=3, config={"n": 9}, state={"x": SMALL}
        )

    def test_v2_roundtrip(self):
        snap = self._blobby()
        raw = snap.to_bytes()
        head = raw.partition(b"\n")[0]
        envelope = json.loads(head)
        assert envelope["version"] == BLOB_SNAPSHOT_VERSION
        assert envelope["blob_bytes"] == BIG.nbytes
        back = Snapshot.from_bytes(raw)
        assert back.version == SNAPSHOT_VERSION
        assert np.array_equal(back.state["x"], BIG)

    def test_small_snapshot_keeps_v1_container(self):
        raw = self._plain().to_bytes()
        assert raw.endswith(b"\n") and raw.count(b"\n") == 1
        envelope = json.loads(raw)
        assert envelope["version"] == SNAPSHOT_VERSION

    def test_fingerprint_is_container_independent(self, monkeypatch):
        snap = self._blobby()
        v2 = Snapshot.from_bytes(snap.to_bytes())
        monkeypatch.setenv(BLOB_THRESHOLD_ENV, "0")
        v1 = Snapshot.from_bytes(snap.to_bytes())
        assert snap.fingerprint == v1.fingerprint == v2.fingerprint

    def test_tail_corruption_detected(self):
        raw = bytearray(self._blobby().to_bytes())
        raw[-3] ^= 0xFF
        with pytest.raises(ValueError, match="fingerprint"):
            Snapshot.from_bytes(bytes(raw))

    def test_tail_truncation_detected(self):
        raw = self._blobby().to_bytes()
        with pytest.raises(ValueError):
            Snapshot.from_bytes(raw[:-16])

    def test_store_roundtrips_v2_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        snap = self._blobby()
        store.save(snap)
        loaded = store.latest()
        assert loaded is not None
        assert loaded.fingerprint == snap.fingerprint
        assert np.array_equal(loaded.state["x"], BIG)

    def test_old_v1_files_still_load(self, monkeypatch):
        # A file written with blobbing disabled is byte-for-byte the
        # pre-binary format; it must load with blobbing enabled again.
        snap = self._blobby()
        monkeypatch.setenv(BLOB_THRESHOLD_ENV, "0")
        legacy = snap.to_bytes()
        monkeypatch.delenv(BLOB_THRESHOLD_ENV)
        back = Snapshot.from_bytes(legacy)
        assert back.fingerprint == snap.fingerprint
        assert np.array_equal(back.state["x"], BIG)

"""Unit tests for the edge-computing offloading scenario (§III-B)."""

import numpy as np
import pytest

from repro.edge.offloading import EdgeOffloadingScenario
from repro.exceptions import ConfigurationError


class TestScenarioConstruction:
    def test_worker_count_is_servers_plus_one(self):
        scenario = EdgeOffloadingScenario(num_servers=5, seed=0)
        assert scenario.num_workers == 6
        assert len(scenario.costs_at(1)) == 6

    def test_explicit_rates(self):
        scenario = EdgeOffloadingScenario(
            num_servers=2,
            server_rates=np.array([1.0, 2.0]),
            uplink_mbps=np.array([50.0, 50.0]),
            seed=0,
        )
        assert scenario.server_rates.tolist() == [1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EdgeOffloadingScenario(task_size_mbits=0.0)
        with pytest.raises(ConfigurationError):
            EdgeOffloadingScenario(background_load=1.0)
        with pytest.raises(ConfigurationError):
            EdgeOffloadingScenario(num_servers=2, server_rates=np.array([1.0]))
        with pytest.raises(ConfigurationError):
            EdgeOffloadingScenario(
                num_servers=1, server_rates=np.array([-1.0]),
            )


class TestCostShapes:
    def test_local_cost_linear_in_retained_fraction(self):
        scenario = EdgeOffloadingScenario(num_servers=2, seed=1)
        local = scenario.costs_at(1)[0]
        assert local(0.0) == 0.0
        assert local(0.8) == pytest.approx(2 * local(0.4))

    def test_server_cost_zero_at_zero(self):
        scenario = EdgeOffloadingScenario(num_servers=3, seed=1)
        for cost in scenario.costs_at(1)[1:]:
            assert cost(0.0) == 0.0

    def test_server_cost_increasing_and_superlinear(self):
        scenario = EdgeOffloadingScenario(num_servers=3, seed=1)
        for cost in scenario.costs_at(1)[1:]:
            assert cost.is_increasing(samples=64)
            # queueing delay is convex: doubling load more than doubles cost
            assert cost(0.8) > 2 * cost(0.4)

    def test_costs_finite_on_whole_unit_interval(self):
        """The steep linear extension keeps overshooting baselines alive."""
        scenario = EdgeOffloadingScenario(num_servers=4, seed=2)
        for t in (1, 5, 20):
            for cost in scenario.costs_at(t):
                assert np.isfinite(cost(1.0))

    def test_deterministic_in_round(self):
        scenario = EdgeOffloadingScenario(num_servers=2, seed=7)
        a = [c(0.3) for c in scenario.costs_at(4)]
        b = [c(0.3) for c in scenario.costs_at(4)]
        assert a == b

    def test_time_varying(self):
        scenario = EdgeOffloadingScenario(num_servers=2, seed=7)
        a = [c(0.3) for c in scenario.costs_at(1)]
        b = [c(0.3) for c in scenario.costs_at(2)]
        assert a != b


class TestEffectiveServiceRate:
    def test_reduced_by_background_load(self):
        scenario = EdgeOffloadingScenario(
            num_servers=2,
            server_rates=np.array([2.0, 3.0]),
            uplink_mbps=np.array([50.0, 50.0]),
            background_load=0.4,
            seed=0,
        )
        for s in (0, 1):
            rate = scenario.effective_service_rate(s, 1)
            assert 0 < rate < scenario.server_rates[s]

    def test_zero_background_load_keeps_full_rate(self):
        scenario = EdgeOffloadingScenario(
            num_servers=1,
            server_rates=np.array([2.0]),
            uplink_mbps=np.array([50.0]),
            background_load=0.0,
            seed=0,
        )
        assert scenario.effective_service_rate(0, 5) == pytest.approx(2.0)

    def test_bad_server_index(self):
        scenario = EdgeOffloadingScenario(num_servers=2, seed=0)
        with pytest.raises(ConfigurationError):
            scenario.effective_service_rate(5, 1)

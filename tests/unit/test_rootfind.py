"""Unit tests for the root-finding substrate."""

import math

import pytest

from repro.exceptions import RootFindingError
from repro.rootfind.bisection import bisect_increasing, expand_bracket
from repro.rootfind.hansen_patrick import hansen_patrick, numeric_derivatives


class TestBisection:
    def test_linear_root(self):
        res = bisect_increasing(lambda x: x - 0.3, 0.0, 1.0)
        assert res.root == pytest.approx(0.3, abs=1e-10)

    def test_one_sided_result(self):
        """The root is the sup of the sublevel set: func(root) <= 0."""
        res = bisect_increasing(lambda x: x**3 - 0.1, 0.0, 1.0)
        assert res.root**3 - 0.1 <= 1e-12

    def test_whole_interval_feasible(self):
        res = bisect_increasing(lambda x: x - 5.0, 0.0, 1.0)
        assert res.root == 1.0
        assert res.iterations == 0

    def test_empty_sublevel_raises(self):
        with pytest.raises(RootFindingError):
            bisect_increasing(lambda x: x + 1.0, 0.0, 1.0)

    def test_inverted_interval_raises(self):
        with pytest.raises(RootFindingError):
            bisect_increasing(lambda x: x, 1.0, 0.0)

    def test_step_function(self):
        res = bisect_increasing(lambda x: -1.0 if x < 0.7 else 1.0, 0.0, 1.0)
        assert res.root == pytest.approx(0.7, abs=1e-9)

    def test_iteration_count_bounded(self):
        res = bisect_increasing(lambda x: x - 0.5, 0.0, 1.0, xtol=1e-12)
        assert res.iterations <= 50


class TestExpandBracket:
    def test_expands_until_sign_change(self):
        lo, hi = expand_bracket(lambda x: x - 100.0, 0.0, 1.0)
        assert lo < 100.0 <= hi

    def test_already_bracketed(self):
        lo, hi = expand_bracket(lambda x: x - 0.5, 0.0, 1.0)
        assert (lo, hi) == (0.0, 1.0)

    def test_rejects_positive_lo(self):
        with pytest.raises(RootFindingError):
            expand_bracket(lambda x: x + 1.0, 0.0, 1.0)

    def test_gives_up_eventually(self):
        with pytest.raises(RootFindingError):
            expand_bracket(lambda x: -1.0, 0.0, 1.0, max_expansions=5)


class TestHansenPatrick:
    @pytest.mark.parametrize("a", [0.0, -0.5, 1.0, 5.0])
    def test_family_members_converge(self, a):
        res = hansen_patrick(lambda x: x**2 - 0.49, 0.0, 1.0, a=a)
        assert res.root == pytest.approx(0.7, abs=1e-8)

    def test_exact_endpoint_roots(self):
        assert hansen_patrick(lambda x: x, 0.0, 1.0).root == 0.0
        assert hansen_patrick(lambda x: x - 1.0, 0.0, 1.0).root == 1.0

    def test_unbracketed_raises(self):
        with pytest.raises(RootFindingError):
            hansen_patrick(lambda x: x + 1.0, 0.0, 1.0)

    def test_with_analytic_derivatives(self):
        res = hansen_patrick(
            lambda x: math.exp(x) - 2.0,
            0.0,
            1.0,
            deriv=lambda x: (math.exp(x), math.exp(x)),
        )
        assert res.root == pytest.approx(math.log(2.0), abs=1e-9)

    def test_faster_than_bisection_on_smooth_function(self):
        func = lambda x: x**3 - 0.2  # noqa: E731
        hp = hansen_patrick(func, 0.0, 1.0, xtol=1e-12)
        bi = bisect_increasing(func, 0.0, 1.0, xtol=1e-12)
        assert hp.iterations < bi.iterations


class TestNumericDerivatives:
    def test_polynomial(self):
        d1, d2 = numeric_derivatives(lambda x: x**2, 0.5)
        assert d1 == pytest.approx(1.0, abs=1e-5)
        assert d2 == pytest.approx(2.0, abs=1e-3)

"""Unit tests for simplex projection and sampling."""

import numpy as np
import pytest

from repro.exceptions import FeasibilityError
from repro.simplex.projection import (
    project_simplex,
    project_simplex_michelot,
    project_simplex_sort,
    simplex_threshold,
)
from repro.simplex.sampling import (
    clip_to_simplex,
    dirichlet_simplex,
    equal_split,
    is_feasible,
    uniform_simplex,
)


class TestProjectionCorrectness:
    def test_already_feasible_is_fixed_point(self):
        x = np.array([0.2, 0.3, 0.5])
        assert np.allclose(project_simplex_sort(x), x)
        assert np.allclose(project_simplex_michelot(x), x)

    def test_known_projection(self):
        # Projection of (1, 0.5) onto the 1-simplex: shift by tau=0.25.
        v = np.array([1.0, 0.5])
        expected = np.array([0.75, 0.25])
        assert np.allclose(project_simplex_sort(v), expected)

    def test_negative_coordinates_clipped(self):
        v = np.array([2.0, -5.0, -5.0])
        p = project_simplex_sort(v)
        assert np.allclose(p, [1.0, 0.0, 0.0])

    def test_methods_agree_on_random_inputs(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            v = rng.normal(size=rng.integers(1, 20)) * 10
            assert np.allclose(
                project_simplex_sort(v), project_simplex_michelot(v), atol=1e-10
            )

    def test_kkt_threshold(self):
        rng = np.random.default_rng(1)
        v = rng.normal(size=10)
        tau = simplex_threshold(v)
        p = np.maximum(v - tau, 0.0)
        assert p.sum() == pytest.approx(1.0)

    def test_custom_radius(self):
        v = np.array([3.0, 1.0])
        p = project_simplex_sort(v, radius=2.0)
        assert p.sum() == pytest.approx(2.0)

    def test_optimality_vs_random_feasible_points(self):
        """The projection must be the closest feasible point."""
        rng = np.random.default_rng(2)
        v = rng.normal(size=6)
        p = project_simplex_sort(v)
        for _ in range(200):
            q = uniform_simplex(6, rng)
            assert np.linalg.norm(v - p) <= np.linalg.norm(v - q) + 1e-12


class TestProjectionValidation:
    def test_rejects_matrix(self):
        with pytest.raises(FeasibilityError):
            project_simplex_sort(np.zeros((2, 2)))

    def test_rejects_empty(self):
        with pytest.raises(FeasibilityError):
            project_simplex_sort(np.array([]))

    def test_rejects_nan(self):
        with pytest.raises(FeasibilityError):
            project_simplex_sort(np.array([1.0, float("nan")]))

    def test_rejects_bad_radius(self):
        with pytest.raises(FeasibilityError):
            project_simplex_sort(np.array([1.0]), radius=0.0)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            project_simplex(np.array([1.0]), method="gradient")


class TestSampling:
    def test_uniform_simplex_feasible(self):
        rng = np.random.default_rng(0)
        for n in (1, 2, 10, 100):
            assert is_feasible(uniform_simplex(n, rng))

    def test_dirichlet_feasible(self):
        rng = np.random.default_rng(0)
        assert is_feasible(dirichlet_simplex(8, rng, concentration=0.3))

    def test_dirichlet_rejects_bad_concentration(self):
        with pytest.raises(FeasibilityError):
            dirichlet_simplex(3, np.random.default_rng(0), concentration=0.0)

    def test_equal_split(self):
        x = equal_split(4)
        assert np.allclose(x, 0.25)

    def test_equal_split_rejects_zero(self):
        with pytest.raises(FeasibilityError):
            equal_split(0)


class TestFeasibility:
    def test_accepts_simplex_point(self):
        assert is_feasible(np.array([0.5, 0.5]))

    def test_rejects_negative(self):
        assert not is_feasible(np.array([1.5, -0.5]))

    def test_rejects_wrong_sum(self):
        assert not is_feasible(np.array([0.5, 0.6]))

    def test_rejects_nan(self):
        assert not is_feasible(np.array([0.5, float("nan")]))

    def test_tolerance(self):
        assert is_feasible(np.array([0.5, 0.5 + 1e-10]))

    def test_clip_repairs_dust(self):
        x = np.array([0.5, 0.5 - 1e-12, 1e-12])
        repaired = clip_to_simplex(x)
        assert repaired.sum() == pytest.approx(1.0)
        assert (repaired >= 0).all()

    def test_clip_rejects_real_violation(self):
        with pytest.raises(FeasibilityError):
            clip_to_simplex(np.array([0.7, 0.7]))

"""Unit tests for the serving routing-policy layer."""

import json

import numpy as np
import pytest

from repro.costs.nonlinear import SaturatingQueueingCost
from repro.exceptions import CheckpointError, ConfigurationError
from repro.serving.policies import (
    SERVING_POLICIES,
    DolbieRouting,
    FdDolbieRouting,
    JoinShortestQueue,
    PowerOfTwoChoices,
    WeightedRoundRobin,
    make_policy,
)

N = 5
MU = np.linspace(1.0, 3.0, N)


def _costs(lam=6.0):
    return [SaturatingQueueingCost(float(m), lam) for m in MU]


class TestRegistry:
    def test_all_policies_constructible(self):
        for name in SERVING_POLICIES:
            policy = make_policy(name, N, MU, seed=3)
            assert policy.name == name
            assert policy.num_workers == N

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("least-connections", N, MU)

    def test_service_rate_shape_validated(self):
        with pytest.raises(ConfigurationError):
            make_policy("wrr", N, MU[:-1])
        with pytest.raises(ConfigurationError):
            make_policy("wrr", N, np.stack([MU, MU]))

    def test_too_few_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            JoinShortestQueue(1)

    def test_sequential_flags(self):
        assert JoinShortestQueue(N).is_sequential
        assert PowerOfTwoChoices(N).is_sequential
        assert not make_policy("wrr", N, MU).is_sequential
        assert not make_policy("dolbie", N, MU).is_sequential
        assert not make_policy("dolbie-fd", N, MU).is_sequential


class TestWeights:
    def test_wrr_weights_proportional_to_speed(self):
        policy = WeightedRoundRobin(N, MU)
        np.testing.assert_allclose(policy.weights, MU / MU.sum())

    def test_dolbie_starts_at_speed_proportional_weights(self):
        # Same prior knowledge as WRR, so the p99 gap isolates online
        # adaptation (and no worker starts saturated).
        for name in ("dolbie", "dolbie-fd"):
            policy = make_policy(name, N, MU)
            np.testing.assert_allclose(policy.weights, MU / MU.sum())

    def test_weights_stay_on_the_simplex_across_updates(self):
        policy = DolbieRouting(N, initial_allocation=MU / MU.sum())
        for period in range(1, 8):
            policy.control_update(period, _costs())
            assert policy.weights.sum() == pytest.approx(1.0)
            assert np.all(policy.weights >= -1e-12)

    def test_wrr_never_moves(self):
        policy = WeightedRoundRobin(N, MU)
        before = policy.weights.copy()
        policy.control_update(1, _costs())
        np.testing.assert_array_equal(policy.weights, before)

    def test_fd_protocol_matches_centralized_dolbie(self):
        central = DolbieRouting(N, initial_allocation=MU / MU.sum())
        distributed = FdDolbieRouting(N, initial_allocation=MU / MU.sum())
        for period in range(1, 6):
            central.control_update(period, _costs())
            distributed.control_update(period, _costs())
            np.testing.assert_allclose(
                distributed.weights, central.weights, atol=1e-12
            )


class TestCheckpoint:
    @pytest.mark.parametrize("name", sorted(SERVING_POLICIES))
    def test_json_roundtrip_resumes_identically(self, name):
        policy = make_policy(name, N, MU, seed=9)
        # Advance past a couple of control rounds (and RNG draws).
        for period in range(1, 4):
            policy.control_update(period, _costs())
        if policy.is_sequential:
            for _ in range(10):
                policy.select(np.arange(N, dtype=float))
        snapshot = json.loads(json.dumps(policy.capture_state()))

        resumed = make_policy(name, N, MU, seed=9)
        resumed.restore_state(snapshot)
        policy.control_update(4, _costs())
        resumed.control_update(4, _costs())
        if hasattr(policy, "weights"):
            np.testing.assert_array_equal(resumed.weights, policy.weights)
        if policy.is_sequential:
            backlogs = np.linspace(3.0, 1.0, N)
            for _ in range(5):
                assert resumed.select(backlogs) == policy.select(backlogs)

    def test_state_rejects_wrong_policy(self):
        state = make_policy("wrr", N, MU).capture_state()
        with pytest.raises(CheckpointError):
            make_policy("jsq", N, MU).restore_state(state)


class TestSelectors:
    def test_jsq_breaks_ties_to_lowest_index(self):
        policy = JoinShortestQueue(3)
        assert policy.select(np.array([2.0, 1.0, 1.0])) == 1
        assert policy.select(np.zeros(3)) == 0

    def test_p2c_seeded_rerun_is_identical(self):
        backlogs = np.linspace(5.0, 1.0, N)
        a = PowerOfTwoChoices(N, seed=17)
        b = PowerOfTwoChoices(N, seed=17)
        assert [a.select(backlogs) for _ in range(50)] == [
            b.select(backlogs) for _ in range(50)
        ]

"""Unit tests for the utilities package."""

import time

import numpy as np
import pytest

from repro.exceptions import FeasibilityError
from repro.utils.rng import RngFactory, spawn_rng
from repro.utils.stats import confidence_interval, mean_ci, running_mean, summarize
from repro.utils.timer import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)


class TestRng:
    def test_same_seed_same_stream(self):
        a = spawn_rng(5, "x").random(10)
        b = spawn_rng(5, "x").random(10)
        assert (a == b).all()

    def test_different_names_independent(self):
        a = spawn_rng(5, "x").random(10)
        b = spawn_rng(5, "y").random(10)
        assert not (a == b).all()

    def test_factory_replayable(self):
        factory = RngFactory(9)
        assert factory.make("speeds").random() == RngFactory(9).make("speeds").random()

    def test_child_factories_independent(self):
        base = RngFactory(9)
        a = base.child("a").make("x").random()
        b = base.child("b").make("x").random()
        assert a != b


class TestStats:
    def test_ci_zero_for_single_sample(self):
        assert confidence_interval([5.0]) == 0.0

    def test_ci_contains_true_mean_usually(self):
        rng = np.random.default_rng(0)
        hits = 0
        for _ in range(200):
            sample = rng.normal(10.0, 2.0, size=30)
            mean, half = mean_ci(sample)
            if abs(mean - 10.0) <= half:
                hits += 1
        assert hits > 180  # ~95% coverage

    def test_mean_ci_axis(self):
        data = np.arange(12, dtype=float).reshape(3, 4)
        mean, ci = mean_ci(data, axis=0)
        assert mean.shape == (4,) and ci.shape == (4,)

    def test_running_mean_warmup(self):
        out = running_mean([2.0, 4.0, 6.0, 8.0], window=2)
        assert out.tolist() == [2.0, 3.0, 5.0, 7.0]

    def test_running_mean_bad_window(self):
        with pytest.raises(ValueError):
            running_mean([1.0], window=0)

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.median == 2.0
        assert s.count == 3
        assert set(s.as_dict()) == {"mean", "std", "min", "max", "median", "ci95", "count"}

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.002)
        with watch:
            time.sleep(0.002)
        assert watch.total >= 0.004
        assert len(watch.laps) == 2
        assert watch.mean_lap == pytest.approx(watch.total / 2)

    def test_double_start_raises(self):
        watch = Stopwatch()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.total == 0.0 and watch.laps == []
        assert watch.mean_lap == 0.0


class TestValidation:
    def test_check_positive(self):
        assert check_positive(2.0, "x") == 2.0
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_check_fraction(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0
        with pytest.raises(ValueError):
            check_fraction(1.0, "x", inclusive=False)
        with pytest.raises(ValueError):
            check_fraction(-0.1, "x")

    def test_check_probability_vector(self):
        x = check_probability_vector(np.array([0.5, 0.5]))
        assert x.sum() == 1.0
        with pytest.raises(FeasibilityError):
            check_probability_vector(np.array([0.7, 0.7]))
        with pytest.raises(FeasibilityError):
            check_probability_vector(np.array([[0.5, 0.5]]))
        with pytest.raises(FeasibilityError):
            check_probability_vector(np.array([1.2, -0.2]))

"""Unit tests for run serialization and trace-driven environments."""

import numpy as np
import pytest

from repro.baselines import make_balancer
from repro.core.loop import run_online
from repro.costs.timevarying import RandomAffineProcess
from repro.exceptions import ConfigurationError
from repro.io import load_run, load_training_run, save_run, save_training_run
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.tracefile import TraceEnvironment, TraceTable
from repro.mlsim.trainer import SyncTrainer


class TestRunRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        process = RandomAffineProcess([1, 2, 4], sigma=0.1, seed=0)
        run = run_online(make_balancer("DOLBIE", 3, alpha_1=0.05), process, 25)
        path = save_run(run, tmp_path / "run")
        assert path.suffix == ".npz"
        loaded = load_run(path)
        assert loaded.algorithm == run.algorithm
        assert loaded.num_workers == run.num_workers
        assert loaded.horizon == run.horizon
        assert np.array_equal(loaded.allocations, run.allocations)
        assert np.array_equal(loaded.global_costs, run.global_costs)
        assert np.array_equal(loaded.stragglers, run.stragglers)

    def test_wrong_format_rejected(self, tmp_path):
        env = TrainingEnvironment("ResNet18", num_workers=4, seed=0)
        training = SyncTrainer(env).train(make_balancer("EQU", 4), 5)
        path = save_training_run(training, tmp_path / "t.npz")
        with pytest.raises(ConfigurationError):
            load_run(path)


class TestTrainingRunRoundtrip:
    def test_roundtrip(self, tmp_path):
        env = TrainingEnvironment("ResNet18", num_workers=4, seed=1)
        run = SyncTrainer(env).train(make_balancer("DOLBIE", 4, alpha_1=0.01), 12)
        path = save_training_run(run, tmp_path / "training")
        loaded = load_training_run(path)
        assert loaded.model == "ResNet18"
        assert loaded.global_batch == run.global_batch
        assert np.array_equal(loaded.accuracy, run.accuracy)
        assert np.array_equal(loaded.batch_sizes, run.batch_sizes)
        assert loaded.time_to_accuracy(0.11) == run.time_to_accuracy(0.11)


class TestTraceTable:
    def _table(self):
        rng = np.random.default_rng(0)
        return TraceTable(
            speeds=rng.uniform(100, 1000, size=(6, 3)),
            comm_times=rng.uniform(0.001, 0.01, size=(6, 3)),
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceTable(np.ones((3, 2)), np.ones((3, 3)))
        with pytest.raises(ConfigurationError):
            TraceTable(np.zeros((3, 2)), np.zeros((3, 2)))  # zero speed
        with pytest.raises(ConfigurationError):
            TraceTable(np.ones((3, 1)), np.ones((3, 1)))  # one worker

    def test_csv_roundtrip(self, tmp_path):
        table = self._table()
        path = table.save_csv(tmp_path / "trace.csv")
        loaded = TraceTable.load_csv(path)
        assert np.allclose(loaded.speeds, table.speeds)
        assert np.allclose(loaded.comm_times, table.comm_times)

    def test_load_rejects_missing_cells(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("round,worker,speed,comm_time\n1,0,100,0.01\n")
        # Round 1 worker 1 missing for a 2-worker trace is undetectable
        # (it looks like a 1-worker trace and fails the >=2 check).
        with pytest.raises(ConfigurationError):
            TraceTable.load_csv(path)

    def test_load_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ConfigurationError):
            TraceTable.load_csv(path)

    def test_from_environment(self):
        env = TrainingEnvironment("ResNet18", num_workers=3, seed=2)
        table = TraceTable.from_environment(env, rounds=5)
        assert table.rounds == 5 and table.num_workers == 3
        assert table.speeds[2, 1] == pytest.approx(env.speed_at(1, 3))


class TestTraceEnvironment:
    def test_replays_exact_costs(self):
        env = TrainingEnvironment("ResNet18", num_workers=3, global_batch=128, seed=3)
        table = TraceTable.from_environment(env, rounds=8)
        replay = TraceEnvironment(table, global_batch=128)
        for t in (1, 4, 8):
            original = env.costs_at(t)
            replayed = replay.costs_at(t)
            for f, g in zip(original, replayed):
                assert g(0.5) == pytest.approx(f(0.5), rel=1e-12)

    def test_periodic_extension(self):
        env = TrainingEnvironment("ResNet18", num_workers=3, seed=3)
        table = TraceTable.from_environment(env, rounds=4)
        replay = TraceEnvironment(table)
        assert replay.costs_at(1)[0](0.3) == replay.costs_at(5)[0](0.3)

    def test_algorithms_run_on_traces(self):
        env = TrainingEnvironment("ResNet18", num_workers=4, seed=4)
        table = TraceTable.from_environment(env, rounds=10)
        replay = TraceEnvironment(table)
        result = run_online(make_balancer("DOLBIE", 4, alpha_1=0.01), replay, 30)
        assert result.horizon == 30

    def test_rounds_one_based(self):
        env = TrainingEnvironment("ResNet18", num_workers=3, seed=3)
        replay = TraceEnvironment(TraceTable.from_environment(env, rounds=2))
        with pytest.raises(ConfigurationError):
            replay.costs_at(0)

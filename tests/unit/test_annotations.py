"""Every public observability-hook annotation must resolve at runtime.

The ``tracer``/``profiler`` (and protocol ``topology``) parameters were
once annotated with quoted forward references whose names were never
imported, so :func:`typing.get_type_hints` — and everything built on it:
sphinx's autodoc type rendering, runtime validators, IDE inspectors —
raised ``NameError``. The annotations now use real runtime imports; this
test pins that every hint on the public entry points evaluates.
"""

import inspect
import typing

import pytest

from repro.core.dolbie import Dolbie
from repro.core.loop import run_online, run_online_costs
from repro.mlsim.trainer import SyncTrainer
from repro.obs.profiler import Profiler
from repro.obs.tracer import Tracer
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie

ENTRY_POINTS = [
    Dolbie.__init__,
    run_online,
    run_online_costs,
    SyncTrainer.train,
    MasterWorkerDolbie.__init__,
    FullyDistributedDolbie.__init__,
]


@pytest.mark.parametrize(
    "func", ENTRY_POINTS, ids=lambda f: f.__qualname__
)
def test_type_hints_resolve(func):
    hints = typing.get_type_hints(func)
    if "tracer" in inspect.signature(func).parameters:
        assert hints["tracer"] == (Tracer | None)
    if "profiler" in inspect.signature(func).parameters:
        assert hints["profiler"] == (Profiler | None)


@pytest.mark.parametrize("cls", [MasterWorkerDolbie, FullyDistributedDolbie])
def test_all_protocol_methods_resolve(cls):
    for _, func in inspect.getmembers(cls, inspect.isfunction):
        typing.get_type_hints(func)  # raises NameError on a stale forward ref

"""Unit tests for the delayed-feedback wrapper."""

import numpy as np
import pytest

from repro.baselines.opt import DynamicOptimum
from repro.core.delayed import DelayedFeedback
from repro.core.dolbie import Dolbie
from repro.core.loop import run_online
from repro.costs.timevarying import RandomAffineProcess, StaticCostProcess
from repro.costs.affine import AffineLatencyCost
from repro.exceptions import ConfigurationError
from repro.simplex.sampling import is_feasible


def _process(seed=0):
    return RandomAffineProcess([1, 2, 4, 8], sigma=0.1, seed=seed)


class TestZeroDelayIsIdentity:
    def test_matches_unwrapped(self):
        inner = Dolbie(4, alpha_1=0.05)
        plain = Dolbie(4, alpha_1=0.05)
        wrapped = DelayedFeedback(inner, delay=0)
        a = run_online(wrapped, _process(), 40)
        b = run_online(plain, _process(), 40)
        assert np.allclose(a.allocations, b.allocations)


class TestDelaySemantics:
    def test_inner_state_is_frozen_for_delay_rounds(self):
        inner = Dolbie(4, alpha_1=0.05)
        wrapped = DelayedFeedback(inner, delay=3)
        result = run_online(wrapped, _process(), 10)
        # For the first `delay` rounds no feedback has reached the inner
        # algorithm, so the played allocation is still the initial one.
        for t in range(3):
            assert np.allclose(result.allocations[t], 0.25)
        assert not np.allclose(result.allocations[9], 0.25)

    def test_name_reflects_delay(self):
        assert DelayedFeedback(Dolbie(3), delay=2).name == "DOLBIE+delay2"

    def test_feasibility_preserved_under_delay(self):
        wrapped = DelayedFeedback(Dolbie(4, alpha_1=0.3), delay=5)
        result = run_online(wrapped, _process(seed=7), 80)
        for t in range(80):
            assert is_feasible(result.allocations[t], atol=1e-8)

    def test_delay_degrades_but_still_converges(self):
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(2.0), AffineLatencyCost(4.0)]
        process = StaticCostProcess(costs)
        prompt = run_online(Dolbie(3, alpha_1=0.2), process, 150)
        delayed = run_online(
            DelayedFeedback(Dolbie(3, alpha_1=0.2), delay=4), process, 150
        )
        # The delayed variant still improves substantially over the
        # equal split and lands near (within 50% of) the prompt variant's
        # balance point, but pays a clear cumulative price for the delay.
        assert delayed.global_costs[-1] < 0.6 * delayed.global_costs[0]
        assert delayed.global_costs[-1] < 1.5 * prompt.global_costs[-1]
        assert delayed.total_cost > prompt.total_cost


class TestValidation:
    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            DelayedFeedback(Dolbie(3), delay=-1)

    def test_rejects_oracle_inner(self):
        with pytest.raises(ConfigurationError):
            DelayedFeedback(DynamicOptimum(3), delay=1)

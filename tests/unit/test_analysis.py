"""Unit tests for the analysis package (metrics + comparison)."""

import numpy as np
import pytest

from repro.analysis.compare import (
    AlgorithmSummary,
    compare_runs,
    comparison_table,
    export_comparison_csv,
)
from repro.analysis.metrics import (
    convergence_round,
    fluctuation_index,
    gini,
    imbalance,
    jain_fairness,
    oracle_ratio,
    straggler_churn,
)
from repro.baselines import make_balancer
from repro.core.loop import run_online
from repro.costs.timevarying import RandomAffineProcess


class TestImbalance:
    def test_equal_costs_zero(self):
        assert imbalance(np.full((3, 4), 2.0)) == pytest.approx([0.0] * 3)

    def test_known_value(self):
        result = imbalance(np.array([[1.0, 4.0]]))
        assert result[0] == pytest.approx(0.75)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            imbalance(np.array([1.0, 2.0]))


class TestJainFairness:
    def test_equal_is_one(self):
        assert jain_fairness(np.full(8, 3.0)) == pytest.approx(1.0)

    def test_one_hot_is_one_over_n(self):
        v = np.zeros(10)
        v[0] = 1.0
        assert jain_fairness(v) == pytest.approx(0.1)

    def test_rowwise(self):
        data = np.array([[1.0, 1.0], [1.0, 0.0]])
        result = jain_fairness(data, axis=1)
        assert result == pytest.approx([1.0, 0.5])


class TestGini:
    def test_equal_zero(self):
        assert gini(np.full(10, 0.1)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_near_one(self):
        v = np.zeros(100)
        v[0] = 1.0
        assert gini(v) > 0.95

    def test_all_zero_is_zero(self):
        assert gini(np.zeros(5)) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gini(np.array([-1.0, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            gini(np.array([]))


class TestFluctuationIndex:
    def test_constant_series_zero(self):
        assert fluctuation_index(np.full(10, 3.0)) == 0.0

    def test_oscillation_detected(self):
        calm = np.full(20, 1.0)
        wild = np.tile([1.0, 2.0], 10)
        assert fluctuation_index(wild) > fluctuation_index(calm)

    def test_skip_removes_transient(self):
        series = np.concatenate([[10.0, 1.0], np.full(18, 1.0)])
        assert fluctuation_index(series, skip=2) == 0.0

    def test_too_short(self):
        with pytest.raises(ValueError):
            fluctuation_index(np.array([1.0]))


class TestConvergenceRound:
    def test_immediately_converged(self):
        assert convergence_round(np.full(10, 5.0)) == 1

    def test_settles_midway(self):
        series = np.concatenate([np.linspace(10, 1, 10), np.full(10, 1.0)])
        assert 5 <= convergence_round(series, band=0.2) <= 11

    def test_never_settles(self):
        series = np.tile([1.0, 100.0], 10)
        assert convergence_round(series, band=0.1) == 21

    def test_best_reference(self):
        series = np.array([5.0, 1.0, 1.0, 1.0])
        assert convergence_round(series, band=0.2, reference="best") == 2

    def test_unknown_reference(self):
        with pytest.raises(ValueError):
            convergence_round(np.array([1.0]), reference="median")


class TestStragglerChurn:
    def test_stable(self):
        assert straggler_churn(np.full(10, 3)) == 0.0

    def test_alternating(self):
        assert straggler_churn(np.array([0, 1, 0, 1])) == 1.0

    def test_single_round(self):
        assert straggler_churn(np.array([2])) == 0.0


class TestOracleRatio:
    def test_optimal_play_is_one(self):
        v = np.array([1.0, 2.0])
        assert oracle_ratio(v, v) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            oracle_ratio(np.array([1.0]), np.array([1.0, 2.0]))

    def test_zero_oracle_rejected(self):
        with pytest.raises(ValueError):
            oracle_ratio(np.array([1.0]), np.array([0.0]))


@pytest.fixture(scope="module")
def runs():
    process = RandomAffineProcess([1, 2, 4, 8], sigma=0.15, seed=3)
    out = {}
    for name in ("EQU", "DOLBIE", "OPT"):
        kwargs = {"alpha_1": 0.05} if name == "DOLBIE" else {}
        out[name] = run_online(make_balancer(name, 4, **kwargs), process, 60)
    return out


class TestCompareRuns:
    def test_sorted_by_total_cost(self, runs):
        summaries = compare_runs(runs)
        totals = [s.total_cost for s in summaries]
        assert totals == sorted(totals)
        assert summaries[0].algorithm == "OPT"

    def test_oracle_ratio_of_opt_is_one(self, runs):
        summaries = {s.algorithm: s for s in compare_runs(runs)}
        assert summaries["OPT"].oracle_ratio == pytest.approx(1.0)
        assert summaries["EQU"].oracle_ratio > summaries["DOLBIE"].oracle_ratio

    def test_missing_oracle_yields_nan(self, runs):
        partial = {k: v for k, v in runs.items() if k != "OPT"}
        summaries = compare_runs(partial)
        assert all(np.isnan(s.oracle_ratio) for s in summaries)

    def test_mismatched_horizons_rejected(self, runs):
        process = RandomAffineProcess([1, 2, 4, 8], seed=3)
        other = run_online(make_balancer("EQU", 4), process, 10)
        with pytest.raises(ValueError):
            compare_runs({**runs, "short": other})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_runs({})

    def test_table_and_csv(self, runs, tmp_path):
        summaries = compare_runs(runs)
        table = comparison_table(summaries)
        assert "algorithm" in table and "DOLBIE" in table
        path = export_comparison_csv(summaries, tmp_path / "cmp.csv")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1 + len(summaries)
        assert lines[0].split(",") == list(AlgorithmSummary.HEADERS)

"""Unit tests for the synchronous training simulator."""

import numpy as np
import pytest

from repro.baselines.equal import EqualAssignment
from repro.core.dolbie import Dolbie
from repro.exceptions import ConfigurationError
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.trainer import SyncTrainer


@pytest.fixture()
def trainer():
    env = TrainingEnvironment("ResNet18", num_workers=6, global_batch=256, seed=0)
    return SyncTrainer(env)


class TestTrainingRun:
    def test_shapes(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=20)
        assert run.batch_fractions.shape == (20, 6)
        assert run.batch_sizes.shape == (20, 6)
        assert run.compute_time.shape == (20, 6)
        assert run.round_latency.shape == (20,)
        assert run.wall_clock.shape == (20,)
        assert run.accuracy.shape == (20,)

    def test_batch_sizes_sum_to_global_batch(self, trainer):
        run = trainer.train(Dolbie(6, alpha_1=0.01), rounds=30)
        assert (run.batch_sizes.sum(axis=1) == 256).all()

    def test_local_latency_is_compute_plus_comm(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=10)
        assert np.allclose(run.local_latency, run.compute_time + run.comm_time)

    def test_round_latency_is_max(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=10)
        assert np.allclose(run.round_latency, run.local_latency.max(axis=1))

    def test_waiting_time_is_barrier_gap(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=10)
        assert np.allclose(
            run.waiting_time, run.round_latency[:, None] - run.local_latency
        )
        assert (run.waiting_time >= -1e-12).all()

    def test_wall_clock_monotone_and_includes_overhead(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=15)
        assert (np.diff(run.wall_clock) > 0).all()
        assert run.wall_clock[-1] >= run.round_latency.sum()

    def test_wall_clock_without_overhead(self):
        env = TrainingEnvironment("ResNet18", num_workers=4, seed=0)
        trainer = SyncTrainer(env, include_overhead_in_wallclock=False)
        run = trainer.train(EqualAssignment(4), rounds=5)
        assert run.wall_clock[-1] == pytest.approx(run.round_latency.sum())

    def test_epochs_accounting(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=10)
        assert run.epochs[-1] == pytest.approx(10 * 256 / 50_000)

    def test_accuracy_increases_over_training(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=400)
        assert run.accuracy[-1] > run.accuracy[0]

    def test_time_to_accuracy(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=200)
        target = float(run.accuracy[100])
        t = run.time_to_accuracy(target)
        assert 0 < t <= run.wall_clock[100] + 1e-9

    def test_time_to_unreached_accuracy_is_inf(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=5)
        assert run.time_to_accuracy(0.999) == float("inf")

    def test_utilization_breakdown_keys(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=10)
        breakdown = run.utilization_breakdown()
        assert set(breakdown) == {"computation", "communication", "waiting"}
        assert all(v >= 0 for v in breakdown.values())

    def test_mean_utilization_in_unit_interval(self, trainer):
        run = trainer.train(EqualAssignment(6), rounds=10)
        assert 0.0 < run.mean_utilization() <= 1.0


class TestIntegerBatches:
    def test_integer_mode_quantizes_latency(self):
        env = TrainingEnvironment("ResNet18", num_workers=3, global_batch=10, seed=0)
        trainer = SyncTrainer(env, integer_batches=True)
        run = trainer.train(EqualAssignment(3), rounds=5)
        # 10 samples over 3 workers: two get 3, one gets 4 -> latencies use
        # the quantized counts, not the continuous 10/3.
        expected = run.batch_sizes[0] / 10.0 * 10.0 / np.array(
            [env.speed_at(i, 1) for i in range(3)]
        ) + np.array([env.comm_at(i, 1) for i in range(3)])
        assert np.allclose(run.local_latency[0], expected)


class TestValidation:
    def test_rounds_positive(self, trainer):
        with pytest.raises(ConfigurationError):
            trainer.train(EqualAssignment(6), rounds=0)

    def test_worker_count_must_match(self, trainer):
        with pytest.raises(ConfigurationError):
            trainer.train(EqualAssignment(5), rounds=5)

"""Unit tests for the adaptive-restart extension."""

import numpy as np
import pytest

from repro.core.dolbie import Dolbie
from repro.core.loop import run_online
from repro.core.restart import RestartDolbie
from repro.costs.affine import AffineLatencyCost
from repro.costs.timevarying import SwitchingProcess
from repro.exceptions import ConfigurationError
from repro.simplex.sampling import is_feasible


def _regime_process(switch_every=40):
    # Regime A: worker 2 slow; regime B: worker 0 slow — an abrupt swap.
    a = [AffineLatencyCost(1.0), AffineLatencyCost(1.0), AffineLatencyCost(8.0)]
    b = [AffineLatencyCost(8.0), AffineLatencyCost(1.0), AffineLatencyCost(1.0)]
    return SwitchingProcess(a, b, switch_every=switch_every)


class TestRestartBehaviour:
    def test_restart_fires_on_regime_change(self):
        balancer = RestartDolbie(3, restart_threshold=1.5, patience=2)
        run_online(balancer, _regime_process(), 120)
        assert len(balancer.restart_rounds) >= 1
        # The first restart happens shortly after the first switch.
        assert 40 <= balancer.restart_rounds[0] <= 60

    def test_no_restart_on_static_environment(self):
        from repro.costs.timevarying import StaticCostProcess

        costs = [AffineLatencyCost(1.0), AffineLatencyCost(2.0), AffineLatencyCost(4.0)]
        balancer = RestartDolbie(3)
        run_online(balancer, StaticCostProcess(costs), 150)
        assert balancer.restart_rounds == []

    def test_restart_raises_alpha(self):
        balancer = RestartDolbie(3, restart_threshold=1.5, patience=2)
        process = _regime_process()
        pre_alpha = None
        for t in range(1, 121):
            from repro.core.interface import make_feedback

            feedback = make_feedback(t, balancer.decide(), process.costs_at(t))
            if t == 40:
                pre_alpha = balancer.alpha
            balancer.update(feedback)
            if balancer.restart_rounds and balancer.restart_rounds[0] == t:
                assert balancer.alpha > pre_alpha
                break
        else:
            pytest.fail("restart never fired")

    def test_beats_plain_dolbie_under_regime_switching(self):
        process = _regime_process(switch_every=50)
        plain = run_online(Dolbie(3), process, 300)
        restarted = run_online(RestartDolbie(3), process, 300)
        assert restarted.total_cost < plain.total_cost

    def test_stays_feasible(self):
        process = _regime_process(switch_every=25)
        balancer = RestartDolbie(3, restart_threshold=1.3, patience=1, cooldown=5)
        result = run_online(balancer, process, 200)
        for t in range(200):
            assert is_feasible(result.allocations[t], atol=1e-8)

    def test_cooldown_limits_restart_rate(self):
        process = _regime_process(switch_every=10)
        balancer = RestartDolbie(3, restart_threshold=1.2, patience=1, cooldown=15)
        run_online(balancer, process, 200)
        rounds = balancer.restart_rounds
        assert all(b - a > 15 for a, b in zip(rounds, rounds[1:]))


class TestValidation:
    def test_threshold_must_exceed_one(self):
        with pytest.raises(ConfigurationError):
            RestartDolbie(3, restart_threshold=1.0)

    def test_patience_and_cooldown(self):
        with pytest.raises(ConfigurationError):
            RestartDolbie(3, patience=0)
        with pytest.raises(ConfigurationError):
            RestartDolbie(3, cooldown=-1)

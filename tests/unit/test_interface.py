"""Unit tests for the balancer interface and round feedback."""

import numpy as np
import pytest

from repro.core.interface import (
    OnlineLoadBalancer,
    RoundFeedback,
    identify_straggler,
    make_feedback,
)
from repro.costs.affine import AffineLatencyCost
from repro.exceptions import ConfigurationError, FeasibilityError
from repro.simplex.sampling import equal_split


class _Noop(OnlineLoadBalancer):
    name = "noop"

    def _update(self, feedback: RoundFeedback) -> None:
        pass


class _Broken(OnlineLoadBalancer):
    name = "broken"

    def _update(self, feedback: RoundFeedback) -> None:
        self._allocation = np.array([0.9, 0.9])


class TestIdentifyStraggler:
    def test_unique_maximum(self):
        assert identify_straggler(np.array([1.0, 3.0, 2.0])) == 1

    def test_tie_goes_to_lowest_index(self):
        assert identify_straggler(np.array([2.0, 3.0, 3.0])) == 1
        assert identify_straggler(np.array([3.0, 3.0, 3.0])) == 0


class TestMakeFeedback:
    def test_fields(self):
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(2.0)]
        fb = make_feedback(3, np.array([0.4, 0.6]), costs)
        assert fb.round_index == 3
        assert np.allclose(fb.local_costs, [0.4, 1.2])
        assert fb.global_cost == pytest.approx(1.2)
        assert fb.straggler == 1

    def test_allocation_is_copied(self):
        x = np.array([0.5, 0.5])
        fb = make_feedback(1, x, [AffineLatencyCost(1.0), AffineLatencyCost(1.0)])
        x[0] = 99.0
        assert fb.allocation[0] == 0.5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundFeedback(
                round_index=1,
                allocation=np.array([1.0]),
                costs=[AffineLatencyCost(1.0), AffineLatencyCost(1.0)],
                local_costs=np.array([1.0]),
                global_cost=1.0,
                straggler=0,
            )


class TestOnlineLoadBalancer:
    def test_defaults_to_equal_split(self):
        b = _Noop(5)
        assert np.allclose(b.allocation, equal_split(5))

    def test_allocation_property_returns_copy(self):
        b = _Noop(3)
        b.allocation[0] = 7.0
        assert b.allocation[0] == pytest.approx(1.0 / 3.0)

    def test_round_counter_advances(self):
        b = _Noop(2)
        fb = make_feedback(1, b.decide(), [AffineLatencyCost(1.0)] * 2)
        b.update(fb)
        assert b.round == 2

    def test_infeasible_update_raises(self):
        b = _Broken(2)
        fb = make_feedback(1, b.decide(), [AffineLatencyCost(1.0)] * 2)
        with pytest.raises(FeasibilityError):
            b.update(fb)

    def test_rejects_single_worker(self):
        with pytest.raises(ConfigurationError):
            _Noop(1)

    def test_rejects_infeasible_initial(self):
        with pytest.raises(FeasibilityError):
            _Noop(2, initial_allocation=np.array([0.9, 0.9]))

    def test_oracle_hook_not_implemented_by_default(self):
        with pytest.raises(NotImplementedError):
            _Noop(2).oracle_decide([AffineLatencyCost(1.0)] * 2)

    def test_repr(self):
        assert "N=2" in repr(_Noop(2))

"""Unit tests for the hierarchical aggregation overlay (``repro.net.aggtree``).

Structural contract: shards partition the sorted roster contiguously,
heads are lowest members, parent links form a ``branching``-ary heap
rooted at shard 0, and the whole overlay is a pure function of
``(participants, shard_size, branching)`` — the property that lets every
surviving peer rebuild the identical tree after a crash or rejoin with
no extra coordination.
"""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.net.aggtree import AggregationTree, default_shard_size, segment_reduce


class TestBuildStructure:
    def test_shards_partition_sorted_roster(self):
        tree = AggregationTree.build(range(10), shard_size=3)
        assert tree.shards == ((0, 1, 2), (3, 4, 5), (6, 7, 8), (9,))
        assert list(tree.heads) == [0, 3, 6, 9]
        assert tree.root == 0

    def test_unsorted_input_is_sorted(self):
        tree = AggregationTree.build([5, 1, 9, 3], shard_size=2)
        assert tree.participants == (1, 3, 5, 9)
        assert tree.shards == ((1, 3), (5, 9))

    def test_parent_links_form_kary_heap(self):
        tree = AggregationTree.build(range(30), shard_size=2, branching=3)
        assert int(tree.parent[0]) == -1
        for i in range(1, tree.num_shards):
            assert int(tree.parent[i]) == (i - 1) // 3
        # every non-root level's shard indices are contiguous and childs
        # per head never exceed the branching factor
        children = np.bincount(tree.parent[1:], minlength=tree.num_shards)
        assert children.max() <= 3

    def test_levels_cover_all_shards_once(self):
        tree = AggregationTree.build(range(50), shard_size=3, branching=2)
        seen = np.concatenate(tree.levels)
        assert sorted(seen.tolist()) == list(range(tree.num_shards))
        assert list(tree.levels[0]) == [0]
        assert tree.depth == len(tree.levels) - 1

    def test_default_shard_size_is_sqrtish(self):
        assert default_shard_size(100) == 10
        assert default_shard_size(2) == 2
        tree = AggregationTree.build(range(100))
        assert tree.shard_size == 10

    def test_member_arrays_are_consistent(self):
        tree = AggregationTree.build(range(11), shard_size=4)
        # members = everyone minus the heads, ascending
        heads = set(tree.heads.tolist())
        expected = [w for w in range(11) if w not in heads]
        assert tree.member_ids.tolist() == expected
        for w, h in zip(tree.member_ids, tree.member_head):
            assert w in tree.shards[tree.shard_of(int(h))]

    def test_rejects_duplicates_small_rosters_bad_params(self):
        with pytest.raises(ConfigurationError):
            AggregationTree.build([1, 1, 2])
        with pytest.raises(ConfigurationError):
            AggregationTree.build([7])
        with pytest.raises(ConfigurationError):
            AggregationTree.build(range(4), shard_size=1)
        with pytest.raises(ConfigurationError):
            AggregationTree.build(range(4), branching=1)


class TestDeterministicRebuild:
    """Crash -> rejoin correctness: the overlay after any roster change is
    whatever ``build`` yields on the new roster — full coverage, no
    duplicate assignment, identical on every peer."""

    def test_rebuild_is_deterministic(self):
        roster = [0, 2, 3, 5, 8, 11, 12, 17, 19]
        a = AggregationTree.build(roster, shard_size=3, branching=2)
        b = AggregationTree.build(list(reversed(roster)), shard_size=3, branching=2)
        assert a.shards == b.shards
        assert np.array_equal(a.parent, b.parent)

    def test_crash_then_rejoin_covers_roster_without_duplicates(self):
        roster = set(range(20))
        tree = AggregationTree.build(sorted(roster), shard_size=4)
        assert tree.validate(sorted(roster)) == []
        # crash two workers, one of them a head
        roster -= {0, 9}
        tree = AggregationTree.build(sorted(roster), shard_size=4)
        assert tree.validate(sorted(roster)) == []
        flat = [w for shard in tree.shards for w in shard]
        assert sorted(flat) == sorted(roster)
        # rejoin one
        roster |= {0}
        tree = AggregationTree.build(sorted(roster), shard_size=4)
        assert tree.validate(sorted(roster)) == []

    def test_validate_flags_wrong_roster(self):
        tree = AggregationTree.build(range(6), shard_size=2)
        assert any("roster" in p for p in tree.validate(range(7)))


class TestReductions:
    def test_reduce_max_min_match_flat_bitwise(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(0.5, 3.0, size=40)
        tree = AggregationTree.build(range(40), shard_size=5, branching=3)
        assert tree.reduce_max(values) == values.max()
        assert tree.reduce_min(values) == values.min()

    def test_reduce_argmax_breaks_ties_to_lowest_id(self):
        values = np.zeros(12)
        values[[3, 7, 9]] = 2.0  # three-way tie
        tree = AggregationTree.build(range(12), shard_size=3)
        assert tree.reduce_argmax(values) == 3

    def test_reduce_argmax_on_sparse_roster(self):
        values = np.zeros(30)
        values[21] = 5.0
        roster = [2, 5, 9, 13, 21, 27]
        tree = AggregationTree.build(roster, shard_size=2)
        assert tree.reduce_argmax(values) == 21

    def test_decision_sums_root_totals_everything(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(0.0, 0.1, size=25)
        tree = AggregationTree.build(range(25), shard_size=4)
        total = tree.tree_sum(values, exclude=6)
        expected = values.sum() - values[6]
        assert total == pytest.approx(expected, rel=1e-12)

    def test_decision_sums_subtree_invariant(self):
        # entry p == own shard partial + sum of direct children's entries
        rng = np.random.default_rng(3)
        values = rng.uniform(0.0, 1.0, size=18)
        tree = AggregationTree.build(range(18), shard_size=3, branching=2)
        sums = tree.decision_sums(values)
        for p in range(tree.num_shards):
            children = [
                i for i in range(tree.num_shards) if int(tree.parent[i]) == p
            ]
            own = sum(values[w] for w in tree.shards[p])
            assert sums[p] == pytest.approx(
                own + sum(float(sums[c]) for c in children), rel=1e-12
            )

    def test_decision_sums_accumulate_in_input_dtype(self):
        values = np.ones(10, dtype=np.float32)
        tree = AggregationTree.build(range(10), shard_size=3)
        assert tree.decision_sums(values).dtype == np.float32


class TestSegmentReduce:
    def test_basic_segments(self):
        values = np.array([1.0, 5.0, 2.0, 7.0, 3.0])
        offsets = np.array([0, 2])
        out = segment_reduce(np.maximum, values, offsets, -np.inf)
        assert out.tolist() == [5.0, 7.0]

    def test_empty_segments_yield_identity(self):
        values = np.array([4.0, 1.0])
        offsets = np.array([0, 2, 2])  # middle and last segments empty
        out = segment_reduce(np.maximum, values, offsets, -np.inf)
        assert out[0] == 4.0
        assert out[1] == -np.inf and out[2] == -np.inf

    def test_all_empty(self):
        out = segment_reduce(
            np.maximum, np.array([]), np.array([0, 0]), -np.inf
        )
        assert out.tolist() == [-np.inf, -np.inf]

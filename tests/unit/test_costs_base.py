"""Unit tests for repro.costs.base."""

import math

import pytest

from repro.costs.base import CallableCost, ConstantCost, compose_max
from repro.exceptions import CostFunctionError


class TestCallableCost:
    def test_evaluates_underlying_function(self):
        f = CallableCost(lambda x: 2.0 * x + 1.0)
        assert f(0.0) == 1.0
        assert f(0.5) == 2.0
        assert f(1.0) == 3.0

    def test_domain_violation_raises(self):
        f = CallableCost(lambda x: x)
        with pytest.raises(CostFunctionError):
            f(1.5)
        with pytest.raises(CostFunctionError):
            f(-0.5)

    def test_tiny_dust_is_clamped_not_raised(self):
        f = CallableCost(lambda x: x)
        assert f(-1e-15) == 0.0
        assert f(1.0 + 1e-15) == 1.0

    def test_custom_domain(self):
        f = CallableCost(lambda x: x, x_max=2.0)
        assert f(2.0) == 2.0

    def test_nonpositive_x_max_rejected(self):
        with pytest.raises(CostFunctionError):
            CallableCost(lambda x: x, x_max=0.0)

    def test_analytic_inverse_used(self):
        f = CallableCost(lambda x: x**2, inverse=lambda l: math.sqrt(l))
        assert f.max_acceptable(0.25) == pytest.approx(0.5)

    def test_repr_contains_label(self):
        assert "mylabel" in repr(CallableCost(lambda x: x, label="mylabel"))


class TestMaxAcceptable:
    def test_bisection_matches_analytic(self):
        analytic = CallableCost(lambda x: x**2, inverse=lambda l: math.sqrt(l))
        bisected = CallableCost(lambda x: x**2)
        for level in (0.01, 0.1, 0.5, 0.9):
            assert bisected.max_acceptable(level) == pytest.approx(
                analytic.max_acceptable(level), abs=1e-8
            )

    def test_level_below_floor_gives_zero(self):
        f = CallableCost(lambda x: x + 1.0)
        assert f.max_acceptable(0.5) == 0.0

    def test_level_above_ceiling_gives_x_max(self):
        f = CallableCost(lambda x: x)
        assert f.max_acceptable(2.0) == 1.0

    def test_result_never_exceeds_level(self):
        f = CallableCost(lambda x: math.exp(3 * x) - 1)
        for level in (0.1, 1.0, 5.0, 19.0):
            x = f.max_acceptable(level)
            assert f(x) <= level + 1e-9

    def test_flat_region_returns_supremum(self):
        # f is flat at 0.5 on [0.25, 0.75]: the sublevel set of 0.5 ends
        # where the function finally exceeds the level.
        def flat(x):
            if x < 0.25:
                return 2 * x
            if x <= 0.75:
                return 0.5
            return 0.5 + 2 * (x - 0.75)

        f = CallableCost(flat)
        assert f.max_acceptable(0.5) == pytest.approx(0.75, abs=1e-8)


class TestConstantCost:
    def test_value_is_constant(self):
        f = ConstantCost(3.0)
        assert f(0.0) == f(0.5) == f(1.0) == 3.0

    def test_level_inverse_full_or_empty(self):
        f = ConstantCost(3.0)
        assert f.max_acceptable(3.0) == 1.0
        assert f.max_acceptable(2.9) == 0.0

    def test_rejects_bad_constants(self):
        with pytest.raises(CostFunctionError):
            ConstantCost(-1.0)
        with pytest.raises(CostFunctionError):
            ConstantCost(float("nan"))

    def test_lipschitz_estimate_zero(self):
        assert ConstantCost(5.0).lipschitz_estimate() == 0.0


class TestLipschitzEstimate:
    def test_linear_function_exact(self):
        f = CallableCost(lambda x: 4.0 * x)
        assert f.lipschitz_estimate() == pytest.approx(4.0)

    def test_convex_function_max_slope_at_right(self):
        f = CallableCost(lambda x: x**2)
        assert f.lipschitz_estimate(samples=1000) == pytest.approx(2.0, rel=0.01)

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            CallableCost(lambda x: x).lipschitz_estimate(samples=1)


class TestIsIncreasing:
    def test_increasing_detected(self):
        assert CallableCost(lambda x: x**3).is_increasing()

    def test_decreasing_detected(self):
        assert not CallableCost(lambda x: -x).is_increasing()

    def test_constant_counts_as_increasing(self):
        assert ConstantCost(1.0).is_increasing()


class TestComposeMax:
    def test_pointwise_maximum(self):
        f = compose_max(
            CallableCost(lambda x: x), CallableCost(lambda x: 0.5 + 0.1 * x)
        )
        assert f(0.0) == 0.5
        assert f(1.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(CostFunctionError):
            compose_max()

    def test_domain_is_intersection(self):
        f = compose_max(
            CallableCost(lambda x: x, x_max=0.5), CallableCost(lambda x: x)
        )
        assert f.x_max == 0.5

"""Unit tests for the dynamic-regret machinery (§V)."""

import numpy as np
import pytest

from repro.costs.affine import AffineLatencyCost
from repro.costs.base import CallableCost
from repro.costs.timevarying import StaticCostProcess
from repro.exceptions import ConfigurationError
from repro.regret.bounds import lipschitz_over_rounds, theorem1_bound
from repro.regret.dynamic import (
    compute_comparators,
    dynamic_regret,
    path_length,
)


class TestPathLength:
    def test_static_comparators_zero(self):
        arr = np.tile(np.array([0.5, 0.5]), (10, 1))
        assert path_length(arr) == 0.0

    def test_known_value(self):
        arr = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        assert path_length(arr) == pytest.approx(2 * np.sqrt(2.0))

    def test_single_round(self):
        assert path_length(np.array([[0.5, 0.5]])) == 0.0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            path_length(np.array([0.5, 0.5]))


class TestDynamicRegret:
    def test_zero_for_optimal_play(self):
        values = np.array([1.0, 2.0, 3.0])
        assert dynamic_regret(values, values) == 0.0

    def test_positive_gap(self):
        assert dynamic_regret(np.array([2.0, 2.0]), np.array([1.0, 1.5])) == 1.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dynamic_regret(np.array([1.0]), np.array([1.0, 2.0]))


class TestComputeComparators:
    def test_static_process(self):
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(3.0)]
        trajectory = compute_comparators(StaticCostProcess(costs).horizon_costs(5))
        assert trajectory.values == pytest.approx([0.75] * 5, abs=1e-6)
        assert trajectory.path_length == pytest.approx(0.0, abs=1e-6)

    def test_shapes(self):
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(2.0)]
        trajectory = compute_comparators([costs, costs, costs])
        assert trajectory.allocations.shape == (3, 2)
        assert trajectory.values.shape == (3,)


class TestLipschitz:
    def test_exact_for_affine(self):
        rounds = [[AffineLatencyCost(2.0), AffineLatencyCost(5.0)]]
        assert lipschitz_over_rounds(rounds) == 5.0

    def test_estimate_for_generic(self):
        rounds = [[CallableCost(lambda x: x**2)]]
        assert lipschitz_over_rounds(rounds, samples=2000) == pytest.approx(2.0, rel=0.01)

    def test_max_over_rounds(self):
        rounds = [
            [AffineLatencyCost(1.0)],
            [AffineLatencyCost(9.0)],
        ]
        assert lipschitz_over_rounds(rounds) == 9.0


class TestTheorem1Bound:
    def test_formula(self):
        # T=4, L=1, alpha constant 0.5, P_T=0, N=2:
        # sum_t ((N-1)/2 + N*alpha)/2 = 4 * (0.5 + 1.0)/2 = 3
        # bound = sqrt(4 * (1/0.5 + 0 + 3)) = sqrt(20)
        bound = theorem1_bound(4, 1.0, [0.5] * 4, 0.0, 2)
        assert bound == pytest.approx(np.sqrt(20.0))

    def test_grows_with_path_length(self):
        a = theorem1_bound(10, 1.0, [0.1] * 10, 0.0, 3)
        b = theorem1_bound(10, 1.0, [0.1] * 10, 5.0, 3)
        assert b > a

    def test_degenerate_zero_alpha_is_infinite(self):
        assert theorem1_bound(3, 1.0, [0.1, 0.1, 0.0], 0.0, 3) == float("inf")

    def test_sublinear_in_workers(self):
        """The paper's claim: the bound grows sublinearly in N."""
        bounds = [
            theorem1_bound(100, 1.0, [0.01] * 100, 1.0, n) for n in (10, 40, 160)
        ]
        # Quadrupling N should far less than quadruple the bound.
        assert bounds[1] / bounds[0] < 3.0
        assert bounds[2] / bounds[1] < 3.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theorem1_bound(0, 1.0, [], 0.0, 2)
        with pytest.raises(ConfigurationError):
            theorem1_bound(2, -1.0, [0.1, 0.1], 0.0, 2)
        with pytest.raises(ConfigurationError):
            theorem1_bound(2, 1.0, [0.1], 0.0, 2)  # too few alphas
        with pytest.raises(ConfigurationError):
            theorem1_bound(2, 1.0, [0.1, 1.5], 0.0, 2)
        with pytest.raises(ConfigurationError):
            theorem1_bound(2, 1.0, [0.1, 0.1], -1.0, 2)

"""Unit tests for the STATIC baseline and the sparkline renderer."""

import numpy as np
import pytest

from repro.baselines.static_weighted import StaticWeighted
from repro.core.interface import make_feedback
from repro.core.loop import run_online
from repro.costs.affine import AffineLatencyCost
from repro.costs.timevarying import RandomAffineProcess, StaticCostProcess
from repro.exceptions import ConfigurationError
from repro.experiments.reporting import sparkline


class TestStaticWeighted:
    def test_defaults_to_equal_split(self):
        assert np.allclose(StaticWeighted(4).allocation, 0.25)

    def test_weights_normalized(self):
        b = StaticWeighted(3, weights=np.array([1.0, 2.0, 1.0]))
        assert np.allclose(b.allocation, [0.25, 0.5, 0.25])

    def test_never_moves(self):
        b = StaticWeighted(2, weights=np.array([3.0, 1.0]))
        fb = make_feedback(1, b.decide(), [AffineLatencyCost(1.0)] * 2)
        b.update(fb)
        assert np.allclose(b.allocation, [0.75, 0.25])

    def test_profiled_static_beats_equ_but_loses_to_dolbie_under_dynamics(self):
        from repro.baselines import make_balancer

        speeds = [1.0, 2.0, 4.0, 8.0]
        process = RandomAffineProcess(speeds, sigma=0.25, seed=4)
        static = run_online(
            StaticWeighted(4, weights=np.array(speeds)), process, 120
        )
        equ = run_online(make_balancer("EQU", 4), process, 120)
        dolbie = run_online(make_balancer("DOLBIE", 4, alpha_1=0.05), process, 120)
        assert static.total_cost < equ.total_cost
        assert dolbie.global_costs[60:].sum() < static.global_costs[60:].sum()

    def test_perfect_profile_is_optimal_for_static_linear_costs(self):
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(4.0)]
        static = StaticWeighted(2, weights=np.array([4.0, 1.0]))
        result = run_online(static, StaticCostProcess(costs), 10)
        assert result.global_costs[0] == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StaticWeighted(2, weights=np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ConfigurationError):
            StaticWeighted(2, weights=np.array([0.0, 0.0]))
        with pytest.raises(ConfigurationError):
            StaticWeighted(2, weights=np.array([-1.0, 2.0]))


class TestSparkline:
    def test_constant_series_flat(self):
        line = sparkline([5.0] * 10)
        assert len(set(line)) == 1
        assert len(line) == 10

    def test_monotone_series_monotone_blocks(self):
        line = sparkline(list(range(8)), width=8)
        assert line == "▁▂▃▄▅▆▇█"

    def test_resampled_to_width(self):
        assert len(sparkline(list(range(1000)), width=40)) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 2.0], width=60)) == 2

    def test_extremes_hit_first_and_last_level(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁" and line[-1] == "█"

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline([])
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)

"""Unit tests for DOLBIE's step-size rule (Eqs. 7-8)."""

import numpy as np
import pytest

from repro.core.step_size import StepSizeRule, feasibility_cap, initial_step_size
from repro.exceptions import ConfigurationError


class TestFeasibilityCap:
    def test_formula(self):
        # x_s / (N - 2 + x_s) with N=30, x_s=1/30.
        cap = feasibility_cap(1.0 / 30.0, 30)
        assert cap == pytest.approx((1.0 / 30.0) / (28.0 + 1.0 / 30.0))

    def test_two_workers_full_step(self):
        assert feasibility_cap(0.5, 2) == 1.0
        assert feasibility_cap(1e-9, 2) == 1.0

    def test_zero_workload_freezes(self):
        assert feasibility_cap(0.0, 30) == 0.0
        assert feasibility_cap(0.0, 2) == 0.0

    def test_monotone_in_workload(self):
        caps = [feasibility_cap(x, 10) for x in (0.01, 0.1, 0.5, 1.0)]
        assert caps == sorted(caps)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            feasibility_cap(0.5, 1)
        with pytest.raises(ConfigurationError):
            feasibility_cap(-0.1, 5)


class TestInitialStepSize:
    def test_paper_formula(self):
        x = np.array([0.25, 0.25, 0.25, 0.25])
        assert initial_step_size(x) == pytest.approx(0.25 / 2.25)

    def test_uses_minimum_entry(self):
        x = np.array([0.7, 0.1, 0.2])
        assert initial_step_size(x) == pytest.approx(0.1 / 1.1)

    def test_n30_equal_split_near_paper_alpha(self):
        """The paper's explicit alpha_1 = 0.001 is just below the rule's
        value for the N=30 equal split — the rule is consistent with it."""
        x = np.full(30, 1.0 / 30.0)
        assert 0.001 < initial_step_size(x) < 0.0013


class TestStepSizeRule:
    def test_explicit_alpha(self):
        rule = StepSizeRule(5, alpha_1=0.01)
        assert rule.alpha == 0.01

    def test_derived_alpha(self):
        rule = StepSizeRule(4, initial_allocation=np.full(4, 0.25))
        assert rule.alpha == pytest.approx(0.25 / 2.25)

    def test_requires_some_initializer(self):
        with pytest.raises(ConfigurationError):
            StepSizeRule(4)

    def test_alpha_out_of_range(self):
        with pytest.raises(ConfigurationError):
            StepSizeRule(4, alpha_1=1.5)

    def test_advance_is_non_increasing(self):
        rule = StepSizeRule(10, alpha_1=0.5)
        values = [rule.advance(x) for x in (0.9, 0.05, 0.5, 0.01, 0.8)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_advance_applies_cap(self):
        rule = StepSizeRule(10, alpha_1=0.5)
        rule.advance(0.08)
        assert rule.alpha == pytest.approx(feasibility_cap(0.08, 10))

    def test_history_records_all_steps(self):
        rule = StepSizeRule(10, alpha_1=0.5)
        rule.advance(0.5)
        rule.advance(0.1)
        assert len(rule.history) == 3
        assert rule.history[0] == 0.5

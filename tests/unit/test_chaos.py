"""Unit tests for the chaos layer: schedules, injector, invariants."""

import json

import numpy as np
import pytest

from repro.chaos import (
    FAULT_KINDS,
    ChaosInjector,
    FaultEvent,
    FaultSchedule,
    RoundObservation,
    assert_round_invariants,
    check_round_invariants,
    load_schedule,
    run_soak,
)
from repro.chaos.faults import _topology_by_name
from repro.costs.timevarying import RandomAffineProcess
from repro.exceptions import ConfigurationError, InvariantViolation
from repro.net.links import ConstantLatency, Link
from repro.net.topology import Topology, connected_components
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie

LINK = lambda: Link(ConstantLatency(0.001))  # noqa: E731


def _process(n=6, seed=0):
    return RandomAffineProcess(speeds=np.linspace(1.0, 2.0, n), seed=seed)


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultEvent(1, "meteor")

    def test_rounds_are_one_based(self):
        with pytest.raises(ConfigurationError, match="1-based"):
            FaultEvent(0, "heal")

    def test_crash_needs_workers(self):
        with pytest.raises(ConfigurationError, match="target workers"):
            FaultEvent(1, "crash")

    def test_partition_needs_groups(self):
        with pytest.raises(ConfigurationError, match="needs groups"):
            FaultEvent(1, "partition")

    def test_degrade_severity_is_a_probability(self):
        with pytest.raises(ConfigurationError, match="drop probability"):
            FaultEvent(1, "degrade", severity=1.5)
        with pytest.raises(ConfigurationError, match="severity > 0"):
            FaultEvent(1, "slowdown", workers=(0,))

    def test_dict_roundtrip(self):
        for event in (
            FaultEvent(3, "crash", workers=(1, 2)),
            FaultEvent(5, "partition", groups=((0, 1), (4,))),
            FaultEvent(7, "slowdown", workers=(0,), duration=2, severity=0.01),
            FaultEvent(9, "degrade", duration=3, severity=0.2),
        ):
            assert FaultEvent.from_dict(event.to_dict()) == event

    def test_unknown_fields_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault-event"):
            FaultEvent.from_dict({"round": 1, "kind": "heal", "oops": 1})


class TestFaultSchedule:
    def test_events_sorted_and_indexed_by_round(self):
        schedule = FaultSchedule.scripted([
            FaultEvent(9, "heal"),
            FaultEvent(2, "crash", workers=(0,)),
            FaultEvent(2, "degrade", severity=0.1),
        ])
        assert [e.round_index for e in schedule] == [2, 2, 9]
        assert len(schedule.events_at(2)) == 2
        assert schedule.events_at(5) == []
        assert schedule.horizon == 9

    def test_random_same_seed_is_identical(self):
        a = FaultSchedule.random(8, 200, seed=3)
        b = FaultSchedule.random(8, 200, seed=3)
        assert a.events == b.events
        c = FaultSchedule.random(8, 200, seed=4)
        assert a.events != c.events

    def test_random_produces_the_full_vocabulary(self):
        schedule = FaultSchedule.random(
            10, 600, seed=1, crash_rate=0.05, partition_rate=0.04
        )
        counts = schedule.counts()
        assert set(counts) == set(FAULT_KINDS)
        for kind in FAULT_KINDS:
            assert counts[kind] > 0, kind

    def test_random_crashes_are_paired_with_rejoins(self):
        schedule = FaultSchedule.random(8, 300, seed=5, crash_rate=0.08)
        crashes = [e for e in schedule if e.kind == "crash"]
        rejoins = [e for e in schedule if e.kind == "rejoin"]
        assert crashes and len(rejoins) >= len(crashes) - 3  # tail may be cut
        assert all(e.round_index > c.round_index for c, e in zip(crashes, rejoins))

    def test_random_respects_the_quorum_floor(self):
        # Replay the generator's own bookkeeping: at no point may the
        # primary component of (alive, un-islanded) workers go below 3.
        topology = Topology.ring(6)
        schedule = FaultSchedule.random(
            6, 400, seed=9, topology=topology,
            crash_rate=0.15, partition_rate=0.1, min_active=3,
        )
        dead, island = set(), set()
        for event in schedule:
            if event.kind == "crash":
                dead.update(event.workers)
            elif event.kind == "rejoin":
                dead.difference_update(event.workers)
            elif event.kind == "partition":
                island = set(event.groups[0])
            elif event.kind == "heal":
                island = set()
            alive = set(range(6)) - dead
            components = connected_components(
                alive,
                lambda i: [
                    j for j in topology.neighbors(i)
                    if j in alive and (i in island) == (j in island)
                ],
            )
            assert max((len(c) for c in components), default=0) >= 3

    def test_random_needs_three_workers(self):
        with pytest.raises(ConfigurationError, match=">= 3 workers"):
            FaultSchedule.random(2, 10, seed=0)

    def test_spec_roundtrip_scripted(self):
        schedule = FaultSchedule.scripted([
            FaultEvent(1, "crash", workers=(2,)),
            FaultEvent(4, "rejoin", workers=(2,)),
        ])
        again = FaultSchedule.from_spec(json.loads(schedule.to_json()))
        assert again.events == schedule.events

    def test_spec_random_block_regenerates(self):
        spec = {"random": {"num_workers": 6, "horizon": 50, "seed": 2,
                           "topology": "ring", "crash_rate": 0.05}}
        a = FaultSchedule.from_spec(spec)
        b = FaultSchedule.from_spec(spec)
        assert a.events == b.events and a.seed == 2

    def test_spec_requires_events_or_random(self):
        with pytest.raises(ConfigurationError, match="'events' list"):
            FaultSchedule.from_spec({})

    def test_load_schedule_json(self, tmp_path):
        path = tmp_path / "faults.json"
        schedule = FaultSchedule.scripted([FaultEvent(2, "heal")])
        path.write_text(schedule.to_json())
        assert load_schedule(path).events == schedule.events

    def test_load_schedule_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "faults.yaml"
        path.write_text(yaml.safe_dump(
            {"events": [{"round": 3, "kind": "crash", "workers": [1]}]}
        ))
        schedule = load_schedule(path)
        assert schedule.events == (FaultEvent(3, "crash", workers=(1,)),)

    def test_topology_names(self):
        assert _topology_by_name("complete", 5) is None
        assert _topology_by_name("ring", 5).num_edges == 5
        with pytest.raises(ConfigurationError, match="unknown topology"):
            _topology_by_name("torus", 5)


class TestChaosInjector:
    def test_rejects_protocols_without_recovery_api(self):
        class Bare:
            pass

        with pytest.raises(ConfigurationError, match="cannot be chaos-injected"):
            ChaosInjector(Bare(), FaultSchedule.scripted([]))

    def test_crash_and_rejoin_applied_once(self):
        protocol = MasterWorkerDolbie(4, link=LINK())
        schedule = FaultSchedule.scripted([
            FaultEvent(2, "crash", workers=(1,)),
            FaultEvent(3, "crash", workers=(1,)),  # already dead: skipped
            FaultEvent(4, "rejoin", workers=(1,)),
        ])
        injector = ChaosInjector(protocol, schedule)
        process = _process(4)
        for t in range(1, 5):
            injector.apply(t)
            protocol.run_round(t, process.costs_at(t))
        assert [e.kind for e in injector.applied] == ["crash", "rejoin"]
        assert protocol.roster == [0, 1, 2, 3]
        # The registry-backed tallies agree with the applied-event log
        # (they replaced the ad-hoc counters SoakReport used to rebuild).
        assert injector.events_applied == len(injector.applied)
        assert injector.event_counts == {"crash": 1, "rejoin": 1}

    def test_registry_tallies_match_applied_log(self):
        protocol = MasterWorkerDolbie(4, link=LINK())
        schedule = FaultSchedule.scripted([
            FaultEvent(1, "slowdown", workers=(2,), duration=1, severity=0.01),
            FaultEvent(2, "degrade", duration=1, severity=0.1),
            FaultEvent(2, "partition", groups=((2, 3),)),
            FaultEvent(3, "heal"),
            FaultEvent(3, "crash", workers=(0,)),
        ])
        injector = ChaosInjector(protocol, schedule)
        process = _process(4)
        for t in range(1, 4):
            injector.apply(t)
            protocol.run_round(t, process.costs_at(t))
        from collections import Counter as TallyCounter

        expected = dict(TallyCounter(e.kind for e in injector.applied))
        assert injector.event_counts == expected
        assert injector.events_applied == len(injector.applied)

    def test_slowdown_expires_and_restores_delay(self):
        protocol = MasterWorkerDolbie(4, link=LINK())
        schedule = FaultSchedule.scripted([
            FaultEvent(1, "slowdown", workers=(2,), duration=2, severity=0.01),
        ])
        injector = ChaosInjector(protocol, schedule)
        injector.apply(1)
        assert protocol.cluster._extra_delay[2] == pytest.approx(0.01)
        injector.apply(2)
        assert 2 in protocol.cluster._extra_delay
        injector.apply(3)  # duration 2 => expires at round 1 + 2
        assert 2 not in protocol.cluster._extra_delay

    def test_degrade_expires_and_clears_loss(self):
        protocol = MasterWorkerDolbie(4, link=LINK())
        schedule = FaultSchedule.scripted([
            FaultEvent(1, "degrade", duration=1, severity=0.2),
        ])
        injector = ChaosInjector(protocol, schedule)
        injector.apply(1)
        assert protocol.cluster._loss_override is not None
        injector.apply(2)
        assert protocol.cluster._loss_override is None

    def test_heal_rejoins_partitioned_mw_workers(self):
        protocol = MasterWorkerDolbie(4, link=LINK(), cost_timeout=0.05)
        schedule = FaultSchedule.scripted([
            FaultEvent(2, "partition", groups=((2, 3),)),
            FaultEvent(4, "heal"),
        ])
        injector = ChaosInjector(protocol, schedule)
        process = _process(4)
        for t in range(1, 5):
            injector.apply(t)
            protocol.run_round(t, process.costs_at(t))
        assert not protocol.cluster.partitioned
        assert protocol.roster == [0, 1, 2, 3]  # zombies re-admitted
        assert protocol.allocation.sum() == pytest.approx(1.0)


class TestInvariantChecker:
    def _clean_round(self):
        protocol = FullyDistributedDolbie(4, link=LINK())
        process = _process(4)
        observation = RoundObservation(protocol)
        _, local, global_cost, straggler = protocol.run_round(
            1, process.costs_at(1)
        )
        return protocol, observation, local, global_cost, straggler

    def test_healthy_round_has_no_violations(self):
        protocol, obs, local, global_cost, straggler = self._clean_round()
        assert check_round_invariants(
            protocol, obs, 1, local, global_cost, straggler
        ) == []

    def test_corrupted_allocation_is_caught(self):
        protocol, obs, local, global_cost, straggler = self._clean_round()
        protocol.peers[0].x += 0.25  # break the simplex
        violations = check_round_invariants(
            protocol, obs, 1, local, global_cost, straggler
        )
        assert any("sums to" in v for v in violations)

    def test_roster_disagreement_is_caught(self):
        protocol, obs, local, global_cost, straggler = self._clean_round()
        # Rosters are shared frozensets (rebound, never mutated), so the
        # corruption must rebind this peer's reference.
        protocol.peers[2].roster = protocol.peers[2].roster - {0}
        violations = check_round_invariants(
            protocol, obs, 1, local, global_cost, straggler
        )
        assert any("roster" in v for v in violations)

    def test_stuck_clock_is_caught(self):
        protocol, obs, local, global_cost, straggler = self._clean_round()
        stale = RoundObservation(protocol)  # post-round snapshot: no delta
        violations = check_round_invariants(
            protocol, stale, 2, local, global_cost, straggler
        )
        assert any("no events" in v for v in violations)

    def test_assert_raises_invariant_violation(self):
        protocol, obs, local, global_cost, straggler = self._clean_round()
        protocol.peers[0].x += 0.25
        with pytest.raises(InvariantViolation):
            assert_round_invariants(
                protocol, obs, 1, local, global_cost, straggler
            )


class TestSoakHarness:
    def test_soak_records_protocol_failure_as_violation(self):
        # Crashing the star center leaves no quorum: the soak must stop
        # and report, not hang or propagate.
        schedule = FaultSchedule.scripted([
            FaultEvent(3, "crash", workers=(0,)),
        ])
        report = run_soak(
            lambda: FullyDistributedDolbie(
                4, link=LINK(), topology=Topology.star(4)
            ),
            schedule, _process(4), 5,
        )
        assert not report.ok
        assert report.rounds_completed == 2
        assert any("primary component" in msg for _, msg in report.violations)

    def test_soak_raise_on_violation(self):
        schedule = FaultSchedule.scripted([
            FaultEvent(3, "crash", workers=(0,)),
        ])
        with pytest.raises(Exception, match="primary component"):
            run_soak(
                lambda: FullyDistributedDolbie(
                    4, link=LINK(), topology=Topology.star(4)
                ),
                schedule, _process(4), 5, raise_on_violation=True,
            )

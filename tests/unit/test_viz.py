"""Unit tests for the SVG chart renderer and figure pipeline."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.viz.svg import LineChart, StackedBarChart, _nice_ticks


def _parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 10.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 10.0
        assert len(ticks) >= 3

    def test_small_range(self):
        ticks = _nice_ticks(0.001, 0.0025)
        assert all(0.001 <= t <= 0.0025 for t in ticks)

    def test_degenerate_range(self):
        assert _nice_ticks(5.0, 5.0)  # must not raise or loop forever


class TestLineChart:
    def _chart(self, log_y=False):
        chart = LineChart("t", "x", "y", log_y=log_y)
        chart.add_series("a", [1, 2, 3], [1.0, 2.0, 4.0])
        chart.add_series("b", [1, 2, 3], [4.0, 2.0, 1.0],
                         band=([3.5, 1.5, 0.5], [4.5, 2.5, 1.5]))
        return chart

    def test_renders_valid_xml(self):
        root = _parse(self._chart().render())
        assert root.tag.endswith("svg")

    def test_contains_series_and_legend(self):
        svg = self._chart().render()
        assert svg.count("<polyline") == 2
        assert ">a</text>" in svg and ">b</text>" in svg

    def test_band_rendered_as_polygon(self):
        assert "<polygon" in self._chart().render()

    def test_log_scale(self):
        svg = self._chart(log_y=True).render()
        _parse(svg)  # still valid

    def test_log_scale_rejects_nonpositive(self):
        chart = LineChart("t", "x", "y", log_y=True)
        with pytest.raises(ConfigurationError):
            chart.add_series("a", [1, 2], [0.0, 1.0])

    def test_save(self, tmp_path):
        path = self._chart().save(tmp_path / "chart.svg")
        assert path.exists()
        _parse(path.read_text())

    def test_validation(self):
        chart = LineChart("t", "x", "y")
        with pytest.raises(ConfigurationError):
            chart.add_series("a", [1], [1.0])
        with pytest.raises(ConfigurationError):
            chart.add_series("a", [1, 2], [1.0, 2.0], band=([1.0], [2.0]))
        with pytest.raises(ConfigurationError):
            chart.render()  # no series

    def test_numpy_inputs_accepted(self):
        chart = LineChart("t", "x", "y")
        chart.add_series("a", np.arange(5), np.linspace(0, 1, 5))
        _parse(chart.render())


class TestStackedBarChart:
    def _chart(self):
        chart = StackedBarChart("t", "ms", ["compute", "comm", "wait"])
        chart.add_bar("EQU", [1.0, 0.5, 3.0])
        chart.add_bar("DOLBIE", [1.0, 0.5, 0.2])
        return chart

    def test_valid_xml_with_bars(self):
        svg = self._chart().render()
        _parse(svg)
        # 2 bars x 3 segments + 3 legend swatches + background.
        assert svg.count("<rect") == 2 * 3 + 3 + 1

    def test_validation(self):
        chart = StackedBarChart("t", "ms", ["a", "b"])
        with pytest.raises(ConfigurationError):
            chart.add_bar("x", [1.0])
        with pytest.raises(ConfigurationError):
            chart.add_bar("x", [1.0, -1.0])
        with pytest.raises(ConfigurationError):
            chart.render()


class TestFigurePipeline:
    def test_render_selected_figures(self, tmp_path):
        from repro.experiments.config import QUICK
        from repro.viz.figures import render_all

        paths = render_all(tmp_path, QUICK, only=["fig3", "fig11"])
        assert len(paths) == 2
        for path in paths:
            assert path.suffix == ".svg"
            _parse(path.read_text())

    def test_unknown_figure(self, tmp_path):
        from repro.experiments.config import QUICK
        from repro.viz.figures import render_all

        with pytest.raises(KeyError):
            render_all(tmp_path, QUICK, only=["fig99"])


class TestRemainingFigureRenderers:
    def test_fig4_and_fig5_render(self, tmp_path):
        from dataclasses import replace

        from repro.experiments.config import QUICK
        from repro.viz.figures import render_all

        tiny = replace(QUICK, realizations=2, rounds=30)
        paths = render_all(tmp_path, tiny, only=["fig4", "fig5"])
        for path in paths:
            _parse(path.read_text())

    def test_fig7_renders(self, tmp_path):
        from dataclasses import replace

        from repro.experiments.config import QUICK
        from repro.viz.figures import render_all

        tiny = replace(QUICK, accuracy_rounds=300, accuracy_target=0.15)
        (path,) = render_all(tmp_path, tiny, only=["fig7"])
        _parse(path.read_text())

"""Unit tests for the EG extension baseline and the CLI."""

import numpy as np
import pytest

from repro.baselines.expgrad import ExponentiatedGradient
from repro.cli import EXPERIMENTS, build_parser, main
from repro.core.interface import make_feedback
from repro.core.loop import run_online
from repro.costs.affine import AffineLatencyCost
from repro.costs.timevarying import RandomAffineProcess, StaticCostProcess
from repro.exceptions import ConfigurationError
from repro.simplex.sampling import is_feasible


class TestExponentiatedGradient:
    def test_down_weights_expensive_workers(self):
        b = ExponentiatedGradient(2, eta=1.0)
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(4.0)]
        feedback = make_feedback(1, b.decide(), costs)
        b.update(feedback)
        x = b.allocation
        assert x[0] > 0.5 > x[1]
        assert is_feasible(x)

    def test_floor_prevents_starvation(self):
        b = ExponentiatedGradient(2, eta=5.0, floor=1e-4)
        costs = [AffineLatencyCost(0.01), AffineLatencyCost(100.0)]
        process = StaticCostProcess(costs)
        result = run_online(b, process, 50)
        assert result.allocations[-1].min() > 0

    def test_improves_over_equal_split(self):
        process = RandomAffineProcess([1, 2, 4, 8], sigma=0.1, seed=0)
        result = run_online(ExponentiatedGradient(4, eta=0.5), process, 100)
        assert result.global_costs[-10:].mean() < 0.7 * result.global_costs[0]

    def test_feasible_always(self):
        process = RandomAffineProcess([1, 5, 25], sigma=0.4, seed=2)
        result = run_online(ExponentiatedGradient(3, eta=2.0), process, 80)
        for t in range(80):
            assert is_feasible(result.allocations[t], atol=1e-8)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExponentiatedGradient(3, eta=0.0)
        with pytest.raises(ConfigurationError):
            ExponentiatedGradient(3, floor=0.5)


class TestCli:
    def test_parser_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "fig99"])

    def test_experiment_registry_covers_all_figures(self):
        assert {"fig3", "fig4", "fig5", "fig6to8", "fig9", "fig10", "fig11",
                "complexity", "regret", "ablations", "edge", "sensitivity",
                "resilience", "aggregation", "serving"} == set(EXPERIMENTS)

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "DOLBIE" in out and "fig3" in out

    def test_compare_command(self, capsys, tmp_path):
        csv_path = tmp_path / "cmp.csv"
        code = main(
            [
                "compare",
                "--model", "ResNet18",
                "--workers", "6",
                "--rounds", "20",
                "--algorithms", "EQU", "DOLBIE",
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DOLBIE" in out
        assert csv_path.exists()

    def test_experiment_command_quick(self, capsys):
        assert main(["experiment", "complexity", "--scale", "quick"]) == 0
        out = capsys.readouterr().out
        assert "per-round communication" in out

    def test_figures_command(self, tmp_path, capsys):
        code = main(
            ["figures", "--out", str(tmp_path), "--scale", "quick",
             "--only", "fig3"]
        )
        assert code == 0
        assert (tmp_path / "fig3_per_round_latency.svg").exists()

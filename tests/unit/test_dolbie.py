"""Unit tests for the DOLBIE algorithm (update rules 5-7)."""

import numpy as np
import pytest

from repro.core.dolbie import Dolbie
from repro.core.interface import make_feedback
from repro.core.loop import run_online
from repro.costs.affine import AffineLatencyCost
from repro.costs.base import ConstantCost
from repro.costs.timevarying import RandomAffineProcess, StaticCostProcess
from repro.exceptions import ConfigurationError, FeasibilityError, ReproError
from repro.simplex.sampling import is_feasible


def _one_round(balancer, costs):
    feedback = make_feedback(balancer.round, balancer.decide(), costs)
    balancer.update(feedback)
    return feedback


class TestHandComputedUpdate:
    def test_two_worker_update(self):
        """Hand-check Eqs. (5)-(6) on f1 = x, f2 = 4x, x = (0.5, 0.5)."""
        balancer = Dolbie(2, alpha_1=0.1)
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(4.0)]
        _one_round(balancer, costs)
        # l = 2.0, straggler = worker 1. x'_0 = min(2.0 / 1.0, 1) = 1.
        # x_0' = 0.5 + 0.1 * (1 - 0.5) = 0.55; x_1 = 1 - 0.55 = 0.45.
        assert balancer.allocation == pytest.approx([0.55, 0.45])

    def test_step_size_updated_by_eq7(self):
        balancer = Dolbie(2, alpha_1=0.1)
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(4.0)]
        _one_round(balancer, costs)
        # N=2: cap = x_s / x_s = 1, so alpha stays 0.1.
        assert balancer.alpha == pytest.approx(0.1)

    def test_three_worker_update(self):
        balancer = Dolbie(3, alpha_1=0.3)
        costs = [
            AffineLatencyCost(1.0),
            AffineLatencyCost(2.0),
            AffineLatencyCost(6.0),
        ]
        _one_round(balancer, costs)
        # x = 1/3 each; l = 2.0 (worker 2). x'_0 = 1 (clamp), x'_1 = 1.
        # x_0 = 1/3 + 0.3*(1 - 1/3) = 0.5333..., same x_1.
        # x_2 = 1 - 2 * 0.53333 = -0.0666 -> the exact guard caps alpha at
        # x_s / sum(gaps) = (1/3) / (4/3) = 0.25.
        x = balancer.allocation
        assert x[0] == pytest.approx(1.0 / 3.0 + 0.25 * (2.0 / 3.0))
        assert x[2] == pytest.approx(0.0, abs=1e-12)

    def test_straggler_never_gains(self):
        balancer = Dolbie(3, alpha_1=0.2)
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(1.5), AffineLatencyCost(9.0)]
        before = balancer.allocation[2]
        _one_round(balancer, costs)
        assert balancer.allocation[2] <= before


class TestFeasibilityByDesign:
    @pytest.mark.parametrize("seed", range(4))
    def test_long_run_stays_on_simplex(self, seed):
        process = RandomAffineProcess(
            speeds=[1, 3, 9, 27], sigma=0.4, comm_scale=0.2, seed=seed
        )
        balancer = Dolbie(4, alpha_1=0.3)
        result = run_online(balancer, process, 200)
        for t in range(200):
            assert is_feasible(result.allocations[t], atol=1e-7)

    def test_exact_guard_handles_oversized_alpha(self):
        """The verbatim Eq. (7) schedule is only safe when alpha_1 respects
        the paper's initialization rule (alpha_1 <= cap(min_i x_{i,1})).
        With a user-chosen larger alpha_1 and a tiny-workload straggler,
        the exact per-round guard must keep the update feasible."""
        balancer = Dolbie(
            3,
            initial_allocation=np.array([0.45, 0.45, 0.10]),
            alpha_1=0.9,
            exact_feasibility_guard=True,
        )
        _one_round(
            balancer,
            [AffineLatencyCost(0.1), AffineLatencyCost(0.1), ConstantCost(50.0)],
        )
        assert is_feasible(balancer.allocation, atol=1e-9)
        assert balancer.allocation[2] == pytest.approx(0.0, abs=1e-12)

    def test_verbatim_mode_raises_instead_of_silently_violating(self):
        balancer = Dolbie(
            3,
            initial_allocation=np.array([0.45, 0.45, 0.10]),
            alpha_1=0.9,
            exact_feasibility_guard=False,
        )
        # The violation surfaces either as a FeasibilityError (allocation
        # check) or a ConfigurationError (negative workload hits Eq. 7);
        # both derive from ReproError and both are loud.
        with pytest.raises(ReproError):
            _one_round(
                balancer,
                [AffineLatencyCost(0.1), AffineLatencyCost(0.1), ConstantCost(50.0)],
            )

    def test_verbatim_mode_safe_under_paper_initialization(self):
        """With alpha_1 from the paper's rule, Eq. (7) alone keeps every
        round feasible: a straggler's workload only grows between its own
        straggling turns, so the historical cap is always conservative."""
        process = RandomAffineProcess(
            speeds=[1, 3, 9, 27], sigma=0.5, comm_scale=0.3, seed=9
        )
        balancer = Dolbie(4, exact_feasibility_guard=False)  # derived alpha_1
        result = run_online(balancer, process, 300)
        for t in range(300):
            assert is_feasible(result.allocations[t], atol=1e-7)


class TestAlphaSchedule:
    def test_alpha_history_non_increasing(self):
        process = RandomAffineProcess([1, 2, 4, 8], sigma=0.3, seed=0)
        balancer = Dolbie(4, alpha_1=0.2)
        run_online(balancer, process, 100)
        history = balancer.alpha_history
        assert len(history) == 101
        assert all(b <= a + 1e-15 for a, b in zip(history, history[1:]))

    def test_default_alpha_from_paper_rule(self):
        balancer = Dolbie(4)  # equal split 0.25
        assert balancer.alpha == pytest.approx(0.25 / 2.25)


class TestConvergence:
    def test_static_costs_converge_to_balance(self):
        costs = [AffineLatencyCost(1.0), AffineLatencyCost(2.0), AffineLatencyCost(4.0)]
        process = StaticCostProcess(costs)
        balancer = Dolbie(3, alpha_1=0.3)
        result = run_online(balancer, process, 300)
        # Optimal equalized level: 1/x1 = ... -> x ~ (4/7, 2/7, 1/7), l* = 4/7.
        assert result.global_costs[-1] == pytest.approx(4.0 / 7.0, rel=0.05)

    def test_improves_over_equal_split(self):
        process = RandomAffineProcess([1, 2, 4, 8, 16], sigma=0.1, seed=1)
        balancer = Dolbie(5, alpha_1=0.1)
        result = run_online(balancer, process, 150)
        assert result.global_costs[-20:].mean() < 0.65 * result.global_costs[0]


class TestHistoryRecording:
    def test_history_only_when_enabled(self):
        process = RandomAffineProcess([1, 2], seed=0)
        on = Dolbie(2, alpha_1=0.1, record_history=True)
        off = Dolbie(2, alpha_1=0.1, record_history=False)
        run_online(on, process, 10)
        run_online(off, process, 10)
        assert len(on.x_prime_history) == 10
        assert len(on.assistance_history) == 10
        assert len(on.straggler_history) == 10
        assert off.x_prime_history == []
        assert off.assistance_history == []
        # The straggler log is gated too: unbounded growth in long runs
        # (chaos soaks, paper-scale sweeps) was a memory leak.
        assert off.straggler_history == []

    def test_straggler_counts_match_history_tally(self):
        """The O(N) registry tally replaced the ad-hoc per-round log and
        must agree with it exactly — and stay on when the log is off."""
        from collections import Counter as TallyCounter

        process = RandomAffineProcess([1, 2, 5], seed=3)
        on = Dolbie(3, alpha_1=0.1, record_history=True)
        off = Dolbie(3, alpha_1=0.1, record_history=False)
        run_online(on, process, 25)
        run_online(off, process, 25)
        assert on.straggler_counts == dict(TallyCounter(on.straggler_history))
        assert off.straggler_counts == on.straggler_counts
        assert sum(off.straggler_counts.values()) == 25


class TestValidation:
    def test_needs_two_workers(self):
        with pytest.raises(ConfigurationError):
            Dolbie(1)

    def test_rejects_infeasible_initial_allocation(self):
        with pytest.raises(FeasibilityError):
            Dolbie(3, initial_allocation=np.array([0.5, 0.6, 0.2]))

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            Dolbie(3, alpha_1=-0.1)

"""Unit tests for experiment config, harness helpers, and reporting."""

import numpy as np
import pytest

from repro.experiments.config import (
    ALL_ALGORITHMS,
    ONLINE_ALGORITHMS,
    PAPER,
    PAPER_HYPERPARAMETERS,
    QUICK,
    paper_balancer,
)
from repro.experiments.harness import reduction_vs
from repro.experiments.reporting import format_series, format_table, save_csv


class TestConfig:
    def test_paper_scale_matches_section_vi(self):
        assert PAPER.num_workers == 30
        assert PAPER.global_batch == 256
        assert PAPER.realizations == 100
        assert PAPER.accuracy_target == 0.95

    def test_quick_is_smaller(self):
        assert QUICK.num_workers < PAPER.num_workers
        assert QUICK.realizations < PAPER.realizations

    def test_algorithm_lists(self):
        assert "OPT" not in ONLINE_ALGORITHMS
        assert set(ALL_ALGORITHMS) == set(ONLINE_ALGORITHMS) | {"OPT"}

    def test_paper_hyperparameters(self):
        assert PAPER_HYPERPARAMETERS["DOLBIE"]["alpha_1"] == 0.001
        assert PAPER_HYPERPARAMETERS["OGD"]["learning_rate"] == 0.001
        assert PAPER_HYPERPARAMETERS["LB-BSP"]["delta"] == pytest.approx(5 / 256)
        assert PAPER_HYPERPARAMETERS["ABS"]["period"] == 5

    def test_paper_balancer_applies_hyperparameters(self):
        dolbie = paper_balancer("DOLBIE", 10)
        assert dolbie.alpha == pytest.approx(0.001)
        lbbsp = paper_balancer("LB-BSP", 10)
        assert lbbsp.patience == 5


class TestHarnessHelpers:
    def test_reduction_vs(self):
        assert reduction_vs(25.0, 100.0) == 75.0
        assert reduction_vs(100.0, 100.0) == 0.0
        assert np.isnan(reduction_vs(1.0, 0.0))

    def test_jobs_clamped_to_cpu_count_with_warning(self, monkeypatch, caplog):
        import logging
        from dataclasses import replace

        import repro.experiments.harness as harness

        monkeypatch.setattr(harness.os, "cpu_count", lambda: 1)
        tiny = replace(
            QUICK, num_workers=4, rounds=3, realizations=2, stacked=False
        )
        with caplog.at_level(logging.WARNING, logger="repro.experiments.harness"):
            sweeps = harness.sweep_realizations(
                "ResNet18", tiny, algorithms=["EQU"], jobs=8
            )
        assert len(sweeps["EQU"]) == tiny.realizations
        assert any(
            "jobs=8 exceeds cpu_count=1" in record.getMessage()
            for record in caplog.records
        )

    def test_jobs_within_cpu_count_stays_quiet(self, monkeypatch, caplog):
        import logging
        from dataclasses import replace

        import repro.experiments.harness as harness

        monkeypatch.setattr(harness.os, "cpu_count", lambda: 8)
        tiny = replace(
            QUICK, num_workers=4, rounds=3, realizations=1, stacked=False
        )
        with caplog.at_level(logging.WARNING, logger="repro.experiments.harness"):
            harness.sweep_realizations("ResNet18", tiny, algorithms=["EQU"], jobs=2)
        assert not caplog.records


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert "22.5" in lines[3]

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_save_csv_roundtrip(self, tmp_path):
        path = save_csv(tmp_path / "out.csv", ["x", "y"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content == ["x,y", "1,2", "3,4"]

    def test_format_series_samples(self):
        text = format_series("lat", list(range(100)), every=25)
        assert text.startswith("lat:")
        assert len(text.split()) == 5  # label + 4 samples

"""Suite-wide fixtures.

The materialization cache (:mod:`repro.mlsim.cache`) defaults to
``~/.cache/repro``; pointing it at a per-session temp directory keeps
the test suite hermetic — runs neither read a developer's warm cache
(which could mask a trace-generation regression behind stale hits) nor
leave entries behind.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_materialization_cache(tmp_path_factory: pytest.TempPathFactory):
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous

#!/usr/bin/env python
"""Regenerate (or verify) the committed golden traces.

Dry run (the default) re-records every golden scenario at the canonical
seed/size and diffs it against the committed JSONL, exiting non-zero on
any difference — the same check ``tests/integration/test_golden_traces``
performs, usable standalone::

    PYTHONPATH=src python tests/golden/regenerate.py

After an *intentional* behavior change (a record gains a field, the
algorithm's trajectory legitimately moves), bless the new traces and
commit the result alongside the change that caused it::

    PYTHONPATH=src python tests/golden/regenerate.py --bless

``--bless`` refuses to overwrite a golden that already has uncommitted
changes: blessing on top of a dirty file silently merges two separate
edits into one opaque blob, and the diff that review depends on is lost.
Commit or revert the dirty golden first, or pass ``--force`` to bless
anyway. Outside a git checkout the guard degrades to allow-all.

Golden diffs are reviewable: each file is deterministic sorted-key JSONL,
so `git diff` shows exactly which rounds and fields moved.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

#: Scenario name -> committed file. One golden per scenario; the
#: cross-engine tests replay each protocol scenario on BOTH engines
#: against the same file.
GOLDEN_FILES = {
    "mw": "mw.jsonl",
    "fd": "fd.jsonl",
    "loop": "loop.jsonl",
    "trainer": "trainer.jsonl",
    "serving": "serving.jsonl",
}


def dirty_goldens(filenames: list[str]) -> list[str]:
    """The subset of ``filenames`` with uncommitted changes in git.

    Returns ``[]`` when the goldens live outside a git checkout (or git
    itself is unavailable): there is no committed state to protect, so
    the bless guard degrades to allow-all rather than blocking.
    """
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain", "--", *filenames],
            cwd=GOLDEN_DIR,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return []
    if proc.returncode != 0:
        return []
    dirty = []
    for line in proc.stdout.splitlines():
        # Porcelain v1: two status columns, a space, then the path
        # (relative to the repo root; compare by basename since every
        # golden lives flat in GOLDEN_DIR).
        path = line[3:].strip().strip('"')
        name = Path(path).name
        if name in filenames:
            dirty.append(name)
    return sorted(dirty)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bless",
        action="store_true",
        help="overwrite the committed goldens with freshly recorded traces",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="bless even goldens that have uncommitted changes",
    )
    args = parser.parse_args(argv)

    if args.bless and not args.force:
        dirty = dirty_goldens(list(GOLDEN_FILES.values()))
        if dirty:
            print(
                "refusing to bless: uncommitted changes in "
                + ", ".join(dirty)
                + "\ncommit or revert them first (or pass --force)",
                file=sys.stderr,
            )
            return 2

    from repro.io import load_trace, save_trace
    from repro.obs import diff_traces
    from repro.obs.scenarios import build_trace

    failures = 0
    for scenario, filename in GOLDEN_FILES.items():
        trace = build_trace(scenario)
        path = GOLDEN_DIR / filename
        if args.bless:
            save_trace(trace, path)
            print(f"blessed {path} ({len(trace.records)} records)")
            continue
        if not path.exists():
            print(f"MISSING {path} — run with --bless to create it")
            failures += 1
            continue
        diff = diff_traces(load_trace(path), trace, include_header=True)
        if diff.empty:
            print(f"ok      {path}")
        else:
            print(f"DIFFERS {path}")
            print(diff.summary())
            failures += 1
    if failures and not args.bless:
        print(
            f"\n{failures} golden trace(s) out of date; regenerate with "
            "--bless if the change is intentional",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

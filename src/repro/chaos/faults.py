"""Declarative fault schedules: scripted and randomized failure sequences.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`
records, each pinned to a round boundary. Schedules come from three
places — hand-written scripts (:meth:`FaultSchedule.scripted`), a
seeded randomized generator (:meth:`FaultSchedule.random`), or a
JSON/YAML spec file (:func:`load_schedule`) — and are *pure data*: the
:class:`~repro.chaos.injector.ChaosInjector` is what applies them to a
protocol.

Determinism guarantee: a schedule is fully determined by its inputs
(``seed`` and rates for the randomized generator; the event list for
scripted ones), and every downstream consumer of randomness (the loss
burst's drop sampler) derives its generator from ``(schedule.seed,
event round)``. Same seed, same schedule, same protocol, same cost
process => bit-identical allocations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.net.topology import Topology, connected_components

__all__ = ["FAULT_KINDS", "FaultEvent", "FaultSchedule", "load_schedule"]

#: The fault vocabulary (see FaultEvent for per-kind semantics).
FAULT_KINDS = (
    "crash", "rejoin", "slowdown", "degrade", "partition", "heal", "restart",
)


@dataclass(frozen=True)
class FaultEvent:
    """One fault, applied at the boundary *before* ``round_index`` runs.

    ==========  =========================================================
    kind        semantics
    ==========  =========================================================
    crash       every id in ``workers`` goes silent (process death)
    rejoin      every id in ``workers`` is revived and re-admitted
    slowdown    ``workers`` gain ``severity`` seconds of send/receive
                delay for ``duration`` rounds (transient straggle)
    degrade     every link drops frames with probability ``severity``
                for ``duration`` rounds (loss burst; retransmits pay)
    partition   the network splits: each tuple in ``groups`` becomes an
                isolated island, unlisted nodes stay together
    heal        the partition is removed; cut-off workers re-merge
    restart     every id in ``workers`` checkpoints its round ledger,
                dies with crash semantics, and rejoins ``duration``
                rounds later restored from that snapshot (a rolling
                restart, not a cold crash: the ledger prefix survives)
    ==========  =========================================================
    """

    round_index: int
    kind: str
    workers: tuple[int, ...] = ()
    groups: tuple[tuple[int, ...], ...] = ()
    duration: int = 1
    severity: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.round_index < 1:
            raise ConfigurationError(
                f"fault rounds are 1-based, got {self.round_index}"
            )
        if self.kind in ("crash", "rejoin", "slowdown", "restart") and not self.workers:
            raise ConfigurationError(f"{self.kind} fault needs target workers")
        if self.kind == "partition" and not self.groups:
            raise ConfigurationError("partition fault needs groups")
        if self.kind in ("slowdown", "degrade", "restart") and self.duration < 1:
            raise ConfigurationError("duration must be >= 1 round")
        if self.kind == "slowdown" and self.severity <= 0:
            raise ConfigurationError("slowdown needs severity > 0 (seconds)")
        if self.kind == "degrade" and not 0.0 < self.severity < 1.0:
            raise ConfigurationError(
                "degrade severity is a drop probability in (0, 1)"
            )

    def to_dict(self) -> dict:
        record: dict = {"round": self.round_index, "kind": self.kind}
        if self.workers:
            record["workers"] = list(self.workers)
        if self.groups:
            record["groups"] = [list(g) for g in self.groups]
        if self.kind in ("slowdown", "degrade"):
            record["duration"] = self.duration
            record["severity"] = self.severity
        elif self.kind == "restart":
            record["duration"] = self.duration
        return record

    @classmethod
    def from_dict(cls, record: Mapping) -> "FaultEvent":
        known = {"round", "kind", "workers", "groups", "duration", "severity"}
        unknown = set(record) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault-event fields: {sorted(unknown)}"
            )
        return cls(
            round_index=int(record["round"]),
            kind=str(record["kind"]),
            workers=tuple(int(w) for w in record.get("workers", ())),
            groups=tuple(
                tuple(int(w) for w in group) for group in record.get("groups", ())
            ),
            duration=int(record.get("duration", 1)),
            severity=float(record.get("severity", 0.0)),
        )


class FaultSchedule:
    """An immutable, round-indexed sequence of fault events."""

    def __init__(
        self, events: Iterable[FaultEvent], seed: int | None = None
    ) -> None:
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: e.round_index)
        )
        #: Seed the schedule was generated from (None for scripted ones);
        #: also salts the loss-burst drop sampler for reproducibility.
        self.seed = seed
        self._by_round: dict[int, list[FaultEvent]] = {}
        for event in self.events:
            self._by_round.setdefault(event.round_index, []).append(event)

    # -- construction -----------------------------------------------------
    @classmethod
    def scripted(cls, events: Sequence[FaultEvent]) -> "FaultSchedule":
        return cls(events)

    @classmethod
    def random(
        cls,
        num_workers: int,
        horizon: int,
        seed: int,
        *,
        topology: Topology | None = None,
        crash_rate: float = 0.02,
        restart_rate: float = 0.02,
        slowdown_rate: float = 0.05,
        degrade_rate: float = 0.03,
        partition_rate: float = 0.015,
        min_active: int = 3,
        max_outage: int = 8,
        max_partition: int = 6,
        max_slowdown_seconds: float = 0.03,
        max_loss_probability: float = 0.25,
    ) -> "FaultSchedule":
        """A seeded randomized fault sequence that never kills the quorum.

        Per-round, independent coin flips inject crashes (paired with a
        scheduled rejoin 2..``max_outage`` rounds later), rolling
        restarts (ledger preserved, back after 1-3 rounds), transient
        slowdowns, loss bursts, and — when no partition is already
        active — a network partition that heals within
        ``max_partition`` rounds. Safety: an event is skipped (its coin
        flip still consumed, so the sequence stays reproducible) if
        applying it would leave the primary connected component of
        ``topology`` (complete graph when ``None``) with fewer than
        ``max(2, min_active)`` reachable live workers.
        """
        if num_workers < 3:
            raise ConfigurationError(
                f"chaos schedules need >= 3 workers, got {num_workers}"
            )
        if topology is not None and topology.num_nodes != num_workers:
            raise ConfigurationError(
                f"topology has {topology.num_nodes} nodes for {num_workers} workers"
            )
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        crashed: set[int] = set()
        pending_rejoins: dict[int, list[int]] = {}
        pending_restart_backs: dict[int, list[int]] = {}
        minority: set[int] = set()
        heal_round = 0

        def primary_size(dead: set[int], island: set[int]) -> int:
            alive = set(range(num_workers)) - dead

            def neighbors(i: int) -> list[int]:
                if topology is None:
                    candidates: Iterable[int] = range(num_workers)
                else:
                    candidates = topology.neighbors(i)
                return [
                    j
                    for j in candidates
                    if j != i
                    and j in alive
                    and ((i in island) == (j in island))
                ]

            components = connected_components(alive, neighbors)
            return max((len(c) for c in components), default=0)

        floor = max(2, min_active)
        for t in range(1, horizon + 1):
            for worker in pending_rejoins.pop(t, []):
                events.append(FaultEvent(t, "rejoin", workers=(worker,)))
                crashed.discard(worker)
            # Restarted workers rejoin implicitly (the injector revives
            # them with their ledger restored) — no rejoin event.
            for worker in pending_restart_backs.pop(t, []):
                crashed.discard(worker)
            if minority and t >= heal_round:
                events.append(FaultEvent(t, "heal"))
                minority = set()
            active = sorted(set(range(num_workers)) - crashed)
            if (
                not minority
                and rng.random() < partition_rate
                and len(active) >= floor + 1
            ):
                size = int(rng.integers(1, max(2, len(active) - floor)))
                picked = set(
                    int(w) for w in rng.choice(active, size=size, replace=False)
                )
                if primary_size(crashed, picked) >= floor:
                    minority = picked
                    heal_round = t + 1 + int(rng.integers(1, max_partition + 1))
                    events.append(
                        FaultEvent(t, "partition", groups=(tuple(sorted(picked)),))
                    )
            if rng.random() < crash_rate and active:
                victim = int(rng.choice(active))
                outage = int(rng.integers(2, max_outage + 1))
                if (
                    victim not in minority
                    and primary_size(crashed | {victim}, minority) >= floor
                ):
                    crashed.add(victim)
                    events.append(FaultEvent(t, "crash", workers=(victim,)))
                    if t + outage <= horizon:
                        pending_rejoins.setdefault(t + outage, []).append(victim)
            if rng.random() < restart_rate and active:
                victim = int(rng.choice(active))
                downtime = int(rng.integers(1, 4))
                if (
                    victim not in minority
                    and victim not in crashed  # may have crashed this round
                    and t + downtime <= horizon
                    and primary_size(crashed | {victim}, minority) >= floor
                ):
                    crashed.add(victim)
                    events.append(
                        FaultEvent(
                            t, "restart", workers=(victim,), duration=downtime
                        )
                    )
                    pending_restart_backs.setdefault(
                        t + downtime, []
                    ).append(victim)
            if rng.random() < slowdown_rate and active:
                slow = int(rng.choice(active))
                events.append(
                    FaultEvent(
                        t,
                        "slowdown",
                        workers=(slow,),
                        duration=int(rng.integers(1, 4)),
                        severity=float(
                            rng.uniform(0.2, 1.0) * max_slowdown_seconds
                        ),
                    )
                )
            if rng.random() < degrade_rate:
                events.append(
                    FaultEvent(
                        t,
                        "degrade",
                        duration=int(rng.integers(1, 4)),
                        severity=float(
                            rng.uniform(0.2, 1.0) * max_loss_probability
                        ),
                    )
                )
        return cls(events, seed=seed)

    @classmethod
    def rolling_restart(
        cls,
        num_workers: int,
        horizon: int,
        *,
        start: int = 5,
        interval: int = 3,
        downtime: int = 2,
        workers: Sequence[int] | None = None,
        cycles: int = 1,
    ) -> "FaultSchedule":
        """A staggered restart sweep over the fleet (the ops "rolling
        restart" pattern: one worker at a time, wait for it to rejoin,
        move to the next).

        Starting at round ``start``, every ``interval`` rounds the next
        worker in ``workers`` (default: all of them, ascending) takes a
        ``restart`` fault with ``downtime`` rounds of outage; after the
        last worker the sweep repeats ``cycles`` times. Restarts whose
        rejoin would land past ``horizon`` are not scheduled.
        """
        if num_workers < 3:
            raise ConfigurationError(
                f"chaos schedules need >= 3 workers, got {num_workers}"
            )
        if start < 1 or interval < 1 or downtime < 1 or cycles < 1:
            raise ConfigurationError(
                "start, interval, downtime and cycles must all be >= 1"
            )
        if interval <= downtime:
            raise ConfigurationError(
                f"interval ({interval}) must exceed downtime ({downtime}): "
                "a worker must be back before the next one restarts"
            )
        targets = (
            tuple(range(num_workers)) if workers is None else tuple(workers)
        )
        for worker in targets:
            if not 0 <= worker < num_workers:
                raise ConfigurationError(
                    f"restart target {worker} out of range for "
                    f"{num_workers} workers"
                )
        events = []
        t = start
        for _ in range(cycles):
            for worker in targets:
                if t + downtime > horizon:
                    return cls(events)
                events.append(
                    FaultEvent(
                        t, "restart", workers=(worker,), duration=downtime
                    )
                )
                t += interval
        return cls(events)

    # -- queries ----------------------------------------------------------
    def events_at(self, round_index: int) -> list[FaultEvent]:
        return list(self._by_round.get(round_index, []))

    def counts(self) -> dict[str, int]:
        """Event tally per kind (zero-filled over the vocabulary)."""
        tally = {kind: 0 for kind in FAULT_KINDS}
        for event in self.events:
            tally[event.kind] += 1
        return tally

    @property
    def horizon(self) -> int:
        """Last round any event touches (0 for an empty schedule)."""
        return self.events[-1].round_index if self.events else 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __repr__(self) -> str:
        tally = {k: v for k, v in self.counts().items() if v}
        return f"FaultSchedule({len(self.events)} events, {tally})"

    # -- (de)serialization ------------------------------------------------
    def to_spec(self) -> dict:
        spec: dict = {"events": [event.to_dict() for event in self.events]}
        if self.seed is not None:
            spec["seed"] = self.seed
        return spec

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_spec(), indent=indent)

    @classmethod
    def from_spec(cls, spec: Mapping) -> "FaultSchedule":
        """Build a schedule from a spec dict.

        Two shapes are accepted: ``{"events": [...], "seed": ...}`` for
        scripted schedules, and ``{"random": {"num_workers": ...,
        "horizon": ..., "seed": ..., <rates>}}`` which re-runs the
        generator (same seed => same schedule).
        """
        if "random" in spec:
            params = dict(spec["random"])
            for required in ("num_workers", "horizon", "seed"):
                if required not in params:
                    raise ConfigurationError(
                        f"random schedule spec needs {required!r}"
                    )
            topology = None
            name = params.pop("topology", None)
            if name is not None:
                topology = _topology_by_name(name, int(params["num_workers"]))
            return cls.random(
                int(params.pop("num_workers")),
                int(params.pop("horizon")),
                int(params.pop("seed")),
                topology=topology,
                **params,
            )
        if "events" not in spec:
            raise ConfigurationError(
                "schedule spec needs an 'events' list or a 'random' block"
            )
        events = [FaultEvent.from_dict(record) for record in spec["events"]]
        seed = spec.get("seed")
        return cls(events, seed=None if seed is None else int(seed))


def _topology_by_name(name: str, num_workers: int) -> Topology | None:
    """Resolve the topology names used by specs and the CLI."""
    builders = {
        "complete": Topology.complete,
        "ring": Topology.ring,
        "star": Topology.star,
        "line": Topology.line,
    }
    if name not in builders:
        raise ConfigurationError(
            f"unknown topology {name!r}; expected one of {sorted(builders)}"
        )
    if name == "complete":
        return None  # the protocols' native all-to-all mode
    return builders[name](num_workers)


def load_schedule(path: str | Path) -> FaultSchedule:
    """Load a schedule spec from a ``.json`` or ``.yaml``/``.yml`` file."""
    path = Path(path)
    text = path.read_text()
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError as exc:  # pragma: no cover - env-dependent
            raise ConfigurationError(
                "YAML schedule specs need PyYAML; install it or use JSON"
            ) from exc
        spec = yaml.safe_load(text)
    else:
        spec = json.loads(text)
    if not isinstance(spec, Mapping):
        raise ConfigurationError(f"schedule spec in {path} must be a mapping")
    return FaultSchedule.from_spec(spec)

"""Apply fault schedules to a running protocol at round boundaries.

The :class:`ChaosInjector` is the bridge between the pure-data
:class:`~repro.chaos.faults.FaultSchedule` and the live system: call
:meth:`ChaosInjector.apply` immediately before ``protocol.run_round(t,
...)`` and it expires elapsed transient faults, then applies every event
scheduled for round ``t`` through the protocol's public recovery API
(``crash_worker`` / ``rejoin_worker``) and the cluster's chaos hooks
(partition, extra delay, frame-loss override).

Architecture note: partitions are injected identically for both
protocols (the cluster blackholes cross-group frames). The
fully-distributed protocol re-merges healed peers itself during
``run_round``; the master-worker protocol cannot (a worker the master
declared dead must be explicitly re-admitted), so on ``heal`` the
injector re-joins every alive-but-deposed worker on the master's
behalf — the operator's "kick the node back into the fleet" action.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.faults import FaultEvent, FaultSchedule
from repro.exceptions import ConfigurationError
from repro.obs.metrics import MetricsRegistry

__all__ = ["ChaosInjector"]


class ChaosInjector:
    """Drives one protocol instance through a fault schedule."""

    def __init__(self, protocol, schedule: FaultSchedule) -> None:
        """``protocol`` is a :class:`~repro.protocols.master_worker.
        MasterWorkerDolbie` or :class:`~repro.protocols.fully_distributed.
        FullyDistributedDolbie` (anything exposing ``cluster``,
        ``alive_workers``, ``roster``, ``crash_worker`` and
        ``rejoin_worker``)."""
        for attr in ("cluster", "alive_workers", "roster",
                     "crash_worker", "rejoin_worker",
                     "worker_ledger", "restore_worker_ledger"):
            if not hasattr(protocol, attr):
                raise ConfigurationError(
                    f"protocol {type(protocol).__name__} lacks {attr!r}; "
                    "it cannot be chaos-injected"
                )
        self.protocol = protocol
        self.schedule = schedule
        self.applied: list[FaultEvent] = []
        #: ``chaos.events{kind=...}`` counters, one per fault kind.
        self.registry = MetricsRegistry()
        #: worker id -> round at which its slowdown expires.
        self._slow_until: dict[int, int] = {}
        #: round at which the active loss burst expires (0 = none).
        self._degrade_until = 0
        #: round -> workers whose restart completes at that boundary.
        self._pending_restarts: dict[int, list[int]] = {}
        #: worker id -> the ledger prefix it checkpointed before dying.
        #: Entries live from the restart fault until the worker is back
        #: (or until a plain crash/rejoin invalidates the restart).
        self.restart_prefixes: dict[int, tuple] = {}

    @property
    def events_applied(self) -> int:
        """Total fault events actually applied so far."""
        return int(self.registry.value("chaos.events_applied"))

    @property
    def event_counts(self) -> dict[str, int]:
        """``{fault kind -> applied count}`` read from the registry."""
        return {
            str(kind): int(count)
            for kind, count in sorted(
                self.registry.series("chaos.events", "kind").items()
            )
        }

    @property
    def cluster(self):
        return self.protocol.cluster

    def apply(self, round_index: int) -> list[FaultEvent]:
        """Expire transients, then apply round ``round_index``'s events.

        Call once per round, before ``run_round``. Returns the events
        actually applied this round (crashes of already-dead workers and
        rejoins of already-active ones are skipped — a randomized
        schedule composed with manual interventions stays valid).
        """
        # Stamp the cluster's fault records with the round about to run.
        self.cluster.trace_round = round_index
        self._expire(round_index)
        self._complete_restarts(round_index)
        applied: list[FaultEvent] = []
        for event in self.schedule.events_at(round_index):
            if self._apply_event(event, round_index):
                applied.append(event)
                self.registry.counter("chaos.events", kind=event.kind).inc()
        if applied:
            self.registry.counter("chaos.events_applied").inc(len(applied))
        self.applied.extend(applied)
        return applied

    # -- internals --------------------------------------------------------
    def _expire(self, round_index: int) -> None:
        for worker, until in list(self._slow_until.items()):
            if round_index >= until:
                self.cluster.set_extra_delay(worker, 0.0)
                del self._slow_until[worker]
        if self._degrade_until and round_index >= self._degrade_until:
            self.cluster.clear_frame_loss()
            self._degrade_until = 0

    def _complete_restarts(self, round_index: int) -> None:
        """Bring restarted workers back, ledger restored from snapshot."""
        for worker in self._pending_restarts.pop(round_index, []):
            prefix = self.restart_prefixes.pop(worker, ())
            if worker in self.protocol.alive_workers:
                # A rejoin event got there first; the restart is moot.
                continue
            self.protocol.rejoin_worker(worker)
            # The point of a restart (vs. a cold crash): the worker's
            # replica of the round ledger survives in its snapshot.
            self.protocol.restore_worker_ledger(worker, prefix)
            # Re-register the preserved prefix so the ledger invariant
            # can keep checking it against the authority after rejoin.
            self.restart_prefixes[worker] = prefix

    def _apply_event(self, event: FaultEvent, round_index: int) -> bool:
        kind = event.kind
        if kind == "crash":
            targets = [
                w for w in event.workers if w in self.protocol.alive_workers
            ]
            for worker in targets:
                self.protocol.crash_worker(worker)
                # A cold crash loses the process memory — any snapshot a
                # previous restart preserved no longer describes the
                # (now empty) replica.
                self.restart_prefixes.pop(worker, None)
            return bool(targets)
        if kind == "rejoin":
            targets = [
                w
                for w in event.workers
                if w not in self.protocol.alive_workers
            ]
            for worker in targets:
                self.protocol.rejoin_worker(worker)
                self.restart_prefixes.pop(worker, None)
            return bool(targets)
        if kind == "restart":
            targets = [
                w for w in event.workers if w in self.protocol.alive_workers
            ]
            for worker in targets:
                # Checkpoint the worker's ledger replica *before* the
                # process dies, then crash it like any other failure.
                self.restart_prefixes[worker] = tuple(
                    self.protocol.worker_ledger(worker).entries
                )
                self.protocol.crash_worker(worker)
                self._pending_restarts.setdefault(
                    round_index + event.duration, []
                ).append(worker)
            return bool(targets)
        if kind == "slowdown":
            for worker in event.workers:
                self.cluster.set_extra_delay(worker, event.severity)
                self._slow_until[worker] = max(
                    self._slow_until.get(worker, 0),
                    round_index + event.duration,
                )
            return True
        if kind == "degrade":
            # The drop sampler is salted by (schedule seed, round) so a
            # replayed schedule reproduces the exact same drop sequence.
            rng = np.random.default_rng(
                [self.schedule.seed or 0, event.round_index]
            )
            self.cluster.set_frame_loss(event.severity, rng)
            self._degrade_until = max(
                self._degrade_until, round_index + event.duration
            )
            return True
        if kind == "partition":
            self.cluster.set_partition(event.groups)
            return True
        if kind == "heal":
            self.cluster.clear_partition()
            # Master-worker: re-admit workers the master deposed while
            # they were cut off (their process never died). The
            # fully-distributed protocol re-merges on its own during
            # run_round, so this loop is a no-op there (stalled peers
            # are still listed in alive_workers but absent from roster
            # only for MW-style rosters; FD handles them first).
            if hasattr(self.protocol, "master"):
                roster = set(self.protocol.roster)
                for worker in self.protocol.alive_workers:
                    if worker not in roster:
                        self.protocol.rejoin_worker(worker)
            return True
        raise ConfigurationError(f"unhandled fault kind {kind!r}")

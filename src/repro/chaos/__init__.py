"""Deterministic chaos engineering for the DOLBIE protocols.

The package has four layers:

- :mod:`repro.chaos.faults` — the declarative :class:`FaultSchedule`
  (scripted or seeded-random) and its JSON/YAML serialization;
- :mod:`repro.chaos.injector` — :class:`ChaosInjector`, which applies a
  schedule to a live protocol at round boundaries;
- :mod:`repro.chaos.invariants` — the per-round correctness oracle;
- :mod:`repro.chaos.soak` — :func:`run_soak`, hundreds of randomized
  rounds with every invariant checked after every round.

Everything is seeded: the same schedule seed reproduces the same fault
sequence, drop pattern, and — therefore — bit-identical allocations.
"""

from repro.chaos.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    load_schedule,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import (
    RoundObservation,
    assert_round_invariants,
    check_round_invariants,
)
from repro.chaos.soak import SoakReport, run_soak

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "load_schedule",
    "ChaosInjector",
    "RoundObservation",
    "assert_round_invariants",
    "check_round_invariants",
    "SoakReport",
    "run_soak",
]

"""System invariants that must survive every chaos round.

The checks encode what "the protocol is still correct" means under
faults, independently of the allocation's optimality:

1. **Simplex on the live roster.** The allocation sums to 1 over the
   protocol's roster, every share is non-negative, and deposed workers
   (dead or stalled) hold exactly 0.
2. **Agreement.** Every rostered participant reached the same straggler
   and global cost this round; in the fully-distributed architecture
   every participant's local roster equals the controller's.
3. **Liveness of the clock.** The round processed events and virtual
   time strictly advanced (a round that moves no messages is a
   deadlock in disguise; run soaks with positive link latency).
4. **No silent drops.** Unhandled tags raise ``ProtocolError`` at the
   node layer, so any swallowed exception would surface as a missing
   round outcome — checked via the returned global cost/straggler.
5. **Chaos rounds take the reference path.** The batched fast path
   (:mod:`repro.net.batch`) is only valid on healthy rounds; a round
   that ran batched while chaos hooks were active or the roster was
   degraded would silently skip the fault semantics, so the invariant
   checker diffs the protocol's ``fast_rounds`` counter across the
   round and flags it.
6. **Ledger prefix consistency.** The authoritative round ledger
   recorded this round's outcome, and every rostered worker's replica
   is a prefix-consistent extension of it — including workers that came
   back from a ``restart`` fault, whose replicas must begin with the
   exact prefix they checkpointed before dying (pass the injector's
   ``restart_prefixes`` so the checker can pin them).
7. **Tree overlay consistency.** When the round ran the hierarchical
   aggregation path (``tree_rounds`` advanced), the overlay the
   protocol used must be a valid partition of the live roster — every
   rostered worker in exactly one shard, heads the lowest member of
   their shard, parent links acyclic — and must equal the
   deterministic rebuild from the same roster (every survivor derives
   the identical overlay without communication, the tree analogue of
   roster agreement). Tree rounds are *allowed* on a degraded roster:
   unlike the flat batched path, the overlay is rebuilt from whatever
   quorum survives, so invariant 5's full-roster requirement applies
   only to flat fast rounds. Chaos hooks still disqualify both paths.
   The check is backend-agnostic: compiled-backend tree rounds (the
   fused-kernel path of :mod:`repro.backend.kernels`) advance the same
   ``tree_rounds`` counter, expose the same ``last_tree`` overlay, and
   write the same peer fields this checker reads — the soak suite runs
   the tree scenario under both backends to pin that.

``check_round_invariants`` returns human-readable violation strings
(empty list = healthy); :func:`assert_round_invariants` raises
:class:`~repro.exceptions.InvariantViolation` instead, for use as a
property-based testing oracle.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import InvariantViolation

__all__ = [
    "RoundObservation",
    "check_round_invariants",
    "assert_round_invariants",
]

_ATOL = 1e-9


class RoundObservation:
    """Pre-round engine state to diff against after the round."""

    def __init__(self, protocol) -> None:
        engine = protocol.cluster.engine
        self.time_before = engine.now
        self.events_before = engine.processed_events
        self.fast_rounds_before = getattr(protocol, "fast_rounds", 0)
        self.tree_rounds_before = getattr(protocol, "tree_rounds", 0)


def check_round_invariants(
    protocol,
    observation: RoundObservation,
    round_index: int,
    local: np.ndarray,
    global_cost: float,
    straggler: int,
    restart_prefixes: dict[int, tuple] | None = None,
) -> list[str]:
    """Check every invariant after ``run_round``; return violations."""
    violations: list[str] = []
    roster = list(protocol.roster)
    allocation = np.asarray(protocol.allocation, dtype=float)
    num_workers = allocation.size

    def violated(message: str) -> None:
        violations.append(f"round {round_index}: {message}")

    # 1. simplex on the live roster
    if not roster:
        violated("empty roster")
        return violations
    live_sum = float(allocation[roster].sum())
    if abs(live_sum - 1.0) > _ATOL:
        violated(f"live allocation sums to {live_sum!r}, not 1")
    if (allocation < -1e-12).any():
        worst = int(np.argmin(allocation))
        violated(f"worker {worst} holds negative share {allocation[worst]!r}")
    for worker in range(num_workers):
        if worker not in roster and allocation[worker] != 0.0:
            violated(
                f"deposed worker {worker} still holds {allocation[worker]!r}"
            )

    # 2. agreement on the round outcome and the roster
    if straggler not in roster:
        violated(f"straggler {straggler} is not on the roster {roster}")
    if not np.isfinite(global_cost):
        violated(f"global cost is not finite: {global_cost!r}")
    peers = getattr(protocol, "peers", None)
    if peers is not None:  # fully-distributed: per-peer replicated state
        roster_set = set(roster)
        for worker in roster:
            peer = peers[worker]
            if set(peer.roster) != roster_set:
                violated(
                    f"peer {worker} roster {sorted(peer.roster)} != {roster}"
                )
            if peer.straggler_id != straggler:
                violated(
                    f"peer {worker} disagrees on the straggler "
                    f"({peer.straggler_id} vs {straggler})"
                )
            if peer.global_cost != global_cost:
                violated(
                    f"peer {worker} disagrees on the global cost "
                    f"({peer.global_cost!r} vs {global_cost!r})"
                )
    else:  # master-worker: the master's view is authoritative
        master = protocol.master
        if master.straggler != straggler or master.global_cost != global_cost:
            violated("master state disagrees with the round outcome")

    # 3. the virtual clock advanced and events flowed
    engine = protocol.cluster.engine
    if engine.processed_events <= observation.events_before:
        violated("round processed no events (deadlock?)")
    if engine.now < observation.time_before:
        violated("virtual time went backwards")
    elif engine.now == observation.time_before:
        violated(
            "virtual time did not advance (run chaos soaks with links "
            "of positive latency)"
        )

    # 5. the batched fast path only runs on healthy rounds; the *flat*
    # variant additionally requires the full roster (tree rounds rebuild
    # the overlay from the surviving quorum, so degradation is fine).
    took_fast_path = (
        getattr(protocol, "fast_rounds", 0) > observation.fast_rounds_before
    )
    took_tree_path = (
        getattr(protocol, "tree_rounds", 0) > observation.tree_rounds_before
    )
    if took_fast_path:
        if protocol.cluster.chaos_active:
            violated(
                "the batched fast path ran while chaos hooks were active "
                "(fault semantics would be skipped)"
            )
        if len(roster) < num_workers and not took_tree_path:
            violated(
                f"the batched fast path ran on a degraded roster "
                f"({len(roster)}/{num_workers} workers)"
            )

    # 7. tree rounds used a valid, deterministically-rebuildable overlay
    if took_tree_path:
        tree = getattr(protocol, "last_tree", None)
        if tree is None:
            violated("a tree round ran but the protocol kept no overlay")
        else:
            for problem in tree.validate(sorted(roster)):
                violated(f"aggregation tree: {problem}")
            from repro.net.aggtree import AggregationTree

            rebuilt = AggregationTree.build(
                sorted(roster),
                shard_size=tree.shard_size,
                branching=tree.branching,
            )
            if rebuilt.shards != tree.shards:
                violated(
                    "aggregation tree is not the deterministic rebuild of "
                    "the live roster (survivors would disagree on shards)"
                )

    # 4. every rostered worker produced a cost; nobody else did
    local = np.asarray(local, dtype=float)
    for worker in range(num_workers):
        if worker in roster and not np.isfinite(local[worker]):
            violated(f"rostered worker {worker} reported no cost")
        if worker not in roster and np.isfinite(local[worker]):
            violated(f"deposed worker {worker} reported a cost")

    # 6. the round ledger agrees and every replica extends it
    ledger = getattr(protocol, "ledger", None)
    if ledger is not None:
        from repro.core.ledger import prefix_consistency_violations

        entry = ledger.entry_for(round_index)
        if entry is None:
            violated("the authoritative ledger has no entry for this round")
        else:
            if (
                entry.straggler != int(straggler)
                or entry.global_cost != float(global_cost)
                or set(entry.roster) != set(roster)
            ):
                violated(
                    "the authoritative ledger entry disagrees with the "
                    f"round outcome ({entry})"
                )
            prefixes = restart_prefixes or {}
            for worker in roster:
                replica = protocol.worker_ledger(worker)
                problems = prefix_consistency_violations(
                    replica, ledger, preserved_prefix=prefixes.get(worker),
                )
                for problem in problems:
                    violated(f"worker {worker} ledger replica: {problem}")
                if replica.entry_for(round_index) is None:
                    violated(
                        f"worker {worker} ledger replica is missing this "
                        "round"
                    )
    return violations


def assert_round_invariants(
    protocol,
    observation: RoundObservation,
    round_index: int,
    local: np.ndarray,
    global_cost: float,
    straggler: int,
    restart_prefixes: dict[int, tuple] | None = None,
) -> None:
    """Raise :class:`InvariantViolation` when any invariant breaks."""
    violations = check_round_invariants(
        protocol, observation, round_index, local, global_cost, straggler,
        restart_prefixes=restart_prefixes,
    )
    if violations:
        raise InvariantViolation("; ".join(violations))

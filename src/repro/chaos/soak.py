"""Soak testing: hundreds of randomized rounds with per-round invariants.

``run_soak`` turns the chaos layer into a property-based correctness
tool: it drives a protocol through a fault schedule for many rounds,
checks every invariant of :mod:`repro.chaos.invariants` after *each*
round, and reports everything needed to (a) assert zero violations and
(b) assert bit-identical reproducibility across runs with the same seed.

A protocol exception mid-soak (e.g. a quorum wiped out by an unsafe
hand-written schedule) is recorded as a violation, not propagated: a
soak's job is to report, and ``raise_on_violation=True`` restores
fail-fast behavior for use inside tests.

Soaks are durable: pass ``checkpoint_every`` and a
:class:`~repro.ckpt.store.CheckpointStore` and the full soak state —
protocol, injector bookkeeping, accumulated report arrays, recorded
trace — is snapshotted at round boundaries; ``resume_from`` continues a
killed soak bit-identically (the kill-resume CI job pins exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.chaos.faults import FaultSchedule
from repro.chaos.injector import ChaosInjector
from repro.chaos.invariants import RoundObservation, check_round_invariants
from repro.costs.timevarying import CostProcess
from repro.exceptions import CheckpointError, InvariantViolation, ReproError

__all__ = ["SoakReport", "run_soak"]


@dataclass(frozen=True)
class SoakReport:
    """Everything a chaos soak observed."""

    protocol_name: str
    rounds_requested: int
    rounds_completed: int
    violations: tuple[tuple[int, str], ...]  # (round, description)
    events_applied: int
    event_counts: dict[str, int]
    allocations: np.ndarray  # (rounds_completed, N) post-round allocations
    global_costs: np.ndarray  # (rounds_completed,)
    final_roster: tuple[int, ...]
    virtual_time: float
    messages_total: int
    messages_blackholed: int
    resumed_from: int | None = None  # checkpointed round a resume started at

    @property
    def ok(self) -> bool:
        return not self.violations and (
            self.rounds_completed == self.rounds_requested
        )

    @property
    def cumulative_cost(self) -> float:
        return float(self.global_costs.sum())

    def summary(self) -> str:
        """A compact multi-line report (what the CLI prints)."""
        status = "PASS" if self.ok else "FAIL"
        counts = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.event_counts.items())
            if count
        ) or "none"
        resumed = (
            f" (resumed from round {self.resumed_from})"
            if self.resumed_from is not None
            else ""
        )
        lines = [
            f"[{status}] {self.protocol_name}: "
            f"{self.rounds_completed}/{self.rounds_requested} rounds, "
            f"{self.events_applied} fault events ({counts}){resumed}",
            f"  cumulative latency {self.cumulative_cost:.4f}s over "
            f"{self.virtual_time:.3f}s virtual time; "
            f"{self.messages_total} messages "
            f"({self.messages_blackholed} blackholed); "
            f"final roster {list(self.final_roster)}",
            f"  invariant violations: {len(self.violations)}",
        ]
        for round_index, description in self.violations[:10]:
            lines.append(f"    round {round_index}: {description}")
        if len(self.violations) > 10:
            lines.append(f"    ... and {len(self.violations) - 10} more")
        return "\n".join(lines)


def _soak_snapshot(
    protocol, injector, schedule, rounds, t,
    allocations, global_costs, violations,
):
    from repro.ckpt.snapshot import Snapshot
    from repro.ckpt.state import capture_injector, capture_protocol
    from repro.obs.diff import canonical_line

    tracer = getattr(protocol, "tracer", None)
    return Snapshot(
        kind="soak",
        round_index=t,
        config={"schedule": schedule.to_spec(), "rounds": int(rounds)},
        state={
            "protocol": capture_protocol(protocol),
            "injector": capture_injector(injector),
            "allocations": np.asarray(allocations[:t]),
            "global_costs": np.asarray(global_costs[:t]),
            "violations": [[int(r), str(m)] for r, m in violations],
            "trace": (
                None
                if tracer is None
                else [canonical_line(r) for r in tracer.records]
            ),
        },
    )


def _restore_soak(protocol, injector, schedule, snapshot,
                  allocations, global_costs):
    import json

    from repro.ckpt.state import restore_injector, restore_protocol
    from repro.obs.records import record_from_dict

    if snapshot.kind != "soak":
        raise CheckpointError(
            f"soak resume needs a 'soak' snapshot, got {snapshot.kind!r}"
        )
    if snapshot.config["schedule"] != schedule.to_spec():
        raise CheckpointError(
            "the snapshot was taken under a different fault schedule; "
            "resuming it here would not reproduce the original soak"
        )
    restore_protocol(protocol, snapshot.state["protocol"])
    restore_injector(injector, snapshot.state["injector"])
    completed = int(snapshot.round_index)
    allocations[:completed] = np.asarray(snapshot.state["allocations"])
    global_costs[:completed] = np.asarray(snapshot.state["global_costs"])
    violations = [
        (int(r), str(m)) for r, m in snapshot.state["violations"]
    ]
    trace_lines = snapshot.state["trace"]
    tracer = getattr(protocol, "tracer", None)
    if trace_lines is not None and tracer is not None:
        tracer.records.clear()
        for line in trace_lines:
            tracer.records.append(record_from_dict(json.loads(line)))
    return completed, violations


def run_soak(
    protocol_factory: Callable[[], object],
    schedule: FaultSchedule,
    process: CostProcess,
    rounds: int,
    *,
    raise_on_violation: bool = False,
    checkpoint_every: int = 0,
    checkpoint_store=None,
    resume_from=None,
    round_hook: Callable[[int, object], None] | None = None,
) -> SoakReport:
    """Soak ``rounds`` rounds of chaos and check invariants after each.

    ``protocol_factory`` builds a *fresh* protocol (so one soak cannot
    leak state into the next and two calls with identical inputs are
    bit-identical); ``process`` supplies the per-round cost functions.

    ``checkpoint_every=K`` (with a ``checkpoint_store``) snapshots the
    full soak state after rounds K, 2K, ...; ``resume_from`` takes such
    a :class:`~repro.ckpt.snapshot.Snapshot` and continues it — the
    factory must rebuild the same configuration the original soak ran
    (guarded by comparing the snapshot's schedule spec). ``round_hook``
    runs after each round's bookkeeping (the CLI's ``--kill-at-round``
    uses it to die *after* the checkpoint is on disk).
    """
    if checkpoint_every and checkpoint_store is None:
        raise CheckpointError("checkpoint_every requires a checkpoint_store")
    protocol = protocol_factory()
    injector = ChaosInjector(protocol, schedule)
    num_workers = protocol.num_workers
    allocations = np.zeros((rounds, num_workers))
    global_costs = np.zeros(rounds)
    violations: list[tuple[int, str]] = []
    completed = 0
    resumed_from = None
    if resume_from is not None:
        completed, violations = _restore_soak(
            protocol, injector, schedule, resume_from,
            allocations, global_costs,
        )
        resumed_from = completed
    for t in range(completed + 1, rounds + 1):
        observation = RoundObservation(protocol)
        try:
            injector.apply(t)
            _, local, global_cost, straggler = protocol.run_round(
                t, process.costs_at(t)
            )
        except ReproError as exc:
            if raise_on_violation:
                raise
            violations.append((t, f"{type(exc).__name__}: {exc}"))
            break
        round_violations = check_round_invariants(
            protocol, observation, t, local, global_cost, straggler,
            restart_prefixes=injector.restart_prefixes,
        )
        if round_violations and raise_on_violation:
            raise InvariantViolation("; ".join(round_violations))
        violations.extend((t, message) for message in round_violations)
        allocations[t - 1] = protocol.allocation
        global_costs[t - 1] = global_cost
        completed = t
        if checkpoint_every and t % checkpoint_every == 0:
            checkpoint_store.save(
                _soak_snapshot(
                    protocol, injector, schedule, rounds, t,
                    allocations, global_costs, violations,
                )
            )
        if round_hook is not None:
            round_hook(t, protocol)
    metrics = protocol.metrics
    return SoakReport(
        protocol_name=getattr(protocol, "name", type(protocol).__name__),
        rounds_requested=rounds,
        rounds_completed=completed,
        violations=tuple(violations),
        events_applied=injector.events_applied,
        event_counts=injector.event_counts,
        allocations=allocations[:completed],
        global_costs=global_costs[:completed],
        final_roster=tuple(protocol.roster),
        virtual_time=float(protocol.cluster.engine.now),
        messages_total=metrics.messages_total,
        messages_blackholed=metrics.messages_blackholed,
        resumed_from=resumed_from,
    )

"""Algorithm 2: DOLBIE in the fully-distributed architecture, verbatim.

No master: every worker broadcasts its local cost ``l_{i,t}`` and local
step size ``alpha-bar_{i,t}`` (line 4), after which all workers
*independently* agree on the global cost, the straggler (deterministic
lowest-index tie-breaking, line 7) and the consensus step size
``alpha_t = min_j alpha-bar_{j,t}`` (line 6) — no extra coordination
messages are needed because the inputs are identical everywhere.

Non-stragglers then update risk-aversely (line 8) and send their new
decision *only to the straggler* (line 9) — the limited-information
design of §IV-B2: a non-straggler never learns the other workers'
decisions. The straggler closes the simplex constraint (line 12) and
caps its own local step size by Eq. (8) (line 13).

Per-round communication: ``N(N-1)`` broadcast messages plus ``N-1``
decisions — the O(N^2) row of §IV-C.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

import numpy as np

from repro.backend import ArrayBackend, get_backend
from repro.backend import kernels
from repro.core.interface import identify_straggler
from repro.core.ledger import LedgerEntry, RoundLedger
from repro.core.loop import RunResult
from repro.core.membership import add_worker_allocation
from repro.core.peerstore import LedgerBook, PeerStore
from repro.core.step_size import feasibility_cap, initial_step_size
from repro.costs.affine_vector import AffineCostVector
from repro.costs.base import CostFunction
from repro.costs.timevarying import CostProcess
from repro.exceptions import ConfigurationError, ProtocolError
from repro.net.aggtree import AggregationTree, segment_reduce
from repro.net.batch import BatchedCluster, DeliveryPlan, default_chunk_frames
from repro.net.cluster import Cluster
from repro.net.links import Link
from repro.net.message import FrameBatch, Message
from repro.net.node import LazyNodeTable, Node
from repro.net.topology import Topology, connected_components
from repro.obs.profiler import Profiler
from repro.obs.tracer import Tracer
from repro.protocols.tracing import emit_membership, emit_round
from repro.simplex.sampling import equal_split, is_feasible

__all__ = ["FullyDistributedDolbie"]

TAG_COST = "cost"
TAG_DECISION = "decision"
TAG_FLOOD = "flood"

#: Env default for the compiled tree round's shard thread count (the
#: ``shard_threads`` constructor parameter wins when passed).
SHARD_THREADS_ENV = "REPRO_SHARD_THREADS"

#: Env default for the compiled tree round's shard *process* count (the
#: ``shard_procs`` constructor parameter wins when passed). Processes
#: sidestep the GIL entirely — see :mod:`repro.backend.shardpool`.
SHARD_PROCS_ENV = "REPRO_SHARD_PROCS"

#: Env default for the struct-of-arrays peer store (the ``peer_store``
#: constructor parameter wins when passed). Off by default: tier-1 runs
#: the historical object peers.
PEER_STORE_ENV = "REPRO_PEER_STORE"

_warned_shard_procs_fallback = False


def _warn_shard_procs_fallback(exc: BaseException) -> None:
    """Warn once per process when ``shard_procs > 1`` was requested but
    the process layer could not be established (pool spawn failure, no
    shared-memory support); execution falls back to threads/serial."""
    global _warned_shard_procs_fallback
    if _warned_shard_procs_fallback:
        return
    _warned_shard_procs_fallback = True
    warnings.warn(
        "shard_procs > 1 requested but the process-parallel layer is "
        f"unavailable ({exc!r}); falling back to thread/serial shard "
        "execution (results are identical, just slower)",
        RuntimeWarning,
        stacklevel=3,
    )


class _Peer(Node):
    """One worker of Algorithm 2.

    With ``neighbors=None`` the peer assumes the paper's implicit
    all-to-all connectivity and messages everyone directly. With an
    explicit neighbor list (a connected :class:`~repro.net.topology.
    Topology`), per-round broadcasts and the decision unicasts are
    *flooded*: every first-seen flood frame is ingested (if addressed to
    this peer) and forwarded to all neighbors except the sender, with
    (kind, origin) deduplication per round. The computed allocations are
    identical; only message counts and virtual time grow.
    """

    def __init__(
        self,
        node_id: int,
        num_workers: int,
        x_init: float,
        alpha_bar: float,
        neighbors: list[int] | None = None,
        roster: "frozenset[int] | None" = None,
    ) -> None:
        super().__init__(node_id)
        self.num_workers = num_workers
        self.x = float(x_init)
        self.alpha_bar = float(alpha_bar)  # local step size (Eq. 8)
        self.neighbors = list(neighbors) if neighbors is not None else None
        self.cost_fn: CostFunction | None = None
        self.local_cost: float | None = None
        self.current_round = 0
        self.is_straggler = False
        self.global_cost: float | None = None
        self.straggler_id: int | None = None
        #: Workers this peer believes are alive (crash tolerance). The
        #: protocol passes ONE shared frozenset to all N peers — building
        #: N private ``set(range(N))`` copies was the construction-time
        #: O(N^2) wall at N=10,000. Roster changes always *rebind* (the
        #: ``-=`` below makes a new frozenset), never mutate in place, so
        #: sharing is safe.
        self.roster: "set[int] | frozenset[int]" = (
            roster if roster is not None else frozenset(range(num_workers))
        )
        self.cost_timeout = 1.0
        self._peer_costs: dict[int, tuple[float, float]] = {}
        self._peer_decisions: dict[int, float] = {}
        self._seen_floods: set[tuple[str, int]] = set()
        self.on(TAG_COST, self._on_cost)
        self.on(TAG_DECISION, self._on_decision)
        self.on(TAG_FLOOD, self._on_flood)

    def observe_round(
        self,
        round_index: int,
        cost_fn: CostFunction,
        arm_failure_detector: bool = False,
    ) -> None:
        """Lines 1-4: play, suffer, learn f, broadcast (l_i, alpha-bar_i).

        ``arm_failure_detector`` schedules a timeout after which peers
        whose cost broadcast never arrived are dropped from this peer's
        roster (every surviving peer drops the same set, so the rosters
        stay consistent without extra messages)."""
        self.current_round = round_index
        self.cost_fn = cost_fn
        self.local_cost = cost_fn(self.x)
        self.is_straggler = False
        self.global_cost = None
        self.straggler_id = None
        self._peer_costs = {self.node_id: (self.local_cost, self.alpha_bar)}
        self._peer_decisions = {}
        self._seen_floods = {("cost", self.node_id)}
        if arm_failure_detector:
            self.cluster.engine.schedule(
                self.cost_timeout, lambda r=round_index: self._on_cost_timeout(r)
            )
        if self.neighbors is None:
            self.broadcast(
                TAG_COST,
                {"l": self.local_cost, "alpha_bar": self.alpha_bar},
                round_index,
            )
        else:
            self._flood(
                kind="cost",
                origin=self.node_id,
                dst=-1,  # broadcast
                body={"l": self.local_cost, "alpha_bar": self.alpha_bar},
                round_index=round_index,
                exclude=None,
            )

    # -- flooding over a restricted topology ------------------------------
    def _flood(
        self,
        kind: str,
        origin: int,
        dst: int,
        body: dict[str, float],
        round_index: int,
        exclude: int | None,
    ) -> None:
        assert self.neighbors is not None
        payload = {"kind_is_cost": 1.0 if kind == "cost" else 0.0,
                   "origin": float(origin), "dst": float(dst), **body}
        for neighbor in self.neighbors:
            if neighbor != exclude:
                self.send(neighbor, TAG_FLOOD, payload, round_index)

    def _on_flood(self, message: Message) -> None:
        self._check_round(message)
        kind = "cost" if message.payload["kind_is_cost"] == 1.0 else "decision"
        origin = int(message.payload["origin"])
        dst = int(message.payload["dst"])
        key = (kind, origin)
        if key in self._seen_floods:
            return
        self._seen_floods.add(key)
        # Forward first so dissemination does not depend on local state.
        body = {
            k: v
            for k, v in message.payload.items()
            if k not in ("kind_is_cost", "origin", "dst")
        }
        self._flood(kind, origin, dst, body, message.round_index,
                    exclude=message.src)
        if kind == "cost":
            self._ingest_cost(origin, float(body["l"]),
                              float(body["alpha_bar"]), message.round_index)
        elif dst == self.node_id:
            self._ingest_decision(origin, float(body["x"]))

    def _check_round(self, message: Message) -> None:
        if message.round_index != self.current_round:
            raise ProtocolError(
                f"peer {self.node_id} got a round-{message.round_index} "
                f"{message.tag!r} during round {self.current_round}"
            )

    def _on_cost(self, message: Message) -> None:
        """Direct (complete-topology) cost broadcast."""
        self._check_round(message)
        if message.src in self._peer_costs:
            raise ProtocolError(f"duplicate cost broadcast from peer {message.src}")
        self._ingest_cost(
            message.src,
            float(message.payload["l"]),
            float(message.payload["alpha_bar"]),
            message.round_index,
        )

    def _ingest_cost(
        self, origin: int, cost: float, alpha_bar: float, round_index: int
    ) -> None:
        """Lines 5-10: once all costs arrive, everyone decides locally."""
        self._peer_costs[origin] = (cost, alpha_bar)
        if len(self._peer_costs) < len(self.roster):
            return
        self._coordinate(round_index)

    def _on_cost_timeout(self, round_index: int) -> None:
        """Drop peers whose cost broadcast never arrived (crash tolerance).

        Works on any topology because the controller only starts the
        round on peers forming one connected component of the *effective*
        graph (alive peers, partition-respecting edges): flooding reaches
        every participant, so by the timeout each participant holds
        exactly the participants' costs and all of them drop the same
        silent set — rosters stay consistent without extra messages."""
        if round_index != self.current_round or self.global_cost is not None:
            return
        missing = self.roster - set(self._peer_costs)
        if not missing:
            return
        if len(self.roster) - len(missing) < 2:
            raise ProtocolError(
                f"peer {self.node_id}: fewer than 2 peers responded in round "
                f"{round_index} ({sorted(missing)} silent); cannot continue"
            )
        self.roster -= missing
        self._coordinate(round_index)

    def _coordinate(self, round_index: int) -> None:
        ordered_ids = sorted(self._peer_costs)
        costs = np.array([self._peer_costs[j][0] for j in ordered_ids])
        alphas = np.array([self._peer_costs[j][1] for j in ordered_ids])
        self.straggler_id = ordered_ids[identify_straggler(costs)]  # line 7
        self.global_cost = float(costs.max())  # line 5
        alpha = float(alphas.min())  # line 6 (consensus step size)

        if self.node_id != self.straggler_id:
            assert self.cost_fn is not None
            x_prime = min(self.cost_fn.max_acceptable(self.global_cost), 1.0)
            x_prime = max(x_prime, self.x)
            self.x = self.x - alpha * (self.x - x_prime)  # line 8
            if self.neighbors is None:
                self.send(
                    self.straggler_id, TAG_DECISION, {"x": self.x}, round_index
                )  # line 9
            else:
                # Multi-hop unicast to the straggler via flooding.
                self._seen_floods.add(("decision", self.node_id))
                self._flood(
                    kind="decision",
                    origin=self.node_id,
                    dst=self.straggler_id,
                    body={"x": self.x},
                    round_index=round_index,
                    exclude=None,
                )
            # line 10: alpha-bar unchanged for non-stragglers.
            if self.neighbors is None and self._peer_decisions:
                raise ProtocolError(
                    f"peer {self.node_id} buffered decisions but is not the straggler"
                )
        else:
            self._maybe_close_round()

    def _on_decision(self, message: Message) -> None:
        """Lines 11-13 (straggler only).

        With heterogeneous link delays a decision can overtake a cost
        broadcast, arriving before this peer knows it is the straggler —
        buffer it and validate once the straggler identity is resolved.
        """
        self._check_round(message)
        if message.src in self._peer_decisions:
            raise ProtocolError(f"duplicate decision from peer {message.src}")
        self._ingest_decision(message.src, float(message.payload["x"]))

    def _ingest_decision(self, origin: int, x_new: float) -> None:
        self._peer_decisions[origin] = x_new
        if self.straggler_id is None:
            return  # straggler identity not yet known; buffered
        if self.straggler_id != self.node_id:
            raise ProtocolError(
                f"peer {self.node_id} received a decision but is not the straggler"
            )
        self._maybe_close_round()

    def _maybe_close_round(self) -> bool:
        """Straggler: close the simplex once all live decisions are in."""
        if len(self._peer_decisions) < len(self.roster) - 1:
            return False
        x_new = 1.0 - sum(self._peer_decisions.values())  # line 12
        if x_new < -1e-9:
            raise ProtocolError(
                f"straggler workload went negative ({x_new:.3e}); the verbatim "
                "Eq. (8) cap was insufficient this round"
            )
        # Snap dust to exactly zero — mirrors the centralized reference,
        # whose closing sum runs in a different order and would otherwise
        # drift onto a different trajectory via straggler-tie flips.
        self.x = x_new if x_new >= 1e-12 else 0.0
        self.alpha_bar = min(
            self.alpha_bar, feasibility_cap(self.x, len(self.roster))
        )  # line 13 / Eq. (8)
        return True


class _StorePeer(_Peer):
    """A flyweight ``_Peer`` whose scalar state lives in a
    :class:`~repro.core.peerstore.PeerStore`.

    Hydrated lazily (via the cluster's :class:`~repro.net.node.
    LazyNodeTable`) only when some code path addresses the peer as an
    object — the event engine, the python fast paths, chaos tooling,
    tests. Every scalar field the object peer stores on itself is a
    property over the packed arrays here, so views and array code see
    one state. Transient per-round containers (``_peer_costs``,
    ``_peer_decisions``, ``_seen_floods``) and the ``cost_fn`` object
    stay on the view: they hold python objects, exist only around
    event-engine rounds, and are empty on every peer a clean round
    never hydrates.
    """

    def __init__(self, store: PeerStore, node_id: int, num_workers: int) -> None:
        # Deliberately NOT calling _Peer/Node.__init__: both assign
        # defaults (x, received_count=0, failed=False, ...) that would
        # clobber live store state through the property setters.
        self._store = store
        self.node_id = int(node_id)
        self._handlers = {}
        self._cluster = None
        self.num_workers = int(num_workers)
        self.neighbors = None
        self.cost_fn = None
        self.cost_timeout = 1.0
        self._peer_costs = {}
        self._peer_decisions = {}
        self._seen_floods = set()
        self.on(TAG_COST, self._on_cost)
        self.on(TAG_DECISION, self._on_decision)
        self.on(TAG_FLOOD, self._on_flood)

    @property
    def x(self) -> float:
        return float(self._store.x[self.node_id])

    @x.setter
    def x(self, value: float) -> None:
        self._store.x[self.node_id] = value

    @property
    def alpha_bar(self) -> float:
        return float(self._store.alpha_bar[self.node_id])

    @alpha_bar.setter
    def alpha_bar(self, value: float) -> None:
        self._store.alpha_bar[self.node_id] = value

    @property
    def local_cost(self) -> float | None:
        value = self._store.local_cost[self.node_id]
        return None if np.isnan(value) else float(value)

    @local_cost.setter
    def local_cost(self, value: float | None) -> None:
        self._store.local_cost[self.node_id] = (
            np.nan if value is None else value
        )

    @property
    def current_round(self) -> int:
        return int(self._store.current_round[self.node_id])

    @current_round.setter
    def current_round(self, value: int) -> None:
        self._store.current_round[self.node_id] = value

    @property
    def is_straggler(self) -> bool:
        return bool(self._store.is_straggler[self.node_id])

    @is_straggler.setter
    def is_straggler(self, value: bool) -> None:
        self._store.is_straggler[self.node_id] = value

    @property
    def global_cost(self) -> float | None:
        value = self._store.global_cost[self.node_id]
        return None if np.isnan(value) else float(value)

    @global_cost.setter
    def global_cost(self, value: float | None) -> None:
        self._store.global_cost[self.node_id] = (
            np.nan if value is None else value
        )

    @property
    def straggler_id(self) -> int | None:
        value = int(self._store.straggler_id[self.node_id])
        return None if value < 0 else value

    @straggler_id.setter
    def straggler_id(self, value: int | None) -> None:
        self._store.straggler_id[self.node_id] = -1 if value is None else value

    @property
    def failed(self) -> bool:
        return bool(self._store.failed[self.node_id])

    @failed.setter
    def failed(self, value: bool) -> None:
        self._store.failed[self.node_id] = value

    @property
    def received_count(self) -> int:
        return int(self._store.received_count[self.node_id])

    @received_count.setter
    def received_count(self, value: int) -> None:
        self._store.received_count[self.node_id] = value

    @property
    def roster(self):
        return self._store.roster_of(self.node_id)

    @roster.setter
    def roster(self, value) -> None:
        self._store.set_roster(self.node_id, value)


class _PeerSeq(Sequence):
    """``protocol.peers`` in store mode: a sequence of lazily hydrated
    :class:`_StorePeer` views (the cluster's node cache is the single
    view cache, so ``peers[i] is cluster.node(i)``)."""

    def __init__(self, protocol: "FullyDistributedDolbie") -> None:
        self._protocol = protocol

    def __len__(self) -> int:
        return self._protocol.num_workers

    def __getitem__(self, index: int):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        if index < 0:
            index += len(self)
        return self._protocol.cluster.node(index)

    def __iter__(self):
        cluster = self._protocol.cluster
        for i in range(len(self)):
            yield cluster.node(i)


class _CompiledTreeRound:
    """Everything the compiled tree round precomputes for one roster.

    Built once per membership epoch (keyed by the participant tuple,
    like ``_tree_cache``) and reused every round until the protocol's
    ``_membership_dirty`` flag forces a resync or a roster change forces
    a rebuild. Holds three kinds of state:

    - **Index arrays** (int64, contiguous — the layout the njit kernels
      expect): participant order, shard segment bounds, member->shard
      maps, the up-tree combine order.
    - **Delivery plans** (:class:`repro.net.batch.DeliveryPlan`) for
      every fixed-layout phase — A (member reports, 2 payload fields),
      B/C (per-level consensus frames, 3 fields), D (member fan-out, 3
      fields), E (member decisions, 1 field), F (per-level partial sums,
      1 field). Payload values are never materialized; the plans carry
      only the accounting the eager path would produce.
    - **Mirrors and buffers**: float64 copies of every peer's ``x`` /
      ``alpha_bar`` (so a clean round never scans N Python objects), the
      per-shard reduction outputs, and bound ``replicate`` methods of
      the participants' ledger replicas.
    """

    def __init__(
        self, protocol: "FullyDistributedDolbie", participants: Sequence[int]
    ) -> None:
        self.key = tuple(participants)
        self.participants = list(participants)
        self.roster_tuple = self.key
        tree = AggregationTree.build(
            self.key, protocol.shard_size, protocol.branching
        )
        self.tree = tree
        n = protocol.num_workers
        m = tree.num_shards
        self.m = m
        self.parts = np.ascontiguousarray(tree.participants, dtype=np.int64)
        self.n_parts = int(self.parts.size)
        member_mask = np.zeros(n, dtype=bool)
        member_mask[self.parts] = True
        self.nonparticipants = np.flatnonzero(~member_mask)
        shard_sizes = np.array([len(s) for s in tree.shards], dtype=np.int64)
        self.full_offsets = np.concatenate(
            ([0], np.cumsum(shard_sizes)[:-1])
        ).astype(np.int64)
        self.ends = self.full_offsets + shard_sizes
        self.member_ids = np.ascontiguousarray(tree.member_ids, dtype=np.int64)
        self.member_head = np.ascontiguousarray(
            tree.member_head, dtype=np.int64
        )
        self.member_offsets = np.ascontiguousarray(
            tree.member_offsets, dtype=np.int64
        )
        self.member_shard = np.repeat(
            np.arange(m, dtype=np.int64), shard_sizes - 1
        )
        self.order = tree.up_order()
        self.parent64 = np.ascontiguousarray(tree.parent, dtype=np.int64)
        self.root = tree.root
        self.root_arr = np.array([tree.root])
        heads = np.ascontiguousarray(tree.heads, dtype=np.int64)
        batched = protocol.cluster.batched()
        self.batched = batched
        if self.member_ids.size:
            self.plan_a: DeliveryPlan | None = batched.plan(
                self.member_ids, self.member_head, 2
            )
            self.plan_d: DeliveryPlan | None = batched.plan(
                self.member_head, self.member_ids, 3
            )
            self.plan_e: DeliveryPlan | None = batched.plan(
                self.member_ids, self.member_head, 1
            )
        else:
            self.plan_a = self.plan_d = self.plan_e = None
        #: (level, parent-of-level, consensus plan, partial-sum plan) per
        #: up-tree level, deepest first — phase B's and F's shared walk.
        self.up_levels: list[
            tuple[np.ndarray, np.ndarray, DeliveryPlan, DeliveryPlan]
        ] = []
        for level in tree.levels[:0:-1]:
            lvl = np.ascontiguousarray(level, dtype=np.int64)
            par = self.parent64[lvl]
            self.up_levels.append(
                (
                    lvl,
                    par,
                    batched.plan(heads[lvl], heads[par], 3),
                    batched.plan(heads[lvl], heads[par], 1),
                )
            )
        #: (level, parent-of-level, plan) per down-tree level, top first
        #: — phase C's walk.
        self.down_levels: list[
            tuple[np.ndarray, np.ndarray, DeliveryPlan]
        ] = []
        for level in tree.levels[1:]:
            lvl = np.ascontiguousarray(level, dtype=np.int64)
            par = self.parent64[lvl]
            self.down_levels.append(
                (lvl, par, batched.plan(heads[par], heads[lvl], 3))
            )
        dtype = protocol.backend.dtype
        self.out_max = np.empty(m, dtype=dtype)
        self.out_arg = np.empty(m, dtype=np.int64)
        self.out_alpha = np.empty(m, dtype=dtype)
        self.acc_sum = np.empty(m, dtype=dtype)
        self.x_arr = np.empty(n, dtype=float)
        self.alpha_arr = np.empty(n, dtype=float)
        self._store = protocol._store
        #: Bound unchecked-append methods of the participants' ledger
        #: replicas (validated once on the authoritative ledger per
        #: round; see :meth:`repro.core.ledger.RoundLedger.replicate`).
        #: In store mode the :class:`~repro.core.peerstore.LedgerBook`
        #: fans entries out vectorized instead.
        if protocol._worker_ledgers is not None:
            self.replicas: list[Callable] = [
                protocol._worker_ledgers[i].replicate
                for i in self.participants
            ]
        else:
            self.replicas = []
        #: Process-parallel shard execution (Layer 10): one shared
        #: segment per compiled-round epoch carrying the static index
        #: arrays, the per-round staging vectors, and every kernel
        #: output; ``None`` when ``shard_procs == 1`` or the process
        #: layer is unavailable (thread/serial fallback).
        self.shm = None
        self.proc_pool = None
        if protocol.shard_procs > 1:
            try:
                from repro.backend import shardpool

                pool = shardpool.get_pool(protocol.shard_procs)
                shm = shardpool.RoundShm(
                    {
                        "parts": (np.int64, (self.n_parts,)),
                        "full_offsets": (np.int64, (m,)),
                        "ends": (np.int64, (m,)),
                        "local": (dtype, (n,)),
                        "alphas": (np.float64, (n,)),
                        "x_new": (dtype, (n,)),
                        "ordered_local": (dtype, (self.n_parts,)),
                        "ordered_alpha": (np.float64, (self.n_parts,)),
                        "ordered_x": (dtype, (self.n_parts,)),
                        "out_max": (dtype, (m,)),
                        "out_arg": (np.int64, (m,)),
                        "out_alpha": (dtype, (m,)),
                        "acc_sum": (dtype, (m,)),
                    }
                )
            except Exception as exc:  # fall back to threads/serial
                _warn_shard_procs_fallback(exc)
            else:
                arrays = shm.arrays
                arrays["parts"][:] = self.parts
                arrays["full_offsets"][:] = self.full_offsets
                arrays["ends"][:] = self.ends
                # The segment's views become the canonical buffers so
                # parent-side serial code (combine passes, final
                # writes) reads the children's output zero-copy.
                self.parts = arrays["parts"]
                self.full_offsets = arrays["full_offsets"]
                self.ends = arrays["ends"]
                self.out_max = arrays["out_max"]
                self.out_arg = arrays["out_arg"]
                self.out_alpha = arrays["out_alpha"]
                self.acc_sum = arrays["acc_sum"]
                self.alpha_arr = arrays["alphas"]
                self.shm = shm
                self.proc_pool = pool

    def release(self) -> None:
        """Tear down epoch-owned process resources (the shared segment);
        called on every membership-churn invalidation. The worker pool
        itself is process-global and outlives epochs."""
        if self.shm is not None:
            shm, self.shm = self.shm, None
            self.proc_pool = None
            shm.release()

    def resync(self, peers: "Sequence[_Peer]") -> None:
        """Refresh the x/alpha mirrors from live peer state (needed
        whenever a non-compiled round or a membership event touched the
        peers since the last compiled round)."""
        if self._store is not None:
            self.x_arr[:] = self._store.x
            self.alpha_arr[:] = self._store.alpha_bar
        else:
            self.x_arr[:] = [p.x for p in peers]
            self.alpha_arr[:] = [p.alpha_bar for p in peers]


class FullyDistributedDolbie:
    """Run Algorithm 2 on the discrete-event network substrate."""

    name = "DOLBIE/fully-distributed"

    def __init__(
        self,
        num_workers: int,
        initial_allocation: np.ndarray | None = None,
        alpha_1: float | None = None,
        link: Link | None = None,
        topology: Topology | None = None,
        use_fast_path: bool = True,
        tracer: Tracer | None = None,
        profiler: Profiler | None = None,
        aggregation: str = "flat",
        shard_size: int | None = None,
        branching: int = 4,
        backend: "str | ArrayBackend | None" = None,
        shard_threads: int | None = None,
        shard_procs: int | None = None,
        peer_store: bool | None = None,
    ) -> None:
        """``topology`` restricts connectivity to a connected graph (see
        :class:`repro.net.topology.Topology`); per-round information then
        spreads by flooding instead of direct all-to-all sends. ``None``
        keeps the paper's implicit complete graph.

        ``use_fast_path`` enables the batched round-synchronous fast path
        (:mod:`repro.net.batch`) on healthy all-to-all rounds; it is
        bit-identical to the event engine and disabled automatically
        whenever chaos hooks, dead peers, or a restricted topology are in
        play (see :attr:`fast_rounds` / :attr:`fallback_rounds`).

        ``aggregation`` selects the round's exchange pattern. ``"flat"``
        (default) is the paper's all-to-all broadcast — the bit-pinned
        reference. ``"tree"`` shards the roster and exchanges aggregates
        over a ``branching``-ary tree of shard heads
        (:mod:`repro.net.aggtree`): O(N) frames per round instead of
        O(N^2), identical consensus outcomes (exact semilattice
        reductions), a differently-associated decision sum (regret impact
        measured, see ``docs/performance.md``). Tree rounds run on the
        batched fast path only; rounds that are not batch-eligible
        (chaos, inconsistent rosters) degrade to the flat event engine.
        ``shard_size`` defaults to ~sqrt(N).

        ``backend`` picks the float dtype of the fast paths'
        array arithmetic once, at config time (:mod:`repro.backend`):
        ``"numpy64"`` (default, bit-identical to the historical code) or
        ``"numpy32"``. Event-engine fallback rounds always compute in
        float64 — the backend governs the vectorized paths only.
        ``"compiled"`` keeps float64 arithmetic but routes healthy tree
        rounds through the fused kernels of
        :mod:`repro.backend.kernels` plus cached delivery plans — bit-
        identical to the python tree path (same traces, same ledgers,
        same metrics), just faster and without materializing the ~3N
        per-round frames.

        ``shard_threads`` (default ``$REPRO_SHARD_THREADS`` or 1) splits
        the compiled round's per-shard kernels across a persistent
        thread pool. Each thread writes a disjoint shard range, so any
        thread count is bit-identical to serial; actual parallelism
        requires numba (the njit kernels release the GIL — the numpy
        fallbacks keep threading correct but not faster).

        ``shard_procs`` (default ``$REPRO_SHARD_PROCS`` or 1) fans the
        same disjoint shard ranges over a persistent **process** pool
        instead, with the round vectors living in one
        ``multiprocessing.shared_memory`` segment per compiled-round
        epoch (:mod:`repro.backend.shardpool`) — no per-round pickling
        of (N,) arrays. Same kernels, same ``np.linspace`` range split,
        disjoint output slices: any process count is bit-identical to
        serial. Beats threads wherever numba is absent (numpy holds the
        GIL) and scales past it where numba is present. If the process
        layer cannot be established the round falls back to the
        thread/serial path with a one-time ``RuntimeWarning``; values
        above 1 apply to compiled tree rounds only.

        ``peer_store`` (default ``$REPRO_PEER_STORE`` or off) keeps all
        peer scalar state in packed struct-of-arrays columns
        (:class:`repro.core.peerstore.PeerStore`) instead of N python
        peer objects, with node objects hydrated lazily as flyweight
        views over the columns. Bit-identical observables — views read
        and write the same arrays the compiled round uses — but roster
        construction and checkpointing become O(N) array allocations,
        which is what makes N=10⁶ tractable. Requires
        ``topology=None`` (the complete graph; sparse-topology flooding
        keeps per-peer handler state that the store does not model).

        ``tracer``/``profiler`` attach the observability layer (see
        :mod:`repro.obs`); trace payloads are identical on both
        execution paths."""
        if num_workers < 2:
            raise ConfigurationError(f"need >= 2 workers, got {num_workers}")
        if aggregation not in ("flat", "tree"):
            raise ConfigurationError(
                f"aggregation must be 'flat' or 'tree', got {aggregation!r}"
            )
        if aggregation == "tree" and topology is not None:
            raise ConfigurationError(
                "tree aggregation assumes the complete graph; combine it "
                "with topology=None (flooding over a sparse topology "
                "already avoids all-to-all sends)"
            )
        self.aggregation = aggregation
        self.shard_size = None if shard_size is None else int(shard_size)
        self.branching = int(branching)
        if self.shard_size is not None and self.shard_size < 2:
            raise ConfigurationError(
                f"shard_size must be >= 2, got {self.shard_size}"
            )
        if self.branching < 2:
            raise ConfigurationError(
                f"branching must be >= 2, got {self.branching}"
            )
        self.backend = get_backend(backend)
        if shard_threads is None:
            raw = os.environ.get(SHARD_THREADS_ENV)
            shard_threads = int(raw) if raw else 1
        self.shard_threads = int(shard_threads)
        if self.shard_threads < 1:
            raise ConfigurationError(
                f"shard_threads must be >= 1, got {self.shard_threads}"
            )
        if shard_procs is None:
            raw = os.environ.get(SHARD_PROCS_ENV)
            shard_procs = int(raw) if raw else 1
        self.shard_procs = int(shard_procs)
        if self.shard_procs < 1:
            raise ConfigurationError(
                f"shard_procs must be >= 1, got {self.shard_procs}"
            )
        if peer_store is None:
            raw = os.environ.get(PEER_STORE_ENV, "")
            peer_store = raw.strip().lower() in ("1", "true", "yes", "on")
        self.peer_store = bool(peer_store)
        if self.peer_store and topology is not None:
            raise ConfigurationError(
                "peer_store requires topology=None (the struct-of-arrays "
                "store does not model per-peer flooding state)"
            )
        self._shard_pool: ThreadPoolExecutor | None = None
        self._chunk_frames = default_chunk_frames()
        self.num_workers = int(num_workers)
        self.topology = topology
        if topology is not None and topology.num_nodes != num_workers:
            raise ConfigurationError(
                f"topology has {topology.num_nodes} nodes for "
                f"{num_workers} workers"
            )
        x0 = (
            equal_split(num_workers)
            if initial_allocation is None
            else np.asarray(initial_allocation, dtype=float)
        )
        if not is_feasible(x0) or x0.size != num_workers:
            raise ConfigurationError("initial allocation must be feasible")
        if alpha_1 is None:
            alpha_1 = initial_step_size(x0)
        full_roster = frozenset(range(num_workers))  # shared, never mutated
        if self.peer_store:
            # Struct-of-arrays mode: peer scalar state lives in packed
            # columns; node objects are flyweight views hydrated only
            # for the ids some code path actually addresses.
            self._store: PeerStore | None = PeerStore(
                num_workers, x0, float(alpha_1), roster=full_roster
            )
            table = LazyNodeTable(
                num_workers,
                self._hydrate_peer,
                self._store.received_count,
                self._store.failed,
            )
            self.cluster = Cluster(table, default_link=link)
            self.peers: "Sequence[_Peer]" = _PeerSeq(self)
            self._alive: "list[bool] | np.ndarray" = np.ones(
                num_workers, dtype=bool
            )
        else:
            self._store = None
            self.peers = [
                _Peer(
                    i,
                    num_workers,
                    x0[i],
                    alpha_1,
                    neighbors=(
                        None if topology is None else topology.neighbors(i)
                    ),
                    roster=full_roster,
                )
                for i in range(num_workers)
            ]
            self.cluster = Cluster(self.peers, default_link=link)
            self._alive = [True] * num_workers
        #: Alive peers currently unreachable from the primary component
        #: (cut off by a partition or a dead relay); their shares are
        #: folded into the straggler until the topology heals.
        self._stalled: set[int] = set()
        self.use_fast_path = bool(use_fast_path)
        #: Rounds executed by the batched fast path / the event engine.
        self.fast_rounds = 0
        self.fallback_rounds = 0
        #: Rounds that used hierarchical (tree) aggregation — a subset of
        #: :attr:`fast_rounds`.
        self.tree_rounds = 0
        self._fast_cache: tuple | None = None
        self._tree_cache: tuple | None = None
        #: The compiled tree round's per-roster cache, and whether its
        #: mirrors/invariants can be trusted. ``_membership_dirty`` is
        #: cleared only at the end of a successful compiled tree round;
        #: every other way peer state can change (event/flat rounds,
        #: crash/rejoin/readmit, ledger restore, checkpoint restore)
        #: sets it back, which routes the next round through the full
        #: membership-resolution path.
        self._compiled_cache: _CompiledTreeRound | None = None
        self._membership_dirty = True
        #: The overlay used by the most recent tree round (``None`` until
        #: one runs) — the chaos invariant checker revalidates it against
        #: the roster after every round.
        self.last_tree: AggregationTree | None = None
        self.tracer = tracer
        self.profiler = profiler
        self.cluster.tracer = tracer
        #: Authoritative round ledger (one entry per completed round) and
        #: each peer's replica of it. A crash wipes the peer's replica —
        #: process memory is gone — while a checkpointed *restart*
        #: restores it (see :mod:`repro.core.ledger`).
        self.ledger = RoundLedger()
        if self.peer_store:
            # Span-compressed replica bookkeeping: healthy replicas are
            # contiguous runs of the authority, tracked as two int64
            # columns instead of N RoundLedger objects.
            self._worker_ledgers: "dict[int, RoundLedger] | None" = None
            self._ledger_book: LedgerBook | None = LedgerBook(
                num_workers, self.ledger
            )
        else:
            self._worker_ledgers = {
                i: RoundLedger() for i in range(num_workers)
            }
            self._ledger_book = None

    def _hydrate_peer(self, node_id: int) -> "_StorePeer":
        """Factory the lazy node table uses to build flyweight peer
        views over the store columns (cached by the cluster)."""
        return _StorePeer(self._store, node_id, self.num_workers)

    def crash_worker(self, worker: int) -> None:
        """Silence ``worker`` from the next round on. Surviving peers'
        failure detectors drop it consistently; its share folds into that
        round's straggler. On a sparse topology the survivors degrade to
        the largest still-connected component (a crashed relay stalls the
        peers it cut off — see :meth:`run_round`)."""
        if not 0 <= worker < self.num_workers:
            raise ConfigurationError(f"worker index {worker} out of range")
        self._alive[worker] = False
        self._stalled.discard(worker)
        if self._store is not None:
            self._store.failed[worker] = True  # no need to hydrate a view
        else:
            self.peers[worker].failed = True
        self._invalidate_compiled_round()
        # Process memory is gone: the peer's ledger replica dies with it.
        if self._ledger_book is not None:
            self._ledger_book.wipe(worker)
        else:
            self._worker_ledgers[worker] = RoundLedger()
        emit_membership(
            self.tracer, self.cluster.trace_round, "crash", [worker],
            self.roster,
        )

    def rejoin_worker(self, worker: int, share: float | None = None) -> None:
        """Re-admit ``worker`` (crash recovery / partition heal).

        Revives the process if it was dead and re-shards the workload:
        the newcomer receives ``share`` (default ``1/(N+1)`` on the
        post-join fleet) via :func:`repro.core.membership.
        add_worker_allocation`'s proportional scaling, every live peer's
        roster is re-agreed to include it, and its local step size is
        re-capped by the Eq. (8) rule so its first update stays feasible.
        If the peer is still unreachable (partition not yet healed) the
        next round's reachability pass will stall it again.
        """
        if not 0 <= worker < self.num_workers:
            raise ConfigurationError(f"worker index {worker} out of range")
        if self._alive[worker] and worker not in self._stalled:
            raise ConfigurationError(f"worker {worker} is already active")
        self._alive[worker] = True
        if self._store is not None:
            self._store.failed[worker] = False
        else:
            self.peers[worker].failed = False
        self._invalidate_compiled_round()
        self._readmit(worker, share)
        emit_membership(
            self.tracer, self.cluster.trace_round, "rejoin", [worker],
            self.roster,
        )

    def worker_ledger(self, worker: int) -> RoundLedger:
        """``worker``'s replica of the round ledger."""
        if self._ledger_book is not None:
            return self._ledger_book.worker_ledger(worker)
        return self._worker_ledgers[worker]

    def restore_worker_ledger(
        self, worker: int, entries: Sequence[LedgerEntry]
    ) -> None:
        """Reload ``worker``'s ledger replica from a checkpoint (the
        restart fault's recovery path; a plain rejoin starts empty)."""
        if self._ledger_book is not None:
            self._ledger_book.restore_replica(worker, entries)
        else:
            self._worker_ledgers[worker] = RoundLedger(entries)
        # The compiled cache holds bound methods of the old replica.
        self._invalidate_compiled_round()

    def _invalidate_compiled_round(self) -> None:
        """Drop the compiled round's cache and mark its mirrors stale.

        Called on every mutation the compiled round does not itself
        perform — crash/rejoin/restore change the roster or replace a
        ledger replica the cache holds bound methods of; ``_readmit``
        rewrites allocations and step sizes behind the mirrors."""
        self._membership_dirty = True
        if self._compiled_cache is not None:
            # Epoch teardown: the shared segment (if any) belongs to the
            # dropped round cache and must be unlinked now, not at GC.
            self._compiled_cache.release()
            self._compiled_cache = None

    def _participants(self) -> list[int]:
        """Peers expected to take part in the next round."""
        if self._store is not None and not self._stalled:
            return np.flatnonzero(self._alive).tolist()
        return [
            i
            for i in range(self.num_workers)
            if self._alive[i] and i not in self._stalled
        ]

    def _readmit(self, worker: int, share: float | None = None) -> None:
        """Reshard the live allocation over ``participants + worker`` and
        re-merge every participant's roster (the heal-side half of the
        failure-detector protocol)."""
        self._invalidate_compiled_round()
        self._stalled.discard(worker)
        incumbents = [i for i in self._participants() if i != worker]
        if not incumbents:
            raise ConfigurationError(
                f"cannot rejoin worker {worker}: no live quorum to join"
            )
        if self._store is not None:
            self._readmit_store(worker, incumbents, share)
            return
        if incumbents and all(
            worker in self.peers[i].roster for i in incumbents
        ):
            return  # never dropped from the live rosters; shares intact
        x_live = np.array([self.peers[i].x for i in incumbents])
        # A peer that crashed or stalled at this same round boundary
        # still holds its share (the failure detectors only fold it once
        # a round runs), so the incumbents' mass can sum below 1; absorb
        # any such residual proportionally before resharding.
        total = float(x_live.sum())
        if total > 1e-12:
            x_live = x_live / total
        else:  # pathological: the departed peers held ~all the workload
            x_live = np.full(len(incumbents), 1.0 / len(incumbents))
        x_new = add_worker_allocation(x_live, share)
        for i, value in zip(incumbents, x_new[:-1]):
            self.peers[i].x = float(value)
        self.peers[worker].x = float(x_new[-1])
        new_roster = frozenset(incumbents) | {worker}
        for i in new_roster:
            # One shared frozenset (rebound, never mutated, on later
            # divergence) — assigning N private copies is O(N^2).
            self.peers[i].roster = new_roster
        consensus = min(self.peers[i].alpha_bar for i in incumbents)
        cap = feasibility_cap(float(x_new[-1]), len(new_roster))
        self.peers[worker].alpha_bar = min(consensus, cap)

    def _readmit_store(
        self, worker: int, incumbents: list[int], share: float | None
    ) -> None:
        """:meth:`_readmit` over the packed store: the same arithmetic
        as the object path, expressed as array slices — no peer views
        are hydrated."""
        store = self._store
        if not store.roster_overrides:
            # Every incumbent shares the one roster: the object path's
            # all(...) membership scan collapses to a single lookup.
            if worker in store.shared_roster:
                return  # never dropped from the live rosters
        elif all(worker in store.roster_of(i) for i in incumbents):
            return
        inc = np.asarray(incumbents, dtype=np.int64)
        x_live = store.x[inc].copy()
        total = float(x_live.sum())
        if total > 1e-12:
            x_live = x_live / total
        else:  # pathological: the departed peers held ~all the workload
            x_live = np.full(len(incumbents), 1.0 / len(incumbents))
        x_new = add_worker_allocation(x_live, share)
        store.x[inc] = x_new[:-1]
        store.x[worker] = float(x_new[-1])
        new_roster = frozenset(incumbents) | {worker}
        # Dead and stalled peers keep the roster they last saw, exactly
        # like the object path (which simply never touches them).
        stale = np.flatnonzero(~np.asarray(self._alive)).tolist()
        stale.extend(self._stalled)
        store.rebind_roster(new_roster, stale_ids=stale)
        consensus = float(store.alpha_bar[inc].min())
        cap = feasibility_cap(float(x_new[-1]), len(new_roster))
        store.alpha_bar[worker] = min(consensus, cap)

    def _reachable_components(self) -> list[set[int]]:
        """Components of the effective graph: alive peers, restricted to
        topology edges the current partition still allows."""
        alive = {i for i in range(self.num_workers) if self._alive[i]}
        if self.topology is None and not self.cluster.partitioned and alive:
            # Complete graph, no partition: any alive set is one component.
            # Skips the O(N^2) traversal on every healthy round.
            return [alive]

        def neighbors(i: int) -> list[int]:
            if self.topology is None:
                candidates: Sequence[int] = range(self.num_workers)
            else:
                candidates = self.topology.neighbors(i)
            return [
                j
                for j in candidates
                if j != i and j in alive and self.cluster.can_communicate(i, j)
            ]

        return connected_components(alive, neighbors)

    @property
    def alive_workers(self) -> list[int]:
        """Peers whose process is running (may include peers stalled
        behind a partition — see :attr:`roster` for the coordinating
        quorum)."""
        if self._store is not None:
            return np.flatnonzero(self._alive).tolist()
        return [i for i in range(self.num_workers) if self._alive[i]]

    @property
    def roster(self) -> list[int]:
        """The quorum currently coordinating rounds: alive peers
        reachable from the primary component. The allocation sums to 1
        over exactly this set, and every listed peer's local roster
        agrees with it after each completed round."""
        return self._participants()

    @property
    def allocation(self) -> np.ndarray:
        if self._store is not None:
            return self._store.x.copy()
        return np.array([p.x for p in self.peers])

    @property
    def alpha(self) -> float:
        """The consensus step size the *next* round will use (the min
        over the active quorum's local step sizes)."""
        if self._store is not None:
            return float(self._store.alpha_bar[self._participants()].min())
        return min(self.peers[i].alpha_bar for i in self._participants())

    @property
    def metrics(self):
        return self.cluster.metrics

    def _fast_eligible(self, participants: list[int]) -> bool:
        """Whether this round can run on the batched fast path.

        Requires the paper's implicit all-to-all connectivity, a full
        healthy roster (no dead or stalled peers, every peer's local
        roster complete), and a chaos-free cluster with no frames in
        flight (:meth:`~repro.net.cluster.Cluster.batch_eligible`).
        """
        return (
            self.use_fast_path
            and self.aggregation == "flat"
            and self.topology is None
            and len(participants) == self.num_workers
            and self._rosters_full()
            and self.cluster.batch_eligible()
        )

    def _rosters_full(self) -> bool:
        """Every peer's local roster is complete (length N)."""
        if self._store is not None:
            # The store's roster contract makes this O(overrides), not
            # O(N): peers without an override share one frozenset.
            store = self._store
            return len(store.shared_roster) == self.num_workers and all(
                len(r) == self.num_workers
                for r in store.roster_overrides.values()
            )
        return all(len(p.roster) == self.num_workers for p in self.peers)

    def _tree_eligible(self, participants: list[int]) -> bool:
        """Whether this round can run hierarchical (tree) aggregation.

        Unlike the flat fast path, the tree tolerates a *degraded* roster
        — the overlay is rebuilt from whatever quorum survives — but it
        still needs agreement: every participant's local roster must
        equal the participant set (a pending failure detection runs one
        flat event-engine round first, which is also what re-agrees the
        rosters), and the cluster must be batch-eligible (no chaos hooks,
        nothing in flight). Roster agreement is checked by length — O(1)
        per peer, the same proxy the flat fast path uses — which is
        sound because rosters only ever change collectively (timeout
        shrink, readmit rebind).
        """
        return (
            self.use_fast_path
            and self.aggregation == "tree"
            and self.topology is None
            and len(participants) >= 2
            and self._rosters_agree(participants)
            and self.cluster.batch_eligible()
        )

    def _rosters_agree(self, participants: list[int]) -> bool:
        """Every participant's local roster matches the participant set
        (by length — the O(1)-per-peer proxy documented above)."""
        if self._store is not None:
            store = self._store
            if not store.roster_overrides:
                # One shared roster for everyone — a single length check
                # replaces the N-peer scan (and hydrates no views).
                return len(store.shared_roster) == len(participants)
            want = len(participants)
            return all(
                len(store.roster_of(i)) == want for i in participants
            )
        return all(
            len(self.peers[i].roster) == len(participants)
            for i in participants
        )

    def _tree_structures(self, participants: list[int]) -> tuple:
        """Cached overlay + index arrays for the current roster.

        Rebuilt (deterministically, from the sorted roster alone — every
        peer could do the same locally) whenever membership changes; see
        :class:`repro.net.aggtree.AggregationTree`.
        """
        key = tuple(participants)
        if self._tree_cache is None or self._tree_cache[0] != key:
            tree = AggregationTree.build(key, self.shard_size, self.branching)
            parts = np.array(key)
            shard_sizes = np.array([len(s) for s in tree.shards])
            # Segment starts of the *full* shards (head included) within
            # participant order, and each member's shard index.
            full_offsets = np.concatenate(([0], np.cumsum(shard_sizes)[:-1]))
            member_counts = shard_sizes - 1
            member_shard = np.repeat(np.arange(tree.num_shards), member_counts)
            self._tree_cache = (
                key, tree, parts, full_offsets, member_shard,
                self.cluster.batched(),
            )
        return self._tree_cache

    def _fast_structures(self) -> tuple:
        """Cached frame-order index structures for the batched phases.

        Frame ``k`` of the cost broadcast is sender ``src[k]`` to receiver
        ``dst[k]``, in the exact event-engine send order (peers in id
        order, each broadcasting to ids ascending, skipping itself).
        ``in_frames[j]`` lists the frame indices addressed to peer ``j``
        in ascending order — ascending frame index doubles as the
        event-engine's same-time delivery tie-break.
        """
        if self._fast_cache is None:
            n = self.num_workers
            ids = np.arange(n)
            grid = np.tile(ids, (n, 1))
            src = np.repeat(ids, n - 1)
            dst = grid[grid != ids[:, None]]
            # Row j of the same id-minus-self matrix is receiver j's
            # senders (ascending), mirroring sender i's destinations.
            senders = dst.reshape(n, n - 1)
            # Frame from i to j sits at i*(n-1) + (j if j < i else j - 1).
            offsets = np.where(ids[:, None] < senders, ids[:, None], ids[:, None] - 1)
            in_frames = senders * (n - 1) + offsets
            self._fast_cache = (self.cluster.batched(), src, dst, in_frames)
        return self._fast_cache

    def _compiled_structures(
        self, participants: list[int]
    ) -> _CompiledTreeRound:
        """The compiled round's per-roster cache (rebuilt on membership
        change, like ``_tree_cache``)."""
        cc = self._compiled_cache
        if cc is None or cc.key != tuple(participants):
            cc = self._compiled_cache = _CompiledTreeRound(self, participants)
        return cc

    def _map_ranges(self, total: int, fn) -> None:
        """Run ``fn(lo, hi)`` over a partition of ``range(total)``.

        With ``shard_threads == 1`` this is one direct ``fn(0, total)``
        call. Otherwise the ranges are dispatched to the persistent
        shard pool and joined. Every kernel passed here writes only its
        own ``[lo, hi)`` output rows, so the merged result is the same
        bytes for any thread count — the deterministic shard-ordered
        merge is the disjointness of the ranges. Parallel *speed* needs
        numba (the njit kernels release the GIL); without it the numpy
        fallbacks still run correctly, just serialized by the GIL.
        """
        threads = self.shard_threads
        if threads <= 1 or total <= 1:
            fn(0, total)
            return
        if self._shard_pool is None:
            self._shard_pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="repro-shard"
            )
        bounds = np.linspace(0, total, min(threads, total) + 1).astype(int)
        futures = [
            self._shard_pool.submit(fn, int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
            if hi > lo
        ]
        for future in futures:
            future.result()

    def _run_round_tree_compiled(
        self,
        round_index: int,
        costs: Sequence[CostFunction],
        x_played: np.ndarray,
        participants: list[int],
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        """The tree round on the compiled backend — same phases A-G as
        :meth:`_run_round_fast_tree`, bit-identical observables.

        What changes is purely mechanical: payload packing, the shard
        reductions, and the documented-order decision sums run as fused
        kernels (:mod:`repro.backend.kernels`) over preallocated flat
        buffers, optionally split across shard threads; deliveries go
        through cached :class:`~repro.net.batch.DeliveryPlan` objects,
        so no FrameBatch — and none of the ~3N per-round payload
        columns — is ever materialized. Every delay draw, metric bump,
        arrival time, and peer/ledger write matches the python tree
        path (pinned by the integration trace-diff test and the kernel
        property suite).

        Peer writes are slimmed to the fields any later code path can
        observe before the next round rewrites them (``current_round``,
        ``global_cost``, ``straggler_id``, ``x``, the straggler's
        ``alpha_bar`` cap — what the chaos invariants, the public
        properties, and the next round's inputs read). Fields the
        python tree path also rewrites every round but nothing reads
        between rounds (``cost_fn``, ``local_cost``, ``is_straggler``,
        ``_peer_decisions``) are skipped; an event-engine fallback
        round re-initializes all of them via ``observe_round`` before
        use.
        """
        n = self.num_workers
        peers = self.peers
        backend = self.backend
        cc = self._compiled_structures(participants)
        if self._membership_dirty:
            cc.resync(peers)
        m = cc.m
        parts = cc.parts
        t0 = self.cluster.engine.now
        x = backend.asarray(x_played)
        alphas = cc.alpha_arr
        vector = AffineCostVector.coerce(costs)
        if vector is not None:
            vector = vector.astype(backend.dtype)
            local = vector.values(x)
        else:
            local = backend.asarray([fn(xi) for fn, xi in zip(costs, x)])
        backend.ensure(local, "local costs")

        # Participant-ordered views (phase A payloads + reduction input).
        shm = cc.shm
        if shm is not None:
            from repro.backend import shardpool

            # Stage the one freshly computed input into the shared
            # segment; alphas already live there (cc.alpha_arr *is* the
            # segment's view), and all outputs are written in place by
            # the children — nothing else crosses a process boundary.
            shm.arrays["local"][:] = local
            ordered_local = shm.arrays["ordered_local"]
            ordered_alpha = shm.arrays["ordered_alpha"]
            shardpool.run_ranges(
                cc.proc_pool, shm, cc.n_parts, "tree_gather_reports",
                self.shard_procs,
            )
        else:
            ordered_local = np.empty(cc.n_parts, dtype=local.dtype)
            ordered_alpha = np.empty(cc.n_parts, dtype=alphas.dtype)
            self._map_ranges(
                cc.n_parts,
                lambda lo, hi: (
                    kernels.gather(local, parts, ordered_local, lo, hi),
                    kernels.gather(alphas, parts, ordered_alpha, lo, hi),
                ),
            )

        # Lines 5-7 as flat reductions, kept (cheap) to cross-check the
        # tree combine exactly like the python tree path does.
        straggler = int(parts[identify_straggler(ordered_local)])
        global_cost = float(ordered_local.max())
        alpha = float(ordered_alpha.min())

        # Phase A: member cost reports to their shard head.
        events = 0
        final_now = t0
        if cc.plan_a is not None:
            report_arrivals = cc.plan_a.deliver(round_index, t0)
            events += report_arrivals.size
            final_now = max(final_now, float(report_arrivals.max()))
            head_ready = np.maximum(
                segment_reduce(
                    np.maximum, report_arrivals, cc.member_offsets, -np.inf
                ),
                t0,
            )
        else:
            head_ready = np.full(m, t0)

        # Per-shard consensus + up-tree semilattice combine (phase B's
        # aggregates), fused.
        out_max, out_arg, out_alpha = cc.out_max, cc.out_arg, cc.out_alpha
        if shm is not None:
            shardpool.run_ranges(
                cc.proc_pool, shm, m, "tree_consensus", self.shard_procs
            )
        else:
            self._map_ranges(
                m,
                lambda lo, hi: kernels.shard_consensus(
                    ordered_local, ordered_alpha, parts, cc.full_offsets,
                    cc.ends, out_max, out_arg, out_alpha, lo, hi,
                ),
            )
        kernels.combine_up_consensus(
            out_max, out_arg, out_alpha, cc.order, cc.parent64
        )
        assert (
            float(out_max[0]) == global_cost
            and int(out_arg[0]) == straggler
            and float(out_alpha[0]) == alpha
        ), "tree aggregation diverged from the flat reduction"

        # Phase B: aggregates climb the head tree, deepest level first.
        up_ready = head_ready.copy()
        for level, parent_lv, plan_b, _plan_f in cc.up_levels:
            arrivals = plan_b.deliver(round_index, up_ready[level])
            events += arrivals.size
            final_now = max(final_now, float(arrivals.max()))
            kernels.scatter_max(up_ready, parent_lv, arrivals)

        # Phase C: the global triple descends the head tree.
        down_ready = np.full(m, np.inf)
        down_ready[0] = up_ready[0]
        for level, parent_lv, plan_c in cc.down_levels:
            arrivals = plan_c.deliver(round_index, down_ready[parent_lv])
            events += arrivals.size
            final_now = max(final_now, float(arrivals.max()))
            down_ready[level] = arrivals

        # Phase D: heads fan the triple out to their members.
        if cc.plan_d is not None:
            member_know = cc.plan_d.deliver(
                round_index,
                kernels.phase_d_sendtimes(down_ready, cc.member_shard),
            )
            events += member_know.size
            final_now = max(final_now, float(member_know.max()))
        else:
            member_know = np.empty(0)

        # Line 8 at every non-straggler (vectorized, same as python).
        if vector is not None:
            x_prime = np.minimum(vector.max_acceptable(global_cost), 1.0)
        else:
            x_prime = backend.asarray(
                [min(fn.max_acceptable(global_cost), 1.0) for fn in costs]
            )
        x_prime = np.maximum(x_prime, x)
        x_new = x - alpha * (x - x_prime)
        backend.ensure(x_new, "updated allocation")

        # Phase E: member decisions to their heads (straggler excluded;
        # plan delivery with drop= draws count-1 delays against the
        # masked send times, exactly like the python path's masked
        # batch).
        sum_ready = down_ready.copy()  # heads' own decisions ready on D
        if cc.plan_e is not None:
            member_ids = cc.member_ids
            drop = int(np.searchsorted(member_ids, straggler))
            if not (
                drop < member_ids.size
                and int(member_ids[drop]) == straggler
            ):
                drop = -1
            if member_ids.size - (1 if drop >= 0 else 0) > 0:
                if drop >= 0:
                    arrivals = cc.plan_e.deliver(
                        round_index, np.delete(member_know, drop), drop=drop
                    )
                    shard_idx = np.delete(cc.member_shard, drop)
                else:
                    arrivals = cc.plan_e.deliver(round_index, member_know)
                    shard_idx = cc.member_shard
                events += arrivals.size
                final_now = max(final_now, float(arrivals.max()))
                kernels.scatter_max(sum_ready, shard_idx, arrivals)

        # Phase F: documented-order decision sums + up-tree frames.
        exclude_pos = int(np.searchsorted(parts, straggler))
        acc_sum = cc.acc_sum
        if shm is not None:
            shm.arrays["x_new"][:] = x_new
            ordered_x = shm.arrays["ordered_x"]
            shardpool.run_ranges(
                cc.proc_pool, shm, cc.n_parts, "tree_gather_x",
                self.shard_procs,
            )
            shardpool.run_ranges(
                cc.proc_pool, shm, m, "tree_sums", self.shard_procs,
                extra=(exclude_pos,),
            )
        else:
            ordered_x = np.empty(cc.n_parts, dtype=x_new.dtype)
            self._map_ranges(
                cc.n_parts,
                lambda lo, hi: kernels.gather(
                    x_new, parts, ordered_x, lo, hi
                ),
            )
            self._map_ranges(
                m,
                lambda lo, hi: kernels.shard_decision_sums(
                    ordered_x, cc.full_offsets, cc.ends, exclude_pos,
                    acc_sum, lo, hi,
                ),
            )
        kernels.combine_up_sums(acc_sum, cc.order, cc.parent64)
        backend.ensure(acc_sum, "decision partial sums")
        for level, parent_lv, _plan_b, plan_f in cc.up_levels:
            arrivals = plan_f.deliver(round_index, sum_ready[level])
            events += arrivals.size
            final_now = max(final_now, float(arrivals.max()))
            kernels.scatter_max(sum_ready, parent_lv, arrivals)

        # Phase G + line 12: the grand total reaches the straggler.
        total = acc_sum[0]
        if straggler != cc.root:
            batch = FrameBatch(
                TAG_DECISION, cc.root_arr, np.array([straggler]),
                {"x": np.array([total])}, round_index,
            )
            arrivals = cc.batched.deliver(batch, float(sum_ready[0]))
            events += 1
            final_now = max(final_now, float(arrivals.max()))
        raw, x_close = kernels.phase_g_close(total)
        if raw < -1e-9:
            raise ProtocolError(
                f"straggler workload went negative ({raw:.3e}); the "
                "verbatim Eq. (8) cap was insufficient this round"
            )

        # Post-round state: the final allocation and the slim peer
        # writes (see the docstring for why the write set is reduced).
        x_new = np.asarray(x_new, dtype=float)
        x_new[straggler] = x_close
        if cc.nonparticipants.size:
            # Non-participants' shares were folded into the straggler;
            # their peers already hold x == 0.0 from the (dirty) round
            # that removed them, so only the mirror needs the zeros.
            x_new[cc.nonparticipants] = 0.0
        local64 = np.full(n, np.nan)
        local64[parts] = np.asarray(ordered_local, dtype=float)
        store = self._store
        if store is not None:
            # The same slim write set, as four sliced array stores —
            # zero peer views hydrated on a clean round.
            store.current_round[parts] = round_index
            store.global_cost[parts] = global_cost
            store.straggler_id[parts] = straggler
            store.x[parts] = x_new[parts]
            straggler_alpha = min(
                float(store.alpha_bar[straggler]),
                feasibility_cap(x_close, len(participants)),
            )  # line 13 / Eq. (8)
            store.alpha_bar[straggler] = straggler_alpha
        else:
            x_list = x_new.tolist()
            for i in cc.participants:
                peer = peers[i]
                peer.current_round = round_index
                peer.global_cost = global_cost
                peer.straggler_id = straggler
                peer.x = x_list[i]
            straggler_peer = peers[straggler]
            straggler_peer.alpha_bar = min(
                straggler_peer.alpha_bar,
                feasibility_cap(x_close, len(participants)),
            )  # line 13 / Eq. (8)
            straggler_alpha = straggler_peer.alpha_bar
        cc.x_arr = x_new  # owned: the store/peer writes copied values out
        cc.alpha_arr[straggler] = straggler_alpha

        cc.batched.finish_round(final_now, events)
        self.last_tree = cc.tree
        self._membership_dirty = False
        return x_played, local64, global_cost, straggler

    def _run_round_fast(
        self,
        round_index: int,
        costs: Sequence[CostFunction],
        x_played: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        """One healthy round as two batched phases (Algorithm 2 verbatim).

        Bit-identical to the event-engine round: link delays are drawn in
        frame order (one draw per phase), per-peer completion events and
        their (time, sequence) tie-breaks are reconstructed with array
        ops, and the straggler's closing sum accumulates the decisions in
        the same arrival order the event engine would insert them.
        """
        n = self.num_workers
        peers = self.peers
        backend = self.backend
        batched, src, dst, in_frames = self._fast_structures()
        t0 = self.cluster.engine.now
        # Protocol payload arithmetic runs in the backend dtype (float64
        # by default, where every operation below is bit-identical to the
        # historical code); virtual time and link delays stay float64.
        x = backend.asarray(x_played)
        alphas = backend.asarray([p.alpha_bar for p in peers])
        vector = AffineCostVector.coerce(costs)
        if vector is not None:
            vector = vector.astype(backend.dtype)
            local = vector.values(x)
        else:
            local = backend.asarray([fn(xi) for fn, xi in zip(costs, x)])
        backend.ensure(local, "local costs")

        # Phase 1 (line 4): all-to-all (l_i, alpha-bar_i) broadcast.
        cost_batch = FrameBatch(
            TAG_COST, src, dst,
            {"l": local[src], "alpha_bar": alphas[src]},
            round_index,
        )
        arrivals = batched.deliver(
            cost_batch, t0, chunk_frames=self._chunk_frames
        )
        arrivals_in = arrivals[in_frames]  # (n, n-1): per-receiver arrivals
        completion = arrivals_in.max(axis=1)
        # The completing event per peer: among tied last arrivals the
        # event engine fires the highest-sequence (= frame index) last.
        completing_frame = np.where(
            arrivals_in == completion[:, None], in_frames, -1
        ).max(axis=1)

        # Lines 5-7: identical consensus at every peer.
        straggler = int(identify_straggler(local))
        global_cost = float(local.max())
        alpha = float(alphas.min())

        # Line 8: risk-averse update at the non-stragglers.
        if vector is not None:
            x_prime = np.minimum(vector.max_acceptable(global_cost), 1.0)
        else:
            x_prime = backend.asarray(
                [min(fn.max_acceptable(global_cost), 1.0) for fn in costs]
            )
        x_prime = np.maximum(x_prime, x)
        x_new = x - alpha * (x - x_prime)
        backend.ensure(x_new, "updated allocation")

        # Phase 2 (line 9): decisions to the straggler, sent the moment
        # each non-straggler's completing event fires — frame order is
        # completion order (time, then completing-event sequence).
        non_stragglers = np.delete(np.arange(n), straggler)
        send_order = np.lexsort(
            (completing_frame[non_stragglers], completion[non_stragglers])
        )
        senders = non_stragglers[send_order]
        decision_batch = FrameBatch(
            TAG_DECISION, senders, np.full(n - 1, straggler),
            {"x": x_new[senders]}, round_index,
        )
        decision_arrivals = batched.deliver(
            decision_batch, completion[senders], chunk_frames=self._chunk_frames
        )

        # Lines 11-12: the straggler closes the simplex, accumulating the
        # decisions in arrival order (ties by send sequence) exactly as
        # the event engine inserts them into its dict.
        arrival_order = np.lexsort((np.arange(n - 1), decision_arrivals))
        ordered_senders = senders[arrival_order]
        total = backend.dtype.type(0.0)
        for value in x_new[ordered_senders]:
            total += value
        x_close = 1.0 - total
        if x_close < -1e-9:
            raise ProtocolError(
                f"straggler workload went negative ({x_close:.3e}); the verbatim "
                "Eq. (8) cap was insufficient this round"
            )
        x_close = float(x_close) if x_close >= 1e-12 else 0.0
        x_new[straggler] = x_close

        # Write the post-round state every peer would hold.
        for i, peer in enumerate(peers):
            peer.current_round = round_index
            peer.cost_fn = costs[i]
            peer.local_cost = float(local[i])
            peer.is_straggler = False
            peer.global_cost = global_cost
            peer.straggler_id = straggler
            peer.x = float(x_new[i])
            peer._peer_decisions = {}
        straggler_peer = peers[straggler]
        straggler_peer._peer_decisions = {
            int(j): float(x_new[j]) for j in ordered_senders
        }
        straggler_peer.alpha_bar = min(
            straggler_peer.alpha_bar, feasibility_cap(straggler_peer.x, n)
        )  # line 13 / Eq. (8)

        final_now = max(float(arrivals.max()), float(decision_arrivals.max()))
        batched.finish_round(final_now, arrivals.size + decision_arrivals.size)
        # Results/traces are reporting infrastructure: always float64 (a
        # no-op pass-through on the default backend).
        return x_played, np.asarray(local, dtype=float), global_cost, straggler

    def _run_round_fast_tree(
        self,
        round_index: int,
        costs: Sequence[CostFunction],
        x_played: np.ndarray,
        participants: list[int],
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        """One round with hierarchical (tree) aggregation — O(N) frames.

        Phases (all delivered batched, one vectorized delay draw each, in
        deterministic frame order):

        A. members -> shard heads: ``(l_i, alpha-bar_i)`` reports;
        B. heads -> parents, deepest level first: subtree consensus
           aggregates ``(max l, straggler candidate, min alpha-bar)``;
        C. root -> heads, top level first: the agreed global triple;
        D. heads -> members: the triple, fanned out;
        E. non-straggler members -> heads: updated decisions;
        F. heads -> parents: subtree decision *partial sums*;
        G. root -> straggler: the grand total (skipped if the root is the
           straggler), which closes the simplex.

        The consensus quantities are exact semilattice reductions, so
        steps B/C compute bit-for-bit what the flat broadcast computes
        (asserted below; pinned by the property suite). Only the decision
        sum's association differs — the measured tree-vs-flat trajectory
        gap. A send fires the moment its inputs are in: per-frame send
        times thread head readiness through the levels, so virtual time
        reflects the tree's O(log) sequential depth.
        """
        n = self.num_workers
        peers = self.peers
        backend = self.backend
        _, tree, parts, full_offsets, member_shard, batched = (
            self._tree_structures(participants)
        )
        m = tree.num_shards
        t0 = self.cluster.engine.now
        x = backend.asarray(x_played)
        alphas = backend.asarray([p.alpha_bar for p in peers])
        vector = AffineCostVector.coerce(costs)
        if vector is not None:
            vector = vector.astype(backend.dtype)
            local = vector.values(x)
        else:
            local = backend.asarray([fn(xi) for fn, xi in zip(costs, x)])
        backend.ensure(local, "local costs")

        # Lines 5-7 on the participant quorum. These flat reductions ARE
        # the tree reductions — max/min/lowest-index-argmax are exact
        # under any combination order (see repro.net.aggtree) — and the
        # root's accumulated aggregates are asserted against them below.
        local_p = local[parts]
        straggler = int(parts[identify_straggler(local_p)])
        global_cost = float(local_p.max())
        alpha = float(alphas[parts].min())

        # Phase A: member cost reports to their shard head.
        member_ids = tree.member_ids
        member_head = tree.member_head
        events = 0
        final_now = t0
        if member_ids.size:
            report = FrameBatch(
                TAG_COST, member_ids, member_head,
                {"l": local[member_ids], "alpha_bar": alphas[member_ids]},
                round_index,
            )
            report_arrivals = batched.deliver(
                report, t0, chunk_frames=self._chunk_frames
            )
            events += report_arrivals.size
            final_now = max(final_now, float(report_arrivals.max()))
            head_ready = np.maximum(
                segment_reduce(
                    np.maximum, report_arrivals, tree.member_offsets, -np.inf
                ),
                t0,
            )
        else:
            head_ready = np.full(m, t0)

        # Subtree consensus aggregates (the up-tree frame payloads).
        ordered_local = local[parts]
        acc_max = segment_reduce(np.maximum, ordered_local, full_offsets, -np.inf)
        acc_alpha = segment_reduce(np.minimum, alphas[parts], full_offsets, np.inf)
        acc_arg = np.empty(m, dtype=int)
        ends = np.append(full_offsets[1:], ordered_local.size)
        for i in range(m):
            segment = ordered_local[full_offsets[i] : ends[i]]
            # First max within the segment = lowest worker id (sorted).
            acc_arg[i] = parts[full_offsets[i] + int(np.argmax(segment))]

        # Phase B: aggregates climb the head tree, deepest level first. A
        # child's subtree aggregate is final before its level sends
        # because its own children sit one level deeper.
        up_ready = head_ready.copy()
        for level in tree.levels[:0:-1]:
            payload = {
                "l_max": acc_max[level],
                "straggler": acc_arg[level].astype(float),
                "alpha_min": acc_alpha[level],
            }
            batch = FrameBatch(
                TAG_COST, tree.heads[level], tree.heads[tree.parent[level]],
                payload, round_index,
            )
            arrivals = batched.deliver(batch, up_ready[level])
            events += arrivals.size
            final_now = max(final_now, float(arrivals.max()))
            for k, i in enumerate(level.tolist()):
                p = int(tree.parent[i])
                if acc_max[i] > acc_max[p] or (
                    acc_max[i] == acc_max[p] and acc_arg[i] < acc_arg[p]
                ):
                    acc_max[p] = acc_max[i]
                    acc_arg[p] = acc_arg[i]
                if acc_alpha[i] < acc_alpha[p]:
                    acc_alpha[p] = acc_alpha[i]
                if arrivals[k] > up_ready[p]:
                    up_ready[p] = arrivals[k]
        assert (
            float(acc_max[0]) == global_cost
            and int(acc_arg[0]) == straggler
            and float(acc_alpha[0]) == alpha
        ), "tree aggregation diverged from the flat reduction"

        # Phase C: the global triple descends the head tree.
        down_ready = np.full(m, np.inf)
        down_ready[0] = up_ready[0]
        for level in tree.levels[1:]:
            payload = {
                "l_max": backend.full(level.size, global_cost),
                "straggler": np.full(level.size, float(straggler)),
                "alpha_min": backend.full(level.size, alpha),
            }
            batch = FrameBatch(
                TAG_COST, tree.heads[tree.parent[level]], tree.heads[level],
                payload, round_index,
            )
            arrivals = batched.deliver(batch, down_ready[tree.parent[level]])
            events += arrivals.size
            final_now = max(final_now, float(arrivals.max()))
            down_ready[level] = arrivals

        # Phase D: heads fan the triple out to their members.
        if member_ids.size:
            payload = {
                "l_max": backend.full(member_ids.size, global_cost),
                "straggler": np.full(member_ids.size, float(straggler)),
                "alpha_min": backend.full(member_ids.size, alpha),
            }
            batch = FrameBatch(
                TAG_COST, member_head, member_ids, payload, round_index
            )
            member_know = batched.deliver(
                batch, down_ready[member_shard],
                chunk_frames=self._chunk_frames,
            )
            events += member_know.size
            final_now = max(final_now, float(member_know.max()))
        else:
            member_know = np.empty(0)

        # Line 8 at every non-straggler (vectorized; the straggler's slot
        # is overwritten by the closure below).
        if vector is not None:
            x_prime = np.minimum(vector.max_acceptable(global_cost), 1.0)
        else:
            x_prime = backend.asarray(
                [min(fn.max_acceptable(global_cost), 1.0) for fn in costs]
            )
        x_prime = np.maximum(x_prime, x)
        x_new = x - alpha * (x - x_prime)
        backend.ensure(x_new, "updated allocation")

        # Phase E: member decisions to their heads (straggler excluded).
        sender_mask = member_ids != straggler
        sum_ready = down_ready.copy()  # heads' own decisions ready on D
        if sender_mask.any():
            e_src = member_ids[sender_mask]
            batch = FrameBatch(
                TAG_DECISION, e_src, member_head[sender_mask],
                {"x": x_new[e_src]}, round_index,
            )
            arrivals = batched.deliver(
                batch, member_know[sender_mask],
                chunk_frames=self._chunk_frames,
            )
            events += arrivals.size
            final_now = max(final_now, float(arrivals.max()))
            np.maximum.at(sum_ready, member_shard[sender_mask], arrivals)

        # Phase F: decision partial sums climb the head tree in the
        # documented hierarchical order (see AggregationTree.decision_sums
        # — THE summation-association difference vs. the flat protocol).
        acc_sum = tree.decision_sums(x_new, exclude=straggler)
        backend.ensure(acc_sum, "decision partial sums")
        for level in tree.levels[:0:-1]:
            batch = FrameBatch(
                TAG_DECISION, tree.heads[level],
                tree.heads[tree.parent[level]],
                {"x": acc_sum[level]}, round_index,
            )
            arrivals = batched.deliver(batch, sum_ready[level])
            events += arrivals.size
            final_now = max(final_now, float(arrivals.max()))
            np.maximum.at(sum_ready, tree.parent[level], arrivals)

        # Phase G + line 12: the grand total reaches the straggler.
        total = acc_sum[0]
        if straggler != tree.root:
            batch = FrameBatch(
                TAG_DECISION, np.array([tree.root]), np.array([straggler]),
                {"x": np.array([total])}, round_index,
            )
            arrivals = batched.deliver(batch, float(sum_ready[0]))
            events += 1
            final_now = max(final_now, float(arrivals.max()))
        x_close = 1.0 - total
        if x_close < -1e-9:
            raise ProtocolError(
                f"straggler workload went negative ({x_close:.3e}); the "
                "verbatim Eq. (8) cap was insufficient this round"
            )
        x_close = float(x_close) if x_close >= 1e-12 else 0.0
        x_new = np.asarray(x_new, dtype=float)

        # Write the post-round state every peer would hold. Only the
        # quorum participated; a non-participant's share was folded into
        # the straggler by the closure (exactly like the event path).
        participant_set = set(participants)
        local64 = np.full(n, np.nan)
        local64[parts] = np.asarray(local, dtype=float)[parts]
        for i in participants:
            peer = peers[i]
            peer.current_round = round_index
            peer.cost_fn = costs[i]
            peer.local_cost = float(local64[i])
            peer.is_straggler = False
            peer.global_cost = global_cost
            peer.straggler_id = straggler
            peer.x = float(x_new[i])
            peer._peer_decisions = {}
        for peer in peers:
            if peer.node_id not in participant_set:
                peer.x = 0.0
        straggler_peer = peers[straggler]
        straggler_peer.x = x_close
        # Limited information, sharpened: the straggler learns only the
        # aggregate sum, not individual decisions, so its decision buffer
        # stays empty (vs. the flat protocol's N-1 entries).
        straggler_peer.alpha_bar = min(
            straggler_peer.alpha_bar,
            feasibility_cap(x_close, len(participants)),
        )  # line 13 / Eq. (8)

        batched.finish_round(final_now, events)
        self.last_tree = tree
        return x_played, local64, global_cost, straggler

    def run_round(
        self, round_index: int, costs: Sequence[CostFunction]
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        if len(costs) != self.num_workers:
            raise ConfigurationError(
                f"round {round_index}: {len(costs)} costs for {self.num_workers} workers"
            )
        tracer = self.tracer
        profiler = self.profiler
        if tracer is not None:
            self.cluster.trace_round = round_index
            engine = self.cluster.engine
            start_time = engine.now
            start_events = engine.processed_events
            roster_before = self.roster
        # -- membership resolution at the round boundary ------------------
        # The round runs on the *primary* component of the effective
        # graph (alive peers over partition-respecting edges): largest
        # component, lowest peer id breaking ties. Stalled peers that
        # became reachable again (partition healed) are re-admitted via
        # resharding; alive peers that just became unreachable stall and
        # have their shares folded by the participants' failure
        # detectors during this round.
        # Clean compiled route: when the previous round was a compiled
        # tree round and nothing touched membership, chaos, or peer
        # state since (``_membership_dirty`` is the single gate — every
        # mutation path sets it), the membership resolution and the O(N)
        # eligibility/allocation scans are skipped outright. Sound
        # because with no chaos hooks, no partition, and no stalled
        # peers the primary component and the rosters are exactly what
        # the cached round left them; ``batch_eligible`` still runs (it
        # also covers frames in flight).
        cc = self._compiled_cache
        if (
            cc is not None
            and not self._membership_dirty
            and self.backend.compiled
            and self.use_fast_path
            and self.aggregation == "tree"
            and not self._stalled
            and self.cluster.batch_eligible()
        ):
            participants = cc.participants
            x_played = cc.x_arr.copy()
            route = "tree"
        else:
            components = self._reachable_components()
            primary = max(components, key=lambda c: (len(c), -min(c)))
            if len(primary) < 2:
                raise ProtocolError(
                    f"round {round_index}: the primary component has only "
                    f"{len(primary)} reachable peer(s) "
                    f"(components: {sorted(sorted(c) for c in components)}); "
                    "a partition or a dead relay left no quorum to continue"
                )
            for worker in sorted(self._stalled & primary):
                self._readmit(worker)  # heal: re-merge roster and reshard
            for worker in sorted(set(self.alive_workers) - primary):
                self._stalled.add(worker)
            participants = self._participants()
            participant_set = set(participants)
            x_played = self.allocation
            if self._tree_eligible(participants):
                route = "tree"
            elif self._fast_eligible(participants):
                route = "fast"
            else:
                route = "event"
        if route == "tree":
            self.fast_rounds += 1
            self.tree_rounds += 1
            runner = (
                self._run_round_tree_compiled
                if self.backend.compiled
                else self._run_round_fast_tree
            )
            if profiler is None:
                result = runner(round_index, costs, x_played, participants)
            else:
                with profiler.span("protocol.tree_round"):
                    result = runner(
                        round_index, costs, x_played, participants
                    )
        elif route == "fast":
            self._membership_dirty = True  # peer state diverges from cc
            self.fast_rounds += 1
            if profiler is None:
                result = self._run_round_fast(round_index, costs, x_played)
            else:
                with profiler.span("protocol.fast_round"):
                    result = self._run_round_fast(round_index, costs, x_played)
        else:
            self._membership_dirty = True  # peer state diverges from cc
            self.fallback_rounds += 1
            if profiler is None:
                result = self._run_round_event(
                    round_index, costs, x_played, participants, participant_set
                )
            else:
                with profiler.span("protocol.event_round"):
                    result = self._run_round_event(
                        round_index, costs, x_played, participants,
                        participant_set,
                    )
        if (
            route == "tree"
            and self.backend.compiled
            and not self._membership_dirty
        ):
            # Compiled round completed: the roster is the cached tuple
            # by the clean-route invariant, and the replicas take the
            # authoritative-validated entry via their cached unchecked
            # appends (same entry object, same ledgers, ~10x cheaper at
            # N=10,000 than N validated appends).
            cc = self._compiled_cache
            assert cc is not None
            entry = LedgerEntry(
                round_index=round_index,
                straggler=int(result[3]),
                global_cost=float(result[2]),
                roster=cc.roster_tuple,
            )
            self.ledger.append(entry)
            if self._ledger_book is not None:
                self._ledger_book.fanout_ids(cc.parts, entry)
            else:
                for replicate in cc.replicas:
                    replicate(entry)
        else:
            entry = LedgerEntry(
                round_index=round_index,
                straggler=int(result[3]),
                global_cost=float(result[2]),
                roster=tuple(self.roster),
            )
            self.ledger.append(entry)
            if self._ledger_book is not None:
                self._ledger_book.fanout(entry.roster, entry)
            else:
                for worker in entry.roster:
                    self._worker_ledgers[worker].append(entry)
        if tracer is not None:
            roster_after = self.roster
            if roster_after != roster_before:
                emit_membership(
                    tracer, round_index, "roster_change",
                    sorted(set(roster_before) ^ set(roster_after)),
                    roster_after,
                )
            emit_round(
                tracer, round_index, result[0], result[1], result[2],
                result[3], self.allocation, start_time, start_events,
                self.cluster.engine,
            )
        return result

    def _run_round_event(
        self,
        round_index: int,
        costs: Sequence[CostFunction],
        x_played: np.ndarray,
        participants: list[int],
        participant_set: set[int],
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        """One round on the discrete-event engine (the general path)."""
        rosters_incomplete = any(
            set(self.peers[i].roster) != participant_set for i in participants
        )
        for peer, cost_fn in zip(self.peers, costs):
            if peer.node_id in participant_set:
                peer.observe_round(
                    round_index, cost_fn,
                    arm_failure_detector=rosters_incomplete,
                )
        if self.topology is None:
            budget = 4 * self.num_workers * self.num_workers + 50
        else:
            # Flooding: each of ~2N disseminations crosses each edge at
            # most twice in each direction.
            budget = 16 * self.num_workers * (self.topology.num_edges + 1) + 50
        self.cluster.run(max_events=budget)
        for peer in self.peers:
            if peer.node_id not in participant_set:
                peer.x = 0.0  # share folded into the straggler's closure
        local = np.array(
            [
                p.local_cost if p.node_id in participant_set else np.nan
                for p in self.peers
            ]
        )
        first = self.peers[participants[0]]
        straggler = first.straggler_id
        global_cost = first.global_cost
        assert straggler is not None and global_cost is not None
        # Every participating peer must have reached the same view.
        for i in participants:
            peer = self.peers[i]
            if peer.straggler_id != straggler or peer.global_cost != global_cost:
                raise ProtocolError(
                    f"peers disagree on the round outcome: peer {peer.node_id} "
                    f"sees straggler {peer.straggler_id}, expected {straggler}"
                )
        return x_played, local, global_cost, straggler

    def run(self, process: CostProcess, horizon: int) -> RunResult:
        n = self.num_workers
        if self.tracer is not None:
            # Engine identity lives in the header only: payload records
            # diff empty between the fast path and the event engine.
            self.tracer.header(
                self.name, n, horizon,
                fast_path=self.use_fast_path,
                topology="complete" if self.topology is None else "custom",
            )
        allocations = np.empty((horizon, n))
        local = np.empty((horizon, n))
        global_costs = np.empty(horizon)
        stragglers = np.empty(horizon, dtype=int)
        for t in range(1, horizon + 1):
            x, l, l_t, s_t = self.run_round(t, process.costs_at(t))
            allocations[t - 1] = x
            local[t - 1] = l
            global_costs[t - 1] = l_t
            stragglers[t - 1] = s_t
        return RunResult(
            algorithm=self.name,
            num_workers=n,
            horizon=horizon,
            allocations=allocations,
            local_costs=local,
            global_costs=global_costs,
            stragglers=stragglers,
            decision_seconds=np.zeros(horizon),
        )

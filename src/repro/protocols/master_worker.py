"""Algorithm 1: DOLBIE in the master-worker architecture, verbatim.

Every line of the paper's pseudo-code maps onto a message handler here:

=====  ==========================================================
Line   Implementation
=====  ==========================================================
1-3    environment evaluation in :meth:`MasterWorkerDolbie.run_round`
4      worker sends ``cost`` {l_i} to the master
9-11   master collects costs, computes l_t, identifies s_t
12     master sends ``coord`` {l_t, alpha_t, is_straggler} to workers
5-6    non-straggler computes x' (Eq. 4) and updates x (Eq. 5)
7,13   non-straggler sends ``decision`` {x_{i,t+1}} to the master
14-15  master closes the simplex (Eq. 6), sends ``assign`` to s_t
16     master updates alpha via Eq. (7)
=====  ==========================================================

Only scalars cross the network — local cost values and workload
decisions, never the cost *functions* — which is the paper's privacy
claim, and the per-round message count is ``3N`` (the O(N) row of
§IV-C), which the complexity experiment asserts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.interface import identify_straggler
from repro.core.ledger import LedgerEntry, RoundLedger
from repro.core.loop import RunResult
from repro.core.membership import add_worker_allocation
from repro.core.step_size import feasibility_cap, initial_step_size
from repro.costs.affine_vector import AffineCostVector
from repro.costs.base import CostFunction
from repro.costs.timevarying import CostProcess
from repro.exceptions import ConfigurationError, ProtocolError
from repro.net.cluster import Cluster
from repro.net.links import Link
from repro.net.message import FrameBatch, Message
from repro.net.node import Node
from repro.obs.profiler import Profiler
from repro.obs.tracer import Tracer
from repro.protocols.tracing import emit_membership, emit_round
from repro.simplex.sampling import equal_split, is_feasible

__all__ = ["MasterWorkerDolbie"]

TAG_COST = "cost"
TAG_COORD = "coord"
TAG_DECISION = "decision"
TAG_ASSIGN = "assign"


class _Worker(Node):
    """A DOLBIE worker (Alg. 1, worker block)."""

    def __init__(self, node_id: int, master_id: int, x_init: float) -> None:
        super().__init__(node_id)
        self.master_id = master_id
        self.x = float(x_init)
        self.cost_fn: CostFunction | None = None
        self.local_cost: float | None = None
        self.current_round = 0
        self.on(TAG_COORD, self._on_coord)
        self.on(TAG_ASSIGN, self._on_assign)

    def observe_round(self, round_index: int, cost_fn: CostFunction) -> None:
        """Lines 1-4: play x, suffer cost, learn f, report l to master."""
        self.current_round = round_index
        self.cost_fn = cost_fn
        self.local_cost = cost_fn(self.x)
        self.send(
            self.master_id, TAG_COST, {"l": self.local_cost}, round_index
        )

    def _check_round(self, message: Message) -> None:
        if message.round_index != self.current_round:
            raise ProtocolError(
                f"worker {self.node_id} got a round-{message.round_index} "
                f"{message.tag!r} during round {self.current_round}"
            )

    def _on_coord(self, message: Message) -> None:
        """Lines 5-7: receive (l_t, alpha_t, indicator); risk-averse update."""
        self._check_round(message)
        if self.cost_fn is None:  # pragma: no cover - defensive
            raise ProtocolError(f"worker {self.node_id} has no cost function")
        if not message.payload["is_straggler"]:
            level = float(message.payload["l"])
            alpha = float(message.payload["alpha"])
            x_prime = min(self.cost_fn.max_acceptable(level), 1.0)
            x_prime = max(x_prime, self.x)  # Lemma 1-ii up to bisection dust
            self.x = self.x - alpha * (self.x - x_prime)  # Eq. (5)
            self.send(self.master_id, TAG_DECISION, {"x": self.x}, message.round_index)
        # The straggler waits for its assignment (line 8).

    def _on_assign(self, message: Message) -> None:
        """Line 8: the straggler receives x_{s,t+1} from the master."""
        self._check_round(message)
        self.x = float(message.payload["x"])


class _Master(Node):
    """The DOLBIE master (Alg. 1, master block).

    Crash tolerance (extension): the master arms a timeout when the round
    begins; if some workers' cost reports are still missing when it
    fires, those workers are declared dead, dropped from the roster, and
    the round proceeds with the survivors. The dead workers' shares fold
    into the straggler's assignment for this round (Eq. 6 computes
    ``1 - sum of survivors``, which automatically includes the orphaned
    workload) and the normal risk-averse updates re-balance it over
    subsequent rounds.
    """

    def __init__(
        self,
        node_id: int,
        worker_ids: Sequence[int],
        alpha_1: float,
        cost_timeout: float = 1.0,
    ) -> None:
        super().__init__(node_id)
        self.worker_ids = list(worker_ids)
        self.alpha = float(alpha_1)
        self.cost_timeout = float(cost_timeout)
        self.current_round = 0
        self.global_cost: float | None = None
        self.straggler: int | None = None
        self._costs: dict[int, float] = {}
        self._decisions: dict[int, float] = {}
        self._coordinated = False
        #: Workers declared dead (round they were dropped, per worker).
        self.declared_dead: dict[int, int] = {}
        self.on(TAG_COST, self._on_cost)
        self.on(TAG_DECISION, self._on_decision)

    def begin_round(self, round_index: int, arm_failure_detector: bool = True) -> None:
        """Start a round; ``arm_failure_detector`` schedules the cost
        timeout. The simulation driver disarms it on rounds where every
        rostered worker is known to be healthy, so healthy rounds do not
        pay the timeout in virtual time (a real master would keep it
        armed and simply see it no-op)."""
        self.current_round = round_index
        self.global_cost = None
        self.straggler = None
        self._coordinated = False
        self._costs.clear()
        self._decisions.clear()
        if arm_failure_detector:
            self.cluster.engine.schedule(
                self.cost_timeout, lambda r=round_index: self._on_cost_timeout(r)
            )

    def _on_cost_timeout(self, round_index: int) -> None:
        """Declare silent workers dead and coordinate with the survivors."""
        if round_index != self.current_round or self._coordinated:
            return
        missing = [w for w in self.worker_ids if w not in self._costs]
        if not missing:  # pragma: no cover - coordination already imminent
            return
        if len(self.worker_ids) - len(missing) < 2:
            raise ProtocolError(
                f"round {round_index}: fewer than 2 workers responded "
                f"({sorted(missing)} silent); cannot continue"
            )
        for worker_id in missing:
            self.worker_ids.remove(worker_id)
            self.declared_dead[worker_id] = round_index
        self._coordinate(round_index)

    def _on_cost(self, message: Message) -> None:
        """Lines 9-12: collect costs, find the straggler, coordinate."""
        if message.round_index != self.current_round:
            raise ProtocolError(
                f"master got a round-{message.round_index} cost in round "
                f"{self.current_round}"
            )
        if message.src in self._costs:
            raise ProtocolError(f"duplicate cost report from worker {message.src}")
        if message.src not in self.worker_ids:
            raise ProtocolError(
                f"cost report from worker {message.src}, which was declared dead"
            )
        self._costs[message.src] = float(message.payload["l"])
        if len(self._costs) < len(self.worker_ids):
            return
        self._coordinate(message.round_index)

    def _coordinate(self, round_index: int) -> None:
        self._coordinated = True
        ordered = np.array([self._costs[w] for w in self.worker_ids])
        straggler_pos = identify_straggler(ordered)
        self.straggler = self.worker_ids[straggler_pos]
        self.global_cost = float(ordered[straggler_pos])
        for worker_id in self.worker_ids:
            self.send(
                worker_id,
                TAG_COORD,
                {
                    "l": self.global_cost,
                    "alpha": self.alpha,
                    "is_straggler": worker_id == self.straggler,
                },
                round_index,
            )

    def _on_decision(self, message: Message) -> None:
        """Lines 13-16: close the simplex, assign the straggler, cap alpha."""
        if message.src == self.straggler:
            raise ProtocolError("the straggler must not send a decision")
        if message.src in self._decisions:
            raise ProtocolError(f"duplicate decision from worker {message.src}")
        self._decisions[message.src] = float(message.payload["x"])
        if len(self._decisions) < len(self.worker_ids) - 1:
            return
        x_straggler = 1.0 - sum(
            self._decisions[w] for w in self.worker_ids if w != self.straggler
        )  # Eq. (6)
        if x_straggler < -1e-9:
            raise ProtocolError(
                f"straggler workload went negative ({x_straggler:.3e}); the "
                "verbatim Eq. (7) cap was insufficient this round (see "
                "Dolbie.exact_feasibility_guard)"
            )
        # Snap dust to exactly zero, mirroring the centralized reference
        # (whose closing sum runs in a different order), so both stay on
        # identical trajectories instead of diverging via tie flips.
        x_straggler = x_straggler if x_straggler >= 1e-12 else 0.0
        assert self.straggler is not None
        self.send(self.straggler, TAG_ASSIGN, {"x": x_straggler}, message.round_index)
        self.alpha = min(
            self.alpha, feasibility_cap(x_straggler, len(self.worker_ids))
        )  # Eq. (7)


class MasterWorkerDolbie:
    """Run Algorithm 1 on the discrete-event network substrate."""

    name = "DOLBIE/master-worker"

    def __init__(
        self,
        num_workers: int,
        initial_allocation: np.ndarray | None = None,
        alpha_1: float | None = None,
        link: Link | None = None,
        embedded_master: bool = False,
        cost_timeout: float = 1.0,
        use_fast_path: bool = True,
        tracer: Tracer | None = None,
        profiler: Profiler | None = None,
    ) -> None:
        """``embedded_master`` realizes §IV-B1's "an elected worker acts
        also as the master": the master process is co-located with worker
        0, so their exchanges are in-process calls that never touch the
        network (the per-round wire count drops from 3N to about
        3(N-1)). ``cost_timeout`` (virtual seconds) is the master's
        failure detector: a worker whose cost report is still missing
        when it fires is declared dead and dropped (it must exceed the
        worst-case link round trip).

        ``use_fast_path`` enables the batched round-synchronous fast path
        (:mod:`repro.net.batch`) on healthy rounds; it is bit-identical
        to the event engine and disabled automatically whenever chaos
        hooks, dead workers, or an embedded master are in play (see
        :attr:`fast_rounds` / :attr:`fallback_rounds`).

        ``tracer``/``profiler`` attach the observability layer (see
        :mod:`repro.obs`): per-round decision/straggler/phase records,
        membership and fault records, and per-path round timing spans.
        Trace payloads are identical on both execution paths."""
        if num_workers < 2:
            raise ConfigurationError(f"need >= 2 workers, got {num_workers}")
        self.num_workers = int(num_workers)
        x0 = (
            equal_split(num_workers)
            if initial_allocation is None
            else np.asarray(initial_allocation, dtype=float)
        )
        if not is_feasible(x0) or x0.size != num_workers:
            raise ConfigurationError("initial allocation must be feasible")
        if alpha_1 is None:
            alpha_1 = initial_step_size(x0)
        self.master_id = num_workers  # workers are 0..N-1
        self.workers = [
            _Worker(i, self.master_id, x0[i]) for i in range(num_workers)
        ]
        self.master = _Master(
            self.master_id, list(range(num_workers)), alpha_1,
            cost_timeout=cost_timeout,
        )
        self.cluster = Cluster([*self.workers, self.master], default_link=link)
        self.embedded_master = bool(embedded_master)
        if embedded_master:
            self.cluster.colocate(0, self.master_id)
        self._alive = [True] * num_workers
        self.use_fast_path = bool(use_fast_path)
        #: Rounds executed by the batched fast path / the event engine.
        self.fast_rounds = 0
        self.fallback_rounds = 0
        self._batched = None
        self.tracer = tracer
        self.profiler = profiler
        self.cluster.tracer = tracer
        #: Authoritative round ledger (one entry per completed round) and
        #: each worker's replica of it. A crash wipes the worker's
        #: replica — process memory is gone — while a checkpointed
        #: *restart* restores it (see :mod:`repro.core.ledger`).
        self.ledger = RoundLedger()
        self._worker_ledgers: dict[int, RoundLedger] = {
            i: RoundLedger() for i in range(num_workers)
        }

    def crash_worker(self, worker: int) -> None:
        """Silence ``worker`` from the next round on (it stops reporting).

        The master's failure detector will declare it dead after
        ``cost_timeout`` and fold its workload into that round's
        straggler assignment; later rounds re-balance normally.
        """
        if not 0 <= worker < self.num_workers:
            raise ConfigurationError(f"worker index {worker} out of range")
        self._alive[worker] = False
        self.workers[worker].failed = True
        # Process memory is gone: the worker's ledger replica dies with it.
        self._worker_ledgers[worker] = RoundLedger()
        emit_membership(
            self.tracer, self.cluster.trace_round, "crash", [worker],
            self.roster,
        )

    def rejoin_worker(self, worker: int, share: float | None = None) -> None:
        """Re-admit ``worker`` to the fleet (crash recovery).

        The newcomer is granted ``share`` of the workload (default
        ``1/(N+1)`` on the post-join fleet) via the same proportional
        resharding as :func:`repro.core.membership.add_worker_allocation`;
        incumbents scale down to keep the simplex exact. The master's
        step size is re-capped by the Eq. (7) rule on the new fleet so
        the newcomer's first update cannot go infeasible. A worker that
        crashed but was never declared dead (no round ran in between)
        is simply revived with its old share.
        """
        if not 0 <= worker < self.num_workers:
            raise ConfigurationError(f"worker index {worker} out of range")
        roster = self.master.worker_ids
        if worker in roster and self._alive[worker]:
            raise ConfigurationError(f"worker {worker} is already active")
        self._alive[worker] = True
        self.workers[worker].failed = False
        if worker in roster:
            emit_membership(
                self.tracer, self.cluster.trace_round, "revive", [worker],
                self.roster,
            )
            return  # crashed and revived within the same round boundary
        live = sorted(roster)
        x_live = np.array([self.workers[w].x for w in live])
        x_new = add_worker_allocation(x_live, share)
        for w, value in zip(live, x_new[:-1]):
            self.workers[w].x = float(value)
        self.workers[worker].x = float(x_new[-1])
        roster.append(worker)
        roster.sort()
        self.master.declared_dead.pop(worker, None)
        cap = feasibility_cap(float(x_new[-1]), len(roster))
        self.master.alpha = min(self.master.alpha, cap)
        emit_membership(
            self.tracer, self.cluster.trace_round, "rejoin", [worker],
            self.roster,
        )

    def worker_ledger(self, worker: int) -> RoundLedger:
        """``worker``'s replica of the round ledger."""
        return self._worker_ledgers[worker]

    def restore_worker_ledger(
        self, worker: int, entries: Sequence[LedgerEntry]
    ) -> None:
        """Reload ``worker``'s ledger replica from a checkpoint (the
        restart fault's recovery path; a plain rejoin starts empty)."""
        self._worker_ledgers[worker] = RoundLedger(entries)

    @property
    def alive_workers(self) -> list[int]:
        """Workers whose process is running (may include workers the
        master has partitioned away and declared dead — see
        :attr:`roster` for the coordinating fleet)."""
        return [i for i in range(self.num_workers) if self._alive[i]]

    @property
    def roster(self) -> list[int]:
        """The fleet the master currently coordinates: alive workers
        that have not been declared dead. The allocation sums to 1 over
        exactly this set."""
        return sorted(self.master.worker_ids)

    @property
    def allocation(self) -> np.ndarray:
        """The workload vector currently held across the workers."""
        return np.array([w.x for w in self.workers])

    @property
    def alpha(self) -> float:
        return self.master.alpha

    @property
    def metrics(self):
        """Network metrics (message/byte counts) for §IV-C."""
        return self.cluster.metrics

    def _fast_eligible(self) -> bool:
        """Whether this round can run on the batched fast path.

        Requires the full roster healthy (nobody crashed or declared
        dead) and a chaos-free cluster with no frames in flight; an
        embedded master co-locates worker 0, which already disqualifies
        the cluster (see :meth:`~repro.net.cluster.Cluster.batch_eligible`).
        """
        return (
            self.use_fast_path
            and all(self._alive)
            and len(self.master.worker_ids) == self.num_workers
            and self.cluster.batch_eligible()
        )

    def _run_round_fast(
        self,
        round_index: int,
        costs: Sequence[CostFunction],
        x_played: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        """One healthy round as four batched phases (Algorithm 1 verbatim).

        Bit-identical to the event-engine round: link delays are drawn in
        frame order (one draw per phase), the master coordinates at the
        last cost arrival, decisions go out in coord-arrival order, and
        the closing sum runs in ``worker_ids`` order exactly as the
        master's Eq. (6) does.
        """
        n = self.num_workers
        workers = self.workers
        master = self.master
        if self._batched is None:
            self._batched = self.cluster.batched()
        batched = self._batched
        ids = np.arange(n)
        master_col = np.full(n, self.master_id)
        t0 = self.cluster.engine.now
        x = x_played
        vector = AffineCostVector.coerce(costs)
        if vector is not None:
            local = vector.values(x)
        else:
            local = np.array([fn(xi) for fn, xi in zip(costs, x)])

        # Phase 1 (line 4): every worker reports its cost to the master.
        cost_batch = FrameBatch(TAG_COST, ids, master_col, {"l": local}, round_index)
        cost_arrivals = batched.deliver(cost_batch, t0)
        coordinate_time = float(cost_arrivals.max())

        # Lines 9-11: the master coordinates at the last cost arrival.
        straggler = int(identify_straggler(local))
        global_cost = float(local[straggler])
        alpha = master.alpha

        # Phase 2 (line 12): coord fan-out in worker_ids order.
        coord_batch = FrameBatch(
            TAG_COORD, master_col, ids,
            {
                "l": np.full(n, global_cost),
                "alpha": np.full(n, alpha),
                "is_straggler": (ids == straggler).astype(float),
            },
            round_index,
        )
        coord_arrivals = batched.deliver(coord_batch, coordinate_time)

        # Lines 5-6: risk-averse update at the non-stragglers.
        if vector is not None:
            x_prime = np.minimum(vector.max_acceptable(global_cost), 1.0)
        else:
            x_prime = np.array(
                [min(fn.max_acceptable(global_cost), 1.0) for fn in costs]
            )
        x_prime = np.maximum(x_prime, x)
        x_new = x - alpha * (x - x_prime)

        # Phase 3 (lines 7, 13): decisions return in coord-arrival order
        # (ties by the coord frames' send sequence = worker order).
        non_stragglers = np.delete(ids, straggler)
        send_order = np.lexsort(
            (non_stragglers, coord_arrivals[non_stragglers])
        )
        senders = non_stragglers[send_order]
        decision_batch = FrameBatch(
            TAG_DECISION, senders, np.full(n - 1, self.master_id),
            {"x": x_new[senders]}, round_index,
        )
        decision_arrivals = batched.deliver(
            decision_batch, coord_arrivals[senders]
        )

        # Lines 14-15: Eq. (6) closes the simplex in worker_ids order.
        total = 0.0
        for w in range(n):
            if w != straggler:
                total += x_new[w]
        x_straggler = 1.0 - total
        if x_straggler < -1e-9:
            raise ProtocolError(
                f"straggler workload went negative ({x_straggler:.3e}); the "
                "verbatim Eq. (7) cap was insufficient this round (see "
                "Dolbie.exact_feasibility_guard)"
            )
        x_straggler = float(x_straggler) if x_straggler >= 1e-12 else 0.0

        # Phase 4: the assignment, sent at the last decision arrival.
        assign_batch = FrameBatch(
            TAG_ASSIGN, np.array([self.master_id]), np.array([straggler]),
            {"x": np.array([x_straggler])}, round_index,
        )
        assign_arrival = batched.deliver(
            assign_batch, float(decision_arrivals.max())
        )
        master.alpha = min(master.alpha, feasibility_cap(x_straggler, n))  # Eq. (7)
        x_new[straggler] = x_straggler

        # Write the post-round state the event engine would leave behind.
        cost_order = np.lexsort((ids, cost_arrivals))
        decision_order = np.lexsort((np.arange(n - 1), decision_arrivals))
        master.current_round = round_index
        master._coordinated = True
        master.global_cost = global_cost
        master.straggler = straggler
        master._costs = {int(w): float(local[w]) for w in cost_order}
        master._decisions = {
            int(w): float(x_new[w]) for w in senders[decision_order]
        }
        for i, worker in enumerate(workers):
            worker.current_round = round_index
            worker.cost_fn = costs[i]
            worker.local_cost = float(local[i])
            worker.x = float(x_new[i])

        final_now = max(
            float(assign_arrival[0]), float(coord_arrivals[straggler])
        )
        batched.finish_round(final_now, 3 * n)
        return x_played, local, global_cost, straggler

    def run_round(
        self, round_index: int, costs: Sequence[CostFunction]
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        """Execute one full protocol round; returns (x_played, l, l_t, s_t)."""
        if len(costs) != self.num_workers:
            raise ConfigurationError(
                f"round {round_index}: {len(costs)} costs for {self.num_workers} workers"
            )
        tracer = self.tracer
        profiler = self.profiler
        if tracer is not None:
            self.cluster.trace_round = round_index
            engine = self.cluster.engine
            start_time = engine.now
            start_events = engine.processed_events
            roster_before = self.roster
        x_played = self.allocation
        if self._fast_eligible():
            self.fast_rounds += 1
            if profiler is None:
                result = self._run_round_fast(round_index, costs, x_played)
            else:
                with profiler.span("protocol.fast_round"):
                    result = self._run_round_fast(round_index, costs, x_played)
        else:
            self.fallback_rounds += 1
            if profiler is None:
                result = self._run_round_event(round_index, costs, x_played)
            else:
                with profiler.span("protocol.event_round"):
                    result = self._run_round_event(round_index, costs, x_played)
        entry = LedgerEntry(
            round_index=round_index,
            straggler=int(result[3]),
            global_cost=float(result[2]),
            roster=tuple(self.roster),
        )
        self.ledger.append(entry)
        for worker in entry.roster:
            self._worker_ledgers[worker].append(entry)
        if tracer is not None:
            roster_after = self.roster
            if roster_after != roster_before:
                emit_membership(
                    tracer, round_index, "declare_dead",
                    sorted(set(roster_before) - set(roster_after)),
                    roster_after,
                )
            emit_round(
                tracer, round_index, result[0], result[1], result[2],
                result[3], self.allocation, start_time, start_events,
                self.cluster.engine,
            )
        return result

    def _run_round_event(
        self,
        round_index: int,
        costs: Sequence[CostFunction],
        x_played: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        """One round on the discrete-event engine (the general path)."""
        # A rostered worker is only responsive if its process runs AND no
        # partition separates it from the master; otherwise the failure
        # detector must be armed so its silence folds this round.
        expected = list(self.master.worker_ids)
        responsive = [
            w
            for w in expected
            if self._alive[w] and self.cluster.can_communicate(w, self.master_id)
        ]
        self.master.begin_round(
            round_index,
            arm_failure_detector=len(responsive) < len(expected),
        )
        for worker, cost_fn in zip(self.workers, costs):
            # Workers previously declared dead (crashed, or cut off by a
            # partition) stay out of the round until rejoin_worker
            # re-admits them: a zombie's late report would be a protocol
            # violation at the master.
            if self._alive[worker.node_id] and worker.node_id in expected:
                worker.observe_round(round_index, cost_fn)
        # A healthy round delivers 3N frames (cost, coord, decision,
        # assign) plus at most one failure-detector timeout; 4x headroom
        # plus slack mirrors the fully-distributed computed budget.
        budget = 4 * (3 * self.num_workers + 1) + 50
        self.cluster.run(max_events=budget)
        # Zero out the shares of workers the master declared dead: their
        # workload was folded into this round's straggler assignment.
        for worker_id in self.master.declared_dead:
            self.workers[worker_id].x = 0.0
        roster = set(self.master.worker_ids)
        local = np.array(
            [
                w.local_cost
                if self._alive[w.node_id] and w.node_id in roster
                else np.nan
                for w in self.workers
            ]
        )
        assert self.master.global_cost is not None and self.master.straggler is not None
        return x_played, local, self.master.global_cost, self.master.straggler

    def run(self, process: CostProcess, horizon: int) -> RunResult:
        """Drive the protocol for ``horizon`` rounds; mirrors ``run_online``."""
        n = self.num_workers
        if self.tracer is not None:
            # Engine identity lives in the header only: the payload
            # records must diff empty between the fast path and the
            # event engine (headers are excluded by default).
            self.tracer.header(
                self.name, n, horizon,
                fast_path=self.use_fast_path,
                embedded_master=self.embedded_master,
            )
        allocations = np.empty((horizon, n))
        local = np.empty((horizon, n))
        global_costs = np.empty(horizon)
        stragglers = np.empty(horizon, dtype=int)
        for t in range(1, horizon + 1):
            x, l, l_t, s_t = self.run_round(t, process.costs_at(t))
            allocations[t - 1] = x
            local[t - 1] = l
            global_costs[t - 1] = l_t
            stragglers[t - 1] = s_t
        return RunResult(
            algorithm=self.name,
            num_workers=n,
            horizon=horizon,
            allocations=allocations,
            local_costs=local,
            global_costs=global_costs,
            stragglers=stragglers,
            decision_seconds=np.zeros(horizon),
        )

"""Shared trace emission for both protocol architectures.

Algorithm 1 and Algorithm 2 record the same per-round observables, so
the emission logic lives here once. Everything recorded is **path
independent**: allocations and costs are bit-identical between the
event engine and the batched fast path by the protocols' equivalence
contract, and the phase record uses virtual time and processed-event
counts (which :meth:`repro.net.batch.BatchedCluster.finish_round`
keeps aligned), never wall-clock time. A golden trace therefore diffs
empty across engines — which is precisely what makes it a regression
oracle for the fast path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.net.events import EventEngine
from repro.obs.records import (
    DecisionRecord,
    MembershipRecord,
    PhaseRecord,
    StragglerRecord,
    float_tuple,
)
from repro.obs.tracer import Tracer

__all__ = ["emit_round", "emit_membership"]


def emit_round(
    tracer: Tracer,
    round_index: int,
    x_played: np.ndarray,
    local: np.ndarray,
    global_cost: float,
    straggler: int,
    next_allocation: np.ndarray,
    start_time: float,
    start_events: int,
    engine: EventEngine,
) -> None:
    """Emit the decision/straggler/phase records for one protocol round."""
    tracer.emit(
        DecisionRecord(
            round=round_index,
            allocation=float_tuple(x_played),
            local_costs=float_tuple(local),
            global_cost=float(global_cost),
            straggler=int(straggler),
            next_allocation=float_tuple(next_allocation),
        )
    )
    # Dead workers report NaN local cost; they wait for nothing.
    tracer.emit(
        StragglerRecord(
            round=round_index,
            worker=int(straggler),
            cost=float(global_cost),
            waiting_total=float(np.nansum(global_cost - local)),
        )
    )
    tracer.emit(
        PhaseRecord(
            round=round_index,
            phase="round",
            start=float(start_time),
            end=float(engine.now),
            events=int(engine.processed_events - start_events),
        )
    )


def emit_membership(
    tracer: Tracer | None,
    round_index: int,
    action: str,
    workers: Sequence[int],
    roster: Sequence[int],
) -> None:
    """Emit a membership record (no-op when tracing is disabled)."""
    if tracer is None:
        return
    tracer.emit(
        MembershipRecord(
            round=round_index,
            action=action,
            workers=tuple(int(w) for w in workers),
            roster=tuple(int(w) for w in roster),
        )
    )

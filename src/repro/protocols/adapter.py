"""Drive the message-passing protocols through the standard balancer API.

:class:`ProtocolBalancer` wraps Algorithm 1 or Algorithm 2 (including
their link/topology/loss configurations) as an
:class:`~repro.core.interface.OnlineLoadBalancer`, so the synchronous
trainer, the experiment harness, and the analysis toolkit can run the
*actual distributed implementation* end-to-end — Fig. 2's integration
with the real protocol instead of the centralized reference.

The wiring relies on an invariant both protocols share: at the start of
round ``t`` the protocol's current allocation is exactly what ``decide``
returned, so replaying the round inside ``update`` (the protocol
evaluates the same cost functions at the same allocation) reproduces the
harness's observations bit-for-bit; the adapter asserts this.
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import OnlineLoadBalancer, RoundFeedback
from repro.exceptions import ProtocolError

__all__ = ["ProtocolBalancer"]


class ProtocolBalancer(OnlineLoadBalancer):
    """Adapter: a protocol instance behind the balancer interface."""

    def __init__(self, protocol) -> None:
        """``protocol`` is a :class:`MasterWorkerDolbie` or
        :class:`FullyDistributedDolbie` (already configured)."""
        super().__init__(protocol.num_workers, protocol.allocation)
        self.protocol = protocol
        self.name = protocol.name

    def decide(self) -> np.ndarray:
        return self.protocol.allocation

    def _update(self, feedback: RoundFeedback) -> None:
        played, local, global_cost, straggler = self.protocol.run_round(
            feedback.round_index, list(feedback.costs)
        )
        if not np.allclose(played, feedback.allocation, atol=1e-12):
            raise ProtocolError(
                "harness and protocol disagree on the played allocation; "
                "was the protocol advanced outside the adapter?"
            )
        if straggler != feedback.straggler or not np.isclose(
            global_cost, feedback.global_cost, atol=1e-12
        ):
            raise ProtocolError(
                "harness and protocol disagree on the round outcome "
                f"(straggler {straggler} vs {feedback.straggler})"
            )
        self._allocation = self.protocol.allocation

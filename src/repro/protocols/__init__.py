"""DOLBIE as message-passing protocols on the network substrate (§IV-B)."""

from repro.protocols.adapter import ProtocolBalancer
from repro.protocols.fully_distributed import FullyDistributedDolbie
from repro.protocols.master_worker import MasterWorkerDolbie

__all__ = ["MasterWorkerDolbie", "FullyDistributedDolbie", "ProtocolBalancer"]

"""Edge-computing task offloading: the paper's Example 2 (§III-B)."""

from repro.edge.offloading import EdgeOffloadingScenario

__all__ = ["EdgeOffloadingScenario"]

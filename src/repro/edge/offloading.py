"""Example 2 (§III-B): task offloading in edge computing.

A user device holds a divisible computation task; a fraction
``lambda_0`` runs locally and fractions ``lambda_i`` are offloaded to N
heterogeneous edge servers. Cost functions:

* local execution — processing time proportional to the retained
  fraction on the (slow) device CPU;
* offloading to server *i* — task *transmission* time over a fluctuating
  wireless uplink plus *execution* time at the server, modeled with the
  M/M/1-style :class:`~repro.costs.nonlinear.QueueingDelayCost` so that
  delay blows up as a server approaches saturation (genuinely non-linear,
  the regime where proportional baselines mis-assign).

The scenario is exposed as a :class:`~repro.costs.timevarying.CostProcess`
over N+1 "workers" (index 0 is the local device), so every balancer in the
library runs on it unchanged — this is the library's second end-to-end
application domain next to :mod:`repro.mlsim`.
"""

from __future__ import annotations

import numpy as np

from repro.costs.base import CallableCost, CostFunction
from repro.costs.timevarying import CostProcess
from repro.exceptions import ConfigurationError
from repro.mlsim.traces import FluctuationTrace

__all__ = ["EdgeOffloadingScenario"]


class EdgeOffloadingScenario(CostProcess):
    """Time-varying offloading costs for one user and N edge servers."""

    def __init__(
        self,
        num_servers: int = 8,
        task_size_mbits: float = 80.0,
        local_rate: float = 0.4,
        server_rates: np.ndarray | None = None,
        uplink_mbps: np.ndarray | None = None,
        background_load: float = 0.3,
        seed: int = 0,
    ) -> None:
        """Create a scenario.

        Parameters
        ----------
        num_servers:
            Number of edge servers N (total workers is N+1).
        task_size_mbits:
            Size of the full task when transmitted, in megabits.
        local_rate:
            Fraction of the task the user device can process per second.
        server_rates:
            Service rate ``mu_i`` of each server in tasks/second
            (defaults to a heterogeneous spread in [0.8, 4.0]).
        uplink_mbps:
            Mean uplink rate to each server (defaults to 20-120 Mbps).
        background_load:
            Fraction of each server's capacity consumed by background
            traffic, which fluctuates over time.
        """
        super().__init__(num_servers + 1)
        if task_size_mbits <= 0 or local_rate <= 0:
            raise ConfigurationError("task size and local rate must be positive")
        if not 0 <= background_load < 1:
            raise ConfigurationError("background_load must lie in [0, 1)")
        rng = np.random.default_rng(np.random.SeedSequence([seed, 0xED6E]))
        self.num_servers = int(num_servers)
        self.task_size_mbits = float(task_size_mbits)
        self.local_rate = float(local_rate)
        self.server_rates = (
            np.asarray(server_rates, dtype=float)
            if server_rates is not None
            else rng.uniform(0.8, 4.0, size=num_servers)
        )
        self.uplink_mbps = (
            np.asarray(uplink_mbps, dtype=float)
            if uplink_mbps is not None
            else rng.uniform(20.0, 120.0, size=num_servers)
        )
        if self.server_rates.shape != (num_servers,) or self.uplink_mbps.shape != (
            num_servers,
        ):
            raise ConfigurationError("server_rates/uplink_mbps must have length N")
        if np.any(self.server_rates <= 0) or np.any(self.uplink_mbps <= 0):
            raise ConfigurationError("rates must be positive")
        self.background_load = float(background_load)
        self._local_trace = FluctuationTrace(
            rho=0.9, sigma=0.05, spike_probability=0.01, seed=seed * 31 + 1
        )
        self._uplink_traces = [
            FluctuationTrace(rho=0.8, sigma=0.15, spike_probability=0.02, seed=seed * 97 + i)
            for i in range(num_servers)
        ]
        self._load_traces = [
            FluctuationTrace(rho=0.9, sigma=0.10, spike_probability=0.015, seed=seed * 193 + i)
            for i in range(num_servers)
        ]

    def _local_cost(self, t: int) -> CostFunction:
        rate = self.local_rate * self._local_trace.at(t)
        return CallableCost(
            lambda x, r=rate: x / r,
            inverse=lambda level, r=rate: level * r,
            label=f"local(t={t})",
        )

    def effective_service_rate(self, server: int, t: int) -> float:
        """Server ``mu`` after subtracting its background load in round t."""
        if not 0 <= server < self.num_servers:
            raise ConfigurationError(f"server index {server} out of range")
        load = min(0.95, self.background_load * self._load_traces[server].at(t))
        return float(self.server_rates[server] * (1.0 - load))

    def _server_cost(self, server: int, t: int) -> CostFunction:
        uplink = self.uplink_mbps[server] * self._uplink_traces[server].at(t)
        transmit_full = self.task_size_mbits / uplink  # seconds for the whole task
        mu_effective = self.effective_service_rate(server, t)
        # Execution delay x / (mu - x): zero at zero load, convex, and
        # blowing up toward saturation — the non-linear regime of §III-B.
        # Past 99% of saturation the delay continues as a steep linear
        # ramp so that baselines that overshoot (OGD, LB-BSP) observe a
        # huge-but-finite "deadline blown" cost instead of crashing.
        sat = 0.99 * mu_effective

        def total(x: float, tf: float = transmit_full, mu: float = mu_effective) -> float:
            if x <= sat:
                return tf * x + x / (mu - x)
            base = tf * sat + sat / (mu - sat)
            steep_slope = tf + mu / (mu - sat) ** 2
            return base + steep_slope * (x - sat)

        return CallableCost(total, x_max=1.0, label=f"server{server}(t={t})")

    def costs_at(self, t: int) -> list[CostFunction]:
        costs: list[CostFunction] = [self._local_cost(t)]
        costs.extend(self._server_cost(i, t) for i in range(self.num_servers))
        return costs

"""The cluster: nodes + links + event engine + metrics.

A :class:`Cluster` wires :class:`~repro.net.node.Node` objects into a
full mesh (per-pair links can be overridden for heterogeneous topologies)
and routes messages through the :class:`~repro.net.events.EventEngine`
with the link's sampled delay. All message and byte counts flow into
:class:`~repro.net.metrics.NetworkMetrics`, which the §IV-C complexity
experiment reads.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.exceptions import ProtocolError, SimulationError
from repro.net.events import EventEngine
from repro.net.links import Link
from repro.net.message import Message, scalar_payload_size
from repro.net.metrics import NetworkMetrics
from repro.net.node import Node

__all__ = ["Cluster"]


class Cluster:
    """A set of nodes communicating over simulated links."""

    def __init__(
        self,
        nodes: Sequence[Node],
        default_link: Link | None = None,
        retransmit_timeout: float = 0.05,
        max_retransmits: int = 30,
    ) -> None:
        """``retransmit_timeout``/``max_retransmits`` configure the
        transport layer used over lossy links: a dropped frame is resent
        after the timeout, up to the retry budget (then the send fails
        loudly — protocols assume reliable rounds)."""
        if len(nodes) == 0:
            raise SimulationError("a cluster needs at least one node")
        if retransmit_timeout <= 0 or max_retransmits < 0:
            raise SimulationError("invalid transport parameters")
        self.retransmit_timeout = float(retransmit_timeout)
        self.max_retransmits = int(max_retransmits)
        self._colocated: set[frozenset[int]] = set()
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate node ids: {sorted(ids)}")
        self.engine = EventEngine()
        self.metrics = NetworkMetrics()
        self._nodes: dict[int, Node] = {}
        self._links: dict[tuple[int, int], Link] = {}
        self._default_link = default_link if default_link is not None else Link()
        for node in nodes:
            node.attach(self)
            self._nodes[node.node_id] = node

    @property
    def node_ids(self) -> list[int]:
        return sorted(self._nodes)

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ProtocolError(f"unknown node id {node_id}") from None

    def set_link(self, src: int, dst: int, link: Link) -> None:
        """Override the link used for ``src -> dst`` messages."""
        self.node(src), self.node(dst)  # validate endpoints
        self._links[(src, dst)] = link

    def colocate(self, a: int, b: int) -> None:
        """Declare two nodes co-located on one machine.

        Messages between them become in-process calls: delivered with
        zero delay, never dropped, and **not counted** in the network
        metrics — this models the paper's §IV-B1 option of "an elected
        worker acts also as the master".
        """
        self.node(a), self.node(b)  # validate endpoints
        if a == b:
            raise ProtocolError("a node is trivially colocated with itself")
        self._colocated.add(frozenset((a, b)))

    def is_colocated(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._colocated

    def link_for(self, src: int, dst: int) -> Link:
        return self._links.get((src, dst), self._default_link)

    def send(
        self,
        src: int,
        dst: int,
        tag: str,
        payload: Mapping[str, Any],
        round_index: int = 0,
    ) -> None:
        """Route one message; delivery is scheduled on the event engine."""
        if dst == src:
            raise ProtocolError(f"node {src} attempted to message itself")
        receiver = self.node(dst)
        message = Message(
            src=src,
            dst=dst,
            tag=tag,
            payload=dict(payload),
            size_bytes=scalar_payload_size(payload),
            send_time=self.engine.now,
            round_index=round_index,
        )
        if self.is_colocated(src, dst):
            # In-process delivery: immediate, lossless, off the wire.
            self.engine.schedule(0.0, lambda: receiver.deliver(message))
            return
        self.metrics.record(message)
        link = self.link_for(src, dst)
        # Transport layer: a dropped frame is retransmitted after the
        # timeout; each attempt pays the link delay afresh. All attempts
        # are counted in the metrics (they really cross the wire).
        total_delay = 0.0
        attempt = 0
        while link.drops_frame():
            attempt += 1
            if attempt > self.max_retransmits:
                raise SimulationError(
                    f"message {tag!r} {src}->{dst} lost after "
                    f"{self.max_retransmits} retransmissions"
                )
            self.metrics.record(message)  # the retransmitted frame
            total_delay += self.retransmit_timeout  # sender's ack timer
        total_delay += link.delay(message.size_bytes)
        self.engine.schedule(total_delay, lambda: receiver.deliver(message))

    def run(self, max_events: int | None = None) -> int:
        """Drain all in-flight messages and callbacks."""
        return self.engine.run(max_events=max_events)

"""The cluster: nodes + links + event engine + metrics.

A :class:`Cluster` wires :class:`~repro.net.node.Node` objects into a
full mesh (per-pair links can be overridden for heterogeneous topologies)
and routes messages through the :class:`~repro.net.events.EventEngine`
with the link's sampled delay. All message and byte counts flow into
:class:`~repro.net.metrics.NetworkMetrics`, which the §IV-C complexity
experiment reads.

The transport contract
----------------------
``Cluster.send`` gives the protocols datagram-with-retries semantics:

- **Reliable over lossy links.** A frame dropped by the link's loss
  model is retransmitted after ``retransmit_timeout``; each attempt pays
  the link delay afresh and is counted in the metrics. When
  ``max_retransmits`` attempts are all lost the send fails loudly with
  :class:`~repro.exceptions.TransportError` (carrying src/dst/tag and
  the attempt count) — the protocols assume rounds eventually complete,
  so a permanently-dead link is an error, not a silent drop.
- **Not order-preserving.** A retransmitted frame can be overtaken by a
  later send; round-synchronous protocols tolerate this.
- **Partitions blackhole silently.** When a network partition (see
  :meth:`set_partition`) separates ``src`` from ``dst``, the frame
  vanishes *without* consuming the retransmit budget and without an
  error: a partition outlives any retry budget, and the failure
  detectors — not the transport — are responsible for noticing silence.
  Blackholed frames are tallied in ``metrics.messages_blackholed``.
- **Co-located nodes bypass the network entirely** (zero delay, no
  loss, no partition, not counted): they model processes sharing one
  machine.

Chaos hooks (:mod:`repro.chaos` drives these): :meth:`set_partition` /
:meth:`clear_partition` split the cluster into isolated groups,
:meth:`set_extra_delay` slows one node's sends and receives (a
transient straggler), and :meth:`set_frame_loss` overrides every link's
loss model with a cluster-wide drop probability (a loss burst).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import ProtocolError, SimulationError, TransportError
from repro.net.events import EventEngine
from repro.net.links import Link
from repro.net.message import Message, scalar_payload_size
from repro.net.metrics import NetworkMetrics
from repro.net.node import LazyNodeTable, Node

__all__ = ["Cluster"]


class Cluster:
    """A set of nodes communicating over simulated links."""

    def __init__(
        self,
        nodes: "Sequence[Node] | LazyNodeTable",
        default_link: Link | None = None,
        retransmit_timeout: float = 0.05,
        max_retransmits: int = 30,
    ) -> None:
        """``retransmit_timeout``/``max_retransmits`` configure the
        transport layer used over lossy links: a dropped frame is resent
        after the timeout, up to the retry budget (then the send fails
        loudly — protocols assume reliable rounds).

        ``nodes`` is normally the full node sequence; a
        :class:`~repro.net.node.LazyNodeTable` may stand in for it, in
        which case node objects are hydrated (and attached) on first
        :meth:`node` access — the struct-of-arrays peer store uses this
        so an N=10⁶ cluster never materializes a million objects."""
        if len(nodes) == 0:
            raise SimulationError("a cluster needs at least one node")
        if retransmit_timeout <= 0 or max_retransmits < 0:
            raise SimulationError("invalid transport parameters")
        self.retransmit_timeout = float(retransmit_timeout)
        self.max_retransmits = int(max_retransmits)
        self._colocated: set[frozenset[int]] = set()
        #: node id -> partition group (None: no partition in effect).
        self._partition: dict[int, int] | None = None
        #: node id -> extra seconds added to its sends and receives.
        self._extra_delay: dict[int, float] = {}
        #: cluster-wide frame-loss override: (probability, rng) or None.
        self._loss_override: tuple[float, Any] | None = None
        self.engine = EventEngine()
        self.metrics = NetworkMetrics()
        #: Optional :class:`repro.obs.Tracer`; when set, the chaos hooks
        #: below emit one ``fault`` record per state change, stamped with
        #: :attr:`trace_round` (the protocol keeps it current).
        self.tracer = None
        self.trace_round = 0
        #: Hydrated node objects (all of them in eager mode; a cache in
        #: lazy mode).
        self._nodes: dict[int, Node] = {}
        self._lazy: LazyNodeTable | None = None
        self._links: dict[tuple[int, int], Link] = {}
        self._default_link = default_link if default_link is not None else Link()
        if isinstance(nodes, LazyNodeTable):
            self._lazy = nodes
        else:
            ids = [node.node_id for node in nodes]
            if len(set(ids)) != len(ids):
                raise SimulationError(f"duplicate node ids: {sorted(ids)}")
            for node in nodes:
                node.attach(self)
                self._nodes[node.node_id] = node

    @property
    def lazy_nodes(self) -> LazyNodeTable | None:
        """The lazy node table, when this cluster was built over one."""
        return self._lazy

    @property
    def node_ids(self) -> "list[int] | range":
        if self._lazy is not None:
            return self._lazy.ids()
        return sorted(self._nodes)

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            if self._lazy is not None:
                node = self._lazy.build(node_id)  # raises on unknown id
                node.attach(self)
                self._nodes[node_id] = node
                return node
            raise ProtocolError(f"unknown node id {node_id}") from None

    def bump_received(self, unique_dst: np.ndarray, counts: np.ndarray) -> None:
        """Credit batched deliveries to many receivers at once.

        In lazy mode this is one array op on the shared counter column;
        in eager mode it applies the same bumps node by node (ascending
        destination, matching the historical per-receiver loop)."""
        if self._lazy is not None:
            self._lazy.bump(unique_dst, counts)
            return
        node = self.node
        for dst, bump in zip(unique_dst.tolist(), counts.tolist()):
            node(dst).received_count += bump

    def set_link(self, src: int, dst: int, link: Link) -> None:
        """Override the link used for ``src -> dst`` messages."""
        self.node(src), self.node(dst)  # validate endpoints
        self._links[(src, dst)] = link

    def colocate(self, a: int, b: int) -> None:
        """Declare two nodes co-located on one machine.

        Messages between them become in-process calls: delivered with
        zero delay, never dropped, and **not counted** in the network
        metrics — this models the paper's §IV-B1 option of "an elected
        worker acts also as the master".
        """
        self.node(a), self.node(b)  # validate endpoints
        if a == b:
            raise ProtocolError("a node is trivially colocated with itself")
        self._colocated.add(frozenset((a, b)))

    def is_colocated(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._colocated

    def link_for(self, src: int, dst: int) -> Link:
        return self._links.get((src, dst), self._default_link)

    # -- chaos hooks ------------------------------------------------------
    def _emit_fault(
        self,
        fault: str,
        workers: Sequence[int] = (),
        severity: float = 0.0,
        groups: Sequence[Sequence[int]] = (),
    ) -> None:
        if self.tracer is None:
            return
        from repro.obs.records import FaultRecord

        self.tracer.emit(
            FaultRecord(
                round=int(self.trace_round),
                fault=fault,
                workers=tuple(int(w) for w in workers),
                severity=float(severity),
                groups=tuple(
                    tuple(int(w) for w in group) for group in groups
                ),
            )
        )

    def set_partition(self, groups: Sequence[Iterable[int]]) -> None:
        """Split the cluster into isolated groups (a network partition).

        ``groups`` lists disjoint sets of node ids; any node not listed
        belongs to one shared implicit group (so ``[(2, 3)]`` cuts
        workers 2-3 off from everyone else). Messages between different
        groups are silently blackholed until :meth:`clear_partition`.
        A new partition replaces the previous one.
        """
        mapping: dict[int, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                self.node(node_id)  # validate
                if node_id in mapping:
                    raise SimulationError(
                        f"node {node_id} appears in two partition groups"
                    )
                mapping[node_id] = index
        self._partition = mapping
        if self.tracer is not None:
            by_group: dict[int, list[int]] = {}
            for node_id, index in sorted(mapping.items()):
                by_group.setdefault(index, []).append(node_id)
            self._emit_fault(
                "partition", groups=[by_group[i] for i in sorted(by_group)]
            )

    def clear_partition(self) -> None:
        """Heal the partition: every route works again."""
        self._partition = None
        self._emit_fault("partition_heal")

    @property
    def partitioned(self) -> bool:
        return self._partition is not None

    def can_communicate(self, a: int, b: int) -> bool:
        """True unless a partition separates ``a`` from ``b``."""
        if self._partition is None:
            return True
        return self._partition.get(a, -1) == self._partition.get(b, -1)

    def set_extra_delay(self, node_id: int, seconds: float) -> None:
        """Add ``seconds`` to every send/receive of ``node_id`` (a
        transient slowdown); ``0`` restores normal speed."""
        self.node(node_id)  # validate
        if seconds < 0:
            raise SimulationError(f"extra delay must be >= 0, got {seconds}")
        if seconds == 0.0:
            self._extra_delay.pop(node_id, None)
            self._emit_fault("delay_clear", workers=[node_id])
        else:
            self._extra_delay[node_id] = float(seconds)
            self._emit_fault("delay", workers=[node_id], severity=seconds)

    def set_frame_loss(
        self, probability: float, rng: "np.random.Generator"
    ) -> None:
        """Override every link's loss model with a cluster-wide drop
        probability (a loss burst); clear with :meth:`clear_frame_loss`."""
        if not 0.0 <= probability < 1.0:
            raise SimulationError(
                f"loss probability must lie in [0, 1), got {probability}"
            )
        self._loss_override = (float(probability), rng)
        self._emit_fault("frame_loss", severity=probability)

    def clear_frame_loss(self) -> None:
        self._loss_override = None
        self._emit_fault("frame_loss_clear")

    @property
    def chaos_active(self) -> bool:
        """True while any chaos hook (partition, extra delay, frame-loss
        override) is in effect."""
        return (
            self._partition is not None
            or bool(self._extra_delay)
            or self._loss_override is not None
        )

    def batch_eligible(self) -> bool:
        """True when phase-batched delivery is observably identical to
        per-frame delivery: no chaos hooks, no per-pair link overrides,
        no co-located nodes, a lossless default link (no retransmits),
        and an empty event queue (nothing in flight to interleave with).
        """
        return (
            not self.chaos_active
            and not self._links
            and not self._colocated
            and self._default_link.loss_probability == 0.0
            and self.engine.pending == 0
        )

    def batched(self) -> "BatchedCluster":
        """A phase-level batched view of this cluster (the fast path)."""
        from repro.net.batch import BatchedCluster

        return BatchedCluster(self)

    def _frame_dropped(self, link: Link) -> bool:
        """Sample one transmission attempt under the active loss regime."""
        if self._loss_override is not None:
            probability, rng = self._loss_override
            return bool(rng.random() < probability)
        return link.drops_frame()

    def send(
        self,
        src: int,
        dst: int,
        tag: str,
        payload: Mapping[str, Any],
        round_index: int = 0,
    ) -> None:
        """Route one message; delivery is scheduled on the event engine."""
        if dst == src:
            raise ProtocolError(f"node {src} attempted to message itself")
        receiver = self.node(dst)
        message = Message(
            src=src,
            dst=dst,
            tag=tag,
            payload=dict(payload),
            size_bytes=scalar_payload_size(payload),
            send_time=self.engine.now,
            round_index=round_index,
        )
        if self.is_colocated(src, dst):
            # In-process delivery: immediate, lossless, off the wire.
            self.engine.schedule(0.0, lambda: receiver.deliver(message))
            return
        self.metrics.record(message)
        if not self.can_communicate(src, dst):
            # A partition blackholes the frame: no delivery, no error,
            # no retransmissions — silence is the failure detectors' job.
            self.metrics.record_blackholed()
            return
        link = self.link_for(src, dst)
        # Transport layer: a dropped frame is retransmitted after the
        # timeout; each attempt pays the link delay afresh. All attempts
        # are counted in the metrics (they really cross the wire).
        total_delay = 0.0
        attempt = 0
        while self._frame_dropped(link):
            attempt += 1
            if attempt > self.max_retransmits:
                raise TransportError(src, dst, tag, self.max_retransmits)
            self.metrics.record(message)  # the retransmitted frame
            total_delay += self.retransmit_timeout  # sender's ack timer
        total_delay += link.delay(message.size_bytes)
        total_delay += self._extra_delay.get(src, 0.0)
        total_delay += self._extra_delay.get(dst, 0.0)
        self.engine.schedule(total_delay, lambda: receiver.deliver(message))

    def run(self, max_events: int | None = None) -> int:
        """Drain all in-flight messages and callbacks."""
        return self.engine.run(max_events=max_events)

"""Link latency models for the simulated network.

A link's delivery delay is ``propagation + size / bandwidth``. The
propagation term can be constant or stochastic; stochastic models draw
from an explicitly-seeded generator so runs stay reproducible.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import SimulationError

__all__ = ["LatencyModel", "ConstantLatency", "UniformLatency", "LogNormalLatency", "Link"]


class LatencyModel(abc.ABC):
    """Propagation-delay distribution of a link."""

    @abc.abstractmethod
    def sample(self) -> float:
        """Draw one propagation delay in seconds (>= 0)."""

    def sample_batch(self, n: int) -> np.ndarray:
        """Draw ``n`` propagation delays as one array.

        Must be bit-identical to ``n`` sequential :meth:`sample` calls
        *and* leave any underlying generator in the same stream position
        (NumPy's ``Generator`` guarantees this for the distributions the
        subclasses use), so batched and per-frame delivery can be mixed
        freely within one run.
        """
        return np.array([self.sample() for _ in range(n)])


class ConstantLatency(LatencyModel):
    """Fixed propagation delay."""

    def __init__(self, seconds: float) -> None:
        if seconds < 0:
            raise SimulationError(f"latency must be >= 0, got {seconds}")
        self.seconds = float(seconds)

    def sample(self) -> float:
        return self.seconds

    def sample_batch(self, n: int) -> np.ndarray:
        return np.full(n, self.seconds)


class UniformLatency(LatencyModel):
    """Uniform delay in ``[low, high]``."""

    def __init__(self, low: float, high: float, rng: np.random.Generator) -> None:
        if not 0 <= low <= high:
            raise SimulationError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low, self.high = float(low), float(high)
        self._rng = rng

    def sample(self) -> float:
        return float(self._rng.uniform(self.low, self.high))

    def sample_batch(self, n: int) -> np.ndarray:
        return self._rng.uniform(self.low, self.high, n)


class LogNormalLatency(LatencyModel):
    """Heavy-tailed delay: ``median * lognormal(0, sigma)``."""

    def __init__(self, median: float, sigma: float, rng: np.random.Generator) -> None:
        if median <= 0 or sigma < 0:
            raise SimulationError("median must be > 0 and sigma >= 0")
        self.median, self.sigma = float(median), float(sigma)
        self._rng = rng

    def sample(self) -> float:
        return self.median * float(self._rng.lognormal(0.0, self.sigma))

    def sample_batch(self, n: int) -> np.ndarray:
        return self.median * self._rng.lognormal(0.0, self.sigma, n)


class Link:
    """A directed link: latency model, optional bandwidth, optional loss.

    ``loss_probability`` models an unreliable physical link; the cluster's
    transport layer retransmits dropped frames (see
    :meth:`repro.net.cluster.Cluster.send`), so the protocols above see
    reliable in-order rounds at the cost of extra delay and duplicate
    frames in the metrics — like TCP over a lossy path.
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        bandwidth_bps: float | None = None,
        loss_probability: float = 0.0,
        loss_rng: np.random.Generator | None = None,
    ) -> None:
        self.latency = latency if latency is not None else ConstantLatency(0.0)
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise SimulationError(f"bandwidth must be positive, got {bandwidth_bps}")
        if not 0.0 <= loss_probability < 1.0:
            raise SimulationError(
                f"loss_probability must lie in [0, 1), got {loss_probability}"
            )
        if loss_probability > 0.0 and loss_rng is None:
            raise SimulationError(
                "a lossy link needs an explicit loss_rng for reproducibility"
            )
        self.bandwidth_bps = bandwidth_bps
        self.loss_probability = float(loss_probability)
        self._loss_rng = loss_rng

    def delay(self, size_bytes: int) -> float:
        """Total delivery delay for a message of ``size_bytes``."""
        transmit = 0.0
        if self.bandwidth_bps is not None:
            transmit = 8.0 * size_bytes / self.bandwidth_bps
        return self.latency.sample() + transmit

    def delay_batch(self, n: int, size_bytes: int) -> np.ndarray:
        """Delays for ``n`` equally-sized messages, sampled as one draw.

        Bit-identical to ``n`` sequential :meth:`delay` calls and leaves
        the latency model's generator in the same stream position (see
        :meth:`LatencyModel.sample_batch`).
        """
        transmit = 0.0
        if self.bandwidth_bps is not None:
            transmit = 8.0 * size_bytes / self.bandwidth_bps
        return self.latency.sample_batch(n) + transmit

    def drops_frame(self) -> bool:
        """Sample whether one transmission attempt is lost."""
        if self.loss_probability == 0.0:
            return False
        assert self._loss_rng is not None
        return bool(self._loss_rng.random() < self.loss_probability)

"""A minimal deterministic discrete-event engine.

The engine maintains virtual time and a priority queue of scheduled
callbacks. Determinism matters: two events at the same virtual time fire
in scheduling order (a monotone sequence number breaks ties), so protocol
runs are bit-for-bit reproducible — which is what lets the integration
tests assert the message-passing DOLBIE equals the centralized reference.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.exceptions import SimulationError

__all__ = ["EventEngine"]


class EventEngine:
    """Virtual-time event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.processed_events = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), callback))

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed.

        ``max_events`` guards against runaway protocols in tests.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"event budget of {max_events} exhausted; protocol livelock?"
                )
            time, _seq, callback = heapq.heappop(self._queue)
            if time < self._now:  # pragma: no cover - heap guarantees order
                raise SimulationError("event queue delivered an event out of order")
            self._now = time
            callback()
            processed += 1
        self.processed_events += processed
        return processed

    def reset(self) -> None:
        """Clear pending events and rewind the clock."""
        self._queue.clear()
        self._now = 0.0

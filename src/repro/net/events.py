"""A minimal deterministic discrete-event engine.

The engine maintains virtual time and a priority queue of scheduled
callbacks. Determinism matters: two events at the same virtual time fire
in scheduling order (a monotone sequence number breaks ties), so protocol
runs are bit-for-bit reproducible — which is what lets the integration
tests assert the message-passing DOLBIE equals the centralized reference.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.exceptions import SimulationError

__all__ = ["EventEngine"]


class EventEngine:
    """Virtual-time event loop."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.processed_events = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` (delay >= 0)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), callback))

    def advance_to(self, time: float) -> None:
        """Jump the clock forward to ``time`` without processing events.

        Used by the batched fast path, which delivers a whole phase of
        frames outside the queue and then advances virtual time to the
        phase's last arrival.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot advance the clock backwards ({time} < {self._now})"
            )
        self._now = time

    def credit_events(self, count: int) -> None:
        """Account ``count`` events delivered outside the queue (the
        batched fast path), keeping ``processed_events`` comparable
        between batched and per-frame runs."""
        if count < 0:
            raise SimulationError(f"cannot credit {count} events")
        self.processed_events += count

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the number of events processed.

        ``max_events`` guards against runaway protocols in tests.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                raise SimulationError(
                    f"event budget of {max_events} exhausted; protocol livelock? "
                    f"(queue depth {len(self._queue)}, virtual time "
                    f"{self._now:.6f}, next event at t={self._queue[0][0]:.6f})"
                )
            time, _seq, callback = heapq.heappop(self._queue)
            if time < self._now:  # pragma: no cover - heap guarantees order
                raise SimulationError("event queue delivered an event out of order")
            self._now = time
            callback()
            processed += 1
        self.processed_events += processed
        return processed

    def reset(self) -> None:
        """Clear pending events and rewind the clock."""
        self._queue.clear()
        self._now = 0.0

"""Discrete-event network substrate for the distributed protocols."""

from repro.net.batch import BatchedCluster
from repro.net.cluster import Cluster
from repro.net.events import EventEngine
from repro.net.links import (
    ConstantLatency,
    LatencyModel,
    Link,
    LogNormalLatency,
    UniformLatency,
)
from repro.net.message import FrameBatch, Message, scalar_payload_size
from repro.net.metrics import NetworkMetrics
from repro.net.node import Node
from repro.net.topology import Topology, connected_components

__all__ = [
    "BatchedCluster",
    "Cluster",
    "EventEngine",
    "Node",
    "Topology",
    "connected_components",
    "FrameBatch",
    "Message",
    "scalar_payload_size",
    "NetworkMetrics",
    "Link",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
]

"""Phase-batched message delivery: the protocol layer's fast path.

The event engine delivers one :class:`~repro.net.message.Message` at a
time through a heapq and per-frame Python callbacks. For the protocols'
*healthy* rounds that generality is wasted: every round is a fixed
sequence of broadcast/gather phases whose frames are all sent over the
same default link. :class:`BatchedCluster` delivers such a phase in one
step — all link delays sampled as a single numpy draw, frames carried as
struct-of-arrays (:class:`~repro.net.message.FrameBatch`), metrics and
receive counts bumped in bulk — and lets the caller advance virtual time
to the phase maximum afterwards.

Bit-identity contract (same discipline as ``docs/performance.md``):

- **Draw order.** A phase's frames must be listed in event-engine send
  order; ``LatencyModel.sample_batch`` is bit-identical to sequential
  scalar draws *and* leaves the generator in the same stream position,
  so batched rounds and event-engine rounds can be mixed within one run
  (the auto-fallback relies on this).
- **Accounting.** Message/byte totals, per-round and per-pair counts,
  ``received_count`` and ``processed_events`` advance exactly as the
  per-frame path would advance them.
- **Eligibility.** :meth:`Cluster.batch_eligible` guards the fast path:
  any chaos hook (partition, extra delay, frame loss), per-pair link
  override, co-location, lossy default link, or in-flight event disables
  batching; the protocols then fall back to the event engine, whose
  semantics are untouched.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SimulationError
from repro.net.cluster import Cluster
from repro.net.message import FrameBatch

__all__ = ["BatchedCluster", "group_by_destination"]


def group_by_destination(
    dst: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Group per-frame ``values`` by destination in one argsort pass.

    Returns ``(unique_dst, groups)`` with ``unique_dst`` ascending and
    ``groups[i]`` holding the values of the frames addressed to
    ``unique_dst[i]``, in original frame order (the argsort is stable).
    O(E log E) array ops, no per-frame Python — the delivery loop and the
    tree fast path's per-head gathers both ride on this.
    """
    dst = np.asarray(dst)
    values = np.asarray(values)
    order = np.argsort(dst, kind="stable")
    sorted_dst = dst[order]
    boundaries = np.flatnonzero(sorted_dst[1:] != sorted_dst[:-1]) + 1
    groups = np.split(values[order], boundaries)
    if sorted_dst.size == 0:
        return sorted_dst, []
    unique = sorted_dst[np.concatenate(([0], boundaries))]
    return unique, groups


class BatchedCluster:
    """Phase-level batched delivery over a cluster's default link."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def now(self) -> float:
        return self._cluster.engine.now

    def eligible(self) -> bool:
        """True when batched delivery is observably identical to the
        event engine (see :meth:`Cluster.batch_eligible`)."""
        return self._cluster.batch_eligible()

    def deliver(
        self, batch: FrameBatch, send_times: float | np.ndarray
    ) -> np.ndarray:
        """Deliver one phase; returns each frame's arrival time.

        ``send_times`` is a scalar (all frames sent together) or a
        per-frame array. The link delays for the whole phase are sampled
        as **one** draw in frame order — the caller must list frames in
        event-engine send order so the generator consumes the stream
        identically to per-frame sends. Metrics and the receivers'
        ``received_count`` are updated in bulk; the caller advances the
        clock via :meth:`finish_round` once the round's last phase is in.
        """
        if not self.eligible():
            raise SimulationError(
                "batched delivery requested while the cluster is not "
                "batch-eligible (chaos hooks active or frames in flight)"
            )
        delays = self._cluster._default_link.delay_batch(
            batch.count, batch.size_bytes
        )
        arrivals = np.asarray(send_times, dtype=float) + delays
        self._cluster.metrics.record_batch_arrays(
            batch.round_index, batch.count, batch.total_bytes, batch.src, batch.dst
        )
        # One stable argsort/split pass replaces the historical
        # per-destination bincount loop — O(E) array ops plus one Python
        # attribute bump per *receiver* (bit-identical counts, pinned by
        # tests/unit/test_net_batch.py).
        unique_dst, groups = group_by_destination(batch.dst, batch.dst)
        node = self._cluster.node
        for dst, group in zip(unique_dst.tolist(), groups):
            node(dst).received_count += group.size
        return arrivals

    def finish_round(self, now: float, events: int) -> None:
        """Advance virtual time to the round's last arrival and credit
        the delivered frames as processed events, so batched rounds and
        event-engine rounds report identical clock/event statistics."""
        engine = self._cluster.engine
        engine.advance_to(now)
        engine.credit_events(events)

"""Phase-batched message delivery: the protocol layer's fast path.

The event engine delivers one :class:`~repro.net.message.Message` at a
time through a heapq and per-frame Python callbacks. For the protocols'
*healthy* rounds that generality is wasted: every round is a fixed
sequence of broadcast/gather phases whose frames are all sent over the
same default link. :class:`BatchedCluster` delivers such a phase in one
step — all link delays sampled as a single numpy draw, frames carried as
struct-of-arrays (:class:`~repro.net.message.FrameBatch`), metrics and
receive counts bumped in bulk — and lets the caller advance virtual time
to the phase maximum afterwards.

Two refinements ride on the same contract:

- **Streaming chunks.** ``deliver(..., chunk_frames=K)`` processes the
  batch as zero-copy slices of at most ``K`` frames, so an N=100,000
  phase never holds more than one chunk of per-frame intermediates.
  Chunked delivery is bit-identical to one-shot delivery: per-chunk
  delay draws are stream-identical to a single draw (``sample_batch``
  splits are stable — pinned by the mixed-interleaving test), chunk
  accounting sums to the phase totals, and per-pair counters are still
  created in frame order.
- **Delivery plans.** A :class:`DeliveryPlan` precomputes everything a
  repeating ``(src, dst)`` frame layout implies — counts, bytes, the
  per-receiver bump list, the per-pair counter handles — so the
  compiled tree round pays O(unique pairs) cached bumps per phase
  instead of an ``np.unique`` pass, with identical observable
  accounting.

Bit-identity contract (same discipline as ``docs/performance.md``):

- **Draw order.** A phase's frames must be listed in event-engine send
  order; ``LatencyModel.sample_batch`` is bit-identical to sequential
  scalar draws *and* leaves the generator in the same stream position,
  so batched rounds and event-engine rounds can be mixed within one run
  (the auto-fallback relies on this).
- **Accounting.** Message/byte totals, per-round and per-pair counts,
  ``received_count`` and ``processed_events`` advance exactly as the
  per-frame path would advance them.
- **Eligibility.** :meth:`Cluster.batch_eligible` guards the fast path:
  any chaos hook (partition, extra delay, frame loss), per-pair link
  override, co-location, lossy default link, or in-flight event disables
  batching; the protocols then fall back to the event engine, whose
  semantics are untouched.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import SimulationError
from repro.net.cluster import Cluster
from repro.net.message import FrameBatch, SCALAR_BYTES

__all__ = [
    "BatchedCluster",
    "DeliveryPlan",
    "group_by_destination",
    "default_chunk_frames",
    "DEFAULT_CHUNK_FRAMES",
]

#: Default streaming-chunk size for phase delivery. Small enough that a
#: chunk's per-frame intermediates stay cache-resident, large enough
#: that phases below N~65k keep their historical one-shot path.
DEFAULT_CHUNK_FRAMES = 65536

#: Env override for :func:`default_chunk_frames` (``0`` disables
#: chunking entirely).
CHUNK_ENV = "REPRO_BATCH_CHUNK"


def default_chunk_frames() -> int | None:
    """The streaming chunk size: ``$REPRO_BATCH_CHUNK`` or the default
    (``None`` — unchunked — when the env var is ``0`` or negative)."""
    raw = os.environ.get(CHUNK_ENV)
    if raw is None:
        return DEFAULT_CHUNK_FRAMES
    value = int(raw)
    return value if value > 0 else None


def group_by_destination(
    dst: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Group per-frame ``values`` by destination in one argsort pass.

    Returns ``(unique_dst, groups)`` with ``unique_dst`` ascending and
    ``groups[i]`` holding the values of the frames addressed to
    ``unique_dst[i]``, in original frame order (the argsort is stable).
    O(E log E) array ops, no per-frame Python — the delivery loop and the
    tree fast path's per-head gathers both ride on this.
    """
    dst = np.asarray(dst)
    values = np.asarray(values)
    order = np.argsort(dst, kind="stable")
    sorted_dst = dst[order]
    boundaries = np.flatnonzero(sorted_dst[1:] != sorted_dst[:-1]) + 1
    groups = np.split(values[order], boundaries)
    if sorted_dst.size == 0:
        return sorted_dst, []
    unique = sorted_dst[np.concatenate(([0], boundaries))]
    return unique, groups


class BatchedCluster:
    """Phase-level batched delivery over a cluster's default link."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster

    @property
    def cluster(self) -> Cluster:
        return self._cluster

    @property
    def now(self) -> float:
        return self._cluster.engine.now

    def eligible(self) -> bool:
        """True when batched delivery is observably identical to the
        event engine (see :meth:`Cluster.batch_eligible`)."""
        return self._cluster.batch_eligible()

    def deliver(
        self,
        batch: FrameBatch,
        send_times: float | np.ndarray,
        chunk_frames: int | None = None,
    ) -> np.ndarray:
        """Deliver one phase; returns each frame's arrival time.

        ``send_times`` is a scalar (all frames sent together) or a
        per-frame array. The link delays for the whole phase are sampled
        in frame order — the caller must list frames in event-engine
        send order so the generator consumes the stream identically to
        per-frame sends. Metrics and the receivers' ``received_count``
        are updated in bulk; the caller advances the clock via
        :meth:`finish_round` once the round's last phase is in.

        ``chunk_frames`` streams the batch as zero-copy slices of at
        most that many frames (see the module docstring; ``None`` keeps
        the historical one-shot delivery). Chunking changes peak memory
        only — arrivals, metrics, and RNG stream position are
        bit-identical.
        """
        if not self.eligible():
            raise SimulationError(
                "batched delivery requested while the cluster is not "
                "batch-eligible (chaos hooks active or frames in flight)"
            )
        if chunk_frames is None or batch.count <= chunk_frames:
            return self._deliver_frames(batch, send_times)
        scalar_send = np.ndim(send_times) == 0
        if not scalar_send:
            send_times = np.asarray(send_times, dtype=float)
        arrivals = np.empty(batch.count, dtype=float)
        for lo, sub in batch.chunks(chunk_frames):
            hi = lo + sub.count
            arrivals[lo:hi] = self._deliver_frames(
                sub, send_times if scalar_send else send_times[lo:hi]
            )
        return arrivals

    def _deliver_frames(
        self, batch: FrameBatch, send_times: float | np.ndarray
    ) -> np.ndarray:
        """One-shot delivery of ``batch`` (the eligibility check already
        ran)."""
        delays = self._cluster._default_link.delay_batch(
            batch.count, batch.size_bytes
        )
        arrivals = np.asarray(send_times, dtype=float) + delays
        self._cluster.metrics.record_batch_arrays(
            batch.round_index, batch.count, batch.total_bytes, batch.src, batch.dst
        )
        # One stable argsort/split pass replaces the historical
        # per-destination bincount loop — O(E) array ops plus one Python
        # attribute bump per *receiver* (bit-identical counts, pinned by
        # tests/unit/test_net_batch.py). Over a lazy node table the
        # per-receiver bumps collapse to a single scatter-add on the
        # shared counter column.
        if self._cluster.lazy_nodes is not None:
            unique_dst, counts = np.unique(batch.dst, return_counts=True)
            self._cluster.lazy_nodes.bump(unique_dst, counts)
            return arrivals
        unique_dst, groups = group_by_destination(batch.dst, batch.dst)
        node = self._cluster.node
        for dst, group in zip(unique_dst.tolist(), groups):
            node(dst).received_count += group.size
        return arrivals

    def plan(
        self, src: np.ndarray, dst: np.ndarray, payload_fields: int
    ) -> "DeliveryPlan":
        """Precompute a :class:`DeliveryPlan` for a repeating phase
        layout (same ``src``/``dst`` arrays every round)."""
        return DeliveryPlan(self, src, dst, payload_fields)

    def finish_round(self, now: float, events: int) -> None:
        """Advance virtual time to the round's last arrival and credit
        the delivered frames as processed events, so batched rounds and
        event-engine rounds report identical clock/event statistics."""
        engine = self._cluster.engine
        engine.advance_to(now)
        engine.credit_events(events)


class DeliveryPlan:
    """Cached delivery accounting for a phase whose frame layout repeats.

    The compiled tree round delivers the same ``(src, dst)`` arrays every
    round (the overlay is fixed until membership changes), so everything
    :meth:`BatchedCluster.deliver` derives from them per call — frame
    count, wire bytes, the unique-pair histogram in first-occurrence
    order, the per-receiver bump list — is computed once here. A plan
    delivery then costs one delay draw plus O(unique pairs + receivers)
    cached counter bumps, with accounting **identical** to
    ``deliver`` on an equivalent :class:`FrameBatch`: same totals, same
    per-pair values, same counter creation order, same ``received_count``
    advances, same RNG stream consumption.

    Payload *values* are never materialized: batched delivery is
    payload-oblivious (only the field count enters the wire size), so a
    plan carries ``payload_fields`` instead of arrays — this is what
    "streaming FrameBatch construction" means for the compiled path,
    where ~3N frames per round exist only as this plan's columns.

    ``deliver(..., drop=k)`` delivers the layout minus frame ``k`` (the
    straggler's suppressed decision in phase E): ``count - 1`` delay
    draws against the caller's masked send times, the dropped frame's
    pair and receiver bumps withheld. The dropped frame's pair must be
    unique within the batch (true for member->head layouts, where every
    member is a distinct pair) so counter creation order still matches
    the eager masked path.

    Plans hold references to the cluster's node objects and metric
    counters; they die with the protocol's overlay cache on any
    membership change, and re-resolve their counter handles when the
    metrics object is reset (:attr:`NetworkMetrics.pair_epoch`).
    """

    def __init__(
        self,
        batched: BatchedCluster,
        src: np.ndarray,
        dst: np.ndarray,
        payload_fields: int,
    ) -> None:
        self._batched = batched
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        if self.src.shape != self.dst.shape:
            raise ValueError(
                f"src/dst shape mismatch: {self.src.shape} vs {self.dst.shape}"
            )
        self.count = int(self.src.size)
        self.size_bytes = SCALAR_BYTES * int(payload_fields)
        cluster = batched.cluster
        # Per-receiver bumps, ascending destination (the order the
        # one-shot path applies them; addition is commutative but keep
        # it anyway for strict attribute-write parity). Over a lazy node
        # table the plan keeps (dst, count) arrays instead of resolved
        # node objects — resolving would hydrate every receiver, which
        # at N=10⁶ is exactly what lazy mode exists to avoid.
        unique_dst, groups = group_by_destination(self.dst, self.dst)
        if cluster.lazy_nodes is not None:
            self._recv = None
            self._recv_dst = unique_dst.astype(np.int64, copy=True)
            self._recv_counts = np.array(
                [g.size for g in groups], dtype=np.int64
            )
        else:
            self._recv = [
                (cluster.node(int(d)), int(g.size))
                for d, g in zip(unique_dst.tolist(), groups)
            ]
            self._recv_dst = self._recv_counts = None
        # Unique (src, dst) pairs in first-occurrence frame order — the
        # counter creation order record_batch_arrays uses — plus each
        # frame's entry index (for drop=).
        if self.count:
            keys = (self.src << 32) | self.dst
            _, first, inverse, counts = np.unique(
                keys, return_index=True, return_inverse=True, return_counts=True
            )
            order = np.argsort(first, kind="stable")
            rank = np.empty(order.size, dtype=np.int64)
            rank[order] = np.arange(order.size)
            self._frame_entry = rank[inverse]
            self._pairs = [
                ((int(self.src[first[k]]), int(self.dst[first[k]])), int(counts[k]))
                for k in order.tolist()
            ]
        else:
            self._frame_entry = np.empty(0, dtype=np.int64)
            self._pairs = []
        self._pair_counters: list = [None] * len(self._pairs)
        self._pair_epoch = -1

    def deliver(
        self,
        round_index: int,
        send_times: float | np.ndarray,
        drop: int | None = None,
    ) -> np.ndarray:
        """Deliver the planned phase; returns per-frame arrival times.

        With ``drop=k``, ``send_times`` must already exclude frame ``k``
        (length ``count - 1`` or scalar) and the returned arrivals are
        for the remaining frames in order.
        """
        batched = self._batched
        if not batched.eligible():
            raise SimulationError(
                "batched delivery requested while the cluster is not "
                "batch-eligible (chaos hooks active or frames in flight)"
            )
        cluster = batched.cluster
        count = self.count if drop is None else self.count - 1
        delays = cluster._default_link.delay_batch(count, self.size_bytes)
        arrivals = np.asarray(send_times, dtype=float) + delays
        metrics = cluster.metrics
        metrics.record_totals(round_index, count, count * self.size_bytes)
        if metrics.pair_accounting and count:
            self._bump_pairs(metrics, drop)
        if self._recv is None:
            cluster.lazy_nodes.bump(self._recv_dst, self._recv_counts)
            if drop is not None:
                cluster.lazy_nodes.received_count[int(self.dst[drop])] -= 1
        else:
            for node, bump in self._recv:
                node.received_count += bump
            if drop is not None:
                cluster.node(int(self.dst[drop])).received_count -= 1
        return arrivals

    def _bump_pairs(self, metrics, drop: int | None) -> None:
        if self._pair_epoch != metrics.pair_epoch:
            # Metrics were reset: stale counter objects; re-resolve
            # lazily (creation order = first bump order, like the eager
            # path rebuilding its registry).
            self._pair_counters = [None] * len(self._pairs)
            self._pair_epoch = metrics.pair_epoch
        drop_entry = -1 if drop is None else int(self._frame_entry[drop])
        counters = self._pair_counters
        for entry, (pair, bump) in enumerate(self._pairs):
            if entry == drop_entry:
                bump -= 1
                if bump == 0:
                    continue  # never create a handle the eager path wouldn't
            counter = counters[entry]
            if counter is None:
                counter = counters[entry] = metrics._pair_handle(pair)
            counter.value += bump

"""Communication accounting for the §IV-C complexity reproduction.

Backed by a :class:`repro.obs.metrics.MetricsRegistry` (one labelled
counter family per concept: totals, per-round, per-pair) instead of the
ad-hoc tally dicts it once held. The public surface is unchanged —
``messages_total`` and friends read as ints, the ``per_round_*`` /
``per_pair_messages`` properties return plain snapshot dicts — so the
complexity experiment and every existing assertion keep working, while
``repro profile`` / :func:`repro.io.save_metrics` get the registry via
:attr:`NetworkMetrics.registry`.
"""

from __future__ import annotations

import os
from typing import Iterable

import numpy as np

from repro.net.message import Message
from repro.obs.metrics import Counter, MetricsRegistry

__all__ = ["NetworkMetrics"]

#: Env knob: ``REPRO_PAIR_METRICS=0`` disables per-(src, dst) counters.
#: Totals and per-round counts stay exact; only the per-pair breakdown —
#: O(unique pairs) Python counter objects, ~3N of them for a tree round,
#: the dominant accounting cost at N=100,000 — is skipped. Read once per
#: :class:`NetworkMetrics` construction.
PAIR_METRICS_ENV = "REPRO_PAIR_METRICS"


class NetworkMetrics:
    """Counts messages and bytes, totals and per round."""

    def __init__(self, pair_accounting: bool | None = None) -> None:
        self.registry = MetricsRegistry()
        if pair_accounting is None:
            pair_accounting = os.environ.get(PAIR_METRICS_ENV, "1") != "0"
        #: Whether per-(src, dst) counters are maintained (default yes).
        self.pair_accounting = bool(pair_accounting)
        #: Bumped on :meth:`reset` — cached per-pair counter handles
        #: held outside this object (``repro.net.batch.DeliveryPlan``)
        #: revalidate against it before bumping.
        self.pair_epoch = 0
        self._init_handles()

    def _init_handles(self) -> None:
        # The hot path (one record() per frame) bumps cached handles
        # directly; the registry stays the single source of truth.
        self._messages_total = self.registry.counter("net.messages_total")
        self._bytes_total = self.registry.counter("net.bytes_total")
        self._blackholed = self.registry.counter("net.messages_blackholed")
        self._round_messages: dict[int, Counter] = {}
        self._round_bytes: dict[int, Counter] = {}
        self._pair_messages: dict[tuple[int, int], Counter] = {}

    def _round_handles(self, round_index: int) -> tuple[Counter, Counter]:
        messages = self._round_messages.get(round_index)
        if messages is None:
            messages = self._round_messages[round_index] = self.registry.counter(
                "net.round_messages", round=round_index
            )
            self._round_bytes[round_index] = self.registry.counter(
                "net.round_bytes", round=round_index
            )
        return messages, self._round_bytes[round_index]

    def _pair_handle(self, pair: tuple[int, int]) -> Counter:
        counter = self._pair_messages.get(pair)
        if counter is None:
            counter = self._pair_messages[pair] = self.registry.counter(
                "net.pair_messages", src=pair[0], dst=pair[1]
            )
        return counter

    # -- recording (per frame / per phase) --------------------------------
    def record(self, message: Message) -> None:
        # Direct .value bumps skip Counter.inc's sign check; every
        # increment here is a positive constant, so monotonicity holds
        # by construction and the per-frame cost stays a few attribute
        # stores.
        self._messages_total.value += 1
        self._bytes_total.value += message.size_bytes
        round_messages, round_bytes = self._round_handles(message.round_index)
        round_messages.value += 1
        round_bytes.value += message.size_bytes
        if self.pair_accounting:
            self._pair_handle((message.src, message.dst)).value += 1

    def record_batch(
        self,
        round_index: int,
        messages: int,
        bytes_total: int,
        pairs: "Iterable[tuple[int, int]]",
    ) -> None:
        """Record a whole phase of same-round frames in bulk.

        Equivalent to ``messages`` :meth:`record` calls: the totals and
        per-round counters are bumped once, and each ``(src, dst)`` in
        ``pairs`` (one entry per frame) gets one per-pair increment.
        """
        self._messages_total.value += messages
        self._bytes_total.value += bytes_total
        round_messages, round_bytes = self._round_handles(round_index)
        round_messages.value += messages
        round_bytes.value += bytes_total
        if self.pair_accounting:
            for pair in pairs:
                self._pair_handle(pair).value += 1

    def record_batch_arrays(
        self,
        round_index: int,
        messages: int,
        bytes_total: int,
        src: np.ndarray,
        dst: np.ndarray,
    ) -> None:
        """:meth:`record_batch` for struct-of-arrays frame batches.

        Identical accounting — same counter values *and* the same counter
        creation order (first occurrence in frame order, so registry
        snapshots stay byte-comparable) — but each unique ``(src, dst)``
        pair costs one Python dict hit instead of one per frame. At
        N=10,000 a flat phase carries ~10^8 frames over ~10^8 pairs and
        stays loop-bound either way, but the tree phases (~N frames over
        ~N pairs, heavily repeated head destinations) drop to O(unique).
        """
        self._messages_total.value += messages
        self._bytes_total.value += bytes_total
        round_messages, round_bytes = self._round_handles(round_index)
        round_messages.value += messages
        round_bytes.value += bytes_total
        if messages == 0 or not self.pair_accounting:
            return
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        keys = (src << 32) | dst
        _, first, counts = np.unique(keys, return_index=True, return_counts=True)
        order = np.argsort(first, kind="stable")  # first-occurrence order
        for k in order.tolist():
            i = int(first[k])
            pair = (int(src[i]), int(dst[i]))
            self._pair_handle(pair).value += int(counts[k])

    def record_totals(
        self, round_index: int, messages: int, bytes_total: int
    ) -> None:
        """Bump the totals and per-round counters only.

        The per-pair half of a phase's accounting is handled separately
        by callers that cache their pair handles across rounds
        (:class:`repro.net.batch.DeliveryPlan` — same counter objects,
        same creation order, same values as :meth:`record_batch_arrays`,
        without the per-round ``np.unique`` pass).
        """
        self._messages_total.value += messages
        self._bytes_total.value += bytes_total
        round_messages, round_bytes = self._round_handles(round_index)
        round_messages.value += messages
        round_bytes.value += bytes_total

    def record_blackholed(self, count: int = 1) -> None:
        """Tally frames swallowed by a partition (never delivered)."""
        self._blackholed.value += count

    # -- reading (the historical public surface) --------------------------
    @property
    def messages_total(self) -> int:
        return int(self._messages_total.value)

    @property
    def bytes_total(self) -> int:
        return int(self._bytes_total.value)

    @property
    def messages_blackholed(self) -> int:
        """Frames sent into a network partition and lost."""
        return int(self._blackholed.value)

    @property
    def per_round_messages(self) -> dict[int, int]:
        """Snapshot ``{round -> frames}`` (a plain dict, not a view)."""
        return {r: int(c.value) for r, c in self._round_messages.items()}

    @property
    def per_round_bytes(self) -> dict[int, int]:
        return {r: int(c.value) for r, c in self._round_bytes.items()}

    @property
    def per_pair_messages(self) -> dict[tuple[int, int], int]:
        return {p: int(c.value) for p, c in self._pair_messages.items()}

    def messages_in_round(self, round_index: int) -> int:
        counter = self._round_messages.get(round_index)
        return 0 if counter is None else int(counter.value)

    def mean_messages_per_round(self) -> float:
        if not self._round_messages:
            return 0.0
        return self.messages_total / len(self._round_messages)

    def reset(self) -> None:
        self.registry.reset()
        self.pair_epoch += 1  # invalidates externally cached pair handles
        self._init_handles()

"""Communication accounting for the §IV-C complexity reproduction."""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.net.message import Message

__all__ = ["NetworkMetrics"]


@dataclass
class NetworkMetrics:
    """Counts messages and bytes, totals and per round."""

    messages_total: int = 0
    bytes_total: int = 0
    #: Frames sent into a network partition and lost (never delivered).
    messages_blackholed: int = 0
    per_round_messages: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    per_round_bytes: dict[int, int] = field(default_factory=lambda: defaultdict(int))
    per_pair_messages: dict[tuple[int, int], int] = field(
        default_factory=lambda: defaultdict(int)
    )

    def record(self, message: Message) -> None:
        self.messages_total += 1
        self.bytes_total += message.size_bytes
        self.per_round_messages[message.round_index] += 1
        self.per_round_bytes[message.round_index] += message.size_bytes
        self.per_pair_messages[(message.src, message.dst)] += 1

    def record_batch(
        self,
        round_index: int,
        messages: int,
        bytes_total: int,
        pairs: "Iterable[tuple[int, int]]",
    ) -> None:
        """Record a whole phase of same-round frames in bulk.

        Equivalent to ``messages`` :meth:`record` calls: the totals and
        per-round counters are bumped once, and each ``(src, dst)`` in
        ``pairs`` (one entry per frame) gets one per-pair increment.
        """
        self.messages_total += messages
        self.bytes_total += bytes_total
        self.per_round_messages[round_index] += messages
        self.per_round_bytes[round_index] += bytes_total
        per_pair = self.per_pair_messages
        for pair in pairs:
            per_pair[pair] += 1

    def messages_in_round(self, round_index: int) -> int:
        return self.per_round_messages.get(round_index, 0)

    def mean_messages_per_round(self) -> float:
        if not self.per_round_messages:
            return 0.0
        return self.messages_total / len(self.per_round_messages)

    def reset(self) -> None:
        self.messages_total = 0
        self.bytes_total = 0
        self.messages_blackholed = 0
        self.per_round_messages.clear()
        self.per_round_bytes.clear()
        self.per_pair_messages.clear()

"""Communication topologies for the fully-distributed protocol.

Algorithm 2 as written assumes every worker can message every other
worker directly. Real deployments often have restricted connectivity
(racks, rings, sparse overlays). A :class:`Topology` describes who can
talk to whom; the flooding layer of
:class:`~repro.protocols.fully_distributed.FullyDistributedDolbie`
disseminates the per-round broadcasts over any *connected* topology,
reaching the same outcome at the cost of extra hops (messages scale with
the edge count, latency with the diameter).

Built on :mod:`networkx` for construction and connectivity/diameter
queries.
"""

from __future__ import annotations

from typing import Callable, Iterable

import networkx as nx

from repro.exceptions import ConfigurationError

__all__ = ["Topology", "connected_components"]


def connected_components(
    nodes: Iterable[int], neighbors: Callable[[int], Iterable[int]]
) -> list[set[int]]:
    """Connected components of the graph induced on ``nodes``.

    ``neighbors(i)`` yields candidate neighbors of ``i``; edges to nodes
    outside ``nodes`` are ignored. This is the reachability primitive the
    partition-aware protocols and the chaos scheduler share: given the
    live node set and the effective (partition-respecting) adjacency, it
    answers "who can still coordinate with whom this round".
    Deterministic: components are discovered in ascending node order.
    """
    remaining = set(nodes)
    components: list[set[int]] = []
    for start in sorted(remaining):
        if start not in remaining:
            continue
        component = {start}
        frontier = [start]
        remaining.discard(start)
        while frontier:
            current = frontier.pop()
            for other in neighbors(current):
                if other in remaining:
                    remaining.discard(other)
                    component.add(other)
                    frontier.append(other)
        components.append(component)
    return components


class Topology:
    """An undirected, connected communication graph over worker ids 0..N-1."""

    def __init__(self, graph: nx.Graph) -> None:
        n = graph.number_of_nodes()
        if n < 2:
            raise ConfigurationError("a topology needs at least 2 nodes")
        if set(graph.nodes) != set(range(n)):
            raise ConfigurationError(
                "topology nodes must be exactly 0..N-1, got "
                f"{sorted(graph.nodes)}"
            )
        if not nx.is_connected(graph):
            raise ConfigurationError(
                "topology must be connected: the protocol floods over it"
            )
        self.graph = graph

    # -- constructors ---------------------------------------------------
    @classmethod
    def complete(cls, n: int) -> "Topology":
        """All-to-all (the paper's implicit assumption)."""
        return cls(nx.complete_graph(n))

    @classmethod
    def ring(cls, n: int) -> "Topology":
        return cls(nx.cycle_graph(n))

    @classmethod
    def star(cls, n: int, center: int = 0) -> "Topology":
        """Hub-and-spoke around ``center``."""
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from((center, i) for i in range(n) if i != center)
        return cls(graph)

    @classmethod
    def line(cls, n: int) -> "Topology":
        return cls(nx.path_graph(n))

    @classmethod
    def random_connected(cls, n: int, p: float, seed: int = 0) -> "Topology":
        """Erdos-Renyi G(n, p), resampled until connected (then a spanning
        tree is added as a fallback for very small p)."""
        if not 0 <= p <= 1:
            raise ConfigurationError(f"edge probability must lie in [0, 1], got {p}")
        for attempt in range(50):
            graph = nx.gnp_random_graph(n, p, seed=seed + attempt)
            if nx.is_connected(graph):
                return cls(graph)
        graph = nx.gnp_random_graph(n, p, seed=seed)
        # Guarantee connectivity by threading a path through all nodes.
        graph.add_edges_from((i, i + 1) for i in range(n - 1))
        return cls(graph)

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[tuple[int, int]]) -> "Topology":
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(edges)
        return cls(graph)

    # -- queries ---------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def neighbors(self, node: int) -> list[int]:
        return sorted(self.graph.neighbors(node))

    def diameter(self) -> int:
        return int(nx.diameter(self.graph))

    def is_complete(self) -> bool:
        n = self.num_nodes
        return self.num_edges == n * (n - 1) // 2

    def __repr__(self) -> str:
        return f"Topology(n={self.num_nodes}, edges={self.num_edges})"

"""Sharded hierarchical aggregation overlay for the FD protocol.

The paper's fully-distributed architecture broadcasts every worker's
``(l_i, alpha-bar_i)`` all-to-all — ``N(N-1)`` frames per round, the
O(N^2) row of §IV-C. The aggregation tree replaces that flat exchange
with a two-level overlay on the same complete graph:

1. **Shards.** The (sorted) participants are chunked into contiguous
   shards of at most ``shard_size`` workers; the lowest id of each shard
   is its *head*. Members report to their head only.
2. **Head tree.** The heads form a ``branching``-ary heap (shard ``i``'s
   head parents to shard ``(i-1)//branching``'s), over which per-shard
   aggregates flow up to the root and the global aggregate flows back
   down, then out to the members.

Per-round message complexity drops from ``N(N-1)`` to
``2(N - m) + 2(m - 1)`` for the consensus phase plus ``~N`` for the
decision phase (``m = ceil(N / shard_size)`` shard count) — O(N) frames
over O(log_k m) sequential hops instead of O(N^2) frames in one hop.

The round's *consensus* quantities are pure reductions — ``max`` of the
local costs (line 5), the lowest-index ``argmax`` straggler (line 7),
``min`` of the local step sizes (line 6). These are associative,
commutative, and idempotent, so the hierarchical combine is **exactly**
equal to the flat reduction in any float dtype — no tolerance needed
(``tests/property/test_tree_aggregation.py`` pins this). The decision
phase's closing *sum* is not association-free: the tree accumulates
shard partial sums (ascending member order) up the heads (children in
ascending shard order), which is a different — still deterministic —
summation order than the flat protocol's arrival-order accumulation.
That is why a tree run's trajectory differs from the flat reference at
the rounding level and why the regret impact is measured, not assumed
(see ``repro.experiments.aggregation_experiment``).

The overlay is a pure function of ``(participants, shard_size,
branching)``: every peer can rebuild it independently from the agreed
roster, so crash→rejoin resharding needs no extra coordination — the
same property the flat protocol's failure detectors rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["AggregationTree", "default_shard_size", "segment_reduce"]


def default_shard_size(num_workers: int) -> int:
    """``~sqrt(N)``: balances shard fan-in against head-tree size."""
    return max(2, int(round(float(num_workers) ** 0.5)))


def segment_reduce(
    ufunc: np.ufunc, values: np.ndarray, offsets: np.ndarray, empty
) -> np.ndarray:
    """Per-segment ``ufunc`` reduction tolerating empty segments.

    ``offsets`` are the segment start indices into ``values`` (one per
    segment, ascending, final segment running to the end). Empty segments
    yield ``empty`` instead of tripping ``reduceat``'s out-of-range read.
    """
    n_seg = offsets.size
    ends = np.append(offsets[1:], values.size)
    sizes = ends - offsets
    out = np.full(n_seg, empty, dtype=values.dtype)
    filled = sizes > 0
    if values.size and filled.any():
        # reduceat misbehaves on empty segments; reduce only the filled
        # ones and scatter back.
        safe_offsets = offsets[filled]
        reduced = ufunc.reduceat(values, safe_offsets)
        # reduceat's segment i ends at the next *listed* offset, which is
        # exactly the next filled segment's start because empty segments
        # contribute no elements in between.
        out[filled] = reduced
    return out


@dataclass(frozen=True)
class AggregationTree:
    """The overlay for one roster: shards + a k-ary tree over the heads.

    Built via :meth:`build`; all arrays are precomputed so the protocol
    fast path does pure indexing per round. Frozen: a membership change
    means a *new* tree (see ``FullyDistributedDolbie._tree_structures``).
    """

    participants: tuple[int, ...]  #: sorted worker ids this tree covers
    shard_size: int
    branching: int
    shards: tuple[tuple[int, ...], ...]  #: contiguous id chunks
    heads: np.ndarray = field(repr=False)  #: (m,) head worker id per shard
    parent: np.ndarray = field(repr=False)  #: (m,) parent shard idx, -1 root
    member_ids: np.ndarray = field(repr=False)  #: non-head ids, ascending
    member_head: np.ndarray = field(repr=False)  #: their head's worker id
    member_offsets: np.ndarray = field(repr=False)  #: shard starts in member_ids
    levels: tuple[np.ndarray, ...] = field(repr=False)  #: shard idxs per depth

    @classmethod
    def build(
        cls,
        participants: Sequence[int],
        shard_size: int | None = None,
        branching: int = 4,
    ) -> "AggregationTree":
        ids = sorted(int(w) for w in participants)
        if len(ids) != len(set(ids)):
            raise ConfigurationError(f"duplicate participants: {ids}")
        if len(ids) < 2:
            raise ConfigurationError(
                f"an aggregation tree needs >= 2 participants, got {ids}"
            )
        if shard_size is None:
            shard_size = default_shard_size(len(ids))
        if shard_size < 2:
            raise ConfigurationError(f"shard_size must be >= 2, got {shard_size}")
        if branching < 2:
            raise ConfigurationError(f"branching must be >= 2, got {branching}")
        shards = tuple(
            tuple(ids[i : i + shard_size])
            for i in range(0, len(ids), shard_size)
        )
        m = len(shards)
        heads = np.array([shard[0] for shard in shards])
        parent = np.arange(m)
        parent = np.where(parent == 0, -1, (parent - 1) // branching)
        member_ids = np.array(
            [w for shard in shards for w in shard[1:]], dtype=int
        )
        member_head = np.array(
            [shard[0] for shard in shards for _ in shard[1:]], dtype=int
        )
        sizes = np.array([len(shard) - 1 for shard in shards])
        member_offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        # Depth of shard i in the k-ary heap; levels list the shard
        # indices per depth, root (depth 0) first.
        depth = np.zeros(m, dtype=int)
        for i in range(1, m):
            depth[i] = depth[(i - 1) // branching] + 1
        levels = tuple(
            np.flatnonzero(depth == d) for d in range(int(depth.max()) + 1)
        )
        return cls(
            participants=tuple(ids),
            shard_size=int(shard_size),
            branching=int(branching),
            shards=shards,
            heads=heads,
            parent=parent,
            member_ids=member_ids,
            member_head=member_head,
            member_offsets=member_offsets,
            levels=levels,
        )

    # -- shape ------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def depth(self) -> int:
        """Number of head-tree levels below the root."""
        return len(self.levels) - 1

    @property
    def root(self) -> int:
        """Worker id of the root head."""
        return int(self.heads[0])

    def shard_of(self, worker: int) -> int:
        """Shard index holding ``worker`` (raises if not covered)."""
        for index, shard in enumerate(self.shards):
            if worker in shard:
                return index
        raise ConfigurationError(f"worker {worker} is not in this tree")

    def validate(self, expected: Sequence[int]) -> list[str]:
        """Structural problems vs. the roster ``expected`` (empty = ok).

        The chaos invariant checker calls this after every round of a
        tree-aggregating protocol: shards must cover exactly the alive
        roster with no duplicates, heads must lead their own shard, and
        the parent links must form one tree rooted at shard 0.
        """
        problems: list[str] = []
        flat = [w for shard in self.shards for w in shard]
        if len(flat) != len(set(flat)):
            problems.append(f"duplicate shard assignment: {sorted(flat)}")
        if set(flat) != {int(w) for w in expected}:
            problems.append(
                f"shards cover {sorted(set(flat))}, roster is "
                f"{sorted(int(w) for w in expected)}"
            )
        for index, shard in enumerate(self.shards):
            if len(shard) > self.shard_size:
                problems.append(
                    f"shard {index} holds {len(shard)} > shard_size "
                    f"{self.shard_size}"
                )
            if shard and int(self.heads[index]) != shard[0]:
                problems.append(
                    f"shard {index} head {int(self.heads[index])} is not its "
                    f"lowest member {shard[0]}"
                )
        if self.num_shards and int(self.parent[0]) != -1:
            problems.append("shard 0 is not the root")
        for i in range(1, self.num_shards):
            p = int(self.parent[i])
            if not 0 <= p < i:
                problems.append(f"shard {i} has invalid parent {p}")
        children = np.bincount(
            self.parent[1:], minlength=max(self.num_shards, 1)
        )
        if children.size and int(children.max(initial=0)) > self.branching:
            problems.append(
                f"a head has {int(children.max())} children > branching "
                f"{self.branching}"
            )
        return problems

    # -- reductions (the aggregation semantics) ---------------------------
    def shard_reduce(
        self, values: np.ndarray, ufunc: np.ufunc, empty
    ) -> np.ndarray:
        """Per-shard ``ufunc`` reduction of per-participant ``values``.

        ``values`` is indexed by worker id (size >= max participant + 1);
        reduction runs over each shard's members in ascending id order.
        """
        ordered = values[np.asarray(self.participants)]
        offsets = np.array(
            [sum(len(s) for s in self.shards[:i]) for i in range(self.num_shards)]
        )
        return segment_reduce(ufunc, ordered, offsets, empty)

    def reduce_max(self, values: np.ndarray) -> float:
        """Hierarchical max: shard-reduce, then combine up the head tree.

        Exact — max is associative/commutative/idempotent — so this
        equals ``values[participants].max()`` bitwise in any dtype.
        """
        partial = self.shard_reduce(values, np.maximum, -np.inf)
        return float(self._tree_combine(partial, np.maximum))

    def reduce_min(self, values: np.ndarray) -> float:
        partial = self.shard_reduce(values, np.minimum, np.inf)
        return float(self._tree_combine(partial, np.minimum))

    def reduce_argmax(self, values: np.ndarray) -> int:
        """Hierarchical lowest-index argmax over the participants.

        Each level keeps the (value, lowest worker id) pair under the
        lexicographic order (higher value wins, ties to the lower id) —
        the same tie-breaking as the flat protocol's line 7, and exact
        under any combination order because the selected *element* is
        unique.
        """
        ids = np.asarray(self.participants)
        ordered = values[ids]
        offsets = np.array(
            [sum(len(s) for s in self.shards[:i]) for i in range(self.num_shards)]
        )
        ends = np.append(offsets[1:], ordered.size)
        best_value = np.empty(self.num_shards, dtype=values.dtype)
        best_id = np.empty(self.num_shards, dtype=int)
        for i in range(self.num_shards):
            segment = ordered[offsets[i] : ends[i]]
            k = int(np.argmax(segment))  # first max = lowest id (sorted)
            best_value[i] = segment[k]
            best_id[i] = ids[offsets[i] + k]
        # Combine across shard winners: the selected *element* is unique
        # under (value desc, id asc), so a flat scan picks the same
        # element as any pairwise tree combine would.
        order = np.lexsort((best_id, -best_value))
        return int(best_id[order[0]])

    def up_order(self) -> np.ndarray:
        """Shard indices in up-tree combine order, as one flat int64 array.

        Deepest level first, ascending shard index within a level —
        exactly the iteration order of :meth:`_tree_combine` and
        :meth:`decision_sums`, flattened so the compiled kernels
        (:func:`repro.backend.kernels.combine_up_consensus` /
        :func:`~repro.backend.kernels.combine_up_sums`) can replay it as
        a single loop. Empty for a single-level (root-only) tree.
        """
        below_root = self.levels[:0:-1]
        if not below_root:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(below_root).astype(np.int64)

    def _tree_combine(self, partial: np.ndarray, ufunc: np.ufunc):
        """Combine per-shard partials bottom-up along the parent links."""
        acc = partial.copy()
        for level in self.levels[:0:-1]:  # deepest level first
            for i in level:  # ascending shard order within a level
                p = int(self.parent[i])
                acc[p] = ufunc(acc[p], acc[i])
        return acc[0]

    def decision_sums(
        self, values_by_worker: np.ndarray, exclude: int | None = None
    ) -> np.ndarray:
        """Final per-shard *subtree* decision sums (deterministic order).

        Entry ``i`` is the sum of every covered worker's value in shard
        ``i``'s subtree, computed in the documented hierarchical order:
        per-shard partials accumulate members in ascending id order
        (``exclude`` — the straggler — skipped), then each parent adds its
        children's subtree totals in ascending shard order, deepest level
        first. Entry 0 is therefore the grand total the root forwards to
        the straggler; the intermediate entries are exactly the values
        the up-tree frames of the decision phase carry.

        This summation order is fixed and documented — it differs from
        the flat protocol's arrival-order sum, which is the sole source
        of the tree-vs-flat trajectory gap. Accumulation runs in
        ``values_by_worker.dtype`` (the array backend's dtype) with no
        intermediate upcast.
        """
        values_by_worker = np.asarray(values_by_worker)
        zero = values_by_worker.dtype.type(0.0)
        acc = np.zeros(self.num_shards, dtype=values_by_worker.dtype)
        for i, shard in enumerate(self.shards):
            total = zero
            for w in shard:
                if w != exclude:
                    total = total + values_by_worker[w]
            acc[i] = total
        for level in self.levels[:0:-1]:  # deepest level first
            for i in level.tolist():  # ascending shard order within a level
                p = int(self.parent[i])
                acc[p] = acc[p] + acc[i]
        return acc

    def tree_sum(
        self, values: np.ndarray, exclude: int | None = None
    ) -> float:
        """The decision phase's hierarchical grand total (root's view)."""
        return float(self.decision_sums(values, exclude)[0])

"""Messages exchanged over the simulated network.

Payloads are plain dictionaries of scalars; :func:`scalar_payload_size`
charges 8 bytes per float/int field, matching the paper's accounting
where "each of which is a scalar value" (§IV-C) is the communication
unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["Message", "scalar_payload_size", "SCALAR_BYTES"]

#: Wire size charged per scalar payload field.
SCALAR_BYTES = 8


def scalar_payload_size(payload: Mapping[str, Any]) -> int:
    """Bytes on the wire for a payload of scalar fields."""
    return SCALAR_BYTES * len(payload)


@dataclass(frozen=True)
class Message:
    """A point-to-point message."""

    src: int
    dst: int
    tag: str
    payload: Mapping[str, Any]
    size_bytes: int
    send_time: float
    round_index: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")

"""Messages exchanged over the simulated network.

Payloads are plain dictionaries of scalars; :func:`scalar_payload_size`
charges 8 bytes per float/int field, matching the paper's accounting
where "each of which is a scalar value" (§IV-C) is the communication
unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["Message", "FrameBatch", "scalar_payload_size", "SCALAR_BYTES"]

#: Wire size charged per scalar payload field.
SCALAR_BYTES = 8


def scalar_payload_size(payload: Mapping[str, Any]) -> int:
    """Bytes on the wire for a payload of scalar fields."""
    return SCALAR_BYTES * len(payload)


@dataclass(frozen=True)
class Message:
    """A point-to-point message."""

    src: int
    dst: int
    tag: str
    payload: Mapping[str, Any]
    size_bytes: int
    send_time: float
    round_index: int = 0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"size_bytes must be >= 0, got {self.size_bytes}")


@dataclass(frozen=True)
class FrameBatch:
    """One protocol phase's frames as struct-of-arrays.

    Instead of materializing per-frame :class:`Message` objects, a phase
    carries its ``M`` same-tag frames as parallel columns: ``src``/``dst``
    id arrays and one float array per scalar payload field. Frame order
    is significant — it is the event-engine send order, which fixes both
    the link-delay draw order and same-time delivery tie-breaking in the
    batched fast path (:class:`repro.net.batch.BatchedCluster`).
    """

    tag: str
    src: np.ndarray  #: (M,) sender ids, in send order
    dst: np.ndarray  #: (M,) receiver ids, in send order
    payload: Mapping[str, np.ndarray] = field(default_factory=dict)
    round_index: int = 0

    @property
    def count(self) -> int:
        return int(len(self.src))

    @property
    def size_bytes(self) -> int:
        """Wire size of each frame (all frames of a phase are equal-sized)."""
        return SCALAR_BYTES * len(self.payload)

    @property
    def total_bytes(self) -> int:
        return self.size_bytes * self.count

    def pairs(self) -> list[tuple[int, int]]:
        """Per-frame ``(src, dst)`` tuples, for per-pair metrics accounting."""
        return [(int(s), int(d)) for s, d in zip(self.src, self.dst)]

    def slice(self, lo: int, hi: int) -> "FrameBatch":
        """Frames ``[lo, hi)`` as a zero-copy view batch.

        Column arrays are numpy views into this batch's arrays — no
        frame data is duplicated — and frame order (hence delay-draw
        order and tie-breaking) is preserved.
        """
        return FrameBatch(
            tag=self.tag,
            src=self.src[lo:hi],
            dst=self.dst[lo:hi],
            payload={name: column[lo:hi] for name, column in self.payload.items()},
            round_index=self.round_index,
        )

    def chunks(self, chunk_frames: int):
        """Iterate the batch as contiguous view slices of at most
        ``chunk_frames`` frames each (the streaming-delivery unit: at
        N=100,000 a phase is processed without ever holding more than
        one chunk's worth of per-frame intermediates).

        Yields ``(lo, sub_batch)`` with ``lo`` the chunk's first frame
        index. A batch no larger than ``chunk_frames`` yields itself.
        """
        if chunk_frames < 1:
            raise ValueError(f"chunk_frames must be >= 1, got {chunk_frames}")
        count = self.count
        if count <= chunk_frames:
            if count:
                yield 0, self
            return
        for lo in range(0, count, chunk_frames):
            yield lo, self.slice(lo, min(lo + chunk_frames, count))

"""Nodes: message-handling endpoints attached to a cluster."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

from repro.exceptions import ProtocolError
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.cluster import Cluster

__all__ = ["Node", "LazyNodeTable"]

Handler = Callable[[Message], None]


class Node:
    """A process in the simulated system.

    Protocol classes subclass or compose a ``Node`` and register one
    handler per message tag. Unhandled tags raise — silent message drops
    are protocol bugs.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self._handlers: dict[str, Handler] = {}
        self._cluster: "Cluster | None" = None
        self.received_count = 0
        #: A failed (crashed) node silently discards everything delivered
        #: to it, like a dead process behind a still-routable address.
        self.failed = False

    def attach(self, cluster: "Cluster") -> None:
        if self._cluster is not None:
            raise ProtocolError(f"node {self.node_id} is already attached")
        self._cluster = cluster

    @property
    def cluster(self) -> "Cluster":
        if self._cluster is None:
            raise ProtocolError(f"node {self.node_id} is not attached to a cluster")
        return self._cluster

    def on(self, tag: str, handler: Handler) -> None:
        """Register ``handler`` for messages with ``tag``."""
        if tag in self._handlers:
            raise ProtocolError(f"node {self.node_id}: duplicate handler for {tag!r}")
        self._handlers[tag] = handler

    def send(
        self,
        dst: int,
        tag: str,
        payload: Mapping[str, Any],
        round_index: int = 0,
    ) -> None:
        """Send a scalar-payload message to ``dst``."""
        self.cluster.send(self.node_id, dst, tag, payload, round_index)

    def broadcast(
        self,
        tag: str,
        payload: Mapping[str, Any],
        round_index: int = 0,
    ) -> None:
        """Send to every other node (N-1 point-to-point messages)."""
        for other in self.cluster.node_ids:
            if other != self.node_id:
                self.send(other, tag, payload, round_index)

    def deliver(self, message: Message) -> None:
        """Called by the cluster when a message arrives."""
        if self.failed:
            return
        handler = self._handlers.get(message.tag)
        if handler is None:
            raise ProtocolError(
                f"node {self.node_id} has no handler for tag {message.tag!r} "
                f"(from node {message.src})"
            )
        self.received_count += 1
        handler(message)


class LazyNodeTable:
    """A virtual node roster of ``count`` ids with on-demand hydration.

    Constructing a :class:`~repro.net.cluster.Cluster` normally requires
    every :class:`Node` object up front — at N=10⁶ that is exactly the
    per-peer object wall the struct-of-arrays peer store exists to
    avoid. A ``LazyNodeTable`` stands in for the node sequence: it knows
    how many nodes exist (ids are dense ``0..count-1``), shares the
    store's packed ``received_count``/``failed`` columns so bulk
    delivery accounting is two array ops, and builds a real node object
    through ``factory`` only when some code path addresses that id as an
    object (``Cluster.node`` caches the result).

    Hydration is observably free: the factory's views read and write the
    same packed columns, so a count bumped through :meth:`bump` before
    hydration is visible on the view afterwards, and vice versa.
    """

    def __init__(
        self,
        count: int,
        factory: Callable[[int], "Node"],
        received_count: "np.ndarray",
        failed: "np.ndarray",
    ) -> None:
        if count <= 0:
            raise ProtocolError("a node table needs at least one node")
        self.count = int(count)
        self._factory = factory
        #: Packed delivery counters, shared with the peer store.
        self.received_count = received_count
        #: Packed liveness flags, shared with the peer store.
        self.failed = failed
        if received_count.shape != (self.count,) or failed.shape != (self.count,):
            raise ProtocolError("node table column shapes do not match count")

    def __len__(self) -> int:
        return self.count

    def __contains__(self, node_id: object) -> bool:
        return isinstance(node_id, int) and 0 <= node_id < self.count

    def ids(self) -> range:
        return range(self.count)

    def build(self, node_id: int) -> "Node":
        """Hydrate the node object for ``node_id`` (uncached — the
        cluster owns the cache)."""
        if not 0 <= node_id < self.count:
            raise ProtocolError(f"unknown node id {node_id}")
        return self._factory(int(node_id))

    def bump(self, unique_dst: "np.ndarray", counts: "np.ndarray") -> None:
        """Credit deliveries to many receivers in one array op."""
        self.received_count[unique_dst] += counts

"""Nodes: message-handling endpoints attached to a cluster."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.exceptions import ProtocolError
from repro.net.message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.cluster import Cluster

__all__ = ["Node"]

Handler = Callable[[Message], None]


class Node:
    """A process in the simulated system.

    Protocol classes subclass or compose a ``Node`` and register one
    handler per message tag. Unhandled tags raise — silent message drops
    are protocol bugs.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        self._handlers: dict[str, Handler] = {}
        self._cluster: "Cluster | None" = None
        self.received_count = 0
        #: A failed (crashed) node silently discards everything delivered
        #: to it, like a dead process behind a still-routable address.
        self.failed = False

    def attach(self, cluster: "Cluster") -> None:
        if self._cluster is not None:
            raise ProtocolError(f"node {self.node_id} is already attached")
        self._cluster = cluster

    @property
    def cluster(self) -> "Cluster":
        if self._cluster is None:
            raise ProtocolError(f"node {self.node_id} is not attached to a cluster")
        return self._cluster

    def on(self, tag: str, handler: Handler) -> None:
        """Register ``handler`` for messages with ``tag``."""
        if tag in self._handlers:
            raise ProtocolError(f"node {self.node_id}: duplicate handler for {tag!r}")
        self._handlers[tag] = handler

    def send(
        self,
        dst: int,
        tag: str,
        payload: Mapping[str, Any],
        round_index: int = 0,
    ) -> None:
        """Send a scalar-payload message to ``dst``."""
        self.cluster.send(self.node_id, dst, tag, payload, round_index)

    def broadcast(
        self,
        tag: str,
        payload: Mapping[str, Any],
        round_index: int = 0,
    ) -> None:
        """Send to every other node (N-1 point-to-point messages)."""
        for other in self.cluster.node_ids:
            if other != self.node_id:
                self.send(other, tag, payload, round_index)

    def deliver(self, message: Message) -> None:
        """Called by the cluster when a message arrives."""
        if self.failed:
            return
        handler = self._handlers.get(message.tag)
        if handler is None:
            raise ProtocolError(
                f"node {self.node_id} has no handler for tag {message.tag!r} "
                f"(from node {message.src})"
            )
        self.received_count += 1
        handler(message)

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment <id>``
    Run one paper experiment (``fig3`` .. ``fig11``, ``complexity``,
    ``regret``, ``ablations``) at ``--scale quick`` or ``--scale paper``.
``compare``
    Run every algorithm on one training environment and print the
    cross-algorithm summary table (optionally ``--csv out.csv``).
``export``
    Run the experiments and write every data series as CSV files.
``figures``
    Render the reproduced figures as dependency-free SVG files.
``list``
    Show available experiments, algorithms and models.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro import __version__
from repro.analysis.compare import compare_runs, comparison_table, export_comparison_csv
from repro.baselines.registry import ALGORITHMS
from repro.core.loop import RunResult, run_online
from repro.experiments import (
    ablations,
    complexity,
    edge_scenario,
    fig3_per_round_latency,
    fig4_latency_ci,
    fig5_cumulative_latency,
    fig6to8_accuracy,
    fig9_worker_latency,
    fig10_batch_size,
    fig11_utilization,
    regret_experiment,
    sensitivity,
)
from repro.experiments.config import PAPER, QUICK, ExperimentScale, paper_balancer
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.models import MODEL_CATALOG

__all__ = ["main", "build_parser", "EXPERIMENTS"]

#: Experiment id -> module with a ``main(scale)`` entry point.
EXPERIMENTS: dict[str, Callable[[ExperimentScale], object]] = {
    "fig3": fig3_per_round_latency.main,
    "fig4": fig4_latency_ci.main,
    "fig5": fig5_cumulative_latency.main,
    "fig6to8": fig6to8_accuracy.main,
    "fig9": fig9_worker_latency.main,
    "fig10": fig10_batch_size.main,
    "fig11": fig11_utilization.main,
    "complexity": complexity.main,
    "regret": regret_experiment.main,
    "ablations": ablations.main,
    "edge": edge_scenario.main,
    "sensitivity": sensitivity.main,
}

_SCALES = {"quick": QUICK, "paper": PAPER}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DOLBIE reproduction (Wang & Liang, ICDCS 2023)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run one paper experiment")
    exp.add_argument("id", choices=sorted(EXPERIMENTS))
    exp.add_argument("--scale", choices=sorted(_SCALES), default="quick")

    cmp_parser = sub.add_parser(
        "compare", help="run all algorithms on one environment and summarize"
    )
    cmp_parser.add_argument("--model", default="ResNet18", choices=sorted(MODEL_CATALOG))
    cmp_parser.add_argument("--workers", type=int, default=30)
    cmp_parser.add_argument("--rounds", type=int, default=100)
    cmp_parser.add_argument("--seed", type=int, default=0)
    cmp_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["EQU", "OGD", "LB-BSP", "ABS", "EG", "DOLBIE", "OPT"],
        choices=sorted(ALGORITHMS),
    )
    cmp_parser.add_argument("--csv", default=None, help="also write a CSV file")

    export = sub.add_parser(
        "export", help="run experiments and write their data series as CSV"
    )
    export.add_argument("--out", default="results", help="output directory")
    export.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    export.add_argument(
        "--only", nargs="+", default=None,
        help="subset of exports (default: all)",
    )

    figures = sub.add_parser(
        "figures", help="render the reproduced figures as SVG files"
    )
    figures.add_argument("--out", default="results/figures")
    figures.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    figures.add_argument("--only", nargs="+", default=None)

    sub.add_parser("list", help="show experiments, algorithms and models")
    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    EXPERIMENTS[args.id](_SCALES[args.scale])
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    env = TrainingEnvironment(args.model, num_workers=args.workers, seed=args.seed)
    runs: dict[str, RunResult] = {}
    for name in args.algorithms:
        balancer = paper_balancer(name, args.workers)
        runs[name] = run_online(balancer, env, args.rounds)
    summaries = compare_runs(runs)
    print(comparison_table(summaries))
    if args.csv:
        path = export_comparison_csv(summaries, args.csv)
        print(f"\nwrote {path}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export_all import export_all

    written = export_all(args.out, _SCALES[args.scale], only=args.only)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.figures import render_all

    written = render_all(args.out, _SCALES[args.scale], only=args.only)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    print("algorithms: ", ", ".join(sorted(ALGORITHMS)))
    print("models:     ", ", ".join(sorted(MODEL_CATALOG)))
    print("scales:     ", ", ".join(sorted(_SCALES)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "compare": _cmd_compare,
        "export": _cmd_export,
        "figures": _cmd_figures,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

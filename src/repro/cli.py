"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiment <id>``
    Run one paper experiment (``fig3`` .. ``fig11``, ``complexity``,
    ``regret``, ``ablations``) at ``--scale quick`` or ``--scale paper``.
``compare``
    Run every algorithm on one training environment and print the
    cross-algorithm summary table (optionally ``--csv out.csv``).
``export``
    Run the experiments and write every data series as CSV files
    (``--jobs N`` fans realization sweeps over a process pool).
``bench``
    Run the engine benchmarks, write ``BENCH_results.json`` and fail on
    speedup regressions against the committed baseline.
``figures``
    Render the reproduced figures as dependency-free SVG files.
``chaos``
    Replay a fault schedule (``--spec`` JSON/YAML, seeded random, or
    the built-in ``--scenario rolling-restart``) against the protocol
    architectures and print the invariant-check summary (exit 1 on any
    violation). ``--checkpoint-every K --checkpoint-dir D`` makes the
    soak durable; ``--resume`` continues a killed soak bit-identically.
``ckpt``
    Checkpoint a canonical protocol run at round boundaries
    (``ckpt save``), summarize a checkpoint directory (``ckpt
    inspect``), or resume a checkpointed run to its full horizon
    (``ckpt resume``) — see ``docs/checkpointing.md``.
``trace``
    Record a canonical scenario as deterministic JSONL
    (``trace record``), summarize a trace file (``trace show``), or
    compare two traces field-by-field (``trace diff``, exit 1 when they
    differ) — see ``docs/observability.md``.
``serve``
    Run the open-loop serving dispatcher on a seeded arrival trace:
    one or more routing policies over a heterogeneous fleet, reporting
    p50/p99/p999 latency and SLO attainment (optionally the JSONL
    serving trace) — see ``docs/serving.md``.
``profile``
    Run an instrumented workload and print the per-span wall/CPU table.
``list``
    Show available experiments, algorithms and models.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro import __version__
from repro.analysis.compare import compare_runs, comparison_table, export_comparison_csv
from repro.baselines.registry import ALGORITHMS
from repro.core.loop import RunResult, run_online
from repro.experiments import (
    ablations,
    aggregation_experiment,
    complexity,
    edge_scenario,
    fig3_per_round_latency,
    fig4_latency_ci,
    fig5_cumulative_latency,
    fig6to8_accuracy,
    fig9_worker_latency,
    fig10_batch_size,
    fig11_utilization,
    regret_experiment,
    resilience,
    sensitivity,
    serving_experiment,
)
from repro.experiments.config import PAPER, QUICK, ExperimentScale, paper_balancer
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.models import MODEL_CATALOG

__all__ = ["main", "build_parser", "EXPERIMENTS"]

#: Experiment id -> module with a ``main(scale)`` entry point.
EXPERIMENTS: dict[str, Callable[[ExperimentScale], object]] = {
    "fig3": fig3_per_round_latency.main,
    "fig4": fig4_latency_ci.main,
    "fig5": fig5_cumulative_latency.main,
    "fig6to8": fig6to8_accuracy.main,
    "fig9": fig9_worker_latency.main,
    "fig10": fig10_batch_size.main,
    "fig11": fig11_utilization.main,
    "complexity": complexity.main,
    "regret": regret_experiment.main,
    "aggregation": aggregation_experiment.main,
    "ablations": ablations.main,
    "edge": edge_scenario.main,
    "sensitivity": sensitivity.main,
    "resilience": resilience.main,
    "serving": serving_experiment.main,
}

_SCALES = {"quick": QUICK, "paper": PAPER}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DOLBIE reproduction (Wang & Liang, ICDCS 2023)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run one paper experiment")
    exp.add_argument("id", choices=sorted(EXPERIMENTS))
    exp.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    exp.add_argument(
        "--jobs", type=int, default=None,
        help="processes for realization sweeps (default: scale.jobs)",
    )
    exp.add_argument(
        "--checkpoint-dir", default=None,
        help="persist finished sweep realizations here and resume an "
        "interrupted sweep from them (see docs/checkpointing.md)",
    )

    cmp_parser = sub.add_parser(
        "compare", help="run all algorithms on one environment and summarize"
    )
    cmp_parser.add_argument("--model", default="ResNet18", choices=sorted(MODEL_CATALOG))
    cmp_parser.add_argument("--workers", type=int, default=30)
    cmp_parser.add_argument("--rounds", type=int, default=100)
    cmp_parser.add_argument("--seed", type=int, default=0)
    cmp_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=["EQU", "OGD", "LB-BSP", "ABS", "EG", "DOLBIE", "OPT"],
        choices=sorted(ALGORITHMS),
    )
    cmp_parser.add_argument("--csv", default=None, help="also write a CSV file")

    export = sub.add_parser(
        "export", help="run experiments and write their data series as CSV"
    )
    export.add_argument("--out", default="results", help="output directory")
    export.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    export.add_argument(
        "--only", nargs="+", default=None,
        help="subset of exports (default: all)",
    )
    export.add_argument(
        "--jobs", type=int, default=None,
        help="processes for realization sweeps (default: scale.jobs)",
    )

    bench = sub.add_parser(
        "bench", help="run engine benchmarks and gate on speedup regressions"
    )
    bench.add_argument(
        "--out", default="BENCH_results.json", help="results file to write"
    )
    bench.add_argument(
        "--baseline", default="BENCH_results.json",
        help="committed baseline to compare against",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.3,
        help="allowed fractional speedup drop before failing (default 0.3)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="single repetition per benchmark (CI smoke mode)",
    )
    bench.add_argument(
        "--update-baseline", action="store_true",
        help="overwrite the baseline with this run instead of comparing",
    )
    bench.add_argument(
        "--only", nargs="+", default=None,
        help="run a named subset of benchmarks (e.g. proto_fd_n100); "
        "the results file then holds just that subset, so pair with "
        "a non-default --out",
    )
    bench.add_argument("--jobs", type=int, default=1)

    figures = sub.add_parser(
        "figures", help="render the reproduced figures as SVG files"
    )
    figures.add_argument("--out", default="results/figures")
    figures.add_argument("--scale", choices=sorted(_SCALES), default="quick")
    figures.add_argument("--only", nargs="+", default=None)

    chaos = sub.add_parser(
        "chaos",
        help="replay a fault schedule against a protocol and check invariants",
    )
    chaos.add_argument(
        "--spec", default=None,
        help="JSON/YAML fault-schedule spec (see repro.chaos.faults); "
        "omit to generate a random schedule from --seed",
    )
    chaos.add_argument(
        "--protocol", choices=["mw", "fd", "both"], default="both",
        help="mw = master-worker (§IV-B1), fd = fully-distributed (§IV-B2)",
    )
    chaos.add_argument(
        "--topology", choices=["complete", "ring", "star", "line"],
        default="ring", help="connectivity of the fully-distributed run",
    )
    chaos.add_argument("--workers", type=int, default=8)
    chaos.add_argument("--rounds", type=int, default=200)
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--scenario", choices=["random", "rolling-restart"], default="random",
        help="random = seeded mixed faults; rolling-restart = staggered "
        "restart sweep over the fleet (ignored when --spec is given)",
    )
    chaos.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="K",
        help="snapshot the full soak state every K rounds "
        "(requires --checkpoint-dir)",
    )
    chaos.add_argument(
        "--checkpoint-dir", default=None,
        help="directory for soak checkpoints (see docs/checkpointing.md)",
    )
    chaos.add_argument(
        "--resume", action="store_true",
        help="resume from the latest intact checkpoint in --checkpoint-dir",
    )
    chaos.add_argument(
        "--kill-at-round", type=int, default=0, metavar="T",
        help="SIGKILL this process right after round T's checkpoint is "
        "durable (the CI kill-resume smoke uses this)",
    )
    chaos.add_argument(
        "--trace-out", default=None,
        help="record the soak's structured trace and write it as JSONL",
    )

    ckpt = sub.add_parser(
        "ckpt",
        help="checkpoint / inspect / resume protocol runs (repro.ckpt)",
    )
    ckpt_sub = ckpt.add_subparsers(dest="ckpt_command", required=True)

    ckpt_save = ckpt_sub.add_parser(
        "save", help="run a scenario and checkpoint it at round boundaries"
    )
    ckpt_save.add_argument("--dir", required=True, help="checkpoint directory")
    ckpt_save.add_argument(
        "--architecture", choices=["mw", "fd"], default="mw"
    )
    ckpt_save.add_argument(
        "--engine", choices=["auto", "fast", "event"], default="auto"
    )
    ckpt_save.add_argument("--workers", type=int, default=None)
    ckpt_save.add_argument("--rounds", type=int, default=None)
    ckpt_save.add_argument("--seed", type=int, default=None)
    ckpt_save.add_argument(
        "--every", type=int, default=0, metavar="K",
        help="checkpoint every K rounds",
    )
    ckpt_save.add_argument(
        "--at", type=int, nargs="+", default=[], metavar="T",
        help="additionally checkpoint after these rounds",
    )
    ckpt_save.add_argument(
        "--trace-out", default=None, help="also write the run's trace JSONL"
    )
    ckpt_save.add_argument(
        "--csv-out", default=None, help="also write the trajectory CSV"
    )

    ckpt_inspect = ckpt_sub.add_parser(
        "inspect", help="summarize a checkpoint directory"
    )
    ckpt_inspect.add_argument("--dir", required=True)
    ckpt_inspect.add_argument(
        "--round", type=int, default=None,
        help="inspect this round's snapshot (default: the latest)",
    )

    ckpt_resume = ckpt_sub.add_parser(
        "resume", help="resume a checkpointed run to its full horizon"
    )
    ckpt_resume.add_argument("--dir", required=True)
    ckpt_resume.add_argument(
        "--round", type=int, default=None,
        help="resume from this round's snapshot (default: the latest)",
    )
    ckpt_resume.add_argument(
        "--rounds", type=int, default=None,
        help="run to this horizon (default: the original run's)",
    )
    ckpt_resume.add_argument(
        "--trace-out", default=None,
        help="write the merged (prefix + resumed) trace JSONL",
    )
    ckpt_resume.add_argument(
        "--csv-out", default=None, help="write the merged trajectory CSV"
    )

    trace = sub.add_parser(
        "trace", help="record / inspect / diff structured round traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    record = trace_sub.add_parser(
        "record", help="record a canonical scenario as deterministic JSONL"
    )
    record.add_argument(
        "scenario", choices=["mw", "fd", "loop", "trainer", "serving"],
        help="mw/fd = protocol architectures, loop = centralized "
        "reference, trainer = training simulator, serving = open-loop "
        "dispatcher",
    )
    record.add_argument("--out", required=True, help="JSONL file to write")
    record.add_argument(
        "--engine", choices=["auto", "fast", "event"], default="auto",
        help="protocol execution path (fast = batched, event = "
        "discrete-event engine; ignored by loop/trainer)",
    )
    record.add_argument("--workers", type=int, default=None)
    record.add_argument("--rounds", type=int, default=None)
    record.add_argument("--seed", type=int, default=None)

    show = trace_sub.add_parser("show", help="summarize a trace file")
    show.add_argument("path", help="JSONL trace file")

    diff = trace_sub.add_parser(
        "diff", help="compare two traces field-by-field (exit 1 on diff)"
    )
    diff.add_argument("left")
    diff.add_argument("right")
    diff.add_argument(
        "--include-header", action="store_true",
        help="also compare the header records (engine/seed context)",
    )
    diff.add_argument(
        "--out", default=None,
        help="also write the diff summary to a file (CI artifact)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the open-loop serving dispatcher and report tail latency",
    )
    serve.add_argument(
        "--policy", nargs="+", default=["dolbie"],
        help="routing policies to run (or 'all'); see docs/serving.md",
    )
    serve.add_argument("--workers", type=int, default=8)
    serve.add_argument("--requests", type=int, default=50_000)
    serve.add_argument(
        "--arrival", choices=["poisson", "bursty", "diurnal"],
        default="poisson",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--control-period", type=float, default=None,
        help="seconds between weight updates (default: ~25N arrivals)",
    )
    serve.add_argument(
        "--slo", type=float, default=None,
        help="latency SLO in seconds (default: 3x the equalized sojourn)",
    )
    serve.add_argument(
        "--quantiles", choices=["sketch", "exact"], default="sketch",
        help="sketch = bounded-memory streaming summary, exact = full sort",
    )
    serve.add_argument(
        "--trace-out", default=None,
        help="write the serving trace (per-period records) as JSONL; "
        "with multiple policies, the policy name is suffixed to the stem",
    )

    profile = sub.add_parser(
        "profile", help="profile an instrumented workload (wall/CPU spans)"
    )
    profile.add_argument(
        "scenario", choices=["mw", "fd", "loop", "trainer"], nargs="?",
        default="mw",
    )
    profile.add_argument("--workers", type=int, default=30)
    profile.add_argument("--rounds", type=int, default=100)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--engine", choices=["auto", "fast", "event"], default="auto",
    )

    sub.add_parser("list", help="show experiments, algorithms and models")
    return parser


def _cmd_experiment(args: argparse.Namespace) -> int:
    from dataclasses import replace

    scale = _SCALES[args.scale]
    if args.jobs is not None:
        scale = replace(scale, jobs=args.jobs)
    if args.checkpoint_dir is not None:
        scale = replace(scale, checkpoint_dir=args.checkpoint_dir)
    EXPERIMENTS[args.id](scale)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    env = TrainingEnvironment(args.model, num_workers=args.workers, seed=args.seed)
    runs: dict[str, RunResult] = {}
    for name in args.algorithms:
        balancer = paper_balancer(name, args.workers)
        runs[name] = run_online(balancer, env, args.rounds)
    summaries = compare_runs(runs)
    print(comparison_table(summaries))
    if args.csv:
        path = export_comparison_csv(summaries, args.csv)
        print(f"\nwrote {path}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.export_all import export_all

    written = export_all(
        args.out, _SCALES[args.scale], only=args.only, jobs=args.jobs
    )
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import main as bench_main

    return bench_main(
        out=args.out,
        baseline=args.baseline,
        tolerance=args.tolerance,
        quick=args.quick,
        update_baseline=args.update_baseline,
        jobs=args.jobs,
        only=args.only,
    )


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.figures import render_all

    written = render_all(args.out, _SCALES[args.scale], only=args.only)
    for path in written:
        print(f"wrote {path}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.chaos import FaultSchedule, load_schedule, run_soak
    from repro.chaos.faults import _topology_by_name
    from repro.costs.timevarying import RandomAffineProcess
    from repro.net.links import ConstantLatency, Link
    from repro.obs.tracer import Tracer
    from repro.protocols.fully_distributed import FullyDistributedDolbie
    from repro.protocols.master_worker import MasterWorkerDolbie

    topology = _topology_by_name(args.topology, args.workers)
    if args.spec:
        schedule = load_schedule(args.spec)
        rounds = max(args.rounds, schedule.horizon)
    elif args.scenario == "rolling-restart":
        schedule = FaultSchedule.rolling_restart(args.workers, args.rounds)
        rounds = args.rounds
    else:
        schedule = FaultSchedule.random(
            args.workers, args.rounds, seed=args.seed, topology=topology
        )
        rounds = args.rounds
    durable = bool(
        args.checkpoint_every or args.checkpoint_dir or args.resume
        or args.kill_at_round or args.trace_out
    )
    if durable and args.protocol == "both":
        print(
            "chaos: checkpoint/trace options need a single protocol "
            "(--protocol mw or fd)",
            file=sys.stderr,
        )
        return 2
    store = None
    if args.checkpoint_dir:
        from repro.ckpt import CheckpointStore

        store = CheckpointStore(args.checkpoint_dir)
    if (args.checkpoint_every or args.resume or args.kill_at_round) and store is None:
        print(
            "chaos: --checkpoint-every/--resume/--kill-at-round need "
            "--checkpoint-dir",
            file=sys.stderr,
        )
        return 2
    resume_from = None
    if args.resume:
        resume_from = store.latest()
        if resume_from is None:
            print(
                f"chaos: no intact checkpoint under {args.checkpoint_dir}",
                file=sys.stderr,
            )
            return 2
        print(f"resuming from round {resume_from.round_index}")
    round_hook = None
    if args.kill_at_round:
        import os
        import signal

        def round_hook(t: int, _protocol) -> None:
            if t == args.kill_at_round:
                # The checkpoint for round t is already durable; dying
                # here is exactly the failure the resume path must
                # survive bit-identically.
                os.kill(os.getpid(), signal.SIGKILL)

    print(f"schedule: {schedule!r}")
    process = RandomAffineProcess(
        speeds=np.linspace(1.0, 2.0, args.workers), seed=args.seed
    )
    trace_sink: list[Tracer] = []

    def _with_tracer(build):
        def factory():
            protocol = build()
            if args.trace_out:
                protocol.tracer = Tracer()
                protocol.cluster.tracer = protocol.tracer
                trace_sink.append(protocol.tracer)
            return protocol

        return factory

    factories = {
        "mw": _with_tracer(
            lambda: MasterWorkerDolbie(
                args.workers, link=Link(ConstantLatency(0.001))
            )
        ),
        "fd": _with_tracer(
            lambda: FullyDistributedDolbie(
                args.workers,
                link=Link(ConstantLatency(0.001)),
                topology=topology,
            )
        ),
    }
    selected = ["mw", "fd"] if args.protocol == "both" else [args.protocol]
    all_ok = True
    for key in selected:
        report = run_soak(
            factories[key], schedule, process, rounds,
            checkpoint_every=args.checkpoint_every,
            checkpoint_store=store,
            resume_from=resume_from,
            round_hook=round_hook,
        )
        print(report.summary())
        all_ok = all_ok and report.ok
    if args.trace_out and trace_sink:
        from repro.io import save_trace

        path = save_trace(trace_sink[-1].trace, args.trace_out)
        print(f"wrote {path}")
    return 0 if all_ok else 1


def _cmd_ckpt(args: argparse.Namespace) -> int:
    import json

    from repro.ckpt import CheckpointStore, resume_run, run_with_checkpoints
    from repro.obs import scenarios

    store = CheckpointStore(args.dir)
    if args.ckpt_command == "save":
        trace, result = run_with_checkpoints(
            args.architecture,
            args.engine,
            args.workers or scenarios.GOLDEN_WORKERS,
            args.rounds or scenarios.GOLDEN_ROUNDS,
            args.seed if args.seed is not None else scenarios.GOLDEN_SEED,
            store=store,
            checkpoint_every=args.every,
            checkpoint_at=args.at,
        )
        for round_index in store.rounds():
            print(f"checkpoint: {store.path_for(round_index)}")
        _write_run_outputs(trace, result, args.trace_out, args.csv_out)
        return 0
    if args.ckpt_command == "inspect":
        summary = store.inspect(args.round)
        if summary is None:
            print(f"no intact checkpoint under {args.dir}", file=sys.stderr)
            return 1
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    # resume
    snapshot = store.latest() if args.round is None else store.load(args.round)
    if snapshot is None:
        print(f"no intact checkpoint under {args.dir}", file=sys.stderr)
        return 1
    print(f"resuming {snapshot.kind!r} run from round {snapshot.round_index}")
    trace, result = resume_run(snapshot, rounds=args.rounds)
    print(
        f"completed {result.horizon} rounds "
        f"({result.horizon - snapshot.round_index} resumed)"
    )
    _write_run_outputs(trace, result, args.trace_out, args.csv_out)
    return 0


def _write_run_outputs(trace, result, trace_out, csv_out) -> None:
    from pathlib import Path

    from repro.ckpt import run_result_to_csv
    from repro.io import save_trace

    if trace_out:
        path = save_trace(trace, trace_out)
        print(f"wrote {path}")
    if csv_out:
        out = Path(csv_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(run_result_to_csv(result))
        print(f"wrote {out}")


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.io import load_trace, save_trace
    from repro.obs import diff_traces
    from repro.obs import scenarios

    if args.trace_command == "record":
        trace = scenarios.build_trace(
            args.scenario,
            engine=args.engine,
            num_workers=args.workers or scenarios.GOLDEN_WORKERS,
            rounds=args.rounds or scenarios.GOLDEN_ROUNDS,
            seed=args.seed if args.seed is not None else scenarios.GOLDEN_SEED,
        )
        path = save_trace(trace, args.out)
        print(f"wrote {path} ({len(trace.records)} records)")
        return 0
    if args.trace_command == "show":
        trace = load_trace(args.path)
        print(trace.summary())
        return 0
    # diff
    left = load_trace(args.left)
    right = load_trace(args.right)
    diff = diff_traces(left, right, include_header=args.include_header)
    summary = diff.summary()
    print(summary)
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(summary + "\n")
        print(f"wrote {out}")
    return 0 if diff.empty else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.reporting import print_table
    from repro.experiments.serving_experiment import fleet_service_rates
    from repro.io import save_trace
    from repro.obs.tracer import Tracer
    from repro.serving import (
        SERVING_POLICIES,
        ServingSimulator,
        make_arrivals,
        make_policy,
    )

    policies = list(args.policy)
    if policies == ["all"]:
        policies = sorted(SERVING_POLICIES)
    unknown = [name for name in policies if name not in SERVING_POLICIES]
    if unknown:
        print(
            f"serve: unknown policies {unknown}; choose from "
            f"{sorted(SERVING_POLICIES)}",
            file=sys.stderr,
        )
        return 2
    mu = fleet_service_rates(args.workers)
    rate = 0.85 * float(mu.sum())
    rows = []
    slo = None
    for name in policies:
        arrivals = make_arrivals(args.arrival, rate, seed=args.seed)
        tracer = Tracer() if args.trace_out else None
        if tracer is not None:
            tracer.header(
                "serving",
                args.workers,
                args.requests,
                seed=args.seed,
                policy=name,
                arrivals=args.arrival,
            )
        simulator = ServingSimulator(
            arrivals,
            make_policy(name, args.workers, mu, seed=args.seed),
            mu,
            seed=args.seed,
            control_period=args.control_period,
            slo=args.slo,
            quantile_mode=args.quantiles,
            tracer=tracer,
        )
        summary = simulator.run(args.requests)
        slo = summary.slo
        rows.append(
            [
                name,
                f"{summary.p50:.3f}",
                f"{summary.p99:.3f}",
                f"{summary.p999:.3f}",
                f"{summary.mean_latency:.3f}",
                f"{100.0 * summary.slo_attainment:.2f}%",
                summary.completed,
                summary.failed,
            ]
        )
        if tracer is not None:
            out = Path(args.trace_out)
            if len(policies) > 1:
                out = out.with_name(f"{out.stem}-{name}{out.suffix}")
            path = save_trace(tracer.trace, out)
            print(f"wrote {path}")
    print_table(
        f"serving: N={args.workers}, {args.requests} {args.arrival} "
        f"requests at rate {rate:.2f}/s, SLO={slo:.2f}s "
        f"({args.quantiles} quantiles)",
        ["policy", "p50", "p99", "p999", "mean", "SLO att.", "completed",
         "failed"],
        rows,
    )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import Profiler
    from repro.obs import scenarios

    profiler = Profiler()
    if args.scenario in ("mw", "fd"):
        from repro.protocols.fully_distributed import FullyDistributedDolbie
        from repro.protocols.master_worker import MasterWorkerDolbie

        cls = MasterWorkerDolbie if args.scenario == "mw" else FullyDistributedDolbie
        protocol = cls(
            args.workers,
            alpha_1=0.001,
            use_fast_path=args.engine != "event",
            profiler=profiler,
        )
        protocol.run(
            scenarios._cost_process(args.workers, args.seed), args.rounds
        )
        label = f"{protocol.name}: {protocol.fast_rounds} fast / " \
                f"{protocol.fallback_rounds} event rounds"
    elif args.scenario == "loop":
        from repro.core.dolbie import Dolbie
        from repro.core.loop import run_online

        balancer = Dolbie(args.workers, alpha_1=0.001)
        run_online(
            balancer,
            scenarios._cost_process(args.workers, args.seed),
            args.rounds,
            profiler=profiler,
        )
        label = balancer.name
    else:  # trainer
        from repro.core.dolbie import Dolbie
        from repro.mlsim.environment import TrainingEnvironment
        from repro.mlsim.trainer import SyncTrainer

        env = TrainingEnvironment(
            "ResNet18", num_workers=args.workers, seed=args.seed
        )
        SyncTrainer(env).train(
            Dolbie(args.workers, alpha_1=0.001), args.rounds,
            profiler=profiler,
        )
        label = "SyncTrainer/DOLBIE"
    print(f"{label} — {args.workers} workers, {args.rounds} rounds")
    print(profiler.summary_table())
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:", ", ".join(sorted(EXPERIMENTS)))
    print("algorithms: ", ", ".join(sorted(ALGORITHMS)))
    print("models:     ", ", ".join(sorted(MODEL_CATALOG)))
    print("scales:     ", ", ".join(sorted(_SCALES)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "experiment": _cmd_experiment,
        "compare": _cmd_compare,
        "export": _cmd_export,
        "bench": _cmd_bench,
        "figures": _cmd_figures,
        "chaos": _cmd_chaos,
        "ckpt": _cmd_ckpt,
        "trace": _cmd_trace,
        "serve": _cmd_serve,
        "profile": _cmd_profile,
        "list": _cmd_list,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

"""Small statistics helpers used by the experiment harness.

The paper reports per-round means with 95% confidence intervals over 100
realizations (Figs. 4-5, 11); these helpers compute exactly those
quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as _scipy_stats

__all__ = ["confidence_interval", "mean_ci", "running_mean", "summarize", "Summary"]


def confidence_interval(
    samples: Sequence[float] | np.ndarray,
    confidence: float = 0.95,
    axis: int = 0,
) -> np.ndarray:
    """Half-width of the Student-t confidence interval of the mean.

    Returns 0 for a single sample (no dispersion information) rather than
    NaN so downstream plotting code never has to special-case it.
    """
    arr = np.asarray(samples, dtype=float)
    n = arr.shape[axis]
    if n <= 1:
        return np.zeros(np.delete(arr.shape, axis))
    sem = _scipy_stats.sem(arr, axis=axis)
    t_crit = _scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
    return np.nan_to_num(sem * t_crit)


def mean_ci(
    samples: Sequence[float] | np.ndarray,
    confidence: float = 0.95,
    axis: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Mean and CI half-width along ``axis`` (the realization axis)."""
    arr = np.asarray(samples, dtype=float)
    return arr.mean(axis=axis), confidence_interval(arr, confidence, axis)


def running_mean(values: Sequence[float], window: int) -> np.ndarray:
    """Trailing moving average with a warm-up that averages what exists."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    arr = np.asarray(values, dtype=float)
    out = np.empty_like(arr)
    csum = np.concatenate([[0.0], np.cumsum(arr)])
    for i in range(len(arr)):
        lo = max(0, i + 1 - window)
        out[i] = (csum[i + 1] - csum[lo]) / (i + 1 - lo)
    return out


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample."""

    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    ci95: float
    count: int

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "ci95": self.ci95,
            "count": float(self.count),
        }


def summarize(samples: Sequence[float] | np.ndarray) -> Summary:
    """Summarize a 1-D sample; raises on empty input."""
    arr = np.asarray(samples, dtype=float).ravel()
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        ci95=float(confidence_interval(arr)),
        count=int(arr.size),
    )

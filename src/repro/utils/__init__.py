"""Shared utilities: RNG management, statistics, timing, validation, atomic IO."""

from repro.utils.atomic import atomic_write, self_healing_load
from repro.utils.rng import RngFactory, spawn_rng
from repro.utils.stats import (
    confidence_interval,
    mean_ci,
    running_mean,
    summarize,
)
from repro.utils.timer import Stopwatch
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability_vector,
)

__all__ = [
    "atomic_write",
    "self_healing_load",
    "RngFactory",
    "spawn_rng",
    "confidence_interval",
    "mean_ci",
    "running_mean",
    "summarize",
    "Stopwatch",
    "check_fraction",
    "check_positive",
    "check_probability_vector",
]

"""Argument validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

from repro.exceptions import FeasibilityError

__all__ = ["check_fraction", "check_positive", "check_probability_vector"]


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0`` and return it."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_fraction(value: float, name: str, *, inclusive: bool = True) -> float:
    """Require ``value`` in [0, 1] (or (0, 1) if not inclusive)."""
    if inclusive:
        ok = 0.0 <= value <= 1.0
    else:
        ok = 0.0 < value < 1.0
    if not ok:
        bounds = "[0, 1]" if inclusive else "(0, 1)"
        raise ValueError(f"{name} must lie in {bounds}, got {value!r}")
    return float(value)


def check_probability_vector(
    x: np.ndarray,
    *,
    atol: float = 1e-8,
    name: str = "x",
) -> np.ndarray:
    """Validate that ``x`` lies on the probability simplex.

    This enforces the feasibility constraints (2)-(3) of the paper:
    non-negative entries summing to one (within ``atol``).
    """
    arr = np.asarray(x, dtype=float)
    if arr.ndim != 1:
        raise FeasibilityError(f"{name} must be a 1-D vector, got shape {arr.shape}")
    if arr.size == 0:
        raise FeasibilityError(f"{name} must be non-empty")
    if np.any(arr < -atol):
        raise FeasibilityError(
            f"{name} has negative entries (min={arr.min():.3e}), violating constraint (3)"
        )
    total = float(arr.sum())
    if abs(total - 1.0) > atol * max(1, arr.size):
        raise FeasibilityError(
            f"{name} sums to {total:.12f}, violating constraint (2)"
        )
    return arr

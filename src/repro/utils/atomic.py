"""Atomic file writes and corrupt-entry self-healing.

Two on-disk stores need the same durability idioms: the materialization
cache (:mod:`repro.mlsim.cache`) and the checkpoint store
(:mod:`repro.ckpt.store`). Both write entries that must never be
observed half-written (a reader racing a writer, or a crash mid-write)
and both must survive corrupt entries (truncated files, stale layouts)
by healing rather than crashing. The patterns live here once:

* :func:`atomic_write` — write to a ``mkstemp`` temp file in the target
  directory, ``fsync``, then ``os.replace`` into place. Readers observe
  either the old entry or the complete new one, never a partial write;
  concurrent writers of the same key race to an identical file.
* :func:`self_healing_load` — run a loader, and on any recognizable
  corruption delete the entry and report a miss so the caller
  recomputes it.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, BinaryIO, Callable

__all__ = ["atomic_write", "self_healing_load", "CORRUPT_ERRORS"]

#: Exception types that mean "this entry is corrupt, not absent":
#: truncated downloads, disk corruption, stale layouts, bad JSON.
CORRUPT_ERRORS: tuple[type[BaseException], ...] = (
    OSError,
    ValueError,
    KeyError,
    EOFError,
    json.JSONDecodeError,
)


def atomic_write(
    path: Path,
    writer: Callable[[BinaryIO], None],
    *,
    fsync: bool = True,
    swallow_errors: bool = False,
) -> bool:
    """Atomically write ``path`` via ``writer(handle)``.

    The payload goes to a temp file in ``path``'s directory (created if
    missing) and is ``os.replace``'d into place, optionally after an
    ``fsync`` so the rename never outruns the data on a crash. The temp
    file is always cleaned up on failure.

    With ``swallow_errors`` an :class:`OSError` (read-only or full
    disk) is absorbed and ``False`` returned — the mode for stores that
    are accelerators, never correctness dependencies. Without it the
    error propagates, which is what a durability-critical store wants.
    Returns ``True`` when the entry landed.
    """
    path = Path(path)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f"{path.name}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                writer(handle)
                if fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        if swallow_errors:
            return False
        raise
    return True


def self_healing_load(
    path: Path,
    loader: Callable[[Path], Any],
    *,
    corrupt_errors: tuple[type[BaseException], ...] = CORRUPT_ERRORS,
) -> Any:
    """Run ``loader(path)``, deleting the entry on corruption.

    Returns the loader's value, or ``None`` when the entry is absent
    (:class:`FileNotFoundError`) or corrupt — in which case the file is
    unlinked first so the next write starts clean. The loader signals
    corruption by raising any of ``corrupt_errors`` (it may validate
    shapes/schemas and raise :class:`ValueError` itself).
    """
    path = Path(path)
    try:
        return loader(path)
    except FileNotFoundError:
        return None
    except corrupt_errors:
        try:
            path.unlink()
        except OSError:
            pass
        return None

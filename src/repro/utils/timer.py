"""Wall-clock measurement of balancer decision overhead (Fig. 11, lower)."""

from __future__ import annotations

import time

__all__ = ["Stopwatch"]


class Stopwatch:
    """Accumulating stopwatch built on ``time.perf_counter``.

    Used to measure the per-round decision-making overhead of each load
    balancing algorithm, the quantity reported in the lower panel of
    Fig. 11 of the paper.
    """

    def __init__(self) -> None:
        self.total = 0.0
        self.laps: list[float] = []
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def start(self) -> None:
        if self._start is not None:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()

    def stop(self) -> float:
        """Stop and return the lap duration in seconds."""
        if self._start is None:
            raise RuntimeError("stopwatch is not running")
        lap = time.perf_counter() - self._start
        self._start = None
        self.total += lap
        self.laps.append(lap)
        return lap

    @property
    def mean_lap(self) -> float:
        """Average lap duration; 0.0 before any lap completes."""
        return self.total / len(self.laps) if self.laps else 0.0

    def reset(self) -> None:
        self.total = 0.0
        self.laps.clear()
        self._start = None

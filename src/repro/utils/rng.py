"""Deterministic random-number management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` handed to it explicitly. Experiments create
one :class:`RngFactory` per realization; the factory derives independent,
reproducible child generators for each named component so that adding a new
consumer of randomness never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngFactory", "spawn_rng"]


def _stable_hash(text: str) -> int:
    """Return a stable 64-bit integer hash of ``text``.

    Python's built-in ``hash`` is salted per process, so we use BLAKE2 to
    keep derived seeds identical across runs and machines.
    """
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


def spawn_rng(seed: int, name: str = "") -> np.random.Generator:
    """Create a generator from ``seed`` mixed with a component ``name``."""
    return np.random.default_rng(np.random.SeedSequence([seed, _stable_hash(name)]))


class RngFactory:
    """Derive named, independent random generators from a single seed.

    >>> factory = RngFactory(seed=7)
    >>> a = factory.make("speeds")
    >>> b = factory.make("rates")
    >>> a is not b
    True

    Calling :meth:`make` twice with the same name returns generators with
    identical streams, which makes components individually replayable.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def make(self, name: str) -> np.random.Generator:
        """Return a fresh generator for component ``name``."""
        return spawn_rng(self.seed, name)

    def child(self, name: str) -> "RngFactory":
        """Return a factory whose streams are independent of this one's."""
        return RngFactory(self.seed ^ _stable_hash(name))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RngFactory(seed={self.seed})"

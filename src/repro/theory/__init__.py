"""Executable versions of the paper's analytical results (§V)."""

from repro.theory.lemmas import Lemma1Report, Lemma2Report, check_lemma1, check_lemma2

__all__ = ["Lemma1Report", "Lemma2Report", "check_lemma1", "check_lemma2"]

"""The paper's lemmas as executable checks.

Theorem 1's proof rests on Lemma 1 (four structural properties of any
feasible solution) and Lemma 2 (the per-round inequality linking the
cost gap to the assistance vector). This module evaluates both on a
concrete instance — cost functions plus a played allocation — so the
proof's steps can be *tested*, instance by instance, rather than trusted.
The property suite runs them on thousands of random instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.quantities import acceptable_workloads, assistance_vector
from repro.costs.base import CostFunction
from repro.exceptions import ConfigurationError
from repro.minmax.solver import evaluate_allocation, solve_min_max
from repro.simplex.sampling import is_feasible

__all__ = ["Lemma1Report", "check_lemma1", "Lemma2Report", "check_lemma2"]

#: Slack used when comparing quantities produced by bisection.
_TOL = 1e-7


@dataclass(frozen=True)
class Lemma1Report:
    """Evaluation of Lemma 1's four properties on one instance."""

    i_straggler_dominates_optimal: bool  # x_{s,t} >= x*_{s,t}
    ii_x_prime_dominates_x: bool  # x' >= x
    iii_x_prime_dominates_optimal: bool  # x' >= x*
    iv_inner_product_bound: bool  # sum (x-x')(x-x*) >= -(N-1)/4
    inner_product_value: float

    @property
    def all_hold(self) -> bool:
        return (
            self.i_straggler_dominates_optimal
            and self.ii_x_prime_dominates_x
            and self.iii_x_prime_dominates_optimal
            and self.iv_inner_product_bound
        )


def check_lemma1(
    costs: Sequence[CostFunction],
    allocation: np.ndarray,
    optimal: np.ndarray | None = None,
) -> Lemma1Report:
    """Evaluate Lemma 1 for ``allocation`` against the instantaneous optimum.

    ``optimal`` may be supplied to reuse a precomputed minimizer;
    otherwise the exact level-bisection solver produces it.
    """
    x = np.asarray(allocation, dtype=float)
    if not is_feasible(x):
        raise ConfigurationError("allocation must be feasible")
    if optimal is None:
        optimal = solve_min_max(costs).allocation
    x_star = np.asarray(optimal, dtype=float)

    _, global_cost, straggler = evaluate_allocation(costs, x)
    x_prime = acceptable_workloads(costs, x, global_cost, straggler)

    n = x.size
    inner = float(
        sum(
            (x[i] - x_prime[i]) * (x[i] - x_star[i])
            for i in range(n)
            if i != straggler
        )
    )
    return Lemma1Report(
        i_straggler_dominates_optimal=bool(
            x[straggler] >= x_star[straggler] - _TOL
        ),
        ii_x_prime_dominates_x=bool((x_prime >= x - _TOL).all()),
        iii_x_prime_dominates_optimal=bool((x_prime >= x_star - _TOL).all()),
        iv_inner_product_bound=bool(inner >= -(n - 1) / 4.0 - _TOL),
        inner_product_value=inner,
    )


@dataclass(frozen=True)
class Lemma2Report:
    """Evaluation of Lemma 2's inequality (Eq. 10) on one instance."""

    lhs: float  # ((f_t(x) - f_t(x*)) / L)^2
    rhs: float  # (N-1)/4 + G^T (x - x*)
    holds: bool


def check_lemma2(
    costs: Sequence[CostFunction],
    allocation: np.ndarray,
    lipschitz: float,
    optimal: np.ndarray | None = None,
) -> Lemma2Report:
    """Evaluate Eq. (10): ``((f_t(x)-f_t(x*))/L)^2 <= (N-1)/4 + G^T(x-x*)``."""
    if lipschitz <= 0:
        raise ConfigurationError("Lipschitz constant must be positive")
    x = np.asarray(allocation, dtype=float)
    if optimal is None:
        optimal = solve_min_max(costs).allocation
    x_star = np.asarray(optimal, dtype=float)

    _, cost_x, straggler = evaluate_allocation(costs, x)
    _, cost_star, _ = evaluate_allocation(costs, x_star)
    x_prime = acceptable_workloads(costs, x, cost_x, straggler)
    g = assistance_vector(x, x_prime, straggler)

    n = x.size
    lhs = ((cost_x - cost_star) / lipschitz) ** 2
    rhs = (n - 1) / 4.0 + float(g @ (x - x_star))
    return Lemma2Report(lhs=lhs, rhs=rhs, holds=bool(lhs <= rhs + _TOL))

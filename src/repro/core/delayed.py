"""Delayed feedback — an extension for high-latency control planes.

The paper assumes the round-t costs are observed before deciding round
t+1. In geo-distributed settings feedback can lag by ``d`` rounds (the
balancer learns round t's costs only at the end of round t+d).
:class:`DelayedFeedback` wraps any balancer and buffers feedback for
``d`` rounds before delivering it, re-indexed, to the inner algorithm —
the standard reduction for delayed online learning. With ``delay=0`` it
is the identity wrapper (tested).

The wrapped DOLBIE stays feasible (its own invariants are untouched; it
just learns late), and the regret experiment can quantify the price of
delay.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.interface import OnlineLoadBalancer, RoundFeedback
from repro.exceptions import ConfigurationError

__all__ = ["DelayedFeedback"]


class DelayedFeedback(OnlineLoadBalancer):
    """Deliver feedback to ``inner`` ``delay`` rounds late."""

    requires_oracle = False

    def __init__(self, inner: OnlineLoadBalancer, delay: int) -> None:
        if inner.requires_oracle:
            raise ConfigurationError(
                "cannot delay an oracle algorithm: it has no feedback path"
            )
        if delay < 0:
            raise ConfigurationError(f"delay must be >= 0, got {delay}")
        super().__init__(inner.num_workers, inner.allocation)
        self.inner = inner
        self.delay = int(delay)
        self.name = f"{inner.name}+delay{delay}"
        self._buffer: deque[RoundFeedback] = deque()

    def decide(self) -> np.ndarray:
        # The inner algorithm's state lags by `delay` rounds; play its
        # current (stale) decision.
        return self.inner.decide()

    def _update(self, feedback: RoundFeedback) -> None:
        self._buffer.append(feedback)
        if len(self._buffer) > self.delay:
            stale = self._buffer.popleft()
            # Re-index so the inner algorithm sees consecutive rounds.
            # Note the standard delayed-OCO semantics: the inner update
            # combines its *current* iterate with the stale observation
            # (costs/straggler measured d rounds ago).
            self.inner.update(
                RoundFeedback(
                    round_index=self.inner.round,
                    allocation=stale.allocation,
                    costs=stale.costs,
                    local_costs=stale.local_costs,
                    global_cost=stale.global_cost,
                    straggler=stale.straggler,
                )
            )
        self._allocation = self.inner.allocation

"""The online round loop: drive any balancer against a cost process.

One function, :func:`run_online`, implements the protocol of problem (1)
for every algorithm uniformly: play, reveal, suffer, update. It records
the full trajectory (allocations, local costs, global costs, stragglers)
and measures the wall-clock decision overhead per round — the statistic
reported in the lower panel of Fig. 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.interface import OnlineLoadBalancer, make_feedback
from repro.costs.base import CostFunction
from repro.costs.timevarying import CostProcess
from repro.exceptions import ConfigurationError
from repro.obs.profiler import Profiler
from repro.obs.tracer import Tracer
from repro.utils.timer import Stopwatch

__all__ = ["RunResult", "run_online", "run_online_costs"]


@dataclass
class RunResult:
    """Trajectory of one online run of one algorithm."""

    algorithm: str
    num_workers: int
    horizon: int
    allocations: np.ndarray  # (T, N) — x_t actually played
    local_costs: np.ndarray  # (T, N) — l_{i,t}
    global_costs: np.ndarray  # (T,)  — l_t = max_i l_{i,t}
    stragglers: np.ndarray  # (T,) int
    decision_seconds: np.ndarray  # (T,) wall-clock overhead of decide+update

    @property
    def cumulative_cost(self) -> np.ndarray:
        """Running total of the global cost (objective of problem (1))."""
        return np.cumsum(self.global_costs)

    @property
    def total_cost(self) -> float:
        return float(self.global_costs.sum())

    def waiting_time(self) -> np.ndarray:
        """Per-worker, per-round idle time at the synchronization barrier.

        Worker *i* waits ``l_t - l_{i,t}`` while the straggler finishes —
        the quantity DOLBIE's evaluation reduces by 42.8-84.6% (Fig. 11).
        """
        return self.global_costs[:, None] - self.local_costs

    def mean_waiting_time(self) -> float:
        """Average idle seconds per worker per round."""
        return float(self.waiting_time().mean())


def run_online(
    balancer: OnlineLoadBalancer,
    process: CostProcess,
    horizon: int,
    tracer: Tracer | None = None,
    profiler: Profiler | None = None,
) -> RunResult:
    """Run ``balancer`` against ``process`` for ``horizon`` rounds."""
    costs_per_round = [process.costs_at(t) for t in range(1, horizon + 1)]
    return run_online_costs(
        balancer, costs_per_round, tracer=tracer, profiler=profiler
    )


def run_online_costs(
    balancer: OnlineLoadBalancer,
    costs_per_round: Sequence[Sequence[CostFunction]],
    tracer: Tracer | None = None,
    profiler: Profiler | None = None,
) -> RunResult:
    """Run against an explicit per-round list of cost vectors.

    ``tracer`` (see :mod:`repro.obs`) records one ``decision`` and one
    ``straggler`` record per round; ``profiler`` aggregates the decide/
    update laps the loop already times. Both default to ``None`` and
    cost one pointer comparison per round when disabled — the contract
    the ``obs_overhead`` benchmark gates.
    """
    horizon = len(costs_per_round)
    if horizon == 0:
        raise ConfigurationError("horizon must be at least one round")
    n = balancer.num_workers

    allocations = np.empty((horizon, n))
    local = np.empty((horizon, n))
    global_costs = np.empty(horizon)
    stragglers = np.empty(horizon, dtype=int)
    overhead = np.empty(horizon)

    if tracer is not None:
        tracer.header(balancer.name, n, horizon)
    watch = Stopwatch()
    for t, costs in enumerate(costs_per_round, start=1):
        if len(costs) != n:
            raise ConfigurationError(
                f"round {t} has {len(costs)} costs for {n} workers"
            )
        with watch:
            if balancer.requires_oracle:
                x_t = balancer.oracle_decide(costs)
            else:
                x_t = balancer.decide()
        feedback = make_feedback(t, x_t, costs)
        with watch:
            balancer.update(feedback)

        allocations[t - 1] = feedback.allocation
        local[t - 1] = feedback.local_costs
        global_costs[t - 1] = feedback.global_cost
        stragglers[t - 1] = feedback.straggler
        overhead[t - 1] = watch.laps[-2] + watch.laps[-1]

        if tracer is not None:
            from repro.obs.records import (
                DecisionRecord,
                StragglerRecord,
                float_tuple,
            )

            tracer.emit(
                DecisionRecord(
                    round=t,
                    allocation=float_tuple(feedback.allocation),
                    local_costs=float_tuple(feedback.local_costs),
                    global_cost=float(feedback.global_cost),
                    straggler=int(feedback.straggler),
                    next_allocation=float_tuple(balancer.allocation),
                )
            )
            tracer.emit(
                StragglerRecord(
                    round=t,
                    worker=int(feedback.straggler),
                    cost=float(feedback.global_cost),
                    waiting_total=float(
                        (feedback.global_cost - feedback.local_costs).sum()
                    ),
                )
            )

    if profiler is not None:
        for t in range(horizon):
            profiler.record("loop.decide", watch.laps[2 * t])
            profiler.record("loop.update", watch.laps[2 * t + 1])

    return RunResult(
        algorithm=balancer.name,
        num_workers=n,
        horizon=horizon,
        allocations=allocations,
        local_costs=local,
        global_costs=global_costs,
        stragglers=stragglers,
        decision_seconds=overhead,
    )

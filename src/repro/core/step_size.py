"""DOLBIE's diminishing, feasibility-retaining step-size rule (Eq. 7-8).

The step size is the coordination device of DOLBIE: capping

    alpha_{t+1} <= min( alpha_t, x_{s,t+1} / (N - 2 + x_{s,t+1}) )

simultaneously (i) keeps the straggler's next workload non-negative
without any projection (derivation below Eq. 7) and (ii) enforces the
monotone decay the regret proof needs (step (c) of Theorem 1).
"""

from __future__ import annotations

import numpy as np

from repro.backend import as_float
from repro.exceptions import ConfigurationError

__all__ = [
    "feasibility_cap",
    "feasibility_cap_rows",
    "initial_step_size",
    "StepSizeRule",
]


def feasibility_cap(straggler_workload: float, num_workers: int) -> float:
    """The second term of Eq. (7): ``x_s / (N - 2 + x_s)``.

    For ``N = 2`` the denominator equals ``x_s``, giving a cap of 1 (the
    single helper can take everything the straggler can shed). A straggler
    with zero workload yields a cap of 0: nothing can be shed, so the
    update freezes rather than going infeasible.
    """
    if num_workers < 2:
        raise ConfigurationError(f"need >= 2 workers, got {num_workers}")
    x_s = float(straggler_workload)
    if x_s < 0:
        raise ConfigurationError(f"straggler workload must be >= 0, got {x_s}")
    denom = num_workers - 2 + x_s
    if denom <= 0.0:
        return 0.0
    return x_s / denom


def feasibility_cap_rows(
    straggler_workloads: np.ndarray, num_workers: int
) -> np.ndarray:
    """:func:`feasibility_cap` applied per realization row.

    Entry ``r`` performs the identical branch structure and division as
    the scalar function on ``straggler_workloads[r]``, so the result is
    bit-identical per row.
    """
    if num_workers < 2:
        raise ConfigurationError(f"need >= 2 workers, got {num_workers}")
    x_s = as_float(straggler_workloads)  # dtype-preserving for float32 rows
    if (x_s < 0).any():
        raise ConfigurationError(
            f"straggler workloads must be >= 0, got min {x_s.min()!r}"
        )
    denom = num_workers - 2 + x_s
    frozen = denom <= 0.0
    return np.where(frozen, 0.0, x_s / np.where(frozen, 1.0, denom))


def initial_step_size(initial_allocation: np.ndarray) -> float:
    """Paper's initialization: ``alpha_1 = min_i x_{i,1} / (N-2+min_i x_{i,1})``.

    Safe regardless of which worker turns out to be the first straggler,
    because ``x / (a + x)`` is increasing in ``x`` (§IV-B1).
    """
    x = np.asarray(initial_allocation, dtype=float)
    return feasibility_cap(float(x.min()), x.size)


class StepSizeRule:
    """Stateful step-size schedule implementing Eq. (7)/(8) with equality.

    The paper only requires "<="; taking the min with equality is the
    least conservative choice that satisfies it, and is what makes the
    experiments' fast convergence possible.
    """

    def __init__(self, num_workers: int, alpha_1: float | None = None,
                 initial_allocation: np.ndarray | None = None) -> None:
        if num_workers < 2:
            raise ConfigurationError(f"need >= 2 workers, got {num_workers}")
        self.num_workers = int(num_workers)
        if alpha_1 is None:
            if initial_allocation is None:
                raise ConfigurationError(
                    "provide alpha_1 or initial_allocation to derive it"
                )
            alpha_1 = initial_step_size(initial_allocation)
        if not 0.0 <= alpha_1 <= 1.0:
            raise ConfigurationError(f"alpha_1 must lie in [0, 1], got {alpha_1}")
        self.alpha = float(alpha_1)
        self.history: list[float] = [self.alpha]

    def advance(self, straggler_workload_next: float) -> float:
        """Apply Eq. (7) after the round's update and return the new alpha."""
        cap = feasibility_cap(straggler_workload_next, self.num_workers)
        self.alpha = min(self.alpha, cap)
        self.history.append(self.alpha)
        return self.alpha

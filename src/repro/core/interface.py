"""The online load-balancer interface shared by DOLBIE and all baselines.

The online protocol of problem (1) is: in each round ``t`` the algorithm
*plays* an allocation ``x_t`` on the simplex, then the environment reveals
the local cost functions ``f_{i,t}`` and the algorithm observes its costs
and updates. The harness drives every algorithm through this exact loop::

    x_t   = balancer.decide()
    ...environment evaluates f_{i,t}(x_{i,t})...
    balancer.update(RoundFeedback(...))

The oracle baseline OPT is the one exception — it is allowed to peek at
the current round's costs (it "cannot be implemented in reality", §VI-B) —
and signals this with :attr:`OnlineLoadBalancer.requires_oracle`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.backend import as_float
from repro.costs.base import CostFunction
from repro.exceptions import ConfigurationError, FeasibilityError
from repro.minmax.solver import evaluate_allocation
from repro.simplex.sampling import equal_split, is_feasible

__all__ = ["RoundFeedback", "OnlineLoadBalancer", "identify_straggler", "make_feedback"]


def identify_straggler(local_costs: np.ndarray) -> int:
    """Index of the highest-cost worker; ties go to the lowest index.

    Matches the paper's deterministic rule "select the worker that ranks
    higher in the worker list" (Alg. 1 line 11 / Alg. 2 line 7), which lets
    every node of the fully-distributed protocol agree on ``s_t`` without
    extra communication.
    """
    # as_float keeps a float32 backend's costs in float32 (the argmax
    # index is dtype-invariant anyway; this just avoids a hot-path copy).
    return int(np.argmax(as_float(local_costs)))


@dataclass(frozen=True)
class RoundFeedback:
    """Everything revealed to an algorithm at the end of round ``t``."""

    round_index: int
    allocation: np.ndarray
    costs: Sequence[CostFunction]
    local_costs: np.ndarray
    global_cost: float
    straggler: int

    def __post_init__(self) -> None:
        if len(self.costs) != len(self.allocation):
            raise ConfigurationError("costs and allocation length mismatch")


def make_feedback(
    round_index: int,
    allocation: np.ndarray,
    costs: Sequence[CostFunction],
) -> RoundFeedback:
    """Evaluate one round and package the revealed information."""
    local, global_cost, straggler = evaluate_allocation(costs, allocation)
    return RoundFeedback(
        round_index=round_index,
        allocation=np.asarray(allocation, dtype=float).copy(),
        costs=costs,
        local_costs=local,
        global_cost=global_cost,
        straggler=straggler,
    )


class OnlineLoadBalancer(abc.ABC):
    """Base class of every load-balancing algorithm in this library."""

    #: Human-readable algorithm name used in experiment reports.
    name: str = "base"

    #: True for OPT-style oracles that receive the round's costs in advance.
    requires_oracle: bool = False

    def __init__(
        self,
        num_workers: int,
        initial_allocation: np.ndarray | None = None,
    ) -> None:
        if num_workers < 2:
            raise ConfigurationError(
                f"load balancing needs >= 2 workers, got {num_workers}"
            )
        self.num_workers = int(num_workers)
        if initial_allocation is None:
            initial_allocation = equal_split(self.num_workers)
        x0 = np.asarray(initial_allocation, dtype=float).copy()
        if x0.shape != (self.num_workers,) or not is_feasible(x0):
            raise FeasibilityError(
                f"initial allocation must be a feasible length-{num_workers} simplex point"
            )
        self._allocation = x0
        self.round = 1

    @property
    def allocation(self) -> np.ndarray:
        """The allocation that will be played this round (a copy)."""
        return self._allocation.copy()

    def decide(self) -> np.ndarray:
        """Return the allocation ``x_t`` to play in the current round."""
        return self.allocation

    def update(self, feedback: RoundFeedback) -> None:
        """Consume the revealed costs and move to round ``t + 1``."""
        self._update(feedback)
        if not is_feasible(self._allocation, atol=1e-7):
            raise FeasibilityError(
                f"{self.name} produced an infeasible allocation in round "
                f"{feedback.round_index}: sum={self._allocation.sum()!r}, "
                f"min={self._allocation.min()!r}"
            )
        self.round = feedback.round_index + 1

    @abc.abstractmethod
    def _update(self, feedback: RoundFeedback) -> None:
        """Algorithm-specific state transition; must set ``self._allocation``."""

    def oracle_decide(self, costs: Sequence[CostFunction]) -> np.ndarray:
        """Clairvoyant decision hook; only OPT overrides this."""
        raise NotImplementedError(f"{self.name} is not an oracle algorithm")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(N={self.num_workers}, round={self.round})"

"""Dynamic worker membership — an engineering extension beyond the paper.

The paper fixes the worker set N for the whole horizon. Real fleets are
elastic: nodes are preempted, crash, or join. These helpers rebalance an
allocation across membership changes while preserving the simplex
constraint, and :class:`ElasticDolbie` wires them into the algorithm with
a step-size reset that follows the same Eq. (7) feasibility logic on the
new fleet (the regret guarantee restarts from the change point; this is
explicitly *not* part of the paper's analysis).
"""

from __future__ import annotations

import numpy as np

from repro.core.dolbie import Dolbie
from repro.core.step_size import StepSizeRule, feasibility_cap
from repro.exceptions import ConfigurationError, FeasibilityError
from repro.simplex.sampling import is_feasible

__all__ = ["remove_worker_allocation", "add_worker_allocation", "ElasticDolbie"]


def remove_worker_allocation(x: np.ndarray, worker: int) -> np.ndarray:
    """Drop ``worker`` and redistribute its share proportionally.

    Survivors absorb the departed share in proportion to their current
    workloads (a crashed worker's work is re-sharded the way consistent-
    hashing systems do). Degenerate case: if the departed worker held
    everything, survivors split it equally.
    """
    arr = np.asarray(x, dtype=float)
    if not is_feasible(arr):
        raise FeasibilityError("allocation must lie on the simplex")
    if arr.size < 3:
        raise ConfigurationError("cannot go below 2 workers")
    if not 0 <= worker < arr.size:
        raise ConfigurationError(f"worker index {worker} out of range")
    survivors = np.delete(arr, worker)
    total = survivors.sum()
    if total <= 0.0:
        return np.full(survivors.size, 1.0 / survivors.size)
    return survivors / total


def add_worker_allocation(x: np.ndarray, share: float | None = None) -> np.ndarray:
    """Append a new worker holding ``share`` (default ``1 / (N + 1)``).

    Incumbents are scaled down proportionally to free exactly the new
    worker's share, so the result is back on the simplex.
    """
    arr = np.asarray(x, dtype=float)
    if not is_feasible(arr):
        raise FeasibilityError("allocation must lie on the simplex")
    n_new = arr.size + 1
    if share is None:
        share = 1.0 / n_new
    if not 0.0 <= share < 1.0:
        raise ConfigurationError(f"share must lie in [0, 1), got {share}")
    scaled = arr * (1.0 - share)
    return np.concatenate([scaled, [share]])


class ElasticDolbie(Dolbie):
    """DOLBIE with join/leave support between rounds.

    Membership changes are only legal at round boundaries (after
    ``update``, before the next ``decide``), which matches how a
    synchronous training system would apply them.
    """

    name = "DOLBIE/elastic"

    def remove_worker(self, worker: int) -> None:
        """Handle a departure: rebalance and re-derive a safe step size."""
        self._allocation = remove_worker_allocation(self._allocation, worker)
        self.num_workers -= 1
        self._reset_step_rule()
        self._trim_histories()

    def add_worker(self, share: float | None = None) -> None:
        """Handle a join: grant the newcomer a share and rebalance."""
        self._allocation = add_worker_allocation(self._allocation, share)
        self.num_workers += 1
        self._reset_step_rule()
        self._trim_histories()

    def _reset_step_rule(self) -> None:
        # Restart Eq. (7) on the new fleet: the cap must reflect the new
        # N and the smallest current share (same reasoning as alpha_1's
        # initialization rule), but never exceed the pre-change alpha so
        # the schedule stays non-increasing across the change point.
        old_alpha = self.step_rule.alpha
        safe = feasibility_cap(float(self._allocation.min()), self.num_workers)
        self.step_rule = StepSizeRule(
            self.num_workers, alpha_1=min(old_alpha, safe) if safe > 0 else 0.0
        )

    def _trim_histories(self) -> None:
        # Per-worker history vectors (and straggler indices) are no longer
        # aligned; clear them rather than serve misleading data.
        self.x_prime_history.clear()
        self.assistance_history.clear()
        self.straggler_history.clear()

"""DOLBIE core: the algorithm, its quantities, and the step-size rule."""

from repro.core.delayed import DelayedFeedback
from repro.core.dolbie import Dolbie
from repro.core.interface import (
    OnlineLoadBalancer,
    RoundFeedback,
    identify_straggler,
    make_feedback,
)
from repro.core.ledger import (
    LedgerEntry,
    RoundLedger,
    prefix_consistency_violations,
)
from repro.core.membership import (
    ElasticDolbie,
    add_worker_allocation,
    remove_worker_allocation,
)
from repro.core.peerstore import LedgerBook, PeerStore
from repro.core.restart import RestartDolbie
from repro.core.quantities import acceptable_workloads, assistance_vector
from repro.core.step_size import StepSizeRule, feasibility_cap, initial_step_size

__all__ = [
    "Dolbie",
    "ElasticDolbie",
    "DelayedFeedback",
    "RestartDolbie",
    "OnlineLoadBalancer",
    "RoundFeedback",
    "identify_straggler",
    "make_feedback",
    "acceptable_workloads",
    "assistance_vector",
    "add_worker_allocation",
    "remove_worker_allocation",
    "LedgerBook",
    "LedgerEntry",
    "PeerStore",
    "RoundLedger",
    "prefix_consistency_violations",
    "StepSizeRule",
    "feasibility_cap",
    "initial_step_size",
]

"""DOLBIE — the paper's algorithm (centralized reference implementation).

This class realizes the update rules (5)-(7) exactly, in a single process.
It is the numerical ground truth against which the message-passing
implementations of Algorithm 1 (:mod:`repro.protocols.master_worker`) and
Algorithm 2 (:mod:`repro.protocols.fully_distributed`) are asserted equal
in the integration tests.

Per round, given the revealed costs and the observed global cost ``l_t``:

1. every non-straggler computes its maximum acceptable workload
   ``x'_{i,t}`` (Eq. 4) — "how much could I have taken without becoming a
   worse straggler?";
2. non-stragglers move a fraction ``alpha_t`` of the way toward it
   (Eq. 5) — the *risk-averse assistance*;
3. the straggler absorbs the balance so the simplex constraint holds by
   construction (Eq. 6) — no projection;
4. the step size is capped by Eq. (7) so the straggler's next workload
   stays non-negative and the schedule is non-increasing.

No gradients, no projections: the only non-trivial computation is the
level inverse, which is closed-form for affine latency costs and a short
bisection otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import OnlineLoadBalancer, RoundFeedback
from repro.core.quantities import acceptable_workloads, assistance_vector
from repro.core.step_size import StepSizeRule
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["Dolbie"]


class Dolbie(OnlineLoadBalancer):
    """Distributed Online Load Balancing with rIsk-averse assistancE."""

    name = "DOLBIE"

    def __init__(
        self,
        num_workers: int,
        initial_allocation: np.ndarray | None = None,
        alpha_1: float | None = None,
        record_history: bool = False,
        exact_feasibility_guard: bool = True,
        tracer: Tracer | None = None,
    ) -> None:
        """Create a DOLBIE controller.

        Parameters
        ----------
        num_workers:
            Number of parallel workers ``N``.
        initial_allocation:
            ``x_1`` (defaults to the equal split ``1/N``, as in §VI-B).
        alpha_1:
            Initial step size. ``None`` derives it from the paper's rule
            ``min_i x_{i,1} / (N - 2 + min_i x_{i,1})``; the experiments
            use the explicit 0.001 of §VI-B.
        record_history:
            Keep the per-round ``x'``/``G`` vectors and straggler indices
            for analysis plots (Fig. 10 needs the allocation trajectory).
            Off by default: long runs (the chaos soak, paper-scale sweeps)
            would otherwise grow these lists without bound.
        exact_feasibility_guard:
            The Eq. (7) schedule keeps every round feasible *provided*
            ``alpha_1`` respects the paper's initialization rule (a
            straggler's workload only grows between its own straggling
            turns, so the historical cap is inductively conservative).
            For a user-chosen larger ``alpha_1`` the first straggling turn
            of a small-workload worker can go negative; when True (the
            default) the exact per-round bound
            ``alpha <= x_s / sum_{i != s}(x'_i - x_i)`` from Eq. (7)'s own
            derivation is additionally enforced, making any alpha_1 in
            [0, 1] safe. Set False for strict equivalence with the
            verbatim message-passing protocols of :mod:`repro.protocols`.
        tracer:
            Optional :class:`repro.obs.Tracer`; when set, every update
            emits an ``assistance`` record (alpha, shed total, x', G).
        """
        super().__init__(num_workers, initial_allocation)
        self.step_rule = StepSizeRule(
            num_workers, alpha_1=alpha_1, initial_allocation=self._allocation
        )
        self.record_history = bool(record_history)
        self.exact_feasibility_guard = bool(exact_feasibility_guard)
        self.tracer = tracer
        self.x_prime_history: list[np.ndarray] = []
        self.assistance_history: list[np.ndarray] = []
        self.straggler_history: list[int] = []
        # Unlike the gated histories, straggler tallies are O(N) state, so
        # they stay on unconditionally — soak-length runs included.
        self.metrics = MetricsRegistry()

    @property
    def alpha(self) -> float:
        """The step size that will be used in the current round."""
        return self.step_rule.alpha

    @property
    def straggler_counts(self) -> dict[int, int]:
        """How many rounds each worker has straggled (from the registry)."""
        return {
            int(worker): int(count)
            for worker, count in self.metrics.series(
                "dolbie.straggler_turns", "worker"
            ).items()
        }

    def _record_straggler(self, straggler: int) -> None:
        """Tally a straggling turn; append to history only when enabled."""
        self.metrics.counter("dolbie.straggler_turns", worker=straggler).inc()
        if self.record_history:
            self.straggler_history.append(straggler)

    def _update(self, feedback: RoundFeedback) -> None:
        x = self._allocation
        s = feedback.straggler
        alpha = self.step_rule.alpha

        x_prime = acceptable_workloads(
            feedback.costs, x, feedback.global_cost, straggler=s
        )
        g = assistance_vector(x, x_prime, straggler=s)

        # Eq. (7)'s derivation bounds alpha by x_s / sum_{i != s}(x' - x).
        # The schedule satisfies this inductively when alpha_1 follows the
        # paper's initialization rule; the exact per-round bound below
        # extends safety to any alpha_1 in [0, 1].
        shed_total = float(g[s])
        if self.exact_feasibility_guard and shed_total > 0.0:
            alpha = min(alpha, x[s] / shed_total)

        # Eq. (9): x_{t+1} = x_t - alpha_t G_t. Non-stragglers gain
        # (G_i <= 0); the straggler sheds the exact total (Eq. 6).
        x_next = x - alpha * g
        # The straggler coordinate closes the simplex constraint exactly,
        # absorbing the accumulated floating-point error of the sum.
        x_next[s] = 1.0 - (x_next.sum() - x_next[s])
        if -1e-12 < x_next[s] < 1e-12:
            # Floating-point dust from the exact cap (or from the closing
            # sum — the distributed protocols accumulate the same sum in a
            # different order, so both sides snap dust to exactly zero to
            # stay on identical trajectories); true violations (possible
            # only with the guard disabled) are left in place so the
            # base-class feasibility check surfaces them loudly.
            x_next[s] = 0.0

        if self.record_history:
            self.x_prime_history.append(x_prime)
            self.assistance_history.append(g)
        self._record_straggler(s)

        if self.tracer is not None:
            from repro.obs.records import AssistanceRecord, float_tuple

            self.tracer.emit(
                AssistanceRecord(
                    round=feedback.round_index,
                    straggler=int(s),
                    alpha=float(alpha),
                    shed_total=shed_total,
                    x_prime=float_tuple(x_prime),
                    assistance=float_tuple(g),
                )
            )

        self._allocation = x_next
        self.step_rule.advance(x_next[s])

    @property
    def alpha_history(self) -> list[float]:
        """All step sizes used so far (``alpha_1`` first)."""
        return list(self.step_rule.history)

"""Struct-of-arrays peer state: the N=10⁶ construction/memory wall breaker.

``FullyDistributedDolbie`` historically materializes one ``_Peer``
python object per worker. Each object is small, but N of them is not:
at N=1,000,000 the roster costs seconds of pure allocation and hundreds
of megabytes of object headers before the first round runs — and
checkpointing walks every one of them. The observation that breaks the
wall is that on the hot (compiled tree) path a peer's whole observable
state is a handful of scalars:

========================  =======================================
peer field                 packed array (dtype, shape ``(N,)``)
========================  =======================================
``x``                      float64 (the simplex allocation)
``alpha_bar``              float64 (Eq. 8 local step size)
``local_cost``             float64, ``NaN`` encodes ``None``
``current_round``          int64
``is_straggler``           bool
``global_cost``            float64, ``NaN`` encodes ``None``
``straggler_id``           int64, ``-1`` encodes ``None``
``failed``                 bool (the Node liveness flag)
``received_count``         int64 (the Node delivery counter)
========================  =======================================

:class:`PeerStore` holds exactly those arrays — O(N) *array*
allocations instead of N python objects — while the protocol keeps its
existing peer/node API through lazily hydrated flyweight views
(``_StorePeer`` in :mod:`repro.protocols.fully_distributed`): a view is
a real ``_Peer`` whose scalar fields are properties over the store's
arrays, created only when some code path actually addresses that peer
as an object. A clean compiled tree round hydrates **zero** views.

Rosters use the shared-frozenset contract the object peers already
follow (one frozenset for everyone, rebound never mutated):
:attr:`PeerStore.shared_roster` plus a sparse override dict for the
transiently divergent peers around a membership event.

Per-peer RNG state does not exist in this codebase (all randomness
lives in the link/latency models, captured by :mod:`repro.ckpt.state`);
per-peer *decisions* exist only transiently during event-engine rounds
and live on the hydrated views.

:class:`LedgerBook` is the same idea applied to the per-worker ledger
replicas: healthy replicas are contiguous suffixes of the authoritative
ledger, so the book stores one ``[start, stop)`` span pair per worker
(two int64 arrays) and materializes a real :class:`~repro.core.ledger.
RoundLedger` only for workers whose replica left the single-span fast
path (stall-then-rejoin gaps). Appending a round to a million replicas
becomes two vectorized array updates. The span layout is exactly the
``{"span": [start, end]}`` packing :mod:`repro.ckpt.state` already uses
on disk, so checkpoints translate 1:1.

Both classes are pure data + numpy — no protocol or network imports —
so they sit in ``repro.core`` below everything that uses them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.ledger import LedgerEntry, RoundLedger

__all__ = ["PeerStore", "LedgerBook"]


class PeerStore:
    """Packed per-peer protocol state for one FD roster (see module doc)."""

    def __init__(
        self,
        num_workers: int,
        x0: np.ndarray,
        alpha_bar: float,
        roster: "frozenset[int] | None" = None,
    ) -> None:
        n = int(num_workers)
        self.num_workers = n
        # Protocol scalars are float64 on object peers (python floats),
        # so the packed columns are float64 regardless of the array
        # backend — the fast paths convert to the backend dtype exactly
        # where the object path does.
        self.x = np.array(x0, dtype=float)
        self.alpha_bar = np.full(n, float(alpha_bar))
        self.local_cost = np.full(n, np.nan)
        self.current_round = np.zeros(n, dtype=np.int64)
        self.is_straggler = np.zeros(n, dtype=bool)
        self.global_cost = np.full(n, np.nan)
        self.straggler_id = np.full(n, -1, dtype=np.int64)
        self.failed = np.zeros(n, dtype=bool)
        self.received_count = np.zeros(n, dtype=np.int64)
        #: The one frozenset shared by every peer without an override —
        #: the same O(N)-construction contract as the object peers.
        self.shared_roster: frozenset[int] = (
            roster if roster is not None else frozenset(range(n))
        )
        #: Sparse per-peer roster divergence (crash survivors holding a
        #: stale roster, mid-detection shrinks). Empty on every healthy
        #: round — the eligibility checks exploit that.
        self.roster_overrides: dict[int, frozenset[int]] = {}

    # -- rosters ----------------------------------------------------------
    def roster_of(self, worker: int) -> "frozenset[int]":
        return self.roster_overrides.get(worker, self.shared_roster)

    def set_roster(self, worker: int, roster) -> None:
        """Bind ``worker``'s roster view.

        Binding the shared object (identity, not equality — O(1)) drops
        the override; anything else records a sparse override."""
        if roster is self.shared_roster:
            self.roster_overrides.pop(worker, None)
        else:
            self.roster_overrides[worker] = roster

    def rebind_roster(
        self, new_roster: "frozenset[int]", stale_ids: Iterable[int] = ()
    ) -> None:
        """Re-agree the roster for every member of ``new_roster``.

        Mirrors ``_readmit``'s object-mode semantics exactly: members
        of ``new_roster`` share the new frozenset, while ``stale_ids``
        (dead/stalled peers — the caller knows them, so this never
        scans all N) keep whatever roster they last saw."""
        old = self.shared_roster
        for worker in stale_ids:
            self.roster_overrides.setdefault(int(worker), old)
        self.shared_roster = new_roster
        for worker in [w for w in self.roster_overrides if w in new_roster]:
            del self.roster_overrides[worker]

    # -- checkpoint payloads ---------------------------------------------
    def state(self) -> dict:
        """Array-shaped capture (the ``peerstore`` snapshot block)."""
        return {
            "x": self.x.copy(),
            "alpha_bar": self.alpha_bar.copy(),
            "local_cost": self.local_cost.copy(),
            "current_round": self.current_round.copy(),
            "is_straggler": self.is_straggler.copy(),
            "global_cost": self.global_cost.copy(),
            "straggler_id": self.straggler_id.copy(),
            "failed": self.failed.copy(),
            "received_count": self.received_count.copy(),
            "shared_roster": np.array(sorted(self.shared_roster), dtype=np.int64),
            "roster_overrides": {
                int(w): np.array(sorted(r), dtype=np.int64)
                for w, r in sorted(self.roster_overrides.items())
            },
        }

    def restore(self, state) -> None:
        n = self.num_workers
        for field in (
            "x", "alpha_bar", "local_cost", "current_round", "is_straggler",
            "global_cost", "straggler_id", "failed", "received_count",
        ):
            arr = np.asarray(state[field])
            if arr.shape != (n,):
                raise ValueError(
                    f"peerstore field {field!r} has shape {arr.shape}, "
                    f"expected ({n},)"
                )
            getattr(self, field)[:] = arr
        self.shared_roster = frozenset(
            int(w) for w in np.asarray(state["shared_roster"]).tolist()
        )
        self.roster_overrides = {
            int(w): frozenset(int(i) for i in np.asarray(ids).tolist())
            for w, ids in state["roster_overrides"].items()
        }


class LedgerBook:
    """Span-compressed per-worker replicas of one authoritative ledger.

    ``start``/``stop`` are ``(N,)`` int64 arrays: worker ``w``'s replica
    is ``authority.entries[start[w]:stop[w]]`` (``start == stop`` means
    empty — a fresh or crash-wiped replica). Workers whose replica is
    not one contiguous run (a stall gap, a restored restart prefix that
    diverged) are *materialized* into real :class:`RoundLedger` objects
    in :attr:`materialized`; everything stays correct, only the O(1)
    fan-out is lost for those few workers.
    """

    def __init__(self, num_workers: int, authority: RoundLedger) -> None:
        self.num_workers = int(num_workers)
        self._authority = authority
        self.start = np.zeros(self.num_workers, dtype=np.int64)
        self.stop = np.zeros(self.num_workers, dtype=np.int64)
        self.materialized: dict[int, RoundLedger] = {}

    @property
    def authority(self) -> RoundLedger:
        return self._authority

    def rebind_authority(self, authority: RoundLedger) -> None:
        """Point the spans at a restored authoritative ledger (the
        checkpoint-restore path replaces the ledger object)."""
        self._authority = authority

    def worker_ledger(self, worker: int) -> RoundLedger:
        """``worker``'s replica.

        Materialized workers return their live ledger object;
        span-backed workers return a *fresh* ledger built from the
        authoritative slice (the entries are the shared, immutable
        entry objects — building the view is O(span length))."""
        ledger = self.materialized.get(worker)
        if ledger is not None:
            return ledger
        replica = RoundLedger()
        lo, hi = int(self.start[worker]), int(self.stop[worker])
        if hi > lo:
            for entry in self._authority.entries[lo:hi]:
                replica.replicate(entry)
        return replica

    def wipe(self, worker: int) -> None:
        """Crash semantics: the replica's process memory is gone."""
        self.materialized.pop(worker, None)
        length = len(self._authority)
        self.start[worker] = length
        self.stop[worker] = length

    def restore_replica(
        self, worker: int, entries: Sequence[LedgerEntry]
    ) -> None:
        """Reload a replica (the restart fault's recovery path).

        A replica that is one contiguous run of the authority collapses
        back onto the span arrays; anything else is materialized."""
        self.materialized.pop(worker, None)
        entries = list(entries)
        auth = self._authority.entries
        if not entries:
            self.wipe(worker)
            return
        rounds = [entry.round_index for entry in auth]
        import bisect

        lo = bisect.bisect_left(rounds, entries[0].round_index)
        hi = lo + len(entries)
        if hi <= len(auth) and list(auth[lo:hi]) == entries:
            self.start[worker] = lo
            self.stop[worker] = hi
        else:
            self.materialized[worker] = RoundLedger(entries)

    def _materialize(self, worker: int) -> RoundLedger:
        ledger = self.worker_ledger(worker)
        self.materialized[worker] = ledger
        return ledger

    def fanout(self, roster: Iterable[int], entry: LedgerEntry) -> None:
        """Replicate ``entry`` — already appended to the authority as
        its last element — to every worker in ``roster`` (scalar path;
        the clean compiled route uses :meth:`fanout_ids`)."""
        length = len(self._authority)
        assert length and self._authority.entries[-1] is entry
        for worker in roster:
            worker = int(worker)
            ledger = self.materialized.get(worker)
            if ledger is not None:
                ledger.replicate(entry)
            elif self.start[worker] == self.stop[worker]:
                self.start[worker] = length - 1
                self.stop[worker] = length
            elif self.stop[worker] == length - 1:
                self.stop[worker] = length
            else:  # a gap opened (stall): fall off the span fast path
                self._materialize(worker).replicate(entry)

    def fanout_ids(self, ids: np.ndarray, entry: LedgerEntry) -> None:
        """Vectorized :meth:`fanout` for an ascending id array — the
        O(1)-per-round replica append of the compiled tree route."""
        length = len(self._authority)
        if self.materialized:
            # The handful of materialized workers peel off to the
            # scalar path; ids is ascending so membership is a search.
            mat = np.fromiter(sorted(self.materialized), dtype=np.int64)
            pos = np.searchsorted(ids, mat)
            hit = (pos < ids.size) & (ids[np.minimum(pos, ids.size - 1)] == mat)
            for worker in mat[hit].tolist():
                self.materialized[worker].replicate(entry)
            keep = np.ones(ids.size, dtype=bool)
            keep[pos[hit]] = False
            ids = ids[keep]
        empty = self.start[ids] == self.stop[ids]
        self.start[ids[empty]] = length - 1
        contiguous = self.stop[ids] == length - 1
        extend = empty | contiguous
        self.stop[ids[extend]] = length
        for worker in ids[~extend].tolist():
            self._materialize(worker).replicate(entry)

    # -- checkpoint payloads ---------------------------------------------
    def spans_state(self) -> dict:
        """The span arrays (materialized workers are packed separately
        by :mod:`repro.ckpt.state`, which owns the replica format)."""
        return {"start": self.start.copy(), "stop": self.stop.copy()}

    def restore_spans(self, state) -> None:
        start = np.asarray(state["start"], dtype=np.int64)
        stop = np.asarray(state["stop"], dtype=np.int64)
        if start.shape != (self.num_workers,) or stop.shape != start.shape:
            raise ValueError("ledger span arrays have the wrong shape")
        self.start[:] = start
        self.stop[:] = stop

"""Batched (realization-stacked) policy interface and the batched DOLBIE.

The stacked sweep engine (:mod:`repro.experiments.stacked`) advances all
``R`` realizations of a sweep in lockstep: one policy object holds an
``(R, N)`` allocation matrix and consumes per-round ``(R, N)`` cost
matrices. Row ``r`` of every batched update performs the *identical*
floating-point operations, in the identical order, as the scalar policy
would on realization ``r`` alone — that bit-identity contract is what
lets :func:`repro.experiments.harness.sweep_realizations` switch between
the stacked fast path and the per-realization loop without changing a
single output byte (the batched-equivalence property tests and the
stacked-vs-serial integration tests pin it).

Only the affine/materialized cost representation is supported: batched
feedback carries the raw ``(R, N)`` slope/intercept matrices rather than
cost-function objects, matching what
:class:`repro.mlsim.materialized.MaterializedEnvironment` exposes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.backend import ArrayBackend, as_float, get_backend
from repro.core.quantities import acceptable_workloads_rows, assistance_vector_rows
from repro.core.step_size import feasibility_cap_rows, initial_step_size
from repro.exceptions import ConfigurationError, FeasibilityError
from repro.simplex.sampling import equal_split, is_feasible_rows

__all__ = [
    "BatchedRoundFeedback",
    "BatchedPolicy",
    "BatchedDolbie",
    "identify_stragglers_rows",
]


def identify_stragglers_rows(local_costs: np.ndarray) -> np.ndarray:
    """Per-row :func:`repro.core.interface.identify_straggler`.

    ``np.argmax(axis=1)`` breaks ties toward the lowest index, exactly
    like the 1-D call, so degenerate all-equal rows pick worker 0 in both
    paths.
    """
    return np.argmax(as_float(local_costs), axis=1)


@dataclass(frozen=True)
class BatchedRoundFeedback:
    """Round-``t`` feedback for all ``R`` stacked realizations at once.

    The scalar :class:`repro.core.interface.RoundFeedback` carries cost
    *objects*; here the affine representation is explicit because the
    stacked engine only runs on materialized (affine) environments.
    """

    round_index: int
    allocations: np.ndarray  #: (R, N) — what was played this round.
    slopes: np.ndarray  #: (R, N) affine cost slopes revealed this round.
    intercepts: np.ndarray  #: (R, N) affine cost intercepts.
    local_costs: np.ndarray  #: (R, N) realized per-worker costs.
    global_costs: np.ndarray  #: (R,) per-realization max cost.
    stragglers: np.ndarray  #: (R,) int straggler index per realization.

    def __post_init__(self) -> None:
        shape = np.shape(self.allocations)
        if len(shape) != 2:
            raise ConfigurationError(
                f"allocations must be (R, N), got shape {shape}"
            )
        for name in ("slopes", "intercepts", "local_costs"):
            if np.shape(getattr(self, name)) != shape:
                raise ConfigurationError(
                    f"{name} shape {np.shape(getattr(self, name))} != {shape}"
                )
        if np.shape(self.global_costs) != (shape[0],):
            raise ConfigurationError("global_costs must be (R,)")
        if np.shape(self.stragglers) != (shape[0],):
            raise ConfigurationError("stragglers must be (R,)")


class BatchedPolicy(abc.ABC):
    """Base class of realization-stacked load-balancing policies.

    Mirrors :class:`repro.core.interface.OnlineLoadBalancer` with the
    leading ``R`` axis added to every quantity. The feasibility
    post-condition is checked row-wise with the same ``atol`` as the
    scalar base class.
    """

    #: Scalar-algorithm name this policy batches (registry key).
    name: str = "base"

    #: True for OPT-style oracles that receive the round's costs in advance.
    requires_oracle: bool = False

    def __init__(
        self,
        num_realizations: int,
        num_workers: int,
        initial_allocation: np.ndarray | None = None,
        backend: "str | ArrayBackend | None" = None,
    ) -> None:
        if num_realizations < 1:
            raise ConfigurationError(
                f"need >= 1 stacked realization, got {num_realizations}"
            )
        if num_workers < 2:
            raise ConfigurationError(
                f"load balancing needs >= 2 workers, got {num_workers}"
            )
        self.num_realizations = int(num_realizations)
        self.num_workers = int(num_workers)
        #: Array backend of the (R, N) state (:mod:`repro.backend`);
        #: numpy64 (the default) reproduces the historical float64
        #: arithmetic bit for bit. The ``compiled`` backend is accepted
        #: and behaves exactly like numpy64 here — the batched policies
        #: have no fused-kernel path (they are already single-expression
        #: numpy over (R, N) matrices); only :attr:`ArrayBackend.dtype`
        #: matters to this class.
        self.backend = get_backend(backend)
        if initial_allocation is None:
            initial_allocation = equal_split(self.num_workers)
        x0 = self.backend.asarray(initial_allocation)
        if x0.ndim == 1:
            x0 = np.tile(x0, (self.num_realizations, 1))
        x0 = x0.copy()
        expected = (self.num_realizations, self.num_workers)
        if x0.shape != expected or not bool(is_feasible_rows(x0).all()):
            raise FeasibilityError(
                f"initial allocations must be feasible with shape {expected}"
            )
        self._allocations = x0
        self.round = 1

    @property
    def allocations(self) -> np.ndarray:
        """The ``(R, N)`` allocations played this round (a copy)."""
        return self._allocations.copy()

    def decide(self) -> np.ndarray:
        """Return the allocations to play in the current round."""
        return self.allocations

    def update(self, feedback: BatchedRoundFeedback) -> None:
        """Consume the revealed costs and move every row to round ``t+1``."""
        self._update(feedback)
        ok = is_feasible_rows(self._allocations, atol=1e-7)
        if not bool(ok.all()):
            bad = int(np.argmin(ok))
            row = self._allocations[bad]
            raise FeasibilityError(
                f"{self.name} produced an infeasible allocation in round "
                f"{feedback.round_index} (realization {bad}): "
                f"sum={row.sum()!r}, min={row.min()!r}"
            )
        self.round = feedback.round_index + 1

    @abc.abstractmethod
    def _update(self, feedback: BatchedRoundFeedback) -> None:
        """Policy-specific transition; must set ``self._allocations``."""

    def oracle_decide(self, slopes: np.ndarray, intercepts: np.ndarray) -> np.ndarray:
        """Clairvoyant decision hook; only batched OPT overrides this."""
        raise NotImplementedError(f"{self.name} is not an oracle algorithm")

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(R={self.num_realizations}, "
            f"N={self.num_workers}, round={self.round})"
        )


class BatchedDolbie(BatchedPolicy):
    """Realization-stacked DOLBIE (Eqs. 4-9, row-wise).

    Each row follows :class:`repro.core.dolbie.Dolbie` exactly: the
    schedule alpha advances from the *unguarded* Eq. (7) cap while the
    exact feasibility guard only tightens the alpha applied locally this
    round, the straggler coordinate closes the simplex sum, and
    floating-point dust within ``±1e-12`` of zero snaps to exactly zero.
    History recording and tracing are deliberately absent — the stacked
    engine is a throughput path; runs that need per-round forensics use
    the scalar class.
    """

    name = "DOLBIE"

    def __init__(
        self,
        num_realizations: int,
        num_workers: int,
        initial_allocation: np.ndarray | None = None,
        alpha_1: float | None = None,
        exact_feasibility_guard: bool = True,
        backend: "str | ArrayBackend | None" = None,
    ) -> None:
        super().__init__(
            num_realizations, num_workers, initial_allocation, backend=backend
        )
        if alpha_1 is None:
            # Per-row paper initialization. All rows share x_1 in the sweep
            # harness, but per-row derivation keeps the class general.
            alphas = self.backend.asarray(
                [initial_step_size(row) for row in self._allocations]
            )
        else:
            if not 0.0 <= alpha_1 <= 1.0:
                raise ConfigurationError(
                    f"alpha_1 must lie in [0, 1], got {alpha_1}"
                )
            alphas = self.backend.full(self.num_realizations, float(alpha_1))
        #: (R,) schedule step sizes — the Eq. (7) state, pre-guard.
        self._alpha = alphas
        self.exact_feasibility_guard = bool(exact_feasibility_guard)

    @property
    def alpha(self) -> np.ndarray:
        """The ``(R,)`` schedule step sizes for the current round (a copy)."""
        return self._alpha.copy()

    def _update(self, feedback: BatchedRoundFeedback) -> None:
        x = self._allocations
        s = np.asarray(feedback.stragglers)
        rows = np.arange(x.shape[0])
        alpha = self._alpha

        x_prime = acceptable_workloads_rows(
            feedback.slopes, feedback.intercepts, x, feedback.global_costs, s
        )
        g = assistance_vector_rows(x, x_prime, s)

        # Exact per-round bound alpha <= x_s / shed_total (guarded rows
        # only); the schedule state itself stays unguarded, exactly like
        # the scalar class, where the local variable is tightened but
        # step_rule.alpha advances from the schedule value.
        shed_total = g[rows, s]
        if self.exact_feasibility_guard:
            positive = shed_total > 0.0
            safe_shed = np.where(positive, shed_total, 1.0)
            alpha = np.where(
                positive, np.minimum(alpha, x[rows, s] / safe_shed), alpha
            )

        x_next = x - alpha[:, None] * g
        # Straggler coordinates close the simplex constraint exactly; the
        # row-wise sum(axis=1) matches the scalar 1-D sum bit-for-bit on
        # the contiguous rows (numpy pairwise summation).
        x_next[rows, s] = 1.0 - (x_next.sum(axis=1) - x_next[rows, s])
        closing = x_next[rows, s]
        dust = (-1e-12 < closing) & (closing < 1e-12)
        x_next[rows, s] = np.where(dust, 0.0, closing)

        self._allocations = x_next
        # Eq. (7) advance from the schedule alpha (not the guarded local).
        self._alpha = np.minimum(
            self._alpha, feasibility_cap_rows(x_next[rows, s], self.num_workers)
        )

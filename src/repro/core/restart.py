"""Adaptive step-size restarts — an extension addressing Eq. (7)'s decay.

The paper's diminishing schedule buys the Theorem 1 guarantee but leaves
DOLBIE slow to react once alpha has decayed: after convergence, a regime
change (a worker slowing 2x for minutes — common in non-dedicated
clusters) is tracked at the crawl of the residual alpha. The standard
online-learning remedy is a *restart*: detect that the environment has
shifted and re-initialize the schedule.

:class:`RestartDolbie` monitors the observed global cost against its
trailing minimum; when the cost exceeds ``restart_threshold`` times that
minimum for ``patience`` consecutive rounds, it resets alpha to the
paper's initialization rule evaluated at the *current* allocation (which
is always feasible by the same argument as alpha_1) and restarts the
trailing window. Within each segment the schedule is the paper's —
non-increasing — so Theorem 1 applies per segment with the number of
restarts multiplying the bound.

This is an extension beyond the paper (documented in DESIGN.md); the
ablation bench quantifies its effect.
"""

from __future__ import annotations

import numpy as np

from repro.core.dolbie import Dolbie
from repro.core.interface import RoundFeedback
from repro.core.step_size import StepSizeRule, initial_step_size
from repro.exceptions import ConfigurationError

__all__ = ["RestartDolbie"]


class RestartDolbie(Dolbie):
    """DOLBIE with regime-change-triggered step-size restarts."""

    name = "DOLBIE/restart"

    def __init__(
        self,
        num_workers: int,
        initial_allocation: np.ndarray | None = None,
        alpha_1: float | None = None,
        restart_threshold: float = 1.5,
        patience: int = 3,
        cooldown: int = 10,
        record_history: bool = False,
    ) -> None:
        """``restart_threshold`` is the cost blow-up (vs the trailing
        minimum) that signals a regime change; ``patience`` consecutive
        offending rounds are required, and after a restart no new restart
        fires for ``cooldown`` rounds (so the re-convergence transient is
        not mistaken for another regime change)."""
        super().__init__(
            num_workers,
            initial_allocation=initial_allocation,
            alpha_1=alpha_1,
            record_history=record_history,
        )
        if restart_threshold <= 1.0:
            raise ConfigurationError(
                f"restart_threshold must exceed 1, got {restart_threshold}"
            )
        if patience < 1 or cooldown < 0:
            raise ConfigurationError("patience >= 1 and cooldown >= 0 required")
        self.restart_threshold = float(restart_threshold)
        self.patience = int(patience)
        self.cooldown = int(cooldown)
        self._best_cost = float("inf")
        self._offending = 0
        self._cooldown_left = 0
        #: Rounds at which a restart fired (analysis/tests).
        self.restart_rounds: list[int] = []

    def _update(self, feedback: RoundFeedback) -> None:
        super()._update(feedback)
        cost = feedback.global_cost
        self._best_cost = min(self._best_cost, cost)
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return
        if cost > self.restart_threshold * self._best_cost:
            self._offending += 1
        else:
            self._offending = 0
        if self._offending >= self.patience:
            self._restart(feedback.round_index)

    def _restart(self, round_index: int) -> None:
        # Re-derive alpha from the paper's rule at the current allocation,
        # flooring tiny shares (a fully-drained worker would otherwise pin
        # the restart value at ~0, defeating its purpose). Values above
        # the strict inductive-safe level are fine here because
        # RestartDolbie keeps the exact per-round feasibility guard on.
        floored = np.maximum(self._allocation, 1.0 / (4.0 * self.num_workers))
        alpha = initial_step_size(floored)
        self.step_rule = StepSizeRule(self.num_workers, alpha_1=alpha)
        self._best_cost = float("inf")
        self._offending = 0
        self._cooldown_left = self.cooldown
        self.restart_rounds.append(round_index)

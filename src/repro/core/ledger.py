"""Round ledgers: the durable per-round history a worker must not lose.

Every protocol round ends in agreement — a straggler, a global cost, a
roster. The *round ledger* is that agreement made durable: an
append-only sequence of :class:`LedgerEntry` rows, one per completed
round. The protocol keeps one authoritative ledger, and every worker
keeps its own replica covering the rounds it participated in.

The ledgers exist for the rolling-restart story (see
``docs/checkpointing.md``). A plain crash loses the worker's replica —
process memory is gone — and a plain rejoin starts an empty one. A
*restart* (checkpoint, die, resume) must preserve it: the restarted
worker's replica is required to be a **prefix-consistent extension** of
the authoritative ledger — every entry it holds agrees exactly with the
authority's entry for the same round, with a gap only where the worker
was down. :func:`prefix_consistency_violations` is that check; the
chaos invariant layer runs it every round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "LedgerEntry",
    "RoundLedger",
    "prefix_consistency_violations",
]


@dataclass(frozen=True)
class LedgerEntry:
    """One agreed round: what every participant must remember about it."""

    round_index: int
    straggler: int
    global_cost: float
    roster: tuple[int, ...]

    def to_dict(self) -> dict:
        """JSON-able form (checkpoint snapshots)."""
        return {
            "round_index": int(self.round_index),
            "straggler": int(self.straggler),
            "global_cost": float(self.global_cost),
            "roster": list(self.roster),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "LedgerEntry":
        return cls(
            round_index=int(data["round_index"]),
            straggler=int(data["straggler"]),
            global_cost=float(data["global_cost"]),
            roster=tuple(int(w) for w in data["roster"]),
        )


class RoundLedger:
    """Append-only, strictly round-ordered sequence of entries."""

    def __init__(self, entries: Iterable[LedgerEntry] = ()) -> None:
        self._entries: list[LedgerEntry] = []
        for entry in entries:
            self.append(entry)

    def append(self, entry: LedgerEntry) -> None:
        """Append ``entry``; rounds must be strictly increasing."""
        if self._entries and entry.round_index <= self._entries[-1].round_index:
            raise ValueError(
                f"ledger rounds must be strictly increasing: "
                f"{entry.round_index} after {self._entries[-1].round_index}"
            )
        self._entries.append(entry)

    def replicate(self, entry: LedgerEntry) -> None:
        """Append ``entry`` without the monotonicity check.

        For replica fan-out of an entry the *authoritative* ledger just
        validated (the compiled tree round appends one entry to N
        replicas per round; re-running the check N times is pure
        overhead). Callers must only pass entries that
        :meth:`append` on the authoritative ledger accepted for the
        same round — the replica stays strictly round-ordered because
        it receives a subsequence of an ordered stream.
        """
        self._entries.append(entry)

    @property
    def entries(self) -> tuple[LedgerEntry, ...]:
        return tuple(self._entries)

    @property
    def last_round(self) -> int | None:
        """The most recent recorded round, or ``None`` when empty."""
        return self._entries[-1].round_index if self._entries else None

    def entry_for(self, round_index: int) -> LedgerEntry | None:
        """The entry for ``round_index``, or ``None`` if absent."""
        for entry in reversed(self._entries):
            if entry.round_index == round_index:
                return entry
            if entry.round_index < round_index:
                return None
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LedgerEntry]:
        return iter(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoundLedger):
            return NotImplemented
        return self._entries == other._entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        span = (
            f"rounds {self._entries[0].round_index}..{self._entries[-1].round_index}"
            if self._entries
            else "empty"
        )
        return f"RoundLedger({len(self._entries)} entries, {span})"

    def to_records(self) -> list[dict]:
        """JSON-able form (checkpoint snapshots)."""
        return [entry.to_dict() for entry in self._entries]

    @classmethod
    def from_records(cls, records: Sequence[Mapping]) -> "RoundLedger":
        return cls(LedgerEntry.from_dict(record) for record in records)


def prefix_consistency_violations(
    replica: RoundLedger,
    authority: RoundLedger,
    *,
    preserved_prefix: Sequence[LedgerEntry] | None = None,
) -> list[str]:
    """Why ``replica`` is not a prefix-consistent extension of ``authority``.

    Returns an empty list when every entry the replica holds agrees
    exactly with the authority's entry for the same round (gaps are
    fine — the worker was down). With ``preserved_prefix`` (what a
    restarted worker carried through its checkpoint), the replica must
    additionally *start with* exactly those entries: a restart that
    silently dropped or rewrote pre-crash history is a violation even
    if the surviving entries happen to agree.
    """
    problems: list[str] = []
    by_round = {entry.round_index: entry for entry in authority}
    for entry in replica:
        authoritative = by_round.get(entry.round_index)
        if authoritative is None:
            problems.append(
                f"replica has round {entry.round_index} unknown to the authority"
            )
        elif authoritative != entry:
            problems.append(
                f"replica disagrees with authority at round {entry.round_index}: "
                f"{entry} != {authoritative}"
            )
    if preserved_prefix is not None:
        held = replica.entries[: len(preserved_prefix)]
        if held != tuple(preserved_prefix):
            problems.append(
                f"restart lost its pre-crash ledger prefix "
                f"({len(preserved_prefix)} entries expected, replica starts "
                f"with {len(held)})"
            )
    return problems

"""The risk-averse quantities of §IV-A: x-tilde, x-prime, and G.

``x'_{i,t}`` (Eq. 4) is the largest workload worker *i* could have carried
this round without exceeding the observed global cost ``l_t`` — i.e.
without becoming a *worse* straggler. The assistance vector ``G_t``
(Theorem 1's proof) packages the update so that
``x_{t+1} = x_t - alpha_t G_t`` (Eq. 9).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend import as_float
from repro.costs.affine import AffineLatencyCost
from repro.costs.affine_vector import AffineCostVector
from repro.costs.base import CostFunction
from repro.exceptions import ConfigurationError

__all__ = [
    "acceptable_workloads",
    "acceptable_workloads_rows",
    "assistance_vector",
    "assistance_vector_rows",
]


def _affine_fast_path(
    costs: Sequence[CostFunction],
    x: np.ndarray,
    global_cost: float,
    straggler: int,
) -> np.ndarray | None:
    """Vectorized x' for all-affine cost vectors (the §VI-A formula).

    The level inverse of an affine latency cost is closed-form, so the
    whole vector is three numpy operations — this is what keeps DOLBIE's
    per-round decision in the tens of microseconds (Fig. 11, lower).
    An :class:`AffineCostVector` (the materialized-environment
    representation) supplies the slope/intercept arrays directly; object
    lists pay one attribute-extraction pass first.
    """
    if isinstance(costs, AffineCostVector):
        slopes = costs.slopes
        intercepts = costs.intercepts
    elif all(type(c) is AffineLatencyCost for c in costs):
        slopes = np.array([c.slope for c in costs])
        intercepts = np.array([c.intercept for c in costs])
    else:
        return None
    with np.errstate(divide="ignore", invalid="ignore"):
        tilde = (global_cost - intercepts) / slopes
    tilde = np.where(slopes == 0.0, 1.0, tilde)
    x_prime = np.clip(tilde, x, 1.0)
    x_prime[straggler] = x[straggler]
    return x_prime


def acceptable_workloads(
    costs: Sequence[CostFunction],
    allocation: np.ndarray,
    global_cost: float,
    straggler: int,
) -> np.ndarray:
    """Compute ``x'_t`` of Eq. (4) for every worker.

    For non-stragglers, ``x'_{i,t} = min( max{x : f_{i,t}(x) <= l_t}, 1 )``.
    The straggler keeps its current workload (``x'_{s_t} = x_{s_t}``): it
    defines the global cost, so it acquires no additional work (§IV-A).

    The result dominates the played allocation coordinate-wise
    (Lemma 1-ii), which the property tests assert for arbitrary increasing
    costs.
    """
    x = np.asarray(allocation, dtype=float)
    n = len(costs)
    if x.shape != (n,):
        raise ConfigurationError(f"allocation shape {x.shape} != ({n},)")
    if not 0 <= straggler < n:
        raise ConfigurationError(f"straggler index {straggler} out of range")
    fast = _affine_fast_path(costs, x, global_cost, straggler)
    if fast is not None:
        return fast
    x_prime = np.empty(n, dtype=float)
    for i, cost in enumerate(costs):
        if i == straggler:
            x_prime[i] = x[i]
            continue
        acceptable = min(cost.max_acceptable(global_cost), 1.0)
        # Guard floating-point dust: Lemma 1-ii guarantees x' >= x because
        # f_i(x_i) <= l_t, so clamp tiny negative gaps from bisection.
        x_prime[i] = max(acceptable, x[i])
    return x_prime


def acceptable_workloads_rows(
    slopes: np.ndarray,
    intercepts: np.ndarray,
    allocations: np.ndarray,
    global_costs: np.ndarray,
    stragglers: np.ndarray,
) -> np.ndarray:
    """Row-wise affine :func:`acceptable_workloads` for ``R`` realizations.

    Row ``r`` undergoes the same elementwise operations, in the same
    order, as the single-round affine fast path with that row's costs and
    straggler, so each row is bit-identical to the scalar call (the
    batched-equivalence property tests pin this).
    """
    # as_float keeps a float32 backend's matrices in float32; float64
    # input is passed through untouched (the historical behavior).
    x = as_float(allocations)
    slopes = as_float(slopes)
    if x.ndim != 2 or x.shape != slopes.shape:
        raise ConfigurationError(
            f"allocations {x.shape} and slopes {slopes.shape} must be "
            "matching (R, N) matrices"
        )
    rows = np.arange(x.shape[0])
    with np.errstate(divide="ignore", invalid="ignore"):
        tilde = (as_float(global_costs)[:, None] - intercepts) / slopes
    tilde = np.where(slopes == 0.0, 1.0, tilde)
    x_prime = np.clip(tilde, x, 1.0)
    x_prime[rows, stragglers] = x[rows, stragglers]
    return x_prime


def assistance_vector(
    allocation: np.ndarray,
    x_prime: np.ndarray,
    straggler: int,
) -> np.ndarray:
    """The vector ``G_t`` from the proof of Theorem 1.

    ``G_i = x_i - x'_i <= 0`` for non-stragglers (they can absorb work) and
    ``G_s = -sum_{j != s} (x_j - x'_j) >= 0`` (the straggler sheds exactly
    what the others absorb), so ``sum(G) = 0`` and the simplex constraint
    is preserved by ``x - alpha G`` for any alpha.
    """
    x = np.asarray(allocation, dtype=float)
    xp = np.asarray(x_prime, dtype=float)
    if x.shape != xp.shape:
        raise ConfigurationError("allocation and x_prime shapes differ")
    g = x - xp
    g[straggler] = 0.0
    g[straggler] = -g.sum()
    return g


def assistance_vector_rows(
    allocations: np.ndarray,
    x_prime: np.ndarray,
    stragglers: np.ndarray,
) -> np.ndarray:
    """Row-wise :func:`assistance_vector` for ``R`` realizations.

    Each row's straggler coordinate is zeroed before the closing sum, so
    the per-row arithmetic (including the IEEE summation order of
    ``sum(axis=1)``) matches the 1-D function exactly.
    """
    x = as_float(allocations)
    xp = as_float(x_prime)
    if x.shape != xp.shape or x.ndim != 2:
        raise ConfigurationError("allocations and x_prime must be matching (R, N)")
    rows = np.arange(x.shape[0])
    g = x - xp
    g[rows, stragglers] = 0.0
    g[rows, stragglers] = -g.sum(axis=1)
    return g

"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class. Specific subclasses communicate which subsystem failed
and are raised with actionable messages.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class FeasibilityError(ReproError):
    """An allocation vector violated the simplex constraints (2)-(3)."""


class CostFunctionError(ReproError):
    """A cost function was queried outside its domain or is malformed."""


class RootFindingError(ReproError):
    """A root finder failed to bracket or converge."""


class SolverError(ReproError):
    """The instantaneous min-max solver could not produce a solution."""


class ProtocolError(ReproError):
    """A distributed protocol received an unexpected or malformed message."""


class SimulationError(ReproError):
    """The discrete-event engine or a simulation model reached a bad state."""


class TransportError(SimulationError):
    """The transport layer gave up on a message (retransmit budget spent).

    Carries the failed route so callers can tell *which* send died:
    ``src``/``dst`` node ids, the message ``tag``, and ``attempts`` (the
    number of retransmissions tried before giving up).
    """

    def __init__(self, src: int, dst: int, tag: str, attempts: int) -> None:
        self.src = int(src)
        self.dst = int(dst)
        self.tag = str(tag)
        self.attempts = int(attempts)
        super().__init__(
            f"message {self.tag!r} {self.src}->{self.dst} lost after "
            f"{self.attempts} retransmissions"
        )


class ConfigurationError(ReproError):
    """An experiment or algorithm was configured with invalid parameters."""


class InvariantViolation(ReproError):
    """A chaos/soak run observed a broken system invariant (see
    :mod:`repro.chaos.invariants`)."""


class CheckpointError(ReproError):
    """A checkpoint could not be captured, restored, or matched to the
    run it claims to resume (see :mod:`repro.ckpt`)."""


class BackendError(ReproError):
    """An array backend was misconfigured or a hot-path array left the
    backend's dtype (a silent upcast/downcast — see :mod:`repro.backend`)."""

"""Learning-curve model: training accuracy as a function of progress.

Figs. 6-8 plot training accuracy against wall-clock time. The balancer
does not change *what* is learned per round — every algorithm processes
the same global batch ``B`` of samples per round with synchronous SGD —
it changes only how long a round takes. Accuracy is therefore a function
of epochs alone, shared across balancers, and the wall-clock axis is
where they differ. We model it with the standard saturating exponential

    acc(e) = plateau - (plateau - init) * exp(-rate * e)

whose parameters live on each :class:`~repro.mlsim.models.ModelProfile`,
plus small seeded SGD noise. The inverse (epochs needed to reach a target
accuracy) gives the paper's "time to 95% training accuracy" statistics.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mlsim.models import ModelProfile

__all__ = ["LearningCurve"]


class LearningCurve:
    """Deterministic-plus-noise accuracy trajectory for one model."""

    def __init__(
        self, model: ModelProfile, noise_std: float = 0.003, seed: int = 0
    ) -> None:
        if noise_std < 0:
            raise ConfigurationError("noise_std must be >= 0")
        self.model = model
        self.noise_std = float(noise_std)
        self._rng = np.random.default_rng(np.random.SeedSequence([seed, 0xACC]))

    def mean_accuracy(self, epochs: float | np.ndarray) -> np.ndarray | float:
        """Noise-free accuracy after ``epochs`` epochs."""
        e = np.asarray(epochs, dtype=float)
        if np.any(e < 0):
            raise ConfigurationError("epochs must be >= 0")
        m = self.model
        acc = m.accuracy_plateau - (m.accuracy_plateau - m.accuracy_init) * np.exp(
            -m.accuracy_rate * e
        )
        return float(acc) if np.isscalar(epochs) else acc

    def accuracy(self, epochs: float) -> float:
        """Accuracy with SGD noise, clipped to [init, 1]."""
        mean = float(self.mean_accuracy(epochs))
        noisy = mean + float(self._rng.normal(0.0, self.noise_std))
        return min(max(noisy, self.model.accuracy_init), 1.0)

    def accuracy_series(self, epochs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`accuracy` over a whole trajectory of epochs.

        Draws one noise sample per entry from the same generator, so the
        result is bit-identical to calling :meth:`accuracy` sequentially
        on each element (``Generator.normal(size=n)`` consumes the stream
        exactly like ``n`` scalar draws).
        """
        e = np.asarray(epochs, dtype=float)
        mean = np.asarray(self.mean_accuracy(e), dtype=float)
        noisy = mean + self._rng.normal(0.0, self.noise_std, size=e.shape)
        return np.minimum(np.maximum(noisy, self.model.accuracy_init), 1.0)

    def epochs_to_accuracy(self, target: float) -> float:
        """Epochs needed for the mean curve to reach ``target`` accuracy."""
        m = self.model
        if not m.accuracy_init <= target < m.accuracy_plateau:
            raise ConfigurationError(
                f"target {target} outside reachable range "
                f"[{m.accuracy_init}, {m.accuracy_plateau})"
            )
        return -math.log(
            (m.accuracy_plateau - target) / (m.accuracy_plateau - m.accuracy_init)
        ) / m.accuracy_rate

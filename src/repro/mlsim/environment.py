"""The distributed-learning environment as a :class:`CostProcess`.

Binds together the processor fleet, the per-worker speed fluctuation
traces, and the communication environment into the per-round affine
latency functions of §III-A:

    f_{i,t}(b) = b * B / gamma_{i,t} + f^C_{i,t}

so that any balancer (and the OPT oracle) can be driven against it with
the ordinary online loop. The environment is deterministic per seed —
round ``t`` always produces the same cost vector — and exposes the raw
``speed_at`` / ``comm_at`` accessors the trainer uses for the per-worker
time decomposition of Fig. 11.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.costs.affine import AffineLatencyCost
from repro.costs.base import CostFunction
from repro.costs.timevarying import CostProcess
from repro.exceptions import ConfigurationError
from repro.mlsim.models import ModelProfile, get_model
from repro.mlsim.netenv import CommEnvironment
from repro.mlsim.processors import ProcessorSpec, sample_fleet
from repro.mlsim.traces import FluctuationTrace

__all__ = ["TrainingEnvironment"]


class TrainingEnvironment(CostProcess):
    """Per-round latency functions of a heterogeneous training fleet."""

    def __init__(
        self,
        model: ModelProfile | str,
        num_workers: int = 30,
        global_batch: int = 256,
        seed: int = 0,
        fleet: Sequence[ProcessorSpec] | None = None,
        speed_volatility: float = 0.03,
        rate_volatility: float = 0.05,
        payload_scale: float = 0.005,
        base_latency: float = 0.001,
        spike_probability: float = 0.006,
    ) -> None:
        super().__init__(num_workers)
        if global_batch < 1:
            raise ConfigurationError(f"global batch must be >= 1, got {global_batch}")
        self.model = get_model(model) if isinstance(model, str) else model
        self.global_batch = int(global_batch)
        self.seed = int(seed)
        if fleet is None:
            rng = np.random.default_rng(np.random.SeedSequence([seed, 0xF1EE7]))
            fleet = sample_fleet(num_workers, rng)
        if len(fleet) != num_workers:
            raise ConfigurationError(
                f"fleet has {len(fleet)} processors for {num_workers} workers"
            )
        self.fleet = list(fleet)
        self.base_speeds = np.array(
            [spec.throughput(self.model) for spec in self.fleet]
        )
        self._speed_traces = [
            FluctuationTrace(
                rho=0.9,
                sigma=speed_volatility,
                spike_probability=spike_probability,
                spike_slowdown=(0.5, 0.8),
                spike_mean_duration=4.0,
                seed=seed * 7_368_787 + 31 * i + 11,
            )
            for i in range(num_workers)
        ]
        self.comm = CommEnvironment(
            self.fleet,
            self.model,
            payload_scale=payload_scale,
            base_latency=base_latency,
            rate_volatility=rate_volatility,
            seed=seed,
        )

    def speed_at(self, worker: int, t: int) -> float:
        """Effective processing speed ``gamma_{i,t}`` in samples/second."""
        return float(self.base_speeds[worker]) * self._speed_traces[worker].at(t)

    def comm_at(self, worker: int, t: int) -> float:
        """Communication time ``f^C_{i,t}`` in seconds."""
        return self.comm.comm_time(worker, t)

    def costs_at(self, t: int) -> list[CostFunction]:
        return [
            AffineLatencyCost.from_system(
                batch_size=self.global_batch,
                speed=self.speed_at(i, t),
                comm_time=self.comm_at(i, t),
            )
            for i in range(self.num_workers)
        ]

    def materialize(self, horizon: int, backend=None):
        """Precompute rounds ``1..horizon`` as a :class:`MaterializedEnvironment`.

        One pass over the per-worker fluctuation traces yields ``(T, N)``
        speed and communication matrices whose entries are bit-identical
        to :meth:`speed_at`/:meth:`comm_at` (same scalar IEEE operations,
        applied elementwise). The returned environment serves ``costs_at``
        as O(1) array slices — use it whenever the horizon is known up
        front, and share it across algorithms replaying one realization.

        ``backend`` (a name or :class:`~repro.backend.ArrayBackend`)
        selects the storage dtype of the materialized matrices; the
        traces are always generated in float64 and cast once. Default
        is the process-wide backend (``REPRO_BACKEND`` / numpy64).
        """
        from repro.mlsim.materialized import MaterializedEnvironment

        multipliers = np.stack(
            [trace.materialize(horizon) for trace in self._speed_traces], axis=1
        )
        speed_matrix = self.base_speeds[None, :] * multipliers
        return MaterializedEnvironment(
            model=self.model,
            global_batch=self.global_batch,
            seed=self.seed,
            fleet=self.fleet,
            speed_matrix=speed_matrix,
            comm_matrix=self.comm.materialize(horizon),
            backend=backend,
        )

    def processor_names(self) -> list[str]:
        """Device type of each worker (Figs. 9-10 color the lines by this)."""
        return [spec.name for spec in self.fleet]

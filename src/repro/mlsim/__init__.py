"""Distributed-ML training simulator: the §VI evaluation substrate."""

from repro.mlsim.dataset import SyntheticDataset, largest_remainder_split
from repro.mlsim.environment import TrainingEnvironment
from repro.mlsim.learning import LearningCurve
from repro.mlsim.materialized import MaterializedEnvironment
from repro.mlsim.models import (
    LENET5,
    MODEL_CATALOG,
    RESNET18,
    VGG16,
    ModelProfile,
    get_model,
)
from repro.mlsim.netenv import CommEnvironment
from repro.mlsim.processors import (
    PROCESSOR_CATALOG,
    PROCESSOR_NAMES,
    ProcessorSpec,
    get_processor,
    sample_fleet,
)
from repro.mlsim.tracefile import TraceEnvironment, TraceTable
from repro.mlsim.traces import FluctuationTrace
from repro.mlsim.trainer import SyncTrainer, TrainingRun

__all__ = [
    "ModelProfile",
    "MODEL_CATALOG",
    "LENET5",
    "RESNET18",
    "VGG16",
    "get_model",
    "ProcessorSpec",
    "PROCESSOR_CATALOG",
    "PROCESSOR_NAMES",
    "get_processor",
    "sample_fleet",
    "FluctuationTrace",
    "TraceTable",
    "TraceEnvironment",
    "CommEnvironment",
    "TrainingEnvironment",
    "MaterializedEnvironment",
    "SyntheticDataset",
    "largest_remainder_split",
    "LearningCurve",
    "SyncTrainer",
    "TrainingRun",
]

"""On-disk cache of materialized ``(T, N)`` environment cost traces.

Materializing a :class:`~repro.mlsim.environment.TrainingEnvironment`
walks every per-worker fluctuation trace round by round — pure Python
over ``T * N`` AR steps, and by far the most expensive part of a sweep
after the stacked engine removed the per-round balancer overhead. The
traces are a *deterministic* function of the environment configuration
and seed, so repeated sweeps (benchmark reruns, figure regeneration,
CI) recompute identical matrices every time.

This module persists them instead: each entry is one ``.npz`` file
holding the ``(T, N)`` speed and communication matrices, keyed by a
SHA-256 hash of the canonical environment fingerprint (model, fleet
size, batch, seed, horizon, every fluctuation/comm parameter, and the
cache schema version). Hits rebuild the
:class:`~repro.mlsim.materialized.MaterializedEnvironment` from the
stored arrays — bit-identical to a fresh materialization, because the
arrays *are* the fresh materialization's bytes (``.npz`` round-trips
float64 exactly).

Operational properties:

* **Location** — ``~/.cache/repro`` by default; override with
  ``REPRO_CACHE_DIR``. Disable entirely with ``REPRO_CACHE=0``.
* **Atomic writes** — entries are written to a temp file in the cache
  directory and ``os.replace``'d into place, so readers never observe a
  partial entry (and concurrent writers of the same key simply race to
  an identical file).
* **Size cap** — after each store the directory is pruned
  least-recently-modified-first down to ``REPRO_CACHE_MAX_BYTES``
  (default 512 MiB).
* **Self-healing** — unreadable or shape-inconsistent entries are
  deleted on load and recomputed; bumping :data:`CACHE_VERSION`
  invalidates every old key at once.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.utils.atomic import atomic_write, self_healing_load

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_MAX_BYTES",
    "cache_enabled",
    "cache_dir",
    "cache_max_bytes",
    "environment_fingerprint",
    "cache_key",
    "load_matrices",
    "store_matrices",
    "prune",
    "materialize_cached",
    "clear",
]

#: Bump when the trace-generation arithmetic or the entry layout changes;
#: every previously stored entry becomes unreachable (and is eventually
#: pruned by the size cap). Version 2 added the storage dtype to the
#: fingerprint (entries are stored in the backend's dtype).
CACHE_VERSION = 2

#: Default size cap for the cache directory.
DEFAULT_MAX_BYTES = 512 * 1024 * 1024


def cache_enabled() -> bool:
    """False when the user exported ``REPRO_CACHE=0``."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def cache_dir() -> Path:
    """``REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


def cache_max_bytes() -> int:
    """Size cap in bytes (``REPRO_CACHE_MAX_BYTES`` override)."""
    raw = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if raw is None:
        return DEFAULT_MAX_BYTES
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MAX_BYTES


def environment_fingerprint(env, horizon: int, backend=None) -> dict:
    """Canonical JSON-able description of what determines the matrices.

    Everything the trace generation depends on goes in: the model (its
    name selects base throughputs), fleet size, batch, seed, horizon,
    the speed-trace parameters, and the communication environment's
    parameters. Two environments with equal fingerprints produce
    bit-identical ``(T, N)`` matrices, because the generators are seeded
    pure functions of these values.

    The *storage dtype* of the requested backend is part of the key —
    not the backend name, so backends sharing a dtype (``numpy64`` and
    ``compiled``) share cache entries.
    """
    from repro.backend import get_backend

    trace = env._speed_traces[0]
    comm_trace = env.comm._traces[0]
    return {
        "version": CACHE_VERSION,
        "dtype": str(np.dtype(get_backend(backend).dtype)),
        "model": env.model.name,
        "num_workers": env.num_workers,
        "global_batch": env.global_batch,
        "seed": env.seed,
        "horizon": int(horizon),
        "speed_trace": {
            "rho": trace.rho,
            "sigma": trace.sigma,
            "spike_probability": trace.spike_probability,
            "spike_slowdown": list(trace.spike_slowdown),
            "spike_mean_duration": trace.spike_mean_duration,
            "floor": trace.floor,
        },
        "comm": {
            "payload_scale": env.comm.payload_scale,
            "base_latency": env.comm.base_latency,
            "rate_sigma": comm_trace.sigma,
            "rate_rho": comm_trace.rho,
            "rate_spike_probability": comm_trace.spike_probability,
        },
    }


def cache_key(env, horizon: int, backend=None) -> str:
    """Stable SHA-256 hex digest of the environment fingerprint."""
    canonical = json.dumps(
        environment_fingerprint(env, horizon, backend),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _entry_path(key: str) -> Path:
    return cache_dir() / f"mat-{key}.npz"


def _load_entry(path: Path) -> tuple[np.ndarray, np.ndarray]:
    # Preserve the stored dtype: entries are written in the backend's
    # storage dtype, and the dtype is part of the cache key.
    with np.load(path) as data:
        speed = np.asarray(data["speed"])
        comm = np.asarray(data["comm"])
    if speed.ndim != 2 or speed.shape != comm.shape:
        raise ValueError(f"inconsistent cached shapes {speed.shape}/{comm.shape}")
    return speed, comm


def load_matrices(key: str) -> tuple[np.ndarray, np.ndarray] | None:
    """Load ``(speed, comm)`` for ``key``; self-heal corrupt entries."""
    path = _entry_path(key)
    loaded = self_healing_load(path, _load_entry)
    if loaded is None:
        return None
    # Touch so LRU pruning sees the entry as recently used.
    try:
        os.utime(path)
    except OSError:
        pass
    return loaded


def store_matrices(key: str, speed: np.ndarray, comm: np.ndarray) -> None:
    """Atomically persist an entry, then prune to the size cap.

    Failures are swallowed: the cache is an accelerator, never a
    correctness dependency, so a read-only or full disk must not break
    the sweep that tried to populate it.
    """
    stored = atomic_write(
        _entry_path(key),
        lambda handle: np.savez(handle, speed=speed, comm=comm),
        swallow_errors=True,
    )
    if stored:
        prune(cache_max_bytes())


def prune(max_bytes: int) -> int:
    """Delete least-recently-used entries until the directory fits.

    Returns the number of entries removed. Entries touched by
    :func:`load_matrices` have fresh mtimes, so hot benchmark
    configurations survive while one-off experiments age out.
    """
    directory = cache_dir()
    try:
        entries = [
            (path, path.stat()) for path in directory.glob("mat-*.npz")
        ]
    except OSError:
        return 0
    total = sum(stat.st_size for _, stat in entries)
    if total <= max_bytes:
        return 0
    removed = 0
    for path, stat in sorted(entries, key=lambda item: item[1].st_mtime):
        if total <= max_bytes:
            break
        try:
            path.unlink()
        except OSError:
            continue
        total -= stat.st_size
        removed += 1
    return removed


def clear() -> int:
    """Remove every cache entry (the ``repro bench`` cold-cache path)."""
    directory = cache_dir()
    removed = 0
    try:
        paths = list(directory.glob("mat-*.npz"))
    except OSError:
        return 0
    for path in paths:
        try:
            path.unlink()
            removed += 1
        except OSError:
            continue
    return removed


def materialize_cached(env, horizon: int, backend=None):
    """``env.materialize(horizon, backend)`` through the on-disk cache.

    On a hit the :class:`~repro.mlsim.materialized.MaterializedEnvironment`
    is rebuilt from the stored matrices — bit-identical to a fresh
    materialization (the stored arrays are already in the backend's
    dtype; the rebuild cast is a no-op). On a miss (or with the cache
    disabled) the traces are materialized normally and, when enabled,
    persisted for next time. The environment object itself (fleet,
    model, seeds) is always built live; only the expensive trace walk
    is cached.
    """
    from repro.backend import get_backend
    from repro.mlsim.materialized import MaterializedEnvironment

    resolved = get_backend(backend)
    if not cache_enabled():
        return env.materialize(horizon, backend=resolved)
    key = cache_key(env, horizon, resolved)
    cached = load_matrices(key)
    if cached is not None:
        speed, comm = cached
        if (
            speed.shape == (int(horizon), env.num_workers)
            and speed.dtype == resolved.dtype
        ):
            return MaterializedEnvironment(
                model=env.model,
                global_batch=env.global_batch,
                seed=env.seed,
                fleet=env.fleet,
                speed_matrix=speed,
                comm_matrix=comm,
                backend=resolved,
            )
    materialized = env.materialize(horizon, backend=resolved)
    store_matrices(key, materialized.speed_matrix, materialized.comm_matrix)
    return materialized
